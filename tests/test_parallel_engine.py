"""The process-parallel benchmark engine and its determinism contract.

Serial and parallel runs must be indistinguishable in everything except
wall-clock: identical markdown from ``repro.bench.report``, identical
key order (and, in virtual mode, identical values) from
``repro.bench.speed``.  Also covers the CLI satellites: comma-separated
``--only`` with loud unknown-name errors, and the ``--check`` gate
failing loudly on unmapped baseline keys.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench import parallel, report, speed

#: A cheap, fully deterministic experiment subset for equality tests.
SUBSET = "fig2,table4,space"


def _square(x):
    return x * x


def _task_name(_ignored):
    import random
    return random.random()


class TestRunTasks:
    def test_order_preserved_serial(self):
        tasks = [(f"t{i}", _square, (i,)) for i in range(7)]
        results = parallel.run_tasks(tasks, jobs=1, progress=False)
        assert [r.value for r in results] == [i * i for i in range(7)]
        assert [r.index for r in results] == list(range(7))
        assert all(r.worker == "main" for r in results)

    def test_order_preserved_parallel(self):
        tasks = [(f"t{i}", _square, (i,)) for i in range(7)]
        results = parallel.run_tasks(tasks, jobs=3, progress=False)
        assert [r.value for r in results] == [i * i for i in range(7)]
        assert all(r.wall_clock_s >= 0.0 for r in results)
        assert all(r.worker for r in results)

    def test_per_task_seeding_is_deterministic(self):
        tasks = [(name, _task_name, (None,)) for name in ("a", "b", "a")]
        serial = parallel.run_tasks(tasks, jobs=1, progress=False)
        again = parallel.run_tasks(tasks, jobs=2, progress=False)
        assert [r.value for r in serial] == [r.value for r in again]
        # Same name -> same seed -> same draw; different name differs.
        assert serial[0].value == serial[2].value
        assert serial[0].value != serial[1].value

    def test_resolve_jobs(self):
        assert parallel.resolve_jobs(None) == (os.cpu_count() or 1)
        assert parallel.resolve_jobs(0) == (os.cpu_count() or 1)
        assert parallel.resolve_jobs(1) == 1
        assert parallel.resolve_jobs(-3) == 1
        assert parallel.resolve_jobs(5) == 5

    def test_timing_appendix_mentions_every_task(self):
        tasks = [(f"t{i}", _square, (i,)) for i in range(3)]
        results = parallel.run_tasks(tasks, jobs=1, progress=False)
        appendix = parallel.timing_appendix(results)
        assert "## Appendix: harness timing" in appendix
        for i in range(3):
            assert f"| t{i} |" in appendix


class TestReportEngine:
    def test_parallel_markdown_byte_identical(self):
        serial, ok1 = report.generate(quick=True, only=SUBSET, jobs=1,
                                      progress=False)
        fanned, ok2 = report.generate(quick=True, only=SUBSET, jobs=2,
                                      progress=False)
        assert serial == fanned
        assert ok1 == ok2

    def test_timing_appendix_is_opt_in(self):
        plain, _ = report.generate(quick=True, only="table4", jobs=1,
                                   progress=False)
        timed, _ = report.generate(quick=True, only="table4", jobs=1,
                                   timing=True, progress=False)
        assert "Appendix: harness timing" not in plain
        assert "Appendix: harness timing" in timed
        assert "| table4 |" in timed

    def test_select_experiments_comma_list_keeps_registry_order(self):
        names = report.select_experiments("table4,fig2")
        assert names == ["fig2", "table4"]

    def test_select_experiments_unknown_names_raise(self):
        with pytest.raises(report.UnknownExperimentError) as exc:
            report.select_experiments("fig2,bogus,nope")
        assert exc.value.names == ["bogus", "nope"]

    def test_main_unknown_only_exits_nonzero(self, capsys):
        status = report.main(["--quick", "--only", "doesnotexist"])
        err = capsys.readouterr().err
        assert status == 2
        assert "doesnotexist" in err

    def test_wall_clock_fields_populated(self):
        results = parallel.run_tasks(
            [("table4", report.run_experiment, ("table4", True))],
            jobs=1, progress=False)
        rep = results[0].value
        rep.wall_clock_s = results[0].wall_clock_s
        rep.worker = results[0].worker
        assert rep.wall_clock_s > 0.0
        assert "harness:" in rep.to_text()


class TestSpeedEngine:
    def test_virtual_results_identical_serial_vs_parallel(self):
        serial = speed.run_benchmarks(scale=0.01, reps=1, jobs=1,
                                      virtual=True, verbose=False)
        fanned = speed.run_benchmarks(scale=0.01, reps=1, jobs=2,
                                      virtual=True, verbose=False)
        assert serial == fanned
        assert list(serial) == list(fanned)  # key order too

    def test_matrix_covers_every_benchmark_and_profile(self):
        results = speed.run_benchmarks(scale=0.01, reps=1, jobs=1,
                                       virtual=True, verbose=False)
        expected = {f"{name}[{profile}]"
                    for name, _setup, _n in speed.BENCHMARKS
                    for profile in speed.PROFILES}
        assert set(results) == expected


class TestNameMapAndCheckGate:
    def test_name_map_covers_committed_baseline(self):
        here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        with open(os.path.join(here, "BENCH_simspeed.json")) as fh:
            baseline = json.load(fh)["results"]
        mapped = set(speed.PYTEST_NAME_MAP.values())
        uncovered = set(baseline) - mapped
        assert not uncovered, (
            f"baseline keys with no pytest mapping: {sorted(uncovered)}")

    def test_name_map_matrix_is_complete(self):
        # Every (benchmark, profile) cell has a pytest name mapped to it.
        expected = {f"{name}[{profile}]"
                    for name, _setup, _n in speed.BENCHMARKS
                    for profile in speed.PROFILES}
        assert set(speed.PYTEST_NAME_MAP.values()) == expected

    def _write(self, path, payload):
        with open(path, "w") as fh:
            json.dump(payload, fh)
        return str(path)

    @pytest.fixture(autouse=True)
    def _synthetic_baselines(self, monkeypatch):
        # The coverage/threshold cases below use tiny synthetic
        # baselines; the write-path required-keys rule has its own test.
        monkeypatch.setattr(speed, "REQUIRED_BASELINE_KEYS", ())

    def test_check_requires_write_path_cells(self, tmp_path, capsys,
                                             monkeypatch):
        monkeypatch.setattr(
            speed, "REQUIRED_BASELINE_KEYS",
            tuple(f"{name}[{profile}]"
                  for name in ("rename_churn", "create_unlink")
                  for profile in speed.PROFILES))
        baseline = self._write(tmp_path / "base.json", {
            "results": {"warm_stat[baseline]": 10.0}})
        export = self._write(tmp_path / "bench.json", {
            "benchmarks": [{"name": "test_warm_stat_wallclock[baseline]",
                            "stats": {"median": 10.0e-6}}]})
        status = speed.check_regressions(export, baseline, 0.25)
        err = capsys.readouterr().err
        assert status == 2
        assert "rename_churn[optimized]" in err
        assert "create_unlink[baseline]" in err

    def test_committed_baseline_carries_required_keys(self):
        here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        with open(os.path.join(here, "BENCH_simspeed.json")) as fh:
            baseline = json.load(fh)["results"]
        # The literal, not speed.REQUIRED_BASELINE_KEYS — the autouse
        # fixture above blanks that attribute for this class.
        required = tuple(f"{name}[{profile}]"
                         for name in ("rename_churn", "create_unlink")
                         for profile in speed.PROFILES)
        missing = [key for key in required if key not in baseline]
        assert not missing

    def test_check_fails_loudly_on_uncovered_baseline_key(self, tmp_path,
                                                          capsys):
        baseline = self._write(tmp_path / "base.json", {
            "results": {"warm_stat[baseline]": 10.0,
                        "warm_stat[optimized]": 5.0}})
        export = self._write(tmp_path / "bench.json", {
            "benchmarks": [{"name": "test_warm_stat_wallclock[baseline]",
                            "stats": {"median": 10.0e-6}}]})
        status = speed.check_regressions(export, baseline, 0.25)
        err = capsys.readouterr().err
        assert status == 2
        assert "warm_stat[optimized]" in err

    def test_check_passes_when_all_keys_covered(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "base.json", {
            "results": {"warm_stat[baseline]": 10.0}})
        export = self._write(tmp_path / "bench.json", {
            "benchmarks": [{"name": "test_warm_stat_wallclock[baseline]",
                            "stats": {"median": 10.0e-6}}]})
        assert speed.check_regressions(export, baseline, 0.25) == 0
        assert "all 1 baseline keys covered" in capsys.readouterr().out

    def test_check_still_catches_regressions(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "base.json", {
            "results": {"warm_stat[baseline]": 10.0}})
        export = self._write(tmp_path / "bench.json", {
            "benchmarks": [{"name": "test_warm_stat_wallclock[baseline]",
                            "stats": {"median": 20.0e-6}}]})
        assert speed.check_regressions(export, baseline, 0.25) == 1
