"""Unit and property tests for path signatures (§3.3)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.signatures import (INDEX_BITS, PathHasher, SigState,
                                   collision_probability, make_hasher,
                                   queries_for_risk)

NAMES = st.text(
    alphabet=st.characters(codec="utf-8", exclude_characters="/\x00"),
    min_size=1, max_size=24)

#: Lone surrogates as produced by os.fsdecode()'s surrogateescape for
#: non-UTF-8 bytes on disk — legal in our path strings.
SURROGATE_NAMES = st.text(
    alphabet=st.characters(min_codepoint=0xDC80, max_codepoint=0xDCFF),
    min_size=1, max_size=8)

#: Names whose byte length straddles NAME_MAX (255): the interned
#: contribution cache uses precomputed power tables up to NAME_MAX + a
#: separator, and must fall back to pow() beyond that.
LONG_NAMES = st.sampled_from(
    ["x" * 254, "y" * 255, "z" * 256, "é" * 130])  # "é"*130 = 260 bytes

ANY_NAME = st.one_of(NAMES, SURROGATE_NAMES, LONG_NAMES)


@pytest.fixture
def hasher():
    return PathHasher(boot_seed=42)


class TestResumability:
    def test_extend_matches_full_hash(self, hasher):
        full = hasher.sign_components(["a", "b", "c"])
        state = hasher.extend(hasher.EMPTY, "a")
        state = hasher.extend(state, "b")
        state = hasher.extend(state, "c")
        assert hasher.finish(state) == full

    @given(prefix=st.lists(NAMES, max_size=5),
           suffix=st.lists(NAMES, max_size=5))
    def test_resume_from_any_prefix(self, prefix, suffix):
        hasher = PathHasher(7)
        whole = hasher.sign_components(prefix + suffix)
        state = hasher.extend_components(hasher.EMPTY, prefix)
        state = hasher.extend_components(state, suffix)
        assert hasher.finish(state) == whole

    def test_empty_path_state(self, hasher):
        assert hasher.EMPTY == SigState(0, 0, 0)

    def test_length_tracks_separators(self, hasher):
        state = hasher.extend(hasher.EMPTY, "ab")
        assert state.length == 2
        state = hasher.extend(state, "cd")
        assert state.length == 5  # "ab/cd"


class TestResumeFromStoredPrefix:
    """Satellite property: any stored prefix SigState resumes exactly.

    The DLHT stores per-dentry SigStates and the fastpath resumes hashing
    from whichever prefix it hit (§3.2), so this equality — for both
    signature schemes, including surrogateescape names and names at or
    past NAME_MAX — is load-bearing, not cosmetic.
    """

    @pytest.mark.parametrize("scheme", ["universal", "prf"])
    @given(components=st.lists(ANY_NAME, max_size=6))
    def test_every_prefix_state_resumes_to_full_hash(self, scheme,
                                                     components):
        hasher = make_hasher(scheme, boot_seed=1234)
        full = hasher.sign_components(components)
        states = [hasher.EMPTY]
        for name in components:
            states.append(hasher.extend(states[-1], name))
        for i, state in enumerate(states):
            resumed = hasher.extend_components(state, components[i:])
            assert hasher.finish(resumed) == full

    @pytest.mark.parametrize("scheme", ["universal", "prf"])
    def test_surrogateescape_and_name_max_adjacent(self, scheme):
        hasher = make_hasher(scheme, boot_seed=99)
        components = ["\udcff\udc80bad", "x" * 254, "ordinary",
                      "y" * 255, "é" * 130, "f"]
        full = hasher.sign_components(components)
        state = hasher.EMPTY
        for i, name in enumerate(components):
            resumed = hasher.extend_components(state, components[i:])
            assert hasher.finish(resumed) == full
            state = hasher.extend(state, name)
        assert hasher.finish(state) == full


class TestDiscrimination:
    def test_different_paths_differ(self, hasher):
        a = hasher.sign_components(["x", "y"])
        b = hasher.sign_components(["x", "z"])
        assert a != b

    def test_separator_ambiguity_resolved(self, hasher):
        # "ab"+"c" must not collide with "a"+"bc": the separator is hashed.
        a = hasher.sign_components(["ab", "c"])
        b = hasher.sign_components(["a", "bc"])
        assert a != b

    def test_nesting_differs_from_flat(self, hasher):
        a = hasher.sign_components(["abc"])
        b = hasher.sign_components(["a", "b", "c"])
        assert a != b

    @given(st.lists(NAMES, min_size=1, max_size=4),
           st.lists(NAMES, min_size=1, max_size=4))
    def test_no_easy_collisions(self, one, two):
        hasher = PathHasher(99)
        if one != two:
            assert hasher.sign_components(one) != \
                hasher.sign_components(two)

    def test_key_changes_across_boots(self):
        a = PathHasher(1).sign_components(["etc", "passwd"])
        b = PathHasher(2).sign_components(["etc", "passwd"])
        assert a != b

    def test_same_boot_deterministic(self):
        a = PathHasher(5).sign_components(["a", "b"])
        b = PathHasher(5).sign_components(["a", "b"])
        assert a == b


class TestWidths:
    def test_index_width(self, hasher):
        sig = hasher.sign_components(["whatever"])
        assert 0 <= sig.index < (1 << INDEX_BITS)

    def test_signature_width_default(self, hasher):
        sig = hasher.sign_components(["whatever"])
        assert 0 <= sig.bits < (1 << 240)

    def test_truncated_signatures_collide(self):
        hasher = PathHasher(3, signature_bits=2, index_bits=4)
        seen = set()
        collided = False
        for i in range(512):
            sig = hasher.sign_components([f"f{i}"])
            key = (sig.index, sig.bits)
            if key in seen:
                collided = True
            seen.add(key)
        assert collided, "2-bit signatures over 512 paths must collide"

    def test_unicode_paths(self, hasher):
        sig = hasher.sign_components(["caché", "файл", "ファイル"])
        assert sig.bits >= 0


class TestRiskModel:
    def test_paper_headline_number(self):
        queries = queries_for_risk(2.0 ** -128, 2.0 ** 35, 240)
        assert abs(math.log2(queries) - 77) < 1.5

    def test_probability_monotone_in_queries(self):
        p1 = collision_probability(1e6, 1e6, 64)
        p2 = collision_probability(1e9, 1e6, 64)
        assert p2 > p1

    def test_probability_bounds(self):
        assert 0.0 <= collision_probability(1e9, 1e9, 64) <= 1.0

    def test_small_space_saturates(self):
        assert collision_probability(1e6, 1e6, 16) == pytest.approx(1.0)
