"""Unit and property tests for path signatures (§3.3)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.signatures import (INDEX_BITS, PathHasher, SigState,
                                   collision_probability, queries_for_risk)

NAMES = st.text(
    alphabet=st.characters(codec="utf-8", exclude_characters="/\x00"),
    min_size=1, max_size=24)


@pytest.fixture
def hasher():
    return PathHasher(boot_seed=42)


class TestResumability:
    def test_extend_matches_full_hash(self, hasher):
        full = hasher.sign_components(["a", "b", "c"])
        state = hasher.extend(hasher.EMPTY, "a")
        state = hasher.extend(state, "b")
        state = hasher.extend(state, "c")
        assert hasher.finish(state) == full

    @given(prefix=st.lists(NAMES, max_size=5),
           suffix=st.lists(NAMES, max_size=5))
    def test_resume_from_any_prefix(self, prefix, suffix):
        hasher = PathHasher(7)
        whole = hasher.sign_components(prefix + suffix)
        state = hasher.extend_components(hasher.EMPTY, prefix)
        state = hasher.extend_components(state, suffix)
        assert hasher.finish(state) == whole

    def test_empty_path_state(self, hasher):
        assert hasher.EMPTY == SigState(0, 0, 0)

    def test_length_tracks_separators(self, hasher):
        state = hasher.extend(hasher.EMPTY, "ab")
        assert state.length == 2
        state = hasher.extend(state, "cd")
        assert state.length == 5  # "ab/cd"


class TestDiscrimination:
    def test_different_paths_differ(self, hasher):
        a = hasher.sign_components(["x", "y"])
        b = hasher.sign_components(["x", "z"])
        assert a != b

    def test_separator_ambiguity_resolved(self, hasher):
        # "ab"+"c" must not collide with "a"+"bc": the separator is hashed.
        a = hasher.sign_components(["ab", "c"])
        b = hasher.sign_components(["a", "bc"])
        assert a != b

    def test_nesting_differs_from_flat(self, hasher):
        a = hasher.sign_components(["abc"])
        b = hasher.sign_components(["a", "b", "c"])
        assert a != b

    @given(st.lists(NAMES, min_size=1, max_size=4),
           st.lists(NAMES, min_size=1, max_size=4))
    def test_no_easy_collisions(self, one, two):
        hasher = PathHasher(99)
        if one != two:
            assert hasher.sign_components(one) != \
                hasher.sign_components(two)

    def test_key_changes_across_boots(self):
        a = PathHasher(1).sign_components(["etc", "passwd"])
        b = PathHasher(2).sign_components(["etc", "passwd"])
        assert a != b

    def test_same_boot_deterministic(self):
        a = PathHasher(5).sign_components(["a", "b"])
        b = PathHasher(5).sign_components(["a", "b"])
        assert a == b


class TestWidths:
    def test_index_width(self, hasher):
        sig = hasher.sign_components(["whatever"])
        assert 0 <= sig.index < (1 << INDEX_BITS)

    def test_signature_width_default(self, hasher):
        sig = hasher.sign_components(["whatever"])
        assert 0 <= sig.bits < (1 << 240)

    def test_truncated_signatures_collide(self):
        hasher = PathHasher(3, signature_bits=2, index_bits=4)
        seen = set()
        collided = False
        for i in range(512):
            sig = hasher.sign_components([f"f{i}"])
            key = (sig.index, sig.bits)
            if key in seen:
                collided = True
            seen.add(key)
        assert collided, "2-bit signatures over 512 paths must collide"

    def test_unicode_paths(self, hasher):
        sig = hasher.sign_components(["caché", "файл", "ファイル"])
        assert sig.bits >= 0


class TestRiskModel:
    def test_paper_headline_number(self):
        queries = queries_for_risk(2.0 ** -128, 2.0 ** 35, 240)
        assert abs(math.log2(queries) - 77) < 1.5

    def test_probability_monotone_in_queries(self):
        p1 = collision_probability(1e6, 1e6, 64)
        p2 = collision_probability(1e9, 1e6, 64)
        assert p2 > p1

    def test_probability_bounds(self):
        assert 0.0 <= collision_probability(1e9, 1e9, 64) <= 1.0

    def test_small_space_saturates(self):
        assert collision_probability(1e6, 1e6, 16) == pytest.approx(1.0)
