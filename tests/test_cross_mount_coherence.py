"""Regression tests: coherence shootdowns cross mount boundaries.

A permission change above a mountpoint must invalidate memoized prefix
checks for paths that continue *into* the mounted file system — the
dentry trees are per-superblock, so the shootdown walk has to follow the
mount table downward (found as a real bug during development).
"""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_RDWR, errors
from repro.fs.tmpfs import TmpFs


def _setup(kernel):
    sys = kernel.sys
    root = kernel.spawn_task(uid=0, gid=0)
    sys.mkdir(root, "/m")
    sys.mount_fs(root, TmpFs(kernel.costs), "/m")
    fd = sys.open(root, "/m/f", O_CREAT | O_RDWR)
    sys.close(root, fd)
    sys.chmod(root, "/m", 0o755)
    return root


class TestShootdownCrossesMounts:
    def test_chmod_above_mount_revokes_inside(self, kernel):
        root = _setup(kernel)
        sys = kernel.sys
        user = kernel.spawn_task(uid=1000, gid=1000)
        assert sys.stat(user, "/m/f").filetype == "reg"
        sys.chmod(root, "/", 0o700)
        # Every subsequent lookup must fail — including ones after the
        # fastpath structures have been lazily repopulated.
        for _ in range(3):
            with pytest.raises(errors.EACCES):
                sys.stat(user, "/m/f")
        sys.chmod(root, "/", 0o755)
        assert sys.stat(user, "/m/f").filetype == "reg"

    def test_chmod_above_nested_mounts(self, kernel):
        root = _setup(kernel)
        sys = kernel.sys
        sys.mkdir(root, "/m/inner")
        sys.mount_fs(root, TmpFs(kernel.costs), "/m/inner")
        fd = sys.open(root, "/m/inner/deep", O_CREAT | O_RDWR)
        sys.close(root, fd)
        sys.chmod(root, "/m/inner", 0o755)
        user = kernel.spawn_task(uid=1000, gid=1000)
        assert sys.stat(user, "/m/inner/deep").filetype == "reg"
        sys.chmod(root, "/", 0o700)
        for _ in range(3):
            with pytest.raises(errors.EACCES):
                sys.stat(user, "/m/inner/deep")

    def test_rename_above_mountpoint_parent(self, kernel):
        sys = kernel.sys
        root = kernel.spawn_task(uid=0, gid=0)
        sys.mkdir(root, "/outer")
        sys.mkdir(root, "/outer/mp")
        sys.mount_fs(root, TmpFs(kernel.costs), "/outer/mp")
        fd = sys.open(root, "/outer/mp/f", O_CREAT | O_RDWR)
        sys.close(root, fd)
        sys.stat(root, "/outer/mp/f")
        sys.rename(root, "/outer", "/moved")
        with pytest.raises(errors.ENOENT):
            sys.stat(root, "/outer/mp/f")
        assert sys.stat(root, "/moved/mp/f").filetype == "reg"

    def test_revocation_seen_in_cloned_namespace(self, kernel):
        root = _setup(kernel)
        sys = kernel.sys
        isolated = kernel.spawn_task(uid=0, gid=0)
        sys.unshare_mountns(isolated)
        kernel.change_identity(isolated, uid=1000, gid=1000)
        assert sys.stat(isolated, "/m/f").filetype == "reg"
        sys.chmod(root, "/", 0o700)
        for _ in range(3):
            with pytest.raises(errors.EACCES):
                sys.stat(isolated, "/m/f")

    def test_umount_unregisters(self, kernel):
        root = _setup(kernel)
        sys = kernel.sys
        sys.umount(root, "/m")
        # Re-chmodding / after umount must not touch the detached
        # tmpfs dentries (no crash, no stale registry entries).
        before = kernel.stats.get("inval_dentry")
        sys.chmod(root, "/", 0o700)
        sys.chmod(root, "/", 0o755)
        assert kernel.stats.get("inval_dentry") >= before  # sane & alive
