"""Multi-operation deterministic concurrency tests (§3.2 at scale).

Each test runs several syscalls "concurrently" under many seeded
schedules; after every schedule, the fastpath must agree with a
ground-truth walk on every probe path, and the cache invariants must
hold.  This explores far more histories than single-injection races:
several lookups populate the DLHT/PCC while mutations invalidate
beneath them.
"""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_RDWR, make_kernel
from repro.testing.dual import _check_kernel_invariants
from repro.testing.races import assert_fastpath_consistent
from repro.testing.scheduler import ConcurrentRunner

SEEDS = range(12)


def _mkfile(kernel, task, path, content=b""):
    fd = kernel.sys.open(task, path, O_CREAT | O_RDWR)
    if content:
        kernel.sys.write(task, fd, content)
    kernel.sys.close(task, fd)


def _stat(kernel, task, path):
    def op():
        return kernel.sys.stat(task, path)
    return op


class TestLookupsVsRename:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_two_lookups_one_dir_rename(self, seed):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/a")
        sys.mkdir(task, "/a/b")
        _mkfile(kernel, task, "/a/b/f", b"data")
        kernel.drop_caches()
        runner = ConcurrentRunner(kernel, seed)
        outcomes = runner.run([
            _stat(kernel, task, "/a/b/f"),
            _stat(kernel, task, "/a/b"),
            lambda: sys.rename(task, "/a", "/z"),
        ])
        assert all(kind in ("ok", "err") for kind, _ in outcomes)
        assert_fastpath_consistent(kernel, task,
                                   ["/a/b/f", "/z/b/f", "/a", "/z"])
        _check_kernel_invariants(kernel)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_rename_chain_during_lookups(self, seed):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/d")
        _mkfile(kernel, task, "/d/one", b"1")
        kernel.drop_caches()

        def shuffle():
            sys.rename(task, "/d/one", "/d/two")
            sys.rename(task, "/d/two", "/d/three")

        runner = ConcurrentRunner(kernel, seed)
        runner.run([
            _stat(kernel, task, "/d/one"),
            _stat(kernel, task, "/d/two"),
            _stat(kernel, task, "/d/three"),
            shuffle,
        ])
        assert_fastpath_consistent(kernel, task,
                                   ["/d/one", "/d/two", "/d/three"])
        _check_kernel_invariants(kernel)


class TestLookupsVsPermissions:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_user_lookups_during_chmod(self, seed):
        kernel = make_kernel("optimized")
        root = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(root, "/pub", 0o755)
        _mkfile(kernel, root, "/pub/f", b"x")
        _mkfile(kernel, root, "/pub/g", b"y")
        users = [kernel.spawn_task(uid=1000 + i, gid=1000)
                 for i in range(2)]
        kernel.drop_caches()
        runner = ConcurrentRunner(kernel, seed)
        runner.run([
            _stat(kernel, users[0], "/pub/f"),
            _stat(kernel, users[1], "/pub/g"),
            lambda: sys.chmod(root, "/pub", 0o700),
        ])
        for user in users:
            assert_fastpath_consistent(kernel, user, ["/pub/f", "/pub/g"])
        _check_kernel_invariants(kernel)


class TestLookupsVsExistence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_negative_lookups_during_creation(self, seed):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/d")
        kernel.drop_caches()
        runner = ConcurrentRunner(kernel, seed)
        runner.run([
            _stat(kernel, task, "/d/new"),
            _stat(kernel, task, "/d/new"),
            lambda: _mkfile(kernel, task, "/d/new", b"!"),
        ])
        assert_fastpath_consistent(kernel, task, ["/d/new"])
        assert kernel.sys.stat(task, "/d/new").size == 1
        _check_kernel_invariants(kernel)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_mixed_storm(self, seed):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/s")
        _mkfile(kernel, task, "/s/a", b"a")
        _mkfile(kernel, task, "/s/b", b"b")
        sys.symlink(task, "/s/a", "/s/ln")
        kernel.drop_caches()
        runner = ConcurrentRunner(kernel, seed)
        runner.run([
            _stat(kernel, task, "/s/ln"),
            _stat(kernel, task, "/s/a"),
            _stat(kernel, task, "/s/b"),
            lambda: sys.unlink(task, "/s/a"),
            lambda: sys.rename(task, "/s/b", "/s/c"),
            lambda: _mkfile(kernel, task, "/s/d"),
        ])
        assert_fastpath_consistent(
            kernel, task, ["/s/ln", "/s/a", "/s/b", "/s/c", "/s/d"])
        _check_kernel_invariants(kernel)


class TestSchedulerMechanics:
    def test_determinism(self):
        def history(seed):
            kernel = make_kernel("optimized")
            task = kernel.spawn_task(uid=0, gid=0)
            _mkfile(kernel, task, "/f", b"x")
            kernel.drop_caches()
            runner = ConcurrentRunner(kernel, seed)
            outcomes = runner.run([
                _stat(kernel, task, "/f"),
                lambda: kernel.sys.unlink(task, "/f"),
            ])
            return [(k, getattr(v, "ino", v)) for k, v in outcomes], \
                kernel.now_ns

        assert history(5) == history(5)

    def test_different_seeds_reach_different_histories(self):
        results = set()
        for seed in range(10):
            kernel = make_kernel("optimized")
            task = kernel.spawn_task(uid=0, gid=0)
            _mkfile(kernel, task, "/f", b"x")
            kernel.drop_caches()
            runner = ConcurrentRunner(kernel, seed)
            outcomes = runner.run([
                _stat(kernel, task, "/f"),
                lambda: kernel.sys.unlink(task, "/f"),
            ])
            results.add(outcomes[0][0])
        # Across seeds the stat must sometimes win and sometimes lose.
        assert results == {"ok", "err"}

    def test_crash_propagates(self):
        kernel = make_kernel("optimized")
        runner = ConcurrentRunner(kernel, 1)

        def boom():
            raise ValueError("injected")

        with pytest.raises(ValueError):
            runner.run([boom])

    def test_hooks_restored_after_run(self):
        kernel = make_kernel("optimized")
        original = kernel.slow_walk.hooks
        runner = ConcurrentRunner(kernel, 1)
        runner.run([lambda: None])
        assert kernel.slow_walk.hooks is original
