"""Timestamp (mtime) and statfs tests."""

from __future__ import annotations

import pytest

from repro import O_APPEND, O_CREAT, O_RDWR, O_WRONLY, errors


@pytest.fixture
def task(kernel):
    return kernel.spawn_task(uid=0, gid=0)


def _mkfile(kernel, task, path, content=b""):
    fd = kernel.sys.open(task, path, O_CREAT | O_RDWR)
    if content:
        kernel.sys.write(task, fd, content)
    kernel.sys.close(task, fd)


class TestMtime:
    def test_creation_stamps_mtime(self, kernel, task):
        _mkfile(kernel, task, "/f")
        assert kernel.sys.stat(task, "/f").mtime_ns > 0

    def test_write_advances_mtime(self, kernel, task):
        _mkfile(kernel, task, "/f")
        before = kernel.sys.stat(task, "/f").mtime_ns
        fd = kernel.sys.open(task, "/f", O_WRONLY | O_APPEND)
        kernel.sys.write(task, fd, b"more")
        kernel.sys.close(task, fd)
        assert kernel.sys.stat(task, "/f").mtime_ns > before

    def test_read_does_not_advance_mtime(self, kernel, task):
        _mkfile(kernel, task, "/f", b"data")
        before = kernel.sys.stat(task, "/f").mtime_ns
        fd = kernel.sys.open(task, "/f")
        kernel.sys.read(task, fd, 4)
        kernel.sys.close(task, fd)
        assert kernel.sys.stat(task, "/f").mtime_ns == before

    def test_dir_mtime_on_entry_changes(self, kernel, task):
        kernel.sys.mkdir(task, "/d")
        t0 = kernel.sys.stat(task, "/d").mtime_ns
        _mkfile(kernel, task, "/d/a")
        t1 = kernel.sys.stat(task, "/d").mtime_ns
        assert t1 > t0
        kernel.sys.unlink(task, "/d/a")
        t2 = kernel.sys.stat(task, "/d").mtime_ns
        assert t2 > t1

    def test_dir_mtime_on_rename(self, kernel, task):
        kernel.sys.mkdir(task, "/src")
        kernel.sys.mkdir(task, "/dst")
        _mkfile(kernel, task, "/src/f")
        src_t = kernel.sys.stat(task, "/src").mtime_ns
        dst_t = kernel.sys.stat(task, "/dst").mtime_ns
        kernel.sys.rename(task, "/src/f", "/dst/f")
        assert kernel.sys.stat(task, "/src").mtime_ns > src_t
        assert kernel.sys.stat(task, "/dst").mtime_ns > dst_t

    def test_truncate_advances_mtime(self, kernel, task):
        _mkfile(kernel, task, "/f", b"0123456789")
        before = kernel.sys.stat(task, "/f").mtime_ns
        kernel.sys.truncate(task, "/f", 2)
        assert kernel.sys.stat(task, "/f").mtime_ns > before

    def test_chmod_preserves_mtime(self, kernel, task):
        _mkfile(kernel, task, "/f")
        before = kernel.sys.stat(task, "/f").mtime_ns
        kernel.sys.chmod(task, "/f", 0o600)
        assert kernel.sys.stat(task, "/f").mtime_ns == before

    def test_mtime_visible_through_warm_cache(self, optimized):
        """A fastpath-served stat must report the current mtime."""
        task = optimized.spawn_task(uid=0, gid=0)
        _mkfile(optimized, task, "/f", b"v1")
        optimized.sys.stat(task, "/f")
        fd = optimized.sys.open(task, "/f", O_WRONLY | O_APPEND)
        optimized.sys.write(task, fd, b"v2")
        optimized.sys.close(task, fd)
        optimized.stats.reset()
        st = optimized.sys.stat(task, "/f")
        assert optimized.stats.get("fastpath_hit") == 1
        assert st.size == 4


class TestUtimes:
    def test_set_explicit_mtime(self, kernel, task):
        _mkfile(kernel, task, "/f")
        kernel.sys.utimes(task, "/f", mtime_ns=123_456)
        assert kernel.sys.stat(task, "/f").mtime_ns == 123_456

    def test_requires_owner(self, kernel, task):
        _mkfile(kernel, task, "/f")
        user = kernel.spawn_task(uid=1000, gid=1000)
        with pytest.raises(errors.EPERM):
            kernel.sys.utimes(user, "/f", mtime_ns=1)

    def test_maildir_style_newer_check(self, kernel, task):
        """The rsync/make pattern: compare mtimes to decide staleness."""
        _mkfile(kernel, task, "/src.c", b"code")
        _mkfile(kernel, task, "/src.o", b"obj")
        src = kernel.sys.stat(task, "/src.c").mtime_ns
        obj = kernel.sys.stat(task, "/src.o").mtime_ns
        assert obj > src  # built after the source: up to date
        fd = kernel.sys.open(task, "/src.c", O_WRONLY | O_APPEND)
        kernel.sys.write(task, fd, b"edit")
        kernel.sys.close(task, fd)
        assert kernel.sys.stat(task, "/src.c").mtime_ns > obj  # rebuild


class TestStatfs:
    def test_simext_usage(self, kernel, task):
        usage = kernel.sys.statfs(task, "/")
        assert usage.fstype == "simext"
        used_before = usage.used_blocks
        _mkfile(kernel, task, "/big")
        fd = kernel.sys.open(task, "/big", O_WRONLY)
        kernel.sys.write(task, fd, b"x" * 20_000)  # 5 data blocks
        kernel.sys.close(task, fd)
        after = kernel.sys.statfs(task, "/")
        assert after.used_blocks > used_before
        assert after.inode_count >= 2

    def test_statfs_follows_mounts(self, kernel, task):
        from repro.fs.tmpfs import TmpFs
        kernel.sys.mkdir(task, "/mnt")
        kernel.sys.mount_fs(task, TmpFs(kernel.costs), "/mnt")
        assert kernel.sys.statfs(task, "/mnt").fstype == "tmpfs"
        assert kernel.sys.statfs(task, "/").fstype == "simext"

    def test_dual_equivalence(self, dual):
        root = dual.spawn_task(uid=0, gid=0)
        fd = dual.open(root, "/f", O_CREAT | O_RDWR)
        dual.write(root, fd, b"y" * 9000)
        dual.close(root, fd)
        usage = dual.statfs(root, "/")
        assert usage.used_blocks > 0
