"""Path-walk edge cases: loops, depth limits, odd symlink shapes."""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_RDWR, errors
from repro.vfs import path as vfspath


@pytest.fixture
def task(kernel):
    return kernel.spawn_task(uid=0, gid=0)


def _mkfile(kernel, task, path, content=b""):
    fd = kernel.sys.open(task, path, O_CREAT | O_RDWR)
    if content:
        kernel.sys.write(task, fd, content)
    kernel.sys.close(task, fd)


class TestErrnoHierarchy:
    def test_all_errors_carry_errno(self):
        import errno as std_errno
        from repro.errors import ERRNO_CLASSES, FsError
        for number, cls in ERRNO_CLASSES.items():
            exc = cls("/some/path")
            assert isinstance(exc, FsError)
            assert exc.errno == number
            assert std_errno.errorcode[number] in str(exc) or True

    def test_path_attribute(self):
        exc = errors.ENOENT("/a/b")
        assert exc.path == "/a/b"
        assert "/a/b" in str(exc)


class TestSymlinkLimits:
    def test_chain_at_limit_resolves(self, kernel, task):
        _mkfile(kernel, task, "/target", b"x")
        prev = "/target"
        for i in range(39):
            link = f"/l{i}"
            kernel.sys.symlink(task, prev, link)
            prev = link
        assert kernel.sys.stat(task, prev).size == 1

    def test_chain_past_limit_eloop(self, kernel, task):
        _mkfile(kernel, task, "/target")
        prev = "/target"
        for i in range(41):
            link = f"/l{i}"
            kernel.sys.symlink(task, prev, link)
            prev = link
        with pytest.raises(errors.ELOOP):
            kernel.sys.stat(task, prev)

    def test_self_loop(self, kernel, task):
        kernel.sys.symlink(task, "/me", "/me")
        with pytest.raises(errors.ELOOP):
            kernel.sys.stat(task, "/me")
        # repeated (optimized: possibly cached) — same answer
        with pytest.raises(errors.ELOOP):
            kernel.sys.stat(task, "/me")

    def test_loop_through_directories(self, kernel, task):
        kernel.sys.mkdir(task, "/a")
        kernel.sys.mkdir(task, "/b")
        kernel.sys.symlink(task, "/b/down", "/a/down")
        kernel.sys.symlink(task, "/a/down", "/b/down")
        with pytest.raises(errors.ELOOP):
            kernel.sys.stat(task, "/a/down/x")

    def test_symlink_to_root(self, kernel, task):
        kernel.sys.mkdir(task, "/etc")
        _mkfile(kernel, task, "/etc/conf", b"cc")
        kernel.sys.symlink(task, "/", "/rootlink")
        assert kernel.sys.stat(task, "/rootlink/etc/conf").size == 2

    def test_symlink_with_embedded_dotdot(self, kernel, task):
        kernel.sys.mkdir(task, "/a")
        kernel.sys.mkdir(task, "/a/b")
        _mkfile(kernel, task, "/a/sibling", b"abc")
        kernel.sys.symlink(task, "../sibling", "/a/b/up")
        assert kernel.sys.stat(task, "/a/b/up").size == 3
        assert kernel.sys.stat(task, "/a/b/up").size == 3

    def test_symlink_into_symlinked_dir(self, kernel, task):
        kernel.sys.mkdir(task, "/real")
        _mkfile(kernel, task, "/real/f", b"deep")
        kernel.sys.symlink(task, "/real", "/d1")
        kernel.sys.symlink(task, "/d1/f", "/d2")
        assert kernel.sys.stat(task, "/d2").size == 4
        assert kernel.sys.stat(task, "/d2").size == 4

    def test_open_creat_through_dangling_symlink(self, kernel, task):
        """POSIX: O_CREAT through a dangling link creates the target."""
        kernel.sys.mkdir(task, "/data")
        kernel.sys.symlink(task, "/data/real", "/alias")
        fd = kernel.sys.open(task, "/alias", O_CREAT | O_RDWR)
        kernel.sys.write(task, fd, b"created")
        kernel.sys.close(task, fd)
        assert kernel.sys.stat(task, "/data/real").size == 7

    def test_mkdir_over_symlink_eexist(self, kernel, task):
        kernel.sys.mkdir(task, "/real")
        kernel.sys.symlink(task, "/real", "/ln")
        with pytest.raises(errors.EEXIST):
            kernel.sys.mkdir(task, "/ln")

    def test_rename_moves_symlink_itself(self, kernel, task):
        _mkfile(kernel, task, "/t")
        kernel.sys.symlink(task, "/t", "/ln")
        kernel.sys.rename(task, "/ln", "/ln2")
        assert kernel.sys.lstat(task, "/ln2").filetype == "lnk"
        assert kernel.sys.readlink(task, "/ln2") == "/t"


class TestPathLimits:
    def test_path_max_rejected(self, kernel, task):
        long_path = "/" + "a/" * (vfspath.PATH_MAX // 2)
        with pytest.raises(errors.ENAMETOOLONG):
            kernel.sys.stat(task, long_path)

    def test_name_max_rejected(self, kernel, task):
        with pytest.raises(errors.ENAMETOOLONG):
            kernel.sys.stat(task, "/" + "n" * 300)

    def test_deeply_nested_path_ok(self, kernel, task):
        path = ""
        for i in range(30):
            path = f"{path}/p{i}"
            kernel.sys.mkdir(task, path)
        assert kernel.sys.stat(task, path).filetype == "dir"
        assert kernel.sys.stat(task, path).filetype == "dir"


class TestDotDotEdges:
    def test_dotdot_from_root_stays(self, kernel, task):
        assert kernel.sys.stat(task, "/..").filetype == "dir"
        assert kernel.sys.stat(task, "/../..").filetype == "dir"

    def test_trailing_dotdot(self, kernel, task):
        kernel.sys.mkdir(task, "/a")
        kernel.sys.mkdir(task, "/a/b")
        st = kernel.sys.stat(task, "/a/b/..")
        assert st.filetype == "dir"
        assert st.ino == kernel.sys.stat(task, "/a").ino

    def test_dotdot_under_file_enotdir(self, kernel, task):
        _mkfile(kernel, task, "/f")
        with pytest.raises(errors.ENOTDIR):
            kernel.sys.stat(task, "/f/../x")

    def test_mixed_dots(self, kernel, task):
        kernel.sys.mkdir(task, "/a")
        _mkfile(kernel, task, "/a/f", b"q")
        assert kernel.sys.stat(task, "/a/./../a/f").size == 1

    def test_dotdot_after_rename_sees_new_parent(self, kernel, task):
        kernel.sys.mkdir(task, "/p1")
        kernel.sys.mkdir(task, "/p2")
        kernel.sys.mkdir(task, "/p1/child")
        _mkfile(kernel, task, "/p1/marker", b"one")
        kernel.sys.stat(task, "/p1/child/../marker")
        kernel.sys.rename(task, "/p1/child", "/p2/child")
        _mkfile(kernel, task, "/p2/marker", b"two!")
        assert kernel.sys.stat(task, "/p2/child/../marker").size == 4
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/p1/child/../marker")


class TestRelativeEdges:
    def test_lookup_from_removed_cwd(self, kernel, task):
        kernel.sys.mkdir(task, "/gone")
        worker = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.chdir(worker, "/gone")
        kernel.sys.rmdir(task, "/gone")
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(worker, "anything")
        # getcwd-based dotdot still clamps sanely
        assert kernel.sys.stat(worker, "/").filetype == "dir"

    def test_single_dot(self, kernel, task):
        kernel.sys.mkdir(task, "/w")
        kernel.sys.chdir(task, "/w")
        st = kernel.sys.stat(task, ".")
        assert st.ino == kernel.sys.stat(task, "/w").ino

    def test_relative_after_chdir_chain(self, kernel, task):
        kernel.sys.mkdir(task, "/a")
        kernel.sys.mkdir(task, "/a/b")
        _mkfile(kernel, task, "/a/b/f", b"xyz")
        kernel.sys.chdir(task, "/a")
        kernel.sys.chdir(task, "b")
        assert kernel.sys.stat(task, "f").size == 3
        assert kernel.sys.getcwd(task) == "/a/b"
