"""Unit tests for credentials, DAC permissions, and the LSM framework."""

from __future__ import annotations

import pytest

from repro import errors, make_kernel
from repro.fs.tmpfs import TmpFs
from repro.sim.costs import CostModel, UNIT
from repro.vfs.cred import Cred, commit_creds, prepare_creds
from repro.vfs.inode import Inode
from repro.vfs.lsm import PathPrefixLsm, SELinuxLikeLsm
from repro.vfs.permissions import (MAY_EXEC, MAY_READ, MAY_WRITE,
                                   dac_permission, owner_or_root,
                                   sticky_delete_allowed)


def _inode(mode, uid=0, gid=0):
    costs = CostModel(dict(UNIT))
    fs = TmpFs(costs)
    if mode & 0o170000 == 0o040000:
        info = fs.mkdir(fs.root_ino, "x", mode, uid, gid)
    else:
        info = fs.create(fs.root_ino, "x", mode, uid, gid)
    return Inode(fs, info)


class TestDacPermission:
    def test_owner_bits(self):
        inode = _inode(0o600, uid=5)
        assert dac_permission(Cred(5, 5), inode, MAY_READ)
        assert not dac_permission(Cred(6, 5), inode, MAY_READ)

    def test_group_bits(self):
        inode = _inode(0o640, uid=5, gid=7)
        assert dac_permission(Cred(9, 7), inode, MAY_READ)
        assert not dac_permission(Cred(9, 7), inode, MAY_WRITE)

    def test_supplementary_groups(self):
        inode = _inode(0o060, uid=5, gid=7)
        cred = Cred(9, 1, groups=frozenset({7}))
        assert dac_permission(cred, inode, MAY_READ | MAY_WRITE)

    def test_other_bits(self):
        inode = _inode(0o604, uid=5)
        assert dac_permission(Cred(9, 9), inode, MAY_READ)
        assert not dac_permission(Cred(9, 9), inode, MAY_WRITE)

    def test_owner_class_is_exclusive(self):
        # Owner with 0o044: owner class grants nothing even though
        # group/other would.
        inode = _inode(0o044, uid=5)
        assert not dac_permission(Cred(5, 5), inode, MAY_READ)

    def test_root_bypasses_rw(self):
        inode = _inode(0o000, uid=5)
        assert dac_permission(Cred(0, 0), inode, MAY_READ | MAY_WRITE)

    def test_root_search_on_directories(self):
        directory = _inode(0o040000 | 0o000, uid=5)
        assert dac_permission(Cred(0, 0), directory, MAY_EXEC)

    def test_root_exec_on_file_needs_x_bit(self):
        inode = _inode(0o644, uid=5)
        assert not dac_permission(Cred(0, 0), inode, MAY_EXEC)
        exe = _inode(0o755, uid=5)
        assert dac_permission(Cred(0, 0), exe, MAY_EXEC)

    def test_combined_mask(self):
        inode = _inode(0o500, uid=5)
        assert dac_permission(Cred(5, 5), inode, MAY_READ | MAY_EXEC)
        assert not dac_permission(Cred(5, 5), inode,
                                  MAY_READ | MAY_WRITE)


class TestOwnershipHelpers:
    def test_owner_or_root(self):
        inode = _inode(0o644, uid=5)
        assert owner_or_root(Cred(5, 1), inode)
        assert owner_or_root(Cred(0, 0), inode)
        assert not owner_or_root(Cred(6, 1), inode)

    def test_sticky_rules(self):
        sticky_dir = _inode(0o040000 | 0o1777, uid=0)
        victim = _inode(0o644, uid=5)
        assert sticky_delete_allowed(Cred(5, 5), sticky_dir, victim)
        assert sticky_delete_allowed(Cred(0, 0), sticky_dir, victim)
        assert not sticky_delete_allowed(Cred(6, 6), sticky_dir, victim)

    def test_non_sticky_allows_all(self):
        plain_dir = _inode(0o040000 | 0o777, uid=0)
        victim = _inode(0o644, uid=5)
        assert sticky_delete_allowed(Cred(6, 6), plain_dir, victim)


class TestCredCow:
    def test_commit_unchanged_reuses(self):
        old = Cred(1000, 1000)
        new = prepare_creds(old)
        assert commit_creds(old, new) is old

    def test_commit_changed_returns_new(self):
        old = Cred(1000, 1000)
        new = prepare_creds(old)
        new.uid = 0
        committed = commit_creds(old, new)
        assert committed is new and committed.uid == 0

    def test_pcc_survives_unchanged_commit(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=1000, gid=1000)
        kernel.sys.mkdir(kernel.spawn_task(0, 0), "/d")
        kernel.sys.stat(task, "/d")
        pcc_before = task.cred.pcc
        assert pcc_before is not None
        kernel.change_identity(task, uid=1000)  # no-op transition
        assert task.cred.pcc is pcc_before

    def test_pcc_reset_on_real_transition(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=1000, gid=1000)
        kernel.sys.stat(task, "/")
        kernel.change_identity(task, uid=2000)
        assert task.cred.pcc is None  # fresh cred, fresh (lazy) PCC

    def test_same_identity_comparison(self):
        assert Cred(1, 2, frozenset({3})).same_identity(
            Cred(1, 2, frozenset({3})))
        assert not Cred(1, 2).same_identity(Cred(1, 2, security="dom"))


class TestSELinuxLikeLsm:
    def _kernel_with_policy(self):
        lsm = SELinuxLikeLsm()
        lsm.allow("webapp", "file_t", "search")
        lsm.allow("webapp", "file_t", "read")
        kernel = make_kernel("optimized", lsm=lsm)
        return kernel, lsm

    def test_unconfined_allowed(self):
        kernel, _lsm = self._kernel_with_policy()
        task = kernel.spawn_task(uid=1000, gid=1000)  # no domain
        kernel.sys.stat(task, "/")

    def test_domain_denied_without_rule(self):
        kernel, _lsm = self._kernel_with_policy()
        root = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(root, "/data")
        kernel.sys.chmod(root, "/data", 0o777)
        confined = kernel.spawn_task(uid=1000, gid=1000,
                                     security="lockedapp")
        with pytest.raises(errors.EACCES):
            kernel.sys.stat(confined, "/data/x")

    def test_domain_allowed_with_rule(self):
        kernel, _lsm = self._kernel_with_policy()
        root = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(root, "/data", 0o755)
        fd = kernel.sys.open(root, "/data/f", 0o100 | 2)  # O_CREAT|O_RDWR
        kernel.sys.close(root, fd)
        kernel.sys.chmod(root, "/data/f", 0o644)
        confined = kernel.spawn_task(uid=1000, gid=1000,
                                     security="webapp")
        assert kernel.sys.stat(confined, "/data/f").filetype == "reg"

    def test_relabel_revokes_memoized_access(self):
        lsm = SELinuxLikeLsm()
        lsm.allow("webapp", "file_t", "search")
        lsm.allow("webapp", "file_t", "read")
        kernel = make_kernel("optimized", lsm=lsm)
        root = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(root, "/srv", 0o755)
        fd = kernel.sys.open(root, "/srv/f", 0o102)
        kernel.sys.close(root, fd)
        kernel.sys.chmod(root, "/srv/f", 0o644)
        confined = kernel.spawn_task(uid=1000, gid=1000,
                                     security="webapp")
        kernel.sys.stat(confined, "/srv/f")  # memoized in PCC
        kernel.sys.relabel(root, "/srv", "secret_t")
        with pytest.raises(errors.EACCES):
            kernel.sys.stat(confined, "/srv/f")

    def test_lsm_identical_on_both_kernels(self):
        from repro.testing import DualKernel
        from repro.core.kernel import BASELINE, OPTIMIZED

        def lsm_factory():
            lsm = SELinuxLikeLsm()
            lsm.allow("app", "file_t", "search")
            return lsm

        dual = DualKernel((BASELINE, OPTIMIZED), lsm_factory=lsm_factory)
        root = dual.spawn_task(uid=0, gid=0)
        confined = dual.spawn_task(uid=1000, gid=1000, security="app")
        dual.mkdir(root, "/a", 0o755)
        dual.mkdir(root, "/a/b", 0o755)
        # search allowed, read not: stat works, listdir denied
        dual.stat(confined, "/a/b")
        with pytest.raises(errors.EACCES):
            dual.listdir(confined, "/a")


class TestPathPrefixLsm:
    def test_denied_subtree(self):
        lsm = PathPrefixLsm()
        lsm.deny("sandbox", "private-zone")
        kernel = make_kernel("optimized", lsm=lsm)
        root = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(root, "/private", 0o755)
        fd = kernel.sys.open(root, "/private/f", 0o102)
        kernel.sys.close(root, fd)
        kernel.sys.relabel(root, "/private", "private-zone")
        confined = kernel.spawn_task(uid=1000, gid=1000,
                                     security="sandbox")
        with pytest.raises(errors.EACCES):
            kernel.sys.stat(confined, "/private/f")
        unconfined = kernel.spawn_task(uid=1000, gid=1000)
        kernel.sys.chmod(root, "/private/f", 0o644)
        assert kernel.sys.stat(unconfined, "/private/f").filetype == "reg"
