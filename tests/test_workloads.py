"""Tests for the workload generators and the app-trace runner."""

from __future__ import annotations

import random

import pytest

from repro import make_kernel
from repro.workloads import apps, lmbench, maildir, webserver
from repro.workloads.tree import (TreeSpec, build_fanout_tree,
                                  build_flat_dir, build_linux_like_tree,
                                  populate)


class TestTreeBuilders:
    def test_populate_counts(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        spec = TreeSpec(depth=2, dirs_per_level=3, files_per_dir=4)
        built = populate(kernel, task, "/t", spec)
        # 1 + 3 + 9 directories, 4 files each.
        assert len(built.directories) == 13
        assert len(built.files) == 52
        for path in built.files[:5]:
            assert kernel.sys.stat(task, path).filetype == "reg"

    def test_populate_deterministic(self):
        names = []
        for _ in range(2):
            kernel = make_kernel("baseline")
            task = kernel.spawn_task(uid=0, gid=0)
            built = populate(kernel, task, "/t",
                             TreeSpec(depth=1, dirs_per_level=2,
                                      files_per_dir=3, seed=9))
            names.append(tuple(built.files))
        assert names[0] == names[1]

    def test_linux_like_scales(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        built = build_linux_like_tree(kernel, task, "/usr/src/linux",
                                      scale="small")
        assert len(built.files) > 200
        assert kernel.sys.stat(task, "/usr/src").filetype == "dir"

    def test_flat_dir(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        names = build_flat_dir(kernel, task, "/flat", 25)
        assert len(names) == 25
        assert len(kernel.sys.listdir(task, "/flat")) == 25

    def test_fanout_tree_counts(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        _base, total = build_fanout_tree(kernel, task, "/fan", depth=2,
                                         fanout=4)
        # 4 dirs + 16 files
        assert total == 20

    def test_fanout_depth_zero_is_file(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        base, total = build_fanout_tree(kernel, task, "/single", depth=0)
        assert total == 0
        assert kernel.sys.stat(task, base).filetype == "reg"


class TestLmbenchDrivers:
    def test_patterns_all_resolvable_or_negative(self, kernel):
        task = lmbench.prepare_lookup_tree(kernel)
        from repro import errors
        for name, path in lmbench.PATH_PATTERNS:
            try:
                kernel.sys.stat(task, path)
                resolved = True
            except errors.FsError:
                resolved = False
            assert resolved == (name in lmbench.POSITIVE_PATTERNS), name

    def test_measure_stat_deterministic(self, kernel):
        task = lmbench.prepare_lookup_tree(kernel)
        first = lmbench.measure_stat(kernel, task, "XXX/FFF")
        second = lmbench.measure_stat(kernel, task, "XXX/FFF")
        assert first == second

    def test_breakdown_phases_present(self, optimized):
        task = lmbench.prepare_lookup_tree(optimized)
        phases = lmbench.lookup_breakdown(optimized, task, "XXX/FFF")
        assert {"init", "hash", "htlookup", "final"} <= set(phases)

    def test_mutation_latency_positive(self, kernel):
        chmod_ns, rename_ns, descendants = \
            lmbench.measure_mutation_latency(kernel, depth=1)
        assert chmod_ns > 0 and rename_ns > 0
        assert descendants == 10


class TestAppRunner:
    def test_metered_syscalls_wrap(self, kernel):
        metered = apps.MeteredSyscalls(kernel)
        task = kernel.spawn_task(uid=0, gid=0)
        metered.mkdir(task, "/x")
        metered.stat(task, "/x")
        assert metered.counts == {"mkdir": 1, "stat": 1}
        assert metered.path_syscall_ns > 0
        assert metered.path_count == 2

    def test_metered_errors_still_counted(self, kernel):
        from repro import errors
        metered = apps.MeteredSyscalls(kernel)
        task = kernel.spawn_task(uid=0, gid=0)
        with pytest.raises(errors.ENOENT):
            metered.stat(task, "/missing")
        assert metered.counts["stat"] == 1

    @pytest.mark.parametrize("factory", apps.ALL_APPS)
    def test_every_app_runs_on_both_kernels(self, factory, kernel):
        app = factory()
        app.tree_scale = "small"
        result = apps.run_app(kernel, app, warm=True)
        assert result.total_ns > 0
        assert result.lookups > 0
        assert 0.0 <= result.path_fraction <= 1.0
        assert 0.0 <= result.component_hit_rate <= 1.0

    def test_cold_slower_than_warm(self):
        warm_kernel = make_kernel("baseline")
        warm = apps.run_app(warm_kernel, _small(apps.FindWorkload),
                            warm=True)
        cold_kernel = make_kernel("baseline")
        cold = apps.run_app(cold_kernel, _small(apps.FindWorkload),
                            warm=False)
        assert cold.total_ns > 3 * warm.total_ns
        assert cold.component_hit_rate < warm.component_hit_rate

    def test_app_results_deterministic(self):
        totals = []
        for _ in range(2):
            kernel = make_kernel("optimized")
            totals.append(apps.run_app(kernel, _small(apps.DuWorkload),
                                       warm=True).total_ns)
        assert totals[0] == totals[1]


def _small(factory):
    app = factory()
    app.tree_scale = "small"
    return app


class TestMaildir:
    def test_provision_layout(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        setup = maildir.provision(kernel, task, mailboxes=2,
                                  messages_per_box=5)
        assert len(setup.mailboxes) == 2
        for box in setup.mailboxes:
            names = {n for n, _i, _t
                     in kernel.sys.listdir(task, f"{box}/cur")}
            assert len(names) == 5

    def test_mark_renames_and_flips_flag(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        setup = maildir.provision(kernel, task, 1, 3)
        rng = random.Random(1)
        maildir.mark_operation(kernel, task, setup, rng)
        box = setup.mailboxes[0]
        flagged = [n for n in setup.messages[box] if n.endswith("S")]
        assert len(flagged) == 1
        assert kernel.sys.exists(task, f"{box}/cur/{flagged[0]}")

    def test_deliver_moves_new_to_cur(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        setup = maildir.provision(kernel, task, 1, 2)
        rng = random.Random(2)
        maildir.deliver_operation(kernel, task, setup, rng, seq=1)
        box = setup.mailboxes[0]
        assert len(kernel.sys.listdir(task, f"{box}/cur")) == 3
        assert len(kernel.sys.listdir(task, f"{box}/new")) == 0

    def test_throughput_positive(self, kernel):
        assert maildir.run_benchmark(kernel, 50, operations=10) > 0


class TestWebserver:
    def test_request_renders_all_rows(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        listing = webserver.provision(kernel, task, 12)
        assert webserver.handle_request(kernel, task, listing) == 12

    def test_throughput_decreases_with_size(self, kernel):
        small = webserver.run_benchmark(kernel, 10, requests=5)
        # fresh kernel to avoid cross-contamination
        big_kernel = make_kernel(kernel.config.name
                                 if kernel.config.name in
                                 ("baseline", "optimized") else "baseline")
        big = webserver.run_benchmark(big_kernel, 500, requests=5)
        assert small > big
