"""Unit tests for path parsing and lexical normalization."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import errors
from repro.vfs import path as vfspath


class TestSplit:
    def test_absolute(self):
        absolute, comps, must_dir = vfspath.split("/a/b/c")
        assert absolute and comps == ["a", "b", "c"] and not must_dir

    def test_relative(self):
        absolute, comps, _ = vfspath.split("a/b")
        assert not absolute and comps == ["a", "b"]

    def test_collapses_slashes(self):
        assert vfspath.split("//a///b")[1] == ["a", "b"]

    def test_drops_single_dots(self):
        assert vfspath.split("/a/./b/.")[1] == ["a", "b"]

    def test_keeps_dotdot(self):
        assert vfspath.split("/a/../b")[1] == ["a", "..", "b"]

    def test_trailing_slash_requires_dir(self):
        assert vfspath.split("/a/b/")[2] is True

    def test_trailing_dot_requires_dir(self):
        assert vfspath.split("/a/b/.")[2] is True

    def test_trailing_dotdot_requires_dir(self):
        assert vfspath.split("/a/b/..")[2] is True

    def test_root(self):
        absolute, comps, _ = vfspath.split("/")
        assert absolute and comps == []

    def test_empty_path_rejected(self):
        with pytest.raises(errors.EINVAL):
            vfspath.split("")

    def test_component_too_long(self):
        with pytest.raises(errors.ENAMETOOLONG):
            vfspath.split("/" + "x" * (vfspath.NAME_MAX + 1))

    def test_path_too_long(self):
        long_path = "/a" * (vfspath.PATH_MAX // 2 + 1)
        with pytest.raises(errors.ENAMETOOLONG):
            vfspath.split(long_path)

    def test_exact_name_max_ok(self):
        comps = vfspath.split("/" + "x" * vfspath.NAME_MAX)[1]
        assert len(comps[0]) == vfspath.NAME_MAX

    @pytest.mark.parametrize("bad", ["/a\x00b", "\x00", "/etc\x00",
                                     "a/b/\x00c"])
    def test_embedded_nul_rejected(self, bad):
        # POSIX paths are NUL-terminated byte strings: an embedded NUL
        # can never reach a real kernel, so the simulator rejects it
        # up front with EINVAL rather than silently truncating.
        with pytest.raises(errors.EINVAL):
            vfspath.split(bad)


class TestLexicalNormalize:
    def test_folds_dotdot(self):
        assert vfspath.lexical_normalize(["a", "b", "..", "c"]) == \
            ["a", "c"]

    def test_multiple_dotdots(self):
        comps = ["a", "b", "..", "..", "c"]
        assert vfspath.lexical_normalize(comps) == ["c"]

    def test_leading_dotdots_preserved(self):
        assert vfspath.lexical_normalize(["..", "a"]) == ["..", "a"]

    def test_excess_dotdots_preserved(self):
        assert vfspath.lexical_normalize(["a", "..", ".."]) == [".."]

    def test_no_dotdots_identity(self):
        assert vfspath.lexical_normalize(["x", "y"]) == ["x", "y"]

    @given(st.lists(st.sampled_from(["a", "b", ".."]), max_size=12))
    def test_result_never_has_interior_dotdot(self, comps):
        result = vfspath.lexical_normalize(comps)
        seen_normal = False
        for comp in result:
            if comp != "..":
                seen_normal = True
            else:
                assert not seen_normal, result


class TestJoin:
    def test_simple(self):
        assert vfspath.join("/a", "b") == "/a/b"

    def test_strips_extra_slashes(self):
        assert vfspath.join("/a/", "/b/") == "/a/b"

    def test_root_base(self):
        assert vfspath.join("/", "x") == "/x"

    def test_multiple_parts(self):
        assert vfspath.join("/a", "b", "c") == "/a/b/c"
