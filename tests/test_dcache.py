"""Unit tests for dentries, inodes, and the baseline dcache structures."""

from __future__ import annotations

import pytest

from repro.fs.tmpfs import TmpFs
from repro.sim.costs import CostModel, UNIT
from repro.sim.stats import Stats
from repro.vfs.dcache import Dcache
from repro.vfs.dentry import NEG_ENOENT, NEG_ENOTDIR


@pytest.fixture
def env():
    costs = CostModel(dict(UNIT))
    stats = Stats()
    fs = TmpFs(costs)
    dcache = Dcache(costs, stats, capacity=100)
    return costs, stats, fs, dcache


def _positive_child(dcache, fs, parent, name):
    info = fs.create(fs.root_ino, name, 0o644, 0, 0)
    inode = dcache.inode_table(fs).obtain(info)
    return dcache.d_alloc(parent, name, inode)


class TestRootDentry:
    def test_root_pinned_and_cached(self, env):
        _costs, _stats, fs, dcache = env
        root = dcache.root_dentry(fs)
        assert root.pin_count == 1
        assert root.parent is None
        assert dcache.root_dentry(fs) is root

    def test_root_path(self, env):
        _c, _s, fs, dcache = env
        assert dcache.root_dentry(fs).path_from_root() == "/"


class TestHashTable:
    def test_alloc_then_lookup(self, env):
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        child = _positive_child(dcache, fs, root, "a")
        assert dcache.d_lookup(root, "a") is child

    def test_lookup_miss(self, env):
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        assert dcache.d_lookup(root, "nope") is None

    def test_same_name_different_parent(self, env):
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        info = fs.mkdir(fs.root_ino, "d", 0o755, 0, 0)
        d = dcache.d_alloc(root, "d", dcache.inode_table(fs).obtain(info))
        inner_info = fs.create(info.ino, "x", 0o644, 0, 0)
        inner = dcache.d_alloc(d, "x",
                               dcache.inode_table(fs).obtain(inner_info))
        outer_info = fs.create(fs.root_ino, "x", 0o644, 0, 0)
        outer = dcache.d_alloc(root, "x",
                               dcache.inode_table(fs).obtain(outer_info))
        assert dcache.d_lookup(d, "x") is inner
        assert dcache.d_lookup(root, "x") is outer

    def test_double_alloc_rejected(self, env):
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        _positive_child(dcache, fs, root, "a")
        with pytest.raises(RuntimeError):
            dcache.d_alloc(root, "a", None)

    def test_negative_alloc(self, env):
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        neg = dcache.d_alloc(root, "ghost", None)
        assert neg.is_negative and neg.is_true_negative
        assert neg.neg_kind == NEG_ENOENT

    def test_charges_probe_costs(self, env):
        costs, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        before = costs.count("ht_probe")
        dcache.d_lookup(root, "a")
        assert costs.count("ht_probe") == before + 1


class TestNegativityTransitions:
    def test_make_negative(self, env):
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        child = _positive_child(dcache, fs, root, "a")
        dcache.make_negative(child)
        assert child.is_negative and child.inode is None

    def test_make_positive_reuses_dentry(self, env):
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        neg = dcache.d_alloc(root, "f", None)
        info = fs.create(fs.root_ino, "f", 0o644, 0, 0)
        dcache.make_positive(neg, dcache.inode_table(fs).obtain(info))
        assert not neg.is_negative
        assert dcache.d_lookup(root, "f") is neg

    def test_stub_alloc_and_kind(self, env):
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        stub = dcache.d_alloc_stub(root, "s", 42, "reg")
        assert stub.is_stub and not stub.is_true_negative
        assert stub.stub == (42, "reg")

    def test_enotdir_kind(self, env):
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        neg = dcache.d_alloc(root, "f", None)
        neg.neg_kind = NEG_ENOTDIR
        assert neg.is_negative and neg.neg_kind == NEG_ENOTDIR


class TestMove:
    def test_move_rehashes(self, env):
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        info = fs.mkdir(fs.root_ino, "d", 0o755, 0, 0)
        d = dcache.d_alloc(root, "d", dcache.inode_table(fs).obtain(info))
        child = _positive_child(dcache, fs, root, "f")
        dcache.d_move(child, d, "g")
        assert dcache.d_lookup(root, "f") is None
        assert dcache.d_lookup(d, "g") is child
        assert child.parent is d and child.name == "g"

    def test_move_over_existing_drops_victim(self, env):
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        a = _positive_child(dcache, fs, root, "a")
        b = _positive_child(dcache, fs, root, "b")
        dcache.d_move(a, root, "b")
        assert b.dead
        assert dcache.d_lookup(root, "b") is a

    def test_children_follow_moved_dir(self, env):
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        dinfo = fs.mkdir(fs.root_ino, "d", 0o755, 0, 0)
        d = dcache.d_alloc(root, "d", dcache.inode_table(fs).obtain(dinfo))
        finfo = fs.create(dinfo.ino, "f", 0o644, 0, 0)
        f = dcache.d_alloc(d, "f", dcache.inode_table(fs).obtain(finfo))
        dcache.d_move(d, root, "e")
        assert dcache.d_lookup(d, "f") is f
        assert f.path_from_root() == "/e/f"


class TestEviction:
    def test_lru_shrink_keeps_capacity(self, env):
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        for i in range(150):
            info = fs.create(fs.root_ino, f"f{i}", 0o644, 0, 0)
            dcache.d_alloc(root, f"f{i}",
                           dcache.inode_table(fs).obtain(info))
        assert len(dcache) <= 100

    def test_pinned_never_evicted(self, env):
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        pinned = _positive_child(dcache, fs, root, "keep")
        pinned.pin()
        for i in range(150):
            info = fs.create(fs.root_ino, f"f{i}", 0o644, 0, 0)
            dcache.d_alloc(root, f"f{i}",
                           dcache.inode_table(fs).obtain(info))
        assert not pinned.dead
        assert dcache.d_lookup(root, "keep") is pinned

    def test_parents_kept_while_children_cached(self, env):
        """The parent-in-cache invariant: evict bottom-up only."""
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        dinfo = fs.mkdir(fs.root_ino, "d", 0o755, 0, 0)
        d = dcache.d_alloc(root, "d", dcache.inode_table(fs).obtain(dinfo))
        finfo = fs.create(dinfo.ino, "f", 0o644, 0, 0)
        f = dcache.d_alloc(d, "f", dcache.inode_table(fs).obtain(finfo))
        f.pin()  # keep the leaf; the parent must then survive too
        for i in range(200):
            info = fs.create(fs.root_ino, f"x{i}", 0o644, 0, 0)
            dcache.d_alloc(root, f"x{i}",
                           dcache.inode_table(fs).obtain(info))
        assert not d.dead and not f.dead

    def test_eviction_breaks_completeness(self, env):
        _c, stats, fs, dcache = env
        root = dcache.root_dentry(fs)
        dinfo = fs.mkdir(fs.root_ino, "d", 0o755, 0, 0)
        d = dcache.d_alloc(root, "d", dcache.inode_table(fs).obtain(dinfo))
        d.dir_complete = True
        finfo = fs.create(dinfo.ino, "f", 0o644, 0, 0)
        f = dcache.d_alloc(d, "f", dcache.inode_table(fs).obtain(finfo))
        dcache.evict(f)
        assert d.dir_complete is False
        assert d.child_evictions == 1
        assert stats.get("dir_complete_broken") == 1

    def test_evicted_dentry_seq_bumped(self, env):
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        child = _positive_child(dcache, fs, root, "a")
        seq = child.seq
        dcache.evict(child)
        assert child.dead and child.seq == seq + 1

    def test_drop_all(self, env):
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        for i in range(20):
            info = fs.create(fs.root_ino, f"f{i}", 0o644, 0, 0)
            dcache.d_alloc(root, f"f{i}",
                           dcache.inode_table(fs).obtain(info))
        dcache.drop_all()
        assert len(root.children) == 0


class TestDentryTreeHelpers:
    def test_ancestors_and_descendants(self, env):
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        dinfo = fs.mkdir(fs.root_ino, "a", 0o755, 0, 0)
        a = dcache.d_alloc(root, "a", dcache.inode_table(fs).obtain(dinfo))
        binfo = fs.mkdir(dinfo.ino, "b", 0o755, 0, 0)
        b = dcache.d_alloc(a, "b", dcache.inode_table(fs).obtain(binfo))
        assert list(b.ancestors()) == [a, root]
        assert set(root.descendants()) == {a, b}
        assert a.is_ancestor_of(b)
        assert not b.is_ancestor_of(a)

    def test_path_from_root(self, env):
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        a = _positive_child(dcache, fs, root, "a")
        assert a.path_from_root() == "/a"

    def test_unbalanced_unpin_rejected(self, env):
        _c, _s, fs, dcache = env
        root = dcache.root_dentry(fs)
        child = _positive_child(dcache, fs, root, "a")
        with pytest.raises(RuntimeError):
            child.unpin()


class TestInodeTable:
    def test_identity_per_ino(self, env):
        _c, _s, fs, dcache = env
        table = dcache.inode_table(fs)
        info = fs.create(fs.root_ino, "f", 0o644, 0, 0)
        first = table.obtain(info)
        second = table.obtain(fs.lookup(fs.root_ino, "f"))
        assert first is second

    def test_obtain_refreshes_nlink(self, env):
        _c, _s, fs, dcache = env
        table = dcache.inode_table(fs)
        info = fs.create(fs.root_ino, "f", 0o644, 0, 0)
        inode = table.obtain(info)
        fs.link(fs.root_ino, "g", info.ino)
        table.obtain(fs.lookup(fs.root_ino, "g"))
        assert inode.nlink == 2

    def test_apply_bumps_seq(self, env):
        _c, _s, fs, dcache = env
        table = dcache.inode_table(fs)
        info = fs.create(fs.root_ino, "f", 0o644, 0, 0)
        inode = table.obtain(info)
        seq = inode.seq
        inode.apply(fs.setattr(info.ino, mode=0o600))
        assert inode.seq == seq + 1 and inode.perm_bits == 0o600
