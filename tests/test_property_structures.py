"""Property-based tests of core data structures against simple models."""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pcc import PrefixCheckCache
from repro.core.signatures import PathHasher
from repro.fs.disk import BlockDevice
from repro.fs.pagecache import PageCache
from repro.sim.costs import CostModel, UNIT
from repro.sim.stats import Stats
from repro.vfs.dcache import Dcache
from repro.vfs.dentry import Dentry
from repro.fs.tmpfs import TmpFs


class TestPageCacheModel:
    """The page cache must behave as a capacity-bounded LRU."""

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=40), min_size=1,
                    max_size=120))
    def test_matches_reference_lru(self, accesses):
        costs = CostModel(dict(UNIT))
        capacity = 8
        cache = PageCache(costs, BlockDevice(costs),
                          capacity_blocks=capacity, readahead=1)
        model: "OrderedDict[int, None]" = OrderedDict()
        for block in accesses:
            expected_hit = block in model
            actual_hit = cache.access(block)
            assert actual_hit == expected_hit
            model[block] = None
            model.move_to_end(block)
            while len(model) > capacity:
                model.popitem(last=False)
        assert set(model) == {b for b in model if cache.contains(b)}

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                    max_size=60),
           st.integers(min_value=2, max_value=16))
    def test_readahead_never_overflows_capacity(self, accesses, readahead):
        costs = CostModel(dict(UNIT))
        cache = PageCache(costs, BlockDevice(costs), capacity_blocks=10,
                          readahead=readahead)
        for block in accesses:
            cache.access(block)
            assert len(cache) <= 10


class TestPccModel:
    """The PCC must behave as a bounded LRU keyed by dentry identity."""

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["insert", "probe", "bump"]),
                              st.integers(min_value=0, max_value=9)),
                    min_size=1, max_size=80))
    def test_matches_reference(self, ops):
        costs = CostModel(dict(UNIT))
        pcc = PrefixCheckCache(costs, Stats(), capacity=4)
        dentries = [Dentry(f"d{i}", None, None) for i in range(10)]
        model: "OrderedDict[int, int]" = OrderedDict()
        for op, idx in ops:
            dentry = dentries[idx]
            if op == "insert":
                pcc.insert(dentry)
                model[idx] = dentry.seq
                model.move_to_end(idx)
                while len(model) > 4:
                    model.popitem(last=False)
            elif op == "bump":
                dentry.seq += 1
            else:
                expected = model.get(idx) == dentry.seq
                assert pcc.probe(dentry) == expected
                if expected:
                    model.move_to_end(idx)
                else:
                    model.pop(idx, None)


class TestDcacheInvariants:
    """Random alloc/evict/move sequences keep the tree well-formed."""

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(
        st.sampled_from(["alloc", "evict", "move", "negative"]),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=5)), min_size=1, max_size=60))
    def test_structure_stays_consistent(self, ops):
        costs = CostModel(dict(UNIT))
        fs = TmpFs(costs)
        dcache = Dcache(costs, Stats(), capacity=1000)
        root = dcache.root_dentry(fs)
        # A pool of directory dentries to parent things under.
        pool = [root]
        for i in range(3):
            info = fs.mkdir(fs.root_ino, f"dir{i}", 0o755, 0, 0)
            pool.append(dcache.d_alloc(
                root, f"dir{i}", dcache.inode_table(fs).obtain(info)))
        serial = 0
        for op, a, b in ops:
            parent = pool[a % len(pool)]
            if parent.dead or not parent.is_dir:
                continue
            if op == "alloc":
                name = f"n{serial}"
                serial += 1
                if name not in parent.children:
                    dcache.d_alloc(parent, name, None)
            elif op == "evict":
                leaves = [c for c in parent.children.values()
                          if not c.children and c.pin_count == 0]
                if leaves:
                    dcache.evict(leaves[b % len(leaves)])
            elif op == "move":
                movable = [c for c in parent.children.values()
                           if not c.dead]
                target = pool[b % len(pool)]
                if movable and not target.dead and target.is_dir:
                    victim = movable[0]
                    if victim is not target and \
                            not victim.is_ancestor_of(target):
                        dcache.d_move(victim, target, f"m{serial}")
                        serial += 1
            elif op == "negative":
                candidates = [c for c in parent.children.values()
                              if c.inode is not None and not c.children]
                if candidates:
                    dcache.make_negative(candidates[b % len(candidates)])
            self._check(dcache, root)

    @staticmethod
    def _check(dcache, root):
        stack = [root]
        seen = 0
        while stack:
            dentry = stack.pop()
            seen += 1
            for name, child in dentry.children.items():
                assert child.parent is dentry
                assert child.name == name
                assert not child.dead
                assert dcache.d_lookup(dentry, name) is child
                stack.append(child)
        assert seen <= len(dcache) + 1


class TestSignatureProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=8),
                    min_size=1, max_size=6),
           st.integers(min_value=0, max_value=2 ** 30))
    def test_deterministic_per_seed(self, comps, seed):
        a = PathHasher(seed).sign_components(comps)
        b = PathHasher(seed).sign_components(comps)
        assert a == b

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.text(alphabet="abc", min_size=1, max_size=4),
                    min_size=2, max_size=6))
    def test_any_split_point_resumes(self, comps):
        hasher = PathHasher(17)
        whole = hasher.sign_components(comps)
        for cut in range(1, len(comps)):
            state = hasher.extend_components(hasher.EMPTY, comps[:cut])
            state = hasher.extend_components(state, comps[cut:])
            assert hasher.finish(state) == whole
