"""The struct-of-arrays dentry arena: lifecycle, fidelity, differentials.

The :class:`~repro.core.arena.DentryArena` holds every hot per-dentry
scalar in parallel flat columns indexed by recycled integer handles.
That refactor is only sound if it is *invisible* to the simulation:
handle reuse after unlink, column growth, tail compaction, sequence
wraparound, and bulk snapshot copies must all leave virtual costs
bit-identical to a kernel that never exercised them.  These tests pin
each lifecycle event down with golden-counter comparisons, plus a
hypothesis differential over random mutation schedules.
"""

from __future__ import annotations

import copy

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro import O_CREAT, O_RDWR, errors, make_kernel
from repro.core.arena import FLAG_MOUNTPOINT, DentryArena
from repro.core.coherence import SEQ_WRAP
from repro.sim.snapshot import KernelSnapshot
from repro.vfs.dentry import Dentry

PROFILES = ("baseline", "optimized", "optimized-lazy")


def capture_state(kernel):
    """Everything virtual a workload can change, for golden comparison."""
    return (dict(kernel.costs.counts), kernel.costs.now_ns,
            kernel.stats.snapshot())


def root_child(kernel, name):
    return kernel.dcache.root_dentry(kernel.root_fs).children[name]


class TestArenaLifecycle:
    """The arena's own contract: alloc, retire, reuse, compact."""

    def test_alloc_zeroes_reused_slot(self):
        arena = DentryArena()
        h = arena.alloc("a", -1)
        arena.seq[h] = 7
        arena.epoch[h] = 3
        arena.pin[h] = 2
        arena.flags[h] = FLAG_MOUNTPOINT
        first_ident = arena.ident[h]
        arena.retire(h)
        h2 = arena.alloc("b", -1)
        assert h2 == h  # LIFO reuse of the freed slot
        assert (arena.seq[h2], arena.epoch[h2], arena.pin[h2],
                arena.flags[h2]) == (0, 0, 0, 0)
        assert arena.ident[h2] == first_ident + 1  # ident never recycled

    def test_retire_is_lifo_and_live_counted(self):
        arena = DentryArena()
        handles = [arena.alloc(f"n{i}", -1) for i in range(4)]
        assert arena.live == 4
        arena.retire(handles[1])
        arena.retire(handles[2])
        assert arena.live == 2
        assert arena.alloc("r1", -1) == handles[2]
        assert arena.alloc("r2", -1) == handles[1]
        assert arena.live == 4

    def test_compact_trims_only_the_tail(self):
        arena = DentryArena()
        handles = [arena.alloc(f"n{i}", -1) for i in range(6)]
        for h in (handles[2], handles[5], handles[4]):
            arena.retire(h)
        before = arena.footprint_bytes()
        trimmed = arena.compact()
        assert trimmed == 2  # slots 4 and 5; slot 2 is interior
        assert len(arena) == 4
        assert arena.footprint_bytes() < before
        # Interior survivors are untouched and the interior hole is
        # still reusable.
        assert arena.name_of(handles[3]) == "n3"
        assert arena.alloc("refill", -1) == handles[2]

    def test_compact_on_dense_arena_is_a_noop(self):
        arena = DentryArena()
        for i in range(3):
            arena.alloc(f"n{i}", -1)
        assert arena.compact() == 0
        assert len(arena) == 3

    def test_name_interning_is_stable(self):
        arena = DentryArena()
        nid = arena.intern_name("hot")
        h = arena.alloc("hot", -1)
        assert arena.name_id[h] == nid
        arena.retire(h)
        assert arena.intern_name("hot") == nid  # survives retirement

    def test_deepcopy_is_independent(self):
        arena = DentryArena()
        h = arena.alloc("a", -1)
        arena.seq[h] = 41
        clone = copy.deepcopy(arena)
        clone.seq[h] = 99
        clone.alloc("b", -1)
        assert arena.seq[h] == 41
        assert len(arena) == 1 and len(clone) == 2

    def test_deepcopy_registers_columns_for_bound_references(self):
        """A structure that bound a column maps to the copy's column."""
        arena = DentryArena()
        arena.alloc("a", -1)
        bound = arena.seq  # what a hot loop holds
        memo: dict = {}
        clone = copy.deepcopy(arena, memo)
        assert memo[id(bound)] is clone.seq

    def test_view_materializes_on_retire(self):
        dentry = Dentry("x", None, None, arena=DentryArena())
        dentry.seq = 5
        dentry.pin_count = 2
        dentry.is_mountpoint = True
        dentry.retire()
        assert dentry.h == -1
        assert (dentry.seq, dentry.pin_count, dentry.is_mountpoint) == \
            (5, 2, True)
        dentry.unpin()  # fallback slots stay writable after death
        assert dentry.pin_count == 1
        dentry.retire()  # idempotent


class TestHandleReuseGolden:
    """Slot recycling is invisible to virtual costs and correctness."""

    @pytest.mark.parametrize("profile", PROFILES)
    def test_eviction_retires_and_recreation_reuses(self, profile):
        """Evicted slots go back to the free list; a rebuilt tree of the
        same size allocates entirely from it (no column growth).

        (``unlink`` alone retires nothing — the dentry turns *negative*
        in place, still occupying its slot; retirement happens on
        ``d_drop``/``evict``.)
        """
        kernel = make_kernel(profile)
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/w")
        for i in range(30):
            fd = kernel.sys.open(task, f"/w/f{i}", O_CREAT | O_RDWR)
            kernel.sys.close(task, fd)
        arena = kernel.dcache.arena
        capacity = len(arena)
        live_before = arena.live
        for i in range(30):
            kernel.sys.unlink(task, f"/w/f{i}")
        assert arena.live == live_before  # negative in place, slot kept
        kernel.dcache.drop_all()
        assert arena.live < live_before
        for i in range(30):
            fd = kernel.sys.open(task, f"/w/g{i}", O_CREAT | O_RDWR)
            kernel.sys.close(task, fd)
        assert len(arena) <= capacity  # rebuilt purely from the free list

    @pytest.mark.parametrize("profile", PROFILES)
    def test_reused_slot_never_validates_stale_pcc(self, profile):
        """An entry recorded against a dead dentry must not revalidate
        when its slot is recycled for an unrelated dentry."""
        kernel = make_kernel(profile)
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/w")
        fd = kernel.sys.open(task, "/w/victim", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        kernel.sys.stat(task, "/w/victim")
        victim = root_child(kernel, "w").children["victim"]
        old_handle = victim.h
        kernel.sys.unlink(task, "/w/victim")
        kernel.dcache.drop_all()  # eviction is what retires the slot
        assert victim.h == -1 and victim.dead
        fd = kernel.sys.open(task, "/w/other", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        # The dead view answers reads from its materialized slots even
        # though its old slot may now belong to /w/other.
        assert victim.seq >= 0
        if old_handle < len(victim.arena):
            victim.arena.seq[old_handle] = 12345  # poison the recycled slot
        assert victim.seq != 12345
        pcc = task.cred.pcc
        if pcc is not None:  # baseline has no PCC
            assert not pcc.probe(victim)
        with pytest.raises(errors.FsError):
            kernel.sys.stat(task, "/w/victim")


class TestWraparoundGolden:
    """Sequence wraparound on an arena column triggers the §3.1 flush."""

    @pytest.mark.parametrize("profile", ("optimized", "optimized-lazy"))
    def test_seq_wrap_flushes_pccs(self, profile):
        kernel = make_kernel(profile)
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/d")
        fd = kernel.sys.open(task, "/d/f", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        kernel.sys.stat(task, "/d/f")
        assert task.cred.pcc is not None and len(task.cred.pcc) > 0
        d = root_child(kernel, "d")
        kernel.dcache.arena.seq[d.h] = SEQ_WRAP - 1
        kernel.sys.chmod(task, "/d", 0o700)  # bumps /d's seq to SEQ_WRAP
        assert kernel.stats.get("seq_wraparound_flush") >= 1
        assert len(task.cred.pcc) == 0
        # And the kernel keeps working after the flush.
        kernel.sys.stat(task, "/d/f")

    def test_wrap_on_retired_dentry_fallback_slot(self):
        """The fallback (h < 0) bump path also detects wraparound."""
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        fd = kernel.sys.open(task, "/f", O_CREAT | O_RDWR)
        kernel.sys.stat(task, "/f")
        f = root_child(kernel, "f")
        kernel.sys.unlink(task, "/f")
        assert f.h == -1
        f.seq = SEQ_WRAP - 1
        before = kernel.stats.get("seq_wraparound_flush")
        kernel.coherence.shootdown_single(f)
        assert kernel.stats.get("seq_wraparound_flush") == before + 1
        kernel.sys.close(task, fd)


class TestCompactionGolden:
    """compact() at a quiesce point never changes virtual outcomes."""

    @pytest.mark.parametrize("profile", PROFILES)
    def test_compaction_is_virtually_invisible(self, profile):
        def build(compact):
            kernel = make_kernel(profile)
            task = kernel.spawn_task(uid=0, gid=0)
            kernel.sys.mkdir(task, "/big")
            for i in range(40):
                fd = kernel.sys.open(task, f"/big/f{i}", O_CREAT | O_RDWR)
                kernel.sys.close(task, fd)
            for i in range(40):
                kernel.sys.unlink(task, f"/big/f{i}")
            kernel.dcache.drop_all()  # retire the slots (both kernels)
            if compact:
                assert kernel.dcache.arena.compact() > 0
            return kernel, task

        ref_kernel, ref_task = build(compact=False)
        kernel, task = build(compact=True)
        assert len(kernel.dcache.arena) < len(ref_kernel.dcache.arena)
        # Identical follow-on workload, bit-identical virtual charges.
        for k, t in ((ref_kernel, ref_task), (kernel, task)):
            for i in range(6):
                fd = k.sys.open(t, f"/big/g{i}", O_CREAT | O_RDWR)
                k.sys.close(t, fd)
                k.sys.stat(t, f"/big/g{i}")
        assert capture_state(kernel) == capture_state(ref_kernel)

    def test_growth_reuses_before_growing(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/big")
        for i in range(30):
            fd = kernel.sys.open(task, f"/big/f{i}", O_CREAT | O_RDWR)
            kernel.sys.close(task, fd)
        arena = kernel.dcache.arena
        for i in range(30):
            kernel.sys.unlink(task, f"/big/f{i}")
        kernel.dcache.drop_all()
        capacity = len(arena)
        live = arena.live
        for i in range(20):
            fd = kernel.sys.open(task, f"/big/h{i}", O_CREAT | O_RDWR)
            kernel.sys.close(task, fd)
        assert len(arena) == capacity  # all from the free list
        assert arena.live > live


class TestSnapshotFidelityOverArena:
    """Snapshots taken across every arena lifecycle state stay faithful."""

    @pytest.mark.parametrize("profile", PROFILES)
    def test_snapshot_after_retire_and_compact(self, profile):
        kernel = make_kernel(profile)
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/d")
        for i in range(12):
            fd = kernel.sys.open(task, f"/d/f{i}", O_CREAT | O_RDWR)
            kernel.sys.close(task, fd)
            kernel.sys.stat(task, f"/d/f{i}")
        for i in range(0, 12, 2):
            kernel.sys.unlink(task, f"/d/f{i}")
        kernel.dcache.arena.compact()
        at_capture = capture_state(kernel)
        snap = KernelSnapshot(kernel, task)

        def probe(k, t):
            base = capture_state(k)
            for i in range(1, 12, 2):
                k.sys.stat(t, f"/d/f{i}")
            fd = k.sys.open(t, "/d/f0", O_CREAT | O_RDWR)
            k.sys.close(t, fd)
            k.sys.rename(t, "/d/f0", "/d/f99")
            k.sys.stat(t, "/d/f99")
            after = capture_state(k)
            return ({k2: v - base[0].get(k2, 0)
                     for k2, v in after[0].items()},
                    after[1] - base[1], after[2])

        r1_kernel, r1_task = snap.restore()
        first = probe(r1_kernel, r1_task)
        # The original is untouched by restore+probe...
        assert capture_state(kernel) == at_capture
        # ...and a second restore replays bit-identically.
        r2_kernel, r2_task = snap.restore()
        assert probe(r2_kernel, r2_task) == first

    @pytest.mark.parametrize("profile", PROFILES)
    def test_restored_arena_is_disjoint_storage(self, profile):
        kernel = make_kernel(profile)
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/d")
        kernel.sys.stat(task, "/d")
        restored, rtask = KernelSnapshot(kernel, task).restore()
        orig = kernel.dcache.arena
        copy_arena = restored.dcache.arena
        assert copy_arena is not orig
        d = root_child(restored, "d")
        assert d.arena is copy_arena  # views rebound to the copied arena
        before = orig.seq[d.h]
        copy_arena.seq[d.h] += 7
        assert orig.seq[d.h] == before


#: Op schedule alphabet for the differential: (verb, primary, secondary).
_DIRS = ("/a", "/b")
_FILES = ("/a/x", "/a/y", "/b/x", "/b/z")
_OPS = st.tuples(
    st.sampled_from(["create", "unlink", "stat", "rename", "mkdir",
                     "rmdir", "chmod", "listdir"]),
    st.sampled_from(_DIRS + _FILES),
    st.sampled_from(_DIRS + _FILES),
)


def _apply(kernel, task, schedule):
    """Run a schedule, swallowing expected FS errors (invalid ops)."""
    sys = kernel.sys
    for verb, primary, secondary in schedule:
        try:
            if verb == "create":
                sys.close(task, sys.open(task, primary, O_CREAT | O_RDWR))
            elif verb == "unlink":
                sys.unlink(task, primary)
            elif verb == "stat":
                sys.stat(task, primary)
            elif verb == "rename":
                sys.rename(task, primary, secondary)
            elif verb == "mkdir":
                sys.mkdir(task, primary)
            elif verb == "rmdir":
                sys.rmdir(task, primary)
            elif verb == "chmod":
                sys.chmod(task, primary, 0o755)
            elif verb == "listdir":
                sys.listdir(task, primary)
        except errors.FsError:
            pass


class TestDifferentialSchedules:
    """Random mutation schedules: arena perturbations change nothing."""

    @settings(max_examples=25, deadline=None)
    @given(st.sampled_from(PROFILES),
           st.lists(_OPS, min_size=1, max_size=40),
           st.integers(min_value=0, max_value=40))
    def test_compact_and_snapshot_invisible(self, profile, schedule, cut):
        """Reference runs the schedule straight; candidate compacts the
        arena and detours through a snapshot at a random cut point.
        Virtual costs, stats, and the observable namespace must match
        bit-for-bit."""
        cut = min(cut, len(schedule))
        ref_kernel = make_kernel(profile)
        ref_task = ref_kernel.spawn_task(uid=0, gid=0)
        _apply(ref_kernel, ref_task, schedule)

        kernel = make_kernel(profile)
        task = kernel.spawn_task(uid=0, gid=0)
        _apply(kernel, task, schedule[:cut])
        kernel.dcache.arena.compact()
        kernel, task = KernelSnapshot(kernel, task).restore()
        _apply(kernel, task, schedule[cut:])

        assert capture_state(kernel) == capture_state(ref_kernel)
        for d in _DIRS + ("/",):
            try:
                ref_listing = ref_kernel.sys.listdir(ref_task, d)
            except errors.FsError as exc:
                with pytest.raises(type(exc)):
                    kernel.sys.listdir(task, d)
            else:
                assert kernel.sys.listdir(task, d) == ref_listing
