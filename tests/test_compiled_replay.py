"""Differential gate for the trace compiler and batched dispatch.

The contract under test: compiled replay is a pure *wall-clock*
optimization.  For any trace, ``replay_compiled(compile_trace(t))``
must drive the same syscalls in the same order and charge bit-identical
virtual costs — clock, per-primitive counts, Stats counters — as the
interpreted ``replay(t)`` on every kernel profile.  The same holds one
layer down for :meth:`Syscalls.batch` fast entries vs plain facade
calls.
"""

from __future__ import annotations

import random
import statistics
import time

import pytest

from repro import (O_APPEND, O_CREAT, O_DIRECTORY, O_RDONLY, O_RDWR,
                   O_WRONLY, errors, make_kernel)
from repro.workloads.compile import (CompiledTrace, TraceCompileError,
                                     build_loop_trace, compile_trace,
                                     lower_lmbench, lower_maildir,
                                     lower_webserver, try_compile)
from repro.workloads.traces import (ReplayDivergence, Trace, TraceEvent,
                                    TraceRecorder, replay, replay_compiled)

PROFILES = ("baseline", "optimized", "optimized-lazy")


def _fingerprint(kernel):
    return (kernel.costs.now_ns, dict(kernel.costs.counts),
            kernel.stats.snapshot())


def _assert_differential(trace, profiles=PROFILES, reps=1):
    """Interpreted and compiled replay must be virtually identical."""
    program = compile_trace(trace)
    for profile in profiles:
        k1 = make_kernel(profile)
        t1 = k1.spawn_task(uid=0, gid=0)
        k2 = make_kernel(profile)
        t2 = k2.spawn_task(uid=0, gid=0)
        for _ in range(reps):
            replay(k1, t1, trace)
            replay_compiled(k2, t2, program)
        assert _fingerprint(k1) == _fingerprint(k2), profile


def _record_mixed(kernel):
    """A scripted trace touching every row shape the compiler emits."""
    task = kernel.spawn_task(uid=0, gid=0)
    rec = TraceRecorder(kernel, task)
    rec.mkdir("/m")
    fd = rec.open("/m/a", O_CREAT | O_RDWR)
    rec.write(fd, b"0123456789abcdef")
    rec.lseek(fd, 4)
    rec.read(fd, 4)
    rec.fstat(fd)
    rec.compute(2_500)
    rec.close(fd)
    rec.stat("/m/a")
    with pytest.raises(errors.ENOENT):
        rec.stat("/m/nope")
    dfd = rec.open("/m", O_RDONLY | O_DIRECTORY)
    rec.fstatat("a", dirfd=dfd, follow=False)  # kwargs incl. fd marker
    rec.close(dfd)
    tmp_fd, tmp_name = rec.mkstemp("/m")  # pair-returning op
    rec.close(tmp_fd)
    rec.unlink(f"/m/{tmp_name}")
    rec.rename("/m/a", "/m/b")
    rec.unlink("/m/b")
    rec.rmdir("/m")
    return rec.trace


# -- compilation ----------------------------------------------------------

class TestCompile:
    def test_row_shapes(self):
        trace = _record_mixed(make_kernel("baseline"))
        program = compile_trace(trace)
        assert isinstance(program, CompiledTrace)
        assert len(program) == len(trace.events)
        assert program.slot_count == trace.slot_count()
        assert program.compile_wall_s > 0.0
        by_op = {program.op_table[row[0]]: row for row in program.rows}
        # fd-arg ops carry patch sites and list args.
        op_idx, args, patches, store, errno_exp, compute, pair = \
            by_op["read"]
        assert isinstance(args, list) and patches == ((0, 0),)
        assert store == -1 and errno_exp is None and not pair
        # open stores its returned fd; path-only args stay tuples.
        _i, args, patches, store, errno_exp, _c, _p = by_op["mkdir"]
        assert isinstance(args, tuple) and patches is None
        # mkstemp unpacks a pair.
        assert by_op["mkstemp"][6] is True
        assert by_op["mkstemp"][3] >= 0

    def test_write_payload_preencoded(self):
        trace = _record_mixed(make_kernel("baseline"))
        program = compile_trace(trace)
        writes = [row for row in program.rows
                  if program.op_table[row[0]] == "write"]
        assert writes and all(isinstance(row[1][1], bytes)
                              for row in writes)

    def test_kwargs_folded_positionally(self):
        trace = Trace([TraceEvent(op="fstatat", args=("a",),
                                  kwargs={"dirfd": ("fd", 0),
                                          "follow": False})])
        program = compile_trace(trace)
        (op_idx, args, patches, _s, _e, _c, _p), = program.rows
        # fstatat(task, path, dirfd=None, follow=True): folding places
        # the dirfd patch site at index 1 and follow at index 2.
        assert args[0] == "a" and args[2] is False
        assert patches == ((1, 0),)

    def test_compute_gap_and_errno_lowered(self):
        trace = _record_mixed(make_kernel("baseline"))
        program = compile_trace(trace)
        assert any(row[5] == 2_500 for row in program.rows)
        assert any(row[4] is not None for row in program.rows)

    def test_unknown_op_raises(self):
        bogus = Trace([TraceEvent(op="frobnicate", args=())])
        with pytest.raises(TraceCompileError):
            compile_trace(bogus)
        assert try_compile(bogus) is None

    def test_unknown_kwarg_raises(self):
        bogus = Trace([TraceEvent(op="stat", args=("/x",),
                                  kwargs={"nope": 1})])
        with pytest.raises(TraceCompileError):
            compile_trace(bogus)
        assert try_compile(bogus) is None

    def test_missing_required_arg_raises(self):
        bogus = Trace([TraceEvent(op="rename", args=("/only-src",))])
        with pytest.raises(TraceCompileError):
            compile_trace(bogus)

    def test_try_compile_passes_through_good_traces(self):
        trace = _record_mixed(make_kernel("baseline"))
        assert try_compile(trace) is not None


# -- engine differential --------------------------------------------------

class TestDifferential:
    def test_mixed_trace_identical(self):
        _assert_differential(_record_mixed(make_kernel("baseline")))

    def test_loop_trace_identical_across_reps(self):
        # Three reps on one kernel: the trace is self-undoing, so this
        # also pins deterministic fd numbering across replays.
        _assert_differential(build_loop_trace(files=6, io_rounds=6,
                                              subdirs=2), reps=3)

    def test_lowered_workloads_identical(self):
        for trace in (lower_lmbench(rounds=1),
                      lower_maildir(mailbox_size=8, mailboxes=2,
                                    operations=8),
                      lower_webserver(nfiles=12, requests=2)):
            _assert_differential(trace)

    def test_serialized_trace_identical(self):
        trace = Trace.loads(
            _record_mixed(make_kernel("baseline")).dumps())
        _assert_differential(trace)

    @pytest.mark.parametrize("seed", range(20))
    def test_random_mutation_heavy_schedules(self, seed):
        """20 seeded random schedules, heavy on mutations (the lazy
        profile's hard case), replayed by both engines on every
        profile."""
        rng = random.Random(0xC0F_FEE + seed)
        kernel = make_kernel("baseline")
        task = kernel.spawn_task(uid=0, gid=0)
        rec = TraceRecorder(kernel, task)
        rec.mkdir("/r")
        live_paths, open_fds, counter = [], [], [0]

        def new_path():
            counter[0] += 1
            return f"/r/f{counter[0]}"

        for _ in range(120):
            roll = rng.random()
            try:
                if roll < 0.22:  # create
                    path = new_path()
                    fd = rec.open(path, O_CREAT | O_RDWR)
                    live_paths.append(path)
                    open_fds.append(fd)
                elif roll < 0.38 and live_paths:  # rename (mutation)
                    src = rng.choice(live_paths)
                    dst = new_path()
                    rec.rename(src, dst)
                    live_paths[live_paths.index(src)] = dst
                elif roll < 0.50 and live_paths:  # unlink (mutation)
                    victim = rng.choice(live_paths)
                    rec.unlink(victim)
                    live_paths.remove(victim)
                elif roll < 0.62 and open_fds:  # fd traffic
                    fd = rng.choice(open_fds)
                    rec.write(fd, b"x" * rng.randrange(1, 16))
                    rec.lseek(fd, 0)
                    rec.fstat(fd)
                elif roll < 0.72 and open_fds:  # close
                    rec.close(open_fds.pop(rng.randrange(len(open_fds))))
                elif roll < 0.86:  # warm or missing stat
                    if live_paths and rng.random() < 0.6:
                        rec.stat(rng.choice(live_paths))
                    else:
                        rec.stat(f"/r/missing{rng.randrange(99)}")
                else:
                    rec.compute(float(rng.randrange(100, 5_000)))
            except errors.FsError:
                pass  # recorded with its errno; replay must match it
        for fd in open_fds:
            rec.close(fd)
        _assert_differential(rec.trace)

    def test_hypothesis_schedules(self):
        """Property test: record→compile→replay ≡ record→interpret→replay
        for arbitrary small op schedules."""
        from hypothesis import given, settings, strategies as st

        op_codes = st.lists(st.tuples(st.integers(0, 6),
                                      st.integers(0, 7)),
                            min_size=1, max_size=40)

        @given(codes=op_codes)
        @settings(max_examples=30, deadline=None)
        def schedule_matches(codes):
            kernel = make_kernel("baseline")
            task = kernel.spawn_task(uid=0, gid=0)
            rec = TraceRecorder(kernel, task)
            rec.mkdir("/h")
            fds = {}
            for code, arg in codes:
                try:
                    if code == 0:
                        fds[arg] = rec.open(f"/h/f{arg}",
                                            O_CREAT | O_RDWR)
                    elif code == 1 and arg in fds:
                        rec.write(fds[arg], b"data")
                    elif code == 2 and arg in fds:
                        rec.lseek(fds[arg], 0)
                        rec.read(fds[arg], 4)
                    elif code == 3 and arg in fds:
                        rec.close(fds.pop(arg))
                    elif code == 4:
                        rec.stat(f"/h/f{arg}")
                    elif code == 5:
                        rec.rename(f"/h/f{arg}", f"/h/r{arg}")
                    elif code == 6:
                        rec.unlink(f"/h/r{arg}")
                except errors.FsError:
                    pass
            for fd in fds.values():
                rec.close(fd)
            _assert_differential(rec.trace, profiles=("baseline",
                                                      "optimized"))

        schedule_matches()


# -- divergence + lenient mode --------------------------------------------

class TestCompiledDivergence:
    def _trace_expecting_enoent(self):
        kernel = make_kernel("baseline")
        task = kernel.spawn_task(uid=0, gid=0)
        rec = TraceRecorder(kernel, task)
        with pytest.raises(errors.ENOENT):
            rec.stat("/ghost")
        rec.mkdir("/made")
        return rec.trace

    def test_unexpected_success_is_divergence(self):
        trace = self._trace_expecting_enoent()
        program = compile_trace(trace)
        kernel = make_kernel("baseline")
        task = kernel.spawn_task(uid=0, gid=0)
        fd = kernel.sys.open(task, "/ghost", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        with pytest.raises(ReplayDivergence) as excinfo:
            replay_compiled(kernel, task, program)
        assert excinfo.value.index == 0
        assert excinfo.value.op == "stat"
        assert excinfo.value.actual_errno is None

    def test_unexpected_error_is_divergence_with_index(self):
        trace = self._trace_expecting_enoent()
        program = compile_trace(trace)
        kernel = make_kernel("baseline")
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/made")  # mkdir in the trace now EEXISTs
        with pytest.raises(ReplayDivergence) as excinfo:
            replay_compiled(kernel, task, program)
        assert excinfo.value.index == 1
        assert excinfo.value.op == "mkdir"
        assert excinfo.value.expected_errno is None
        assert excinfo.value.actual_errno is not None

    def test_lenient_mode_continues_like_interpreter(self):
        trace = self._trace_expecting_enoent()
        program = compile_trace(trace)
        for engine in ("interpreted", "compiled"):
            kernel = make_kernel("baseline")
            task = kernel.spawn_task(uid=0, gid=0)
            kernel.sys.mkdir(task, "/made")
            if engine == "compiled":
                replay_compiled(kernel, task, program, strict=False)
            else:
                replay(kernel, task, trace, strict=False)
            assert kernel.sys.exists(task, "/made")


# -- batch fast entries ---------------------------------------------------

class TestBatchEntries:
    def _drive(self, use_batch, profile):
        kernel = make_kernel(profile)
        task = kernel.spawn_task(uid=0, gid=0)
        if use_batch:
            batch = kernel.sys.batch(task)
            call = {op: getattr(batch, op)
                    for op in ("mkdir", "open", "close", "read", "write",
                               "lseek", "fstat", "stat", "unlink")}
        else:
            sys_ = kernel.sys
            call = {op: (lambda op=op: lambda *a:
                         getattr(sys_, op)(task, *a))()
                    for op in ("mkdir", "open", "close", "read", "write",
                               "lseek", "fstat", "stat", "unlink")}
        out = []
        call["mkdir"]("/d")
        fd = call["open"]("/d/f", O_CREAT | O_RDWR)
        out.append(call["write"](fd, b"hello world"))
        out.append(call["lseek"](fd, 0))
        out.append(call["read"](fd, 5))
        out.append(tuple(call["fstat"](fd)))
        for op, args in (("read", (99, 4)), ("write", (99, b"x")),
                         ("lseek", (99, 0)), ("fstat", (99,)),
                         ("close", (99,))):
            with pytest.raises(errors.EBADF) as excinfo:
                call[op](*args)
            out.append(str(excinfo.value))
        ro = call["open"]("/d/f", O_RDONLY)
        with pytest.raises(errors.EBADF):
            call["write"](ro, b"x")
        wo = call["open"]("/d/f", O_WRONLY)
        with pytest.raises(errors.EBADF):
            call["read"](wo, 4)
        dfd = call["open"]("/d", O_RDONLY | O_DIRECTORY)
        with pytest.raises(errors.EISDIR):
            call["read"](dfd, 4)
        ap = call["open"]("/d/f", O_WRONLY | O_APPEND)
        call["lseek"](ap, 0)
        out.append(call["write"](ap, b"!tail"))  # lands at EOF
        out.append(tuple(call["fstat"](fd)))
        for handle in (fd, ro, wo, dfd, ap):
            call["close"](handle)
        with pytest.raises(errors.EBADF):
            call["fstat"](fd)
        call["unlink"]("/d/f")
        return out, _fingerprint(kernel)

    @pytest.mark.parametrize("profile", PROFILES)
    def test_fast_entries_match_facade(self, profile):
        """Specialized batch closures (close/lseek/fstat/read/write) are
        observationally identical to the facade: same results, same
        error types *and messages*, same virtual costs and Stats."""
        assert self._drive(True, profile) == self._drive(False, profile)

    def test_entries_cached_and_context_manager(self):
        kernel = make_kernel("baseline")
        task = kernel.spawn_task(uid=0, gid=0)
        with kernel.sys.batch(task) as batch:
            assert batch.stat is batch.stat  # cached after first access
            assert batch.fstat is batch.fstat
            assert batch.task is task
        with pytest.raises(AttributeError):
            batch._private

    def test_sweeper_still_polled_under_batch(self):
        """optimized-lazy's amortized sweeper must keep running when
        syscalls are driven through fast entries."""
        from unittest import mock
        kernel = make_kernel("optimized-lazy")
        assert kernel.sweeper is not None
        task = kernel.spawn_task(uid=0, gid=0)
        batch = kernel.sys.batch(task)
        batch.mkdir("/s")
        fd = batch.open("/s/f", O_CREAT | O_RDWR)
        with mock.patch.object(type(kernel.sweeper), "poll",
                               autospec=True) as poll:
            for _ in range(25):
                batch.lseek(fd, 0)
                batch.fstat(fd)
        assert poll.call_count == 50  # one poll per fast-entry syscall
        batch.close(fd)


# -- wall-clock -----------------------------------------------------------

class TestWallClock:
    def test_compiled_replay_faster_than_interpreted(self):
        """The point of the compiler.  Typical ratio on the fd-heavy
        loop trace is 1.5–1.7x; assert a conservative 1.2x floor so a
        noisy CI host cannot flake the suite (the acceptance-level 1.5x
        is measured by the trace_replay benchmark, not gated here)."""
        trace = build_loop_trace()
        program = compile_trace(trace)
        best = 0.0
        for profile in ("optimized", "baseline"):
            k1 = make_kernel(profile)
            t1 = k1.spawn_task(uid=0, gid=0)
            k2 = make_kernel(profile)
            t2 = k2.spawn_task(uid=0, gid=0)
            replay(k1, t1, trace)            # warm
            replay_compiled(k2, t2, program)
            interp, comp = [], []
            for _ in range(9):
                t0 = time.perf_counter()
                replay(k1, t1, trace)
                interp.append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                replay_compiled(k2, t2, program)
                comp.append(time.perf_counter() - t0)
            ratio = statistics.median(interp) / statistics.median(comp)
            best = max(best, ratio)
            if best >= 1.2:
                break
        assert best >= 1.2, f"compiled replay only {best:.2f}x faster"

    def test_compile_time_reported_separately(self):
        trace = build_loop_trace(files=4, io_rounds=4, subdirs=2)
        program = compile_trace(trace)
        assert program.compile_wall_s > 0.0
        # And the speed-suite appendix exposes it (smoke the helper).
        from repro.bench import speed
        assert callable(speed.print_timing_appendix)
