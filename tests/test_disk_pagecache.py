"""Unit tests for the block device and buffer cache cost models."""

from __future__ import annotations

import pytest

from repro.fs.disk import BlockAllocator, BlockDevice
from repro.sim.costs import CostModel, UNIT


@pytest.fixture
def costs():
    return CostModel(dict(UNIT))


class TestBlockDevice:
    def test_first_read_seeks(self, costs):
        device = BlockDevice(costs)
        device.read_block(100)
        assert costs.count("disk_seek") == 1
        assert costs.count("disk_seq_block") == 1

    def test_sequential_read_no_seek(self, costs):
        device = BlockDevice(costs)
        device.read_block(100)
        device.read_block(101)
        device.read_block(102)
        assert costs.count("disk_seek") == 1
        assert costs.count("disk_seq_block") == 3

    def test_backward_read_seeks(self, costs):
        device = BlockDevice(costs)
        device.read_block(100)
        device.read_block(99)
        assert costs.count("disk_seek") == 2

    def test_read_run(self, costs):
        device = BlockDevice(costs)
        device.read_run(10, 4)
        assert costs.count("disk_seq_block") == 4
        assert costs.count("disk_seek") == 1

    def test_out_of_range_rejected(self, costs):
        device = BlockDevice(costs, size_blocks=10)
        with pytest.raises(ValueError):
            device.read_block(10)

    def test_write_tracks_head(self, costs):
        device = BlockDevice(costs)
        device.write_block(5)
        device.read_block(6)
        assert costs.count("disk_seek") == 1


class TestBlockAllocator:
    def test_allocates_from_first_free(self):
        alloc = BlockAllocator(100, first_free=10)
        assert alloc.allocate() == 10

    def test_near_hint(self):
        alloc = BlockAllocator(100, first_free=0)
        first = alloc.allocate()
        near = alloc.allocate(near=50)
        assert near == 51
        assert first != near

    def test_no_double_allocation(self):
        alloc = BlockAllocator(32)
        blocks = {alloc.allocate() for _ in range(32)}
        assert len(blocks) == 32

    def test_full_device(self):
        alloc = BlockAllocator(4)
        for _ in range(4):
            alloc.allocate()
        with pytest.raises(MemoryError):
            alloc.allocate()

    def test_free_and_reuse(self):
        alloc = BlockAllocator(4)
        blocks = [alloc.allocate() for _ in range(4)]
        alloc.free(blocks[1])
        assert alloc.allocate() == blocks[1]


class TestPageCache:
    def _cache(self, costs, readahead=4):
        from repro.fs.pagecache import PageCache
        device = BlockDevice(costs)
        return PageCache(costs, device, capacity_blocks=8,
                         readahead=readahead)

    def test_miss_then_hit(self, costs):
        cache = self._cache(costs)
        assert cache.access(10) is False
        assert cache.access(10) is True
        assert cache.hits == 1 and cache.misses == 1

    def test_readahead_populates(self, costs):
        cache = self._cache(costs, readahead=4)
        cache.access(10)
        for block in (11, 12, 13):
            assert cache.access(block) is True

    def test_lru_eviction(self, costs):
        cache = self._cache(costs, readahead=1)
        for block in range(10):
            cache.access(block * 100)
        assert not cache.contains(0)
        assert cache.contains(900)

    def test_write_hit_is_async(self, costs):
        cache = self._cache(costs)
        cache.access(5)
        seeks_before = costs.count("disk_seek")
        cache.access(5, for_write=True)
        assert costs.count("disk_seek") == seeks_before

    def test_writeback_flushes_dirty(self, costs):
        cache = self._cache(costs)
        cache.access(5)
        cache.access(5, for_write=True)
        cache.access(6, for_write=True)
        assert cache.writeback() == 2
        assert cache.writeback() == 0

    def test_drop_caches(self, costs):
        cache = self._cache(costs)
        cache.access(10)
        cache.drop_caches()
        assert len(cache) == 0
        assert cache.access(10) is False
