"""Snapshot fidelity: a restored kernel is bit-identical to a warm one.

The warm-kernel snapshot layer (``repro.sim.snapshot``) lets benchmark
repetitions restore a captured warm kernel instead of rebuilding and
re-warming a fresh one.  That is only sound if the restored copy is
*indistinguishable* from the original at capture time: identical virtual
clock, identical cost counters, identical stats, and identical future
behaviour — including mutations, coherence shootdowns, readdir
completeness, lazy revalidation, and LRU order.  These are the
golden-counter tests proving it for all three kernel profiles.
"""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_RDWR, errors, make_kernel
from repro.sim.clock import Clock, Ticker
from repro.sim.snapshot import KernelSnapshot, SnapshotError, clone_kernel
from repro.sim.stats import Stats
from repro.workloads import lmbench

PROFILES = ("baseline", "optimized", "optimized-lazy")


def warm_workload(kernel, task) -> None:
    """Deterministic warmup touching every cache family."""
    sys = kernel.sys
    for d in ("/srv", "/srv/www", "/srv/www/static", "/home",
              "/home/alice"):
        sys.mkdir(task, d)
    for i in range(6):
        fd = sys.open(task, f"/srv/www/static/p{i}", O_CREAT | O_RDWR)
        sys.close(task, fd)
    sys.symlink(task, "/srv/www", "/var_www")
    for _ in range(4):
        sys.stat(task, "/srv/www/static/p3")
        sys.stat(task, "/var_www/static/p1")
        sys.stat(task, "/srv/www/static/../static/p0")
    for _ in range(2):
        for missing in ("/srv/www/static/nope", "/home/alice/no/deep"):
            try:
                sys.stat(task, missing)
            except errors.FsError:
                pass
    sys.listdir(task, "/srv/www/static")
    sys.listdir(task, "/srv/www/static")


def probe_workload(kernel, task) -> None:
    """Post-capture probe: warm hits, mutations, invalidation, re-warm."""
    sys = kernel.sys
    for _ in range(8):
        sys.stat(task, "/srv/www/static/p3")
        sys.stat(task, "/var_www/static/p1")
    sys.rename(task, "/srv/www/static", "/srv/www/pub")
    for _ in range(3):
        sys.stat(task, "/srv/www/pub/p3")
    sys.chmod(task, "/srv/www", 0o700)
    sys.stat(task, "/srv/www/pub/p4")
    sys.unlink(task, "/srv/www/pub/p5")
    try:
        sys.stat(task, "/srv/www/pub/p5")
    except errors.FsError:
        pass
    fd = sys.open(task, "/srv/www/pub/p5", O_CREAT | O_RDWR)
    sys.close(task, fd)
    sys.listdir(task, "/srv/www/pub")
    sys.mkdir(task, "/fresh")
    sys.stat(task, "/fresh")


def capture_state(kernel):
    return (dict(kernel.costs.counts), kernel.costs.now_ns,
            kernel.stats.snapshot())


def probe_deltas(kernel, task):
    """Run the probe and return (count deltas, ns delta, stat deltas)."""
    counts0, ns0, stats0 = capture_state(kernel)
    probe_workload(kernel, task)
    counts1, ns1, stats1 = capture_state(kernel)
    dcounts = {k: v - counts0.get(k, 0) for k, v in counts1.items()
               if v != counts0.get(k, 0)}
    dstats = {k: v - stats0.get(k, 0) for k, v in stats1.items()
              if v != stats0.get(k, 0)}
    return dcounts, ns1 - ns0, dstats


def build_warm(profile):
    kernel = make_kernel(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    warm_workload(kernel, task)
    return kernel, task


class TestGoldenFidelity:
    """Restored kernels charge bit-identical costs to freshly warmed ones."""

    @pytest.mark.parametrize("profile", PROFILES)
    def test_restored_state_equals_capture_point(self, profile):
        kernel, task = build_warm(profile)
        at_capture = capture_state(kernel)
        snap = KernelSnapshot(kernel, task)
        restored, rtask = snap.restore()
        assert capture_state(restored) == at_capture
        # Same virtual clock object semantics, not shared state:
        restored.costs.charge("syscall_fixed")
        assert kernel.costs.now_ns == at_capture[1]

    @pytest.mark.parametrize("profile", PROFILES)
    def test_probe_deltas_bit_identical(self, profile):
        # Reference: a freshly warmed kernel runs the probe.
        ref_kernel, ref_task = build_warm(profile)
        ref = probe_deltas(ref_kernel, ref_task)
        # Candidate: identical warmup, then snapshot + restore + probe.
        kernel, task = build_warm(profile)
        snap = KernelSnapshot(kernel, task)
        restored, rtask = snap.restore()
        assert probe_deltas(restored, rtask) == ref

    @pytest.mark.parametrize("profile", PROFILES)
    def test_restores_are_independent(self, profile):
        kernel, task = build_warm(profile)
        snap = KernelSnapshot(kernel, task)
        k1, t1 = snap.restore()
        r1 = probe_deltas(k1, t1)
        # Mutations through the first restore must not leak into the
        # second (or into the frozen image, or the original).
        k2, t2 = snap.restore()
        assert probe_deltas(k2, t2) == r1
        k3, t3 = snap.restore()
        assert probe_deltas(k3, t3) == r1

    @pytest.mark.parametrize("profile", PROFILES)
    def test_original_unaffected_by_capture_and_restores(self, profile):
        ref_kernel, ref_task = build_warm(profile)
        ref = probe_deltas(ref_kernel, ref_task)
        kernel, task = build_warm(profile)
        snap = KernelSnapshot(kernel, task)
        k1, t1 = snap.restore()
        probe_workload(k1, t1)
        assert probe_deltas(kernel, task) == ref

    @pytest.mark.parametrize("profile", PROFILES)
    def test_warm_lmbench_stat_stays_warm(self, profile):
        """The benchmark-critical path: restored caches still hit."""
        kernel = make_kernel(profile)
        task = lmbench.prepare_lookup_tree(kernel)
        kernel.sys.stat(task, lmbench.LONG_PATH)
        # Steady-state cost of one more warm stat on the original:
        before = kernel.costs.now_ns
        kernel.sys.stat(task, lmbench.LONG_PATH)
        steady = kernel.costs.now_ns - before
        restored, rtask = KernelSnapshot(kernel, task).restore()
        before = restored.costs.now_ns
        restored.sys.stat(rtask, lmbench.LONG_PATH)
        assert restored.costs.now_ns - before == steady


class TestStructuralRemapping:
    """The identity-keyed tables and weakrefs point into the copy."""

    def test_coherence_registry_targets_the_copy(self):
        kernel, task = build_warm("optimized")
        restored, rtask = clone_kernel(kernel, task)
        assert restored.root_ns.dlht is not kernel.root_ns.dlht
        assert any(d is restored.root_ns.dlht
                   for d in restored.coherence.dlhts)
        assert all(d is not kernel.root_ns.dlht
                   for d in restored.coherence.dlhts)
        # A flush through the copy leaves the original's caches alone.
        populated = len(kernel.root_ns.dlht._table)
        assert populated > 0
        restored.coherence.wraparound_flush()
        assert len(kernel.root_ns.dlht._table) == populated
        assert len(restored.root_ns.dlht._table) == 0

    def test_dlht_owner_ns_weakref_retargeted(self):
        kernel, task = build_warm("optimized-lazy")
        restored, rtask = clone_kernel(kernel, task)
        owner = restored.root_ns.dlht.owner_ns
        assert owner is not None and owner() is restored.root_ns

    def test_pcc_keys_match_copied_dentries(self):
        kernel, task = build_warm("optimized")
        restored, rtask = clone_kernel(kernel, task)
        pcc = rtask.cred.pcc
        assert pcc is not None and len(pcc) > 0
        assert pcc is not task.cred.pcc
        for key, (dentry, _seq, _epoch) in pcc._entries.items():
            assert key == id(dentry)

    def test_dcache_hash_and_lru_rebuilt(self):
        kernel, task = build_warm("baseline")
        restored, rtask = clone_kernel(kernel, task)
        dcache = restored.dcache
        for (parent_id, name), dentry in dcache._hash.items():
            assert parent_id == id(dentry.parent) and name == dentry.name
        assert [id(d) for d in dcache._lru.values()] == \
            list(dcache._lru.keys())
        # LRU order survives the copy byte-for-byte.
        assert [d.name for d in dcache._lru.values()] == \
            [d.name for d in kernel.dcache._lru.values()]

    def test_mount_tables_remap_across_a_mount(self):
        from repro.fs.tmpfs import TmpFs
        kernel, task = build_warm("optimized")
        kernel.sys.mkdir(task, "/mnt")
        kernel.sys.mount_fs(task, TmpFs(kernel.costs), "/mnt")
        kernel.sys.mkdir(task, "/mnt/inner")
        kernel.sys.stat(task, "/mnt/inner")
        restored, rtask = clone_kernel(kernel, task)
        # The copied namespace resolves through the copied mountpoint.
        restored.sys.stat(rtask, "/mnt/inner")
        assert restored.sys.listdir(rtask, "/mnt") == \
            kernel.sys.listdir(task, "/mnt")
        # And the copy's mount table was rebuilt against copied dentries,
        # so unmounting through the copy works and the original keeps
        # its mount.
        restored.sys.umount(rtask, "/mnt")
        assert [entry[0] for entry in kernel.sys.listdir(task, "/mnt")] \
            == ["inner"]

    def test_strict_remap_raises_on_unreachable_referent(self):
        from repro.sim.snapshot import _remap_id
        with pytest.raises(SnapshotError):
            _remap_id({}, 12345, "test")


class TestLazySweeperSurvivesRestore:
    def test_sweeper_runs_after_restore(self):
        kernel, task = build_warm("optimized-lazy")
        # Stamp some state so the sweeper has stale entries to consider.
        kernel.sys.rename(task, "/srv/www/static", "/srv/www/moved")
        restored, rtask = clone_kernel(kernel, task)
        restored.sweeper.sweep_once()  # must not touch the original
        # And the restored kernel keeps functioning afterwards.
        restored.sys.stat(rtask, "/srv/www/moved/p3")


class TestStateCaptureApi:
    """The small capture/restore protocol used by the snapshot layer."""

    def test_clock_capture_restore(self):
        clock = Clock()
        clock.advance(123.5)
        state = clock.capture_state()
        clock.advance(10)
        clock.restore_state(state)
        assert clock.now_ns == 123.5

    def test_ticker_capture_restore(self):
        clock = Clock()
        ticker = Ticker(clock, 100.0)
        state = ticker.capture_state()
        clock.advance(250.0)
        assert ticker.due()
        ticker.fire()
        ticker.restore_state(state)
        assert ticker.due()  # restored deadline is the original one

    def test_stats_restore(self):
        stats = Stats()
        stats.bump("lookup", 3)
        snap = stats.snapshot()
        stats.bump("lookup")
        stats.bump("other")
        stats.restore(snap)
        assert stats.snapshot() == {"lookup": 3}
