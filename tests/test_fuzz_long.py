"""Long deterministic fuzz: thousands of mixed operations, two kernels.

Complements the hypothesis tests with deep, seeded runs that mix every
feature — creations, renames, symlinks, chmods, identity changes, mounts,
readdir storms, cache drops — and check equivalence plus invariants
throughout.  Seeds are fixed so failures reproduce exactly.
"""

from __future__ import annotations

import random

import pytest

from repro import O_CREAT, O_RDWR, errors
from repro.core.kernel import BASELINE, OPTIMIZED
from repro.testing import DualKernel

NAMES = ["alpha", "beta", "gamma", "delta", "x"]
MODES = [0o755, 0o750, 0o700, 0o555, 0o000, 0o777]


class Fuzzer:
    def __init__(self, seed: int, configs=None):
        self.rng = random.Random(seed)
        self.dual = DualKernel(configs or (BASELINE, OPTIMIZED))
        self.root = self.dual.spawn_task(uid=0, gid=0)
        self.users = [self.dual.spawn_task(uid=1000 + i, gid=1000 + i)
                      for i in range(2)]
        self.open_fds = []

    def random_path(self, depth=None) -> str:
        depth = depth or self.rng.randint(1, 4)
        return "/" + "/".join(self.rng.choice(NAMES)
                              for _ in range(depth))

    def random_task(self):
        if self.rng.random() < 0.6:
            return self.root
        return self.rng.choice(self.users)

    def step(self) -> None:
        op = self.rng.randrange(100)
        task = self.random_task()
        path = self.random_path()
        try:
            if op < 20:
                self.dual.stat(task, path)
            elif op < 28:
                self.dual.lstat(task, path)
            elif op < 36:
                fd = self.dual.open(task, path, O_CREAT | O_RDWR)
                if self.rng.random() < 0.8:
                    self.dual.close(task, fd)
                else:
                    self.open_fds.append((task, fd))
            elif op < 44:
                self.dual.mkdir(task, path)
            elif op < 50:
                self.dual.unlink(task, path)
            elif op < 54:
                self.dual.rmdir(task, path)
            elif op < 62:
                self.dual.rename(task, path, self.random_path())
            elif op < 68:
                self.dual.symlink(task, self.random_path(), path)
            elif op < 72:
                self.dual.link(task, path, self.random_path())
            elif op < 78:
                self.dual.chmod(self.root, path,
                                self.rng.choice(MODES))
            elif op < 82:
                self.dual.listdir(task, path)
            elif op < 86:
                self.dual.chdir(task, path)
            elif op < 88:
                self.dual.stat(task, self.random_path(depth=2) + "/..")
            elif op < 92:
                rel = self.rng.choice(NAMES)
                self.dual.stat(task, rel)
            elif op < 93:
                # occasionally drop a held fd
                if self.open_fds:
                    held_task, fd = self.open_fds.pop()
                    self.dual.close(held_task, fd)
                else:
                    self.dual.stat(task, "/")
            elif op < 95:
                if self.rng.random() < 0.5:
                    self.dual.setxattr(self.root, path, "user.tag",
                                       b"fuzz")
                else:
                    self.dual.getxattr(task, path, "user.tag")
            elif op < 96:
                self.dual.utimes(self.root, path,
                                 mtime_ns=self.rng.randrange(10**9))
            elif op < 97:
                for kernel in self.dual.kernels:
                    kernel.drop_caches()
            else:
                uid = 1000 + self.rng.randrange(3)
                self.dual.change_identity(self.users[0], uid=uid)
        except errors.FsError:
            pass  # the oracle already verified both kernels agreed

    def run(self, steps: int, check_every: int = 200) -> None:
        for i in range(steps):
            self.step()
            if i % check_every == check_every - 1:
                self.dual.check_invariants()
        self.dual.check_invariants()


@pytest.mark.parametrize("seed", [1, 7, 42, 1337])
def test_long_fuzz(seed):
    Fuzzer(seed).run(1200)


@pytest.mark.parametrize("seed", [3, 99])
def test_long_fuzz_under_cache_pressure(seed):
    configs = (BASELINE.variant(dcache_capacity=30),
               OPTIMIZED.variant(dcache_capacity=30))
    Fuzzer(seed, configs).run(900)


@pytest.mark.parametrize("seed", [11])
def test_long_fuzz_all_features_config_matrix(seed):
    """Every partial feature combination agrees with the baseline."""
    configs = (
        BASELINE,
        OPTIMIZED.variant(dir_complete=False),
        OPTIMIZED.variant(deep_negative=False),
        OPTIMIZED.variant(aggressive_negative=False),
        OPTIMIZED.variant(fastpath=False),
        OPTIMIZED,
    )
    Fuzzer(seed, configs).run(600)
