"""Tests for the inspection tooling and cache-pressure equivalence."""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_RDWR, errors, make_kernel
from repro.core.kernel import BASELINE, OPTIMIZED
from repro.sim.memory import measure_kernel
from repro.testing import DualKernel
from repro.tools import (dcache_tree, dlht_summary, kernel_summary,
                         pcc_summary)


class TestInspect:
    def _kernel(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/etc")
        fd = kernel.sys.open(task, "/etc/conf", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        kernel.sys.symlink(task, "/etc/conf", "/ln")
        kernel.sys.stat(task, "/ln")
        try:
            kernel.sys.stat(task, "/ghost")
        except errors.ENOENT:
            pass
        return kernel

    def test_tree_renders_flags(self):
        tree = dcache_tree(self._kernel())
        assert "etc" in tree and "COMPLETE" in tree
        assert "NEG:enoent" in tree
        assert "DLHT" in tree

    def test_dlht_summary(self):
        text = dlht_summary(self._kernel())
        assert "DLHT[0]:" in text and "entries" in text

    def test_pcc_summary(self):
        text = pcc_summary(self._kernel())
        assert "/4096" in text

    def test_baseline_summaries(self):
        kernel = make_kernel("baseline")
        assert "baseline" in dlht_summary(kernel)
        assert "baseline" in pcc_summary(kernel)

    def test_kernel_summary_fields(self):
        text = kernel_summary(self._kernel())
        assert "kernel profile: optimized" in text
        assert "virtual time:" in text
        assert "counters:" in text

    def test_tree_truncates_wide_dirs(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/wide")
        for i in range(50):
            fd = kernel.sys.open(task, f"/wide/f{i}", O_CREAT | O_RDWR)
            kernel.sys.close(task, fd)
        tree = dcache_tree(kernel, max_children=10)
        assert "more" in tree

    def test_memory_report_consistency(self):
        kernel = self._kernel()
        memory = measure_kernel(kernel)
        assert memory.dentries == len(kernel.dcache)
        assert memory.total_bytes > memory.baseline_equivalent_bytes
        assert 0 < memory.overhead_fraction < 5


class TestCachePressureEquivalence:
    """Semantics must hold even when the dcache constantly evicts.

    The optimized kernel caches more objects (stubs, deep negatives,
    aliases), so under a tiny capacity its eviction pattern differs
    completely from the baseline's — results must not.
    """

    def _dual(self, capacity):
        return DualKernel((BASELINE.variant(dcache_capacity=capacity),
                           OPTIMIZED.variant(dcache_capacity=capacity)))

    def test_stat_storm_under_pressure(self):
        dual = self._dual(capacity=24)
        root = dual.spawn_task(uid=0, gid=0)
        dual.mkdir(root, "/d")
        for i in range(40):
            fd = dual.open(root, f"/d/f{i}", O_CREAT | O_RDWR)
            dual.close(root, fd)
        for _round in range(2):
            for i in range(40):
                assert dual.stat(root, f"/d/f{i}").filetype == "reg"
        dual.check_invariants()

    def test_negative_storm_under_pressure(self):
        dual = self._dual(capacity=16)
        root = dual.spawn_task(uid=0, gid=0)
        dual.mkdir(root, "/d")
        for _round in range(2):
            for i in range(30):
                with pytest.raises(errors.ENOENT):
                    dual.stat(root, f"/d/ghost{i}")
        dual.check_invariants()

    def test_readdir_under_pressure(self):
        dual = self._dual(capacity=20)
        root = dual.spawn_task(uid=0, gid=0)
        dual.mkdir(root, "/d")
        for i in range(35):
            fd = dual.open(root, f"/d/f{i}", O_CREAT | O_RDWR)
            dual.close(root, fd)
        first = dual.listdir(root, "/d")
        second = dual.listdir(root, "/d")
        assert len(first) == len(second) == 35
        dual.check_invariants()

    def test_rename_churn_under_pressure(self):
        dual = self._dual(capacity=20)
        root = dual.spawn_task(uid=0, gid=0)
        dual.mkdir(root, "/a")
        dual.mkdir(root, "/b")
        for i in range(15):
            fd = dual.open(root, f"/a/f{i}", O_CREAT | O_RDWR)
            dual.close(root, fd)
        for i in range(15):
            dual.rename(root, f"/a/f{i}", f"/b/g{i}")
            with pytest.raises(errors.ENOENT):
                dual.stat(root, f"/a/f{i}")
            assert dual.stat(root, f"/b/g{i}").filetype == "reg"
        dual.check_invariants()

    def test_pinned_survive_under_pressure(self):
        kernel = make_kernel("optimized", dcache_capacity=10)
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/held")
        fd = kernel.sys.open(task, "/held", 0)
        for i in range(60):
            f = kernel.sys.open(task, f"/f{i}", O_CREAT | O_RDWR)
            kernel.sys.close(task, f)
        # The open handle still works despite churn.
        assert kernel.sys.fstat(task, fd).filetype == "dir"
        kernel.sys.close(task, fd)
