"""Directed tests for the *at() syscall family and dirfd handling."""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_DIRECTORY, O_RDONLY, O_RDWR, errors


@pytest.fixture
def task(kernel):
    return kernel.spawn_task(uid=0, gid=0)


def _setup(kernel, task):
    sys = kernel.sys
    sys.mkdir(task, "/work")
    sys.mkdir(task, "/work/sub")
    fd = sys.open(task, "/work/data.txt", O_CREAT | O_RDWR)
    sys.write(task, fd, b"contents")
    sys.close(task, fd)
    return sys.open(task, "/work", O_RDONLY | O_DIRECTORY)


class TestFstatat:
    def test_single_component(self, kernel, task):
        dirfd = _setup(kernel, task)
        st = kernel.sys.fstatat(task, "data.txt", dirfd=dirfd)
        assert st.size == 8

    def test_multi_component(self, kernel, task):
        dirfd = _setup(kernel, task)
        fd = kernel.sys.open(task, "/work/sub/deep", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        st = kernel.sys.fstatat(task, "sub/deep", dirfd=dirfd)
        assert st.filetype == "reg"

    def test_absolute_path_ignores_dirfd(self, kernel, task):
        dirfd = _setup(kernel, task)
        fd = kernel.sys.open(task, "/elsewhere", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        st = kernel.sys.fstatat(task, "/elsewhere", dirfd=dirfd)
        assert st.filetype == "reg"

    def test_nofollow_flag(self, kernel, task):
        dirfd = _setup(kernel, task)
        kernel.sys.symlink(task, "data.txt", "/work/ln")
        follow = kernel.sys.fstatat(task, "ln", dirfd=dirfd)
        nofollow = kernel.sys.fstatat(task, "ln", dirfd=dirfd,
                                      follow=False)
        assert follow.filetype == "reg"
        assert nofollow.filetype == "lnk"

    def test_closed_dirfd(self, kernel, task):
        dirfd = _setup(kernel, task)
        kernel.sys.close(task, dirfd)
        with pytest.raises(errors.EBADF):
            kernel.sys.fstatat(task, "data.txt", dirfd=dirfd)

    def test_dirfd_of_regular_file(self, kernel, task):
        _setup(kernel, task)
        fd = kernel.sys.open(task, "/work/data.txt", O_RDONLY)
        with pytest.raises(errors.ENOTDIR):
            kernel.sys.fstatat(task, "anything", dirfd=fd)

    def test_enoent_relative(self, kernel, task):
        dirfd = _setup(kernel, task)
        with pytest.raises(errors.ENOENT):
            kernel.sys.fstatat(task, "ghost", dirfd=dirfd)


class TestOpenat:
    def test_openat_read(self, kernel, task):
        dirfd = _setup(kernel, task)
        fd = kernel.sys.openat(task, dirfd, "data.txt", O_RDONLY)
        assert kernel.sys.read(task, fd, 100) == b"contents"
        kernel.sys.close(task, fd)

    def test_openat_create(self, kernel, task):
        dirfd = _setup(kernel, task)
        fd = kernel.sys.openat(task, dirfd, "fresh", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        assert kernel.sys.stat(task, "/work/fresh").filetype == "reg"

    def test_mkdir_with_dirfd(self, kernel, task):
        dirfd = _setup(kernel, task)
        kernel.sys.mkdir(task, "newdir", dirfd=dirfd)
        assert kernel.sys.stat(task, "/work/newdir").filetype == "dir"

    def test_dirfd_survives_rename_of_dir(self, kernel, task):
        """POSIX: operations via a dirfd follow the directory object,
        not its path — even after the directory moves."""
        dirfd = _setup(kernel, task)
        kernel.sys.rename(task, "/work", "/moved")
        st = kernel.sys.fstatat(task, "data.txt", dirfd=dirfd)
        assert st.size == 8
        fd = kernel.sys.openat(task, dirfd, "via_old_fd",
                               O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        assert kernel.sys.stat(task, "/moved/via_old_fd").filetype == "reg"

    def test_dirfd_dotdot(self, kernel, task):
        dirfd = _setup(kernel, task)
        fd = kernel.sys.open(task, "/topfile", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        st = kernel.sys.fstatat(task, "../topfile", dirfd=dirfd)
        assert st.filetype == "reg"


class TestAtFastpath:
    def test_repeated_fstatat_hits_fastpath(self, optimized):
        task = optimized.spawn_task(uid=0, gid=0)
        dirfd = _setup(optimized, task)
        optimized.sys.fstatat(task, "data.txt", dirfd=dirfd)
        optimized.stats.reset()
        optimized.sys.fstatat(task, "data.txt", dirfd=dirfd)
        assert optimized.stats.get("fastpath_hit") == 1

    def test_dirfd_relative_and_absolute_agree(self, optimized):
        task = optimized.spawn_task(uid=0, gid=0)
        dirfd = _setup(optimized, task)
        rel = optimized.sys.fstatat(task, "data.txt", dirfd=dirfd)
        absolute = optimized.sys.stat(task, "/work/data.txt")
        assert rel.ino == absolute.ino
