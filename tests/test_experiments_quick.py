"""Fast experiment shape checks inside the unit suite.

The heavyweight sweeps run under benchmarks/; these are the experiments
cheap enough to gate every `pytest tests/` run.
"""

from __future__ import annotations

import pytest

from repro.bench import (exp_collisions, exp_dlfs, exp_fig2, exp_fig3,
                         exp_netfs, exp_space, exp_table4)


@pytest.mark.parametrize("runner", [
    exp_fig2.run,
    exp_fig3.run,
    exp_table4.run,
    exp_collisions.run,
    exp_space.run,
    exp_netfs.run,
    exp_dlfs.run,
], ids=["fig2", "fig3", "table4", "collisions", "space", "netfs", "dlfs"])
def test_quick_experiment_shapes(runner):
    report = runner(quick=True)
    failures = [c for c in report.checks if not c.passed]
    assert not failures, report.to_text()


def test_containment_experiment():
    report = exp_collisions.run_containment()
    assert report.all_passed, report.to_text()
