"""Directed tests for symlink alias dentries (§4.2 internals)."""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_RDWR, errors, make_kernel


@pytest.fixture
def kernel():
    return make_kernel("optimized")


@pytest.fixture
def task(kernel):
    return kernel.spawn_task(uid=0, gid=0)


def _mkfile(kernel, task, path, content=b""):
    fd = kernel.sys.open(task, path, O_CREAT | O_RDWR)
    if content:
        kernel.sys.write(task, fd, content)
    kernel.sys.close(task, fd)


def _dentry(kernel, *names):
    node = kernel.dcache.root_dentry(kernel.root_fs)
    for name in names:
        node = node.children[name]
    return node


class TestAliasCreation:
    def test_alias_child_under_link(self, kernel, task):
        kernel.sys.mkdir(task, "/real")
        _mkfile(kernel, task, "/real/f", b"x")
        kernel.sys.symlink(task, "/real", "/ln")
        kernel.sys.stat(task, "/ln/f")
        link = _dentry(kernel, "ln")
        alias = link.children.get("f")
        assert alias is not None and alias.is_alias
        assert alias.alias_target is _dentry(kernel, "real", "f")

    def test_alias_chain_two_deep(self, kernel, task):
        kernel.sys.mkdir(task, "/real")
        kernel.sys.mkdir(task, "/real/sub")
        _mkfile(kernel, task, "/real/sub/f", b"xy")
        kernel.sys.symlink(task, "/real", "/ln")
        assert kernel.sys.stat(task, "/ln/sub/f").size == 2
        link = _dentry(kernel, "ln")
        alias_sub = link.children["sub"]
        alias_f = alias_sub.children["f"]
        assert alias_sub.is_alias and alias_f.is_alias
        assert alias_f.alias_target is _dentry(kernel, "real", "sub", "f")
        # And the whole chain serves fastpath hits.
        kernel.stats.reset()
        kernel.sys.stat(task, "/ln/sub/f")
        assert kernel.stats.get("fastpath_hit") == 1

    def test_alias_fastpath_checks_both_pccs(self, kernel, task):
        """A fastpath alias hit probes the alias AND the target (§4.2)."""
        kernel.sys.mkdir(task, "/real")
        _mkfile(kernel, task, "/real/f")
        kernel.sys.symlink(task, "/real", "/ln")
        kernel.sys.stat(task, "/ln/f")
        kernel.costs.reset_attribution()
        kernel.sys.stat(task, "/ln/f")
        assert kernel.costs.count("pcc_probe") == 2

    def test_alias_survives_target_recreation(self, kernel, task):
        kernel.sys.mkdir(task, "/real")
        _mkfile(kernel, task, "/real/f", b"old")
        kernel.sys.symlink(task, "/real", "/ln")
        assert kernel.sys.stat(task, "/ln/f").size == 3
        kernel.sys.unlink(task, "/real/f")
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/ln/f")
        _mkfile(kernel, task, "/real/f", b"newer")
        assert kernel.sys.stat(task, "/ln/f").size == 5

    def test_alias_invalidated_by_link_removal(self, kernel, task):
        kernel.sys.mkdir(task, "/real")
        _mkfile(kernel, task, "/real/f")
        kernel.sys.symlink(task, "/real", "/ln")
        kernel.sys.stat(task, "/ln/f")
        kernel.sys.unlink(task, "/ln")
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/ln/f")
        assert kernel.sys.stat(task, "/real/f").filetype == "reg"

    def test_alias_invalidated_by_target_dir_rename(self, kernel, task):
        kernel.sys.mkdir(task, "/real")
        _mkfile(kernel, task, "/real/f", b"q")
        kernel.sys.symlink(task, "/real", "/ln")
        kernel.sys.stat(task, "/ln/f")
        kernel.sys.rename(task, "/real", "/moved")
        # The link now dangles; its alias must not serve stale hits.
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/ln/f")

    def test_second_symlink_in_path_resolves(self, kernel, task):
        """Only the first link grows an alias spine; later links still
        resolve correctly (just without alias caching)."""
        kernel.sys.mkdir(task, "/a")
        kernel.sys.mkdir(task, "/b")
        _mkfile(kernel, task, "/b/f", b"zz")
        kernel.sys.symlink(task, "/b", "/a/l2")
        kernel.sys.symlink(task, "/a", "/l1")
        for _ in range(3):
            assert kernel.sys.stat(task, "/l1/l2/f").size == 2


class TestLinkTargetSignature:
    def test_final_link_fastpath_double_probe(self, kernel, task):
        _mkfile(kernel, task, "/target", b"abc")
        kernel.sys.symlink(task, "/target", "/ln")
        kernel.sys.stat(task, "/ln")
        link = _dentry(kernel, "ln")
        assert link.fast is not None
        assert link.fast.link_target_state is not None

    def test_lstat_and_stat_coexist(self, kernel, task):
        _mkfile(kernel, task, "/target", b"abc")
        kernel.sys.symlink(task, "/target", "/ln")
        kernel.sys.stat(task, "/ln")
        kernel.sys.lstat(task, "/ln")
        kernel.stats.reset()
        assert kernel.sys.stat(task, "/ln").size == 3
        assert kernel.sys.lstat(task, "/ln").filetype == "lnk"
        assert kernel.stats.get("fastpath_hit") == 2

    def test_retargeted_path_followed_correctly(self, kernel, task):
        """New file created at the old target path: the stored target
        signature must find it (path semantics, not object identity)."""
        kernel.sys.mkdir(task, "/d")
        _mkfile(kernel, task, "/d/f", b"one")
        kernel.sys.symlink(task, "/d/f", "/ln")
        assert kernel.sys.stat(task, "/ln").size == 3
        kernel.sys.unlink(task, "/d/f")
        _mkfile(kernel, task, "/d/f", b"four")
        assert kernel.sys.stat(task, "/ln").size == 4
        kernel.stats.reset()
        assert kernel.sys.stat(task, "/ln").size == 4
        assert kernel.stats.get("fastpath_hit") == 1
