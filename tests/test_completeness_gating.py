"""Regression tests: DIR_COMPLETE must not be claimed on file systems
whose contents change outside the VFS (pseudo and network FSes).

Found as a real bug during development: after one full readdir of /proc,
the completeness flag turned provider-added entries into false ENOENTs.
"""

from __future__ import annotations

from repro import O_CREAT, O_RDWR, make_kernel
from repro.fs import base
from repro.fs.netfs import AfsLikeFs, ExportServer, NfsLikeFs
from repro.fs.pseudofs import PseudoFs


class TestPseudoFsGating:
    def _proc_kernel(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/proc")
        proc = PseudoFs(kernel.costs)
        pids = {"17": (base.S_IFDIR | 0o555, None)}
        proc.set_provider(proc.root_ino, lambda: dict(pids))
        kernel.sys.mount_fs(task, proc, "/proc")
        return kernel, task, pids

    def test_new_provider_entry_visible_after_listing(self):
        kernel, task, pids = self._proc_kernel()
        kernel.sys.listdir(task, "/proc")
        pids["99"] = (base.S_IFDIR | 0o555, None)
        assert kernel.sys.stat(task, "/proc/99").filetype == "dir"

    def test_proc_never_marked_complete(self):
        kernel, task, _pids = self._proc_kernel()
        kernel.stats.reset()  # setup's local mkdir set the flag once
        kernel.sys.listdir(task, "/proc")
        kernel.sys.listdir(task, "/proc")
        assert kernel.stats.get("dir_complete_set") == 0
        assert kernel.stats.get("readdir_cached") == 0

    def test_removed_provider_entry_disappears(self):
        kernel, task, pids = self._proc_kernel()
        assert kernel.sys.stat(task, "/proc/17").filetype == "dir"
        kernel.sys.listdir(task, "/proc")
        del pids["17"]
        # The cached positive dentry is revalidated... pseudo FS does not
        # revalidate, so the dcache may still claim existence — exactly
        # Linux's behaviour without d_revalidate.  Listing reflects truth:
        names = {n for n, _i, _t in kernel.sys.listdir(task, "/proc")}
        assert "17" not in names


class TestNetFsGating:
    def test_nfs_like_sees_new_server_files_after_listing(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/net")
        server = ExportServer(kernel.costs)
        fs = NfsLikeFs(server)
        kernel.sys.mount_fs(task, fs, "/net")
        kernel.sys.listdir(task, "/net")
        server.backing.create(fs.root_ino, "fresh", 0o644, 0, 0)
        assert kernel.sys.stat(task, "/net/fresh").filetype == "reg"

    def test_afs_like_mkdir_not_marked_complete(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/net")
        server = ExportServer(kernel.costs)
        fs = AfsLikeFs(server)
        kernel.sys.mount_fs(task, fs, "/net")
        kernel.sys.mkdir(task, "/net/d")
        # Another client writes into the new directory directly.
        d_ino = kernel.sys.stat(task, "/net/d").ino
        server.backing.create(d_ino, "other-client", 0o644, 0, 0)
        assert kernel.sys.stat(task,
                               "/net/d/other-client").filetype == "reg"

    def test_local_fs_still_marks_complete(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/local")
        fd = kernel.sys.open(task, "/local/f", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        assert kernel.stats.get("dir_complete_set") >= 1
        kernel.stats.reset()
        kernel.sys.listdir(task, "/local")
        assert kernel.stats.get("readdir_cached") == 1
