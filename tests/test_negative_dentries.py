"""Aggressive and deep negative dentry behaviours (§5.2)."""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_RDONLY, O_RDWR, errors, make_kernel
from repro.vfs.dentry import NEG_ENOTDIR


def _mkfile(kernel, task, path, content=b""):
    fd = kernel.sys.open(task, path, O_CREAT | O_RDWR)
    if content:
        kernel.sys.write(task, fd, content)
    kernel.sys.close(task, fd)


def _root_children(kernel):
    return kernel.dcache.root_dentry(kernel.root_fs).children


class TestNegativeOnRemoval:
    def test_unlink_leaves_negative(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        _mkfile(kernel, task, "/f")
        kernel.sys.unlink(task, "/f")
        dentry = _root_children(kernel).get("f")
        assert dentry is not None and dentry.is_negative
        kernel.stats.reset()
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/f")
        assert kernel.stats.get("fs_lookup") == 0

    def test_unlink_of_open_file_keeps_handle_working(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        _mkfile(kernel, task, "/f", b"still here")
        fd = kernel.sys.open(task, "/f", O_RDONLY)
        kernel.sys.unlink(task, "/f")
        # The path is negative...
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/f")
        # ...but the open handle still reads the data (Unix semantics).
        assert kernel.sys.read(task, fd, 100) == b"still here"
        kernel.sys.close(task, fd)

    def test_rename_leaves_negative_at_old_path(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        _mkfile(kernel, task, "/old")
        kernel.sys.rename(task, "/old", "/new")
        dentry = _root_children(kernel).get("old")
        assert dentry is not None and dentry.is_negative

    def test_reuse_after_unlink_lock_file_pattern(self):
        """The paper's motivating case: lock files recreated at the
        same path hit the cached negative and flip it positive."""
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        _mkfile(kernel, task, "/app.lock")
        for _ in range(3):
            kernel.sys.unlink(task, "/app.lock")
            dentry = _root_children(kernel)["app.lock"]
            assert dentry.is_negative
            _mkfile(kernel, task, "/app.lock")
            assert _root_children(kernel)["app.lock"] is dentry
            assert not dentry.is_negative

    def test_baseline_unlink_also_negative_when_unused(self):
        kernel = make_kernel("baseline")
        task = kernel.spawn_task(uid=0, gid=0)
        _mkfile(kernel, task, "/f")
        kernel.sys.unlink(task, "/f")
        dentry = _root_children(kernel).get("f")
        assert dentry is not None and dentry.is_negative

    def test_baseline_unlink_in_use_drops_dentry(self):
        kernel = make_kernel("baseline")
        task = kernel.spawn_task(uid=0, gid=0)
        _mkfile(kernel, task, "/f")
        fd = kernel.sys.open(task, "/f", O_RDONLY)
        kernel.sys.unlink(task, "/f")
        assert "f" not in _root_children(kernel)
        kernel.sys.close(task, fd)


class TestDeepNegatives:
    def test_chain_created_on_deep_miss(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/x/y/z")
        children = _root_children(kernel)
        x = children["x"]
        assert x.is_negative
        y = x.children["y"]
        z = y.children["z"]
        assert y.is_negative and z.is_negative

    def test_creation_over_negative_evicts_chain(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/x/y/z")
        _mkfile(kernel, task, "/x")  # x now a *file*
        x = _root_children(kernel)["x"]
        assert not x.is_negative
        assert not x.children  # deep chain evicted
        with pytest.raises(errors.ENOTDIR):
            kernel.sys.stat(task, "/x/y/z")

    def test_mkdir_over_negative_then_populate(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/x/y")
        kernel.sys.mkdir(task, "/x")
        _mkfile(kernel, task, "/x/y")
        assert kernel.sys.stat(task, "/x/y").filetype == "reg"

    def test_enotdir_chain_under_file(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        _mkfile(kernel, task, "/file")
        with pytest.raises(errors.ENOTDIR):
            kernel.sys.stat(task, "/file/a/b")
        file_dentry = _root_children(kernel)["file"]
        a = file_dentry.children["a"]
        assert a.neg_kind == NEG_ENOTDIR
        assert a.children["b"].neg_kind == NEG_ENOTDIR

    def test_unlink_file_drops_enotdir_children(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        _mkfile(kernel, task, "/file")
        with pytest.raises(errors.ENOTDIR):
            kernel.sys.stat(task, "/file/a")
        kernel.sys.unlink(task, "/file")
        file_dentry = _root_children(kernel)["file"]
        assert file_dentry.is_negative
        assert not file_dentry.children
        # The error for the deep path is now ENOENT, not ENOTDIR.
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/file/a")

    def test_config_off_creates_no_chain(self):
        kernel = make_kernel("optimized", deep_negative=False)
        task = kernel.spawn_task(uid=0, gid=0)
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/x/y/z")
        x = _root_children(kernel)["x"]
        assert x.is_negative
        assert not x.children


class TestNegativeCorrectness:
    def test_negative_invalidated_by_external_creation(self):
        """A file created later must be found despite the negative."""
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/d")
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/d/f")
        _mkfile(kernel, task, "/d/f", b"hi")
        assert kernel.sys.stat(task, "/d/f").size == 2
        # And the fastpath serves it now.
        kernel.stats.reset()
        kernel.sys.stat(task, "/d/f")
        assert kernel.stats.get("fastpath_hit") == 1

    def test_negative_under_renamed_dir_invalidated(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/a")
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/a/ghost")
        kernel.sys.rename(task, "/a", "/b")
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/b/ghost")
        _mkfile(kernel, task, "/b/ghost")
        assert kernel.sys.stat(task, "/b/ghost").filetype == "reg"

    def test_library_search_path_pattern(self):
        """The paper's §2.2 motivating case for negative dentries: a
        loader probing LD_LIBRARY_PATH directories caches each miss, so
        every later exec skips the low-level FS entirely."""
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        search_path = ["/opt/app/lib", "/usr/local/lib", "/usr/lib"]
        for directory in search_path:
            prefix = ""
            for part in directory.strip("/").split("/"):
                prefix = f"{prefix}/{part}"
                if not sys.exists(task, prefix):
                    sys.mkdir(task, prefix)
        _mkfile(kernel, task, "/usr/lib/libc.so")  # only the last hits

        def load(lib):
            for directory in search_path:
                try:
                    return sys.stat(task, f"{directory}/{lib}")
                except errors.ENOENT:
                    continue
            raise FileNotFoundError(lib)

        assert load("libc.so").filetype == "reg"
        kernel.stats.reset()
        for _ in range(5):
            assert load("libc.so").filetype == "reg"
        # 5 loads x 3 probes: all served from the cache, two of the
        # three from negative dentries, none from the FS.
        assert kernel.stats.get("fs_lookup") == 0
        assert kernel.stats.get("negative_hit") == 10
        assert kernel.stats.get("fastpath_hit") == 15

    def test_negative_rates_reported(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/d")
        kernel.stats.reset()
        for _ in range(4):
            try:
                kernel.sys.stat(task, "/d/nothing")
            except errors.ENOENT:
                pass
        assert kernel.stats.negative_rate() > 0.5
