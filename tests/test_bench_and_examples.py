"""Tests for the benchmark harness plumbing and the example scripts."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

from repro.bench.harness import Check, Report, gain_pct, render_table, speedup_pct

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestHarness:
    def _report(self):
        report = Report(exp_id="T", title="demo", paper_expectation="x",
                        headers=["a", "b"])
        report.add_row(1, 2.5)
        report.add_row("wide value", 10_000.0)
        report.check("passes", True, "ok")
        report.check("fails", False, "nope")
        return report

    def test_gain_pct(self):
        assert gain_pct(100.0, 75.0) == pytest.approx(25.0)
        assert gain_pct(0.0, 10.0) == 0.0

    def test_speedup_pct(self):
        assert speedup_pct(100.0, 110.0) == pytest.approx(10.0)

    def test_all_passed(self):
        report = self._report()
        assert not report.all_passed
        report.checks = [Check("only", True)]
        assert report.all_passed

    def test_text_render(self):
        text = self._report().to_text()
        assert "== T: demo" in text
        assert "[PASS] passes (ok)" in text
        assert "[FAIL] fails (nope)" in text

    def test_markdown_render(self):
        md = self._report().to_markdown()
        assert "### T: demo" in md
        assert "| a | b |" in md
        assert "10,000" in md

    def test_render_table_alignment(self):
        table = render_table(["col", "x"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_table4_runs_fast(self):
        from repro.bench import exp_table4
        report = exp_table4.run()
        assert report.all_passed, report.to_text()
        total = sum(row[2] for row in report.rows)
        assert total > 4000  # the codebase is substantial

    def test_fig3_runs_and_passes(self):
        from repro.bench import exp_fig3
        report = exp_fig3.run(quick=True)
        assert report.all_passed, report.to_text()

    def test_report_registry_complete(self):
        from repro.bench.report import EXPERIMENTS
        names = [name for name, _ in EXPERIMENTS]
        for expected in ("fig1", "fig2", "fig3", "fig6", "fig7", "fig8",
                         "fig9", "fig10", "table1", "table2", "table3",
                         "table4", "collisions", "pcc", "ablation"):
            assert expected in names


class TestExamples:
    @pytest.mark.parametrize("script", [
        "quickstart.py",
        "mail_server.py",
        "build_system.py",
        "sandboxed_service.py",
        "trace_replay.py",
        "backup_sync.py",
    ])
    def test_example_runs_clean(self, script, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", [script, "200"])
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
        output = capsys.readouterr().out
        assert "BUG" not in output
        assert output.strip()

    def test_quickstart_shows_fastpath(self, capsys):
        runpy.run_path(str(EXAMPLES / "quickstart.py"),
                       run_name="__main__")
        out = capsys.readouterr().out
        assert "fastpath hits: 1" in out
        assert "EACCES" in out
