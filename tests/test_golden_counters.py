"""Golden-counter regression test for the simulator's virtual costs.

The wall-clock performance work (component-hash memoization, path-parse
caching, the CostModel fast-charge path) must leave the *simulated* cost
accounting bit-identical: the reproduction's fidelity rests on the claim
that optimizations to the simulator's own speed change zero virtual
charges.  This test drives a scripted mixed workload — creates, warm
stats, symlinks, negative lookups, dot-dot walks, renames (invalidation),
readdir, unlink — through the :class:`DualKernel` oracle and asserts that
``CostModel.counts`` and the virtual clock match golden values captured
before the optimization pass.

If an intentional *cost-model* change (new primitive, recalibrated
charge, different algorithm) moves these numbers, regenerate the goldens
with::

    PYTHONPATH=src python -m tests.test_golden_counters

and include the new values in the same commit as the semantic change.
Wall-clock-only refactors must never need that.
"""

from __future__ import annotations

from repro import O_CREAT, O_RDWR, errors
from repro.testing import DualKernel


def run_golden_workload(dual: DualKernel):
    """Deterministic mixed workload exercising every hot-path shape."""
    root = dual.spawn_task(uid=0, gid=0)
    for d in ("/srv", "/srv/www", "/srv/www/static", "/srv/www/data",
              "/home", "/home/alice", "/home/alice/.cache"):
        dual.mkdir(root, d)
    for i in range(8):
        fd = dual.open(root, f"/srv/www/static/page{i}.html",
                       O_CREAT | O_RDWR)
        dual.write(root, fd, b"<html>" + b"x" * (11 * i))
        dual.close(root, fd)
    dual.symlink(root, "/srv/www", "/var_www")
    dual.symlink(root, "static", "/srv/www/assets")
    # Warm repeated stats: absolute, through both symlinks, and dot-dot.
    for _ in range(5):
        dual.stat(root, "/srv/www/static/page3.html")
        dual.stat(root, "/var_www/static/page5.html")
        dual.stat(root, "/srv/www/assets/page1.html")
        dual.stat(root, "/srv/www/data/../static/page0.html")
    # Negative lookups: repeated ENOENT and deep ENOTDIR tails.
    for _ in range(3):
        for missing in ("/srv/www/static/missing.html",
                        "/home/alice/.cache/nope/deep/er",
                        "/srv/www/static/page0.html/below"):
            try:
                dual.stat(root, missing)
            except errors.FsError:
                pass
    # readdir twice: cold fill then completeness-served.
    dual.listdir(root, "/srv/www/static")
    dual.listdir(root, "/srv/www/static")
    # Rename: directory move invalidates cached paths, then re-warm.
    dual.rename(root, "/srv/www/static", "/srv/www/public")
    for _ in range(3):
        dual.stat(root, "/srv/www/public/page3.html")
    # Metadata mutation (chmod bumps prefix-check coherence) + re-warm.
    dual.chmod(root, "/srv/www", 0o700)
    dual.stat(root, "/srv/www/public/page4.html")
    # Unlink and recreate (negative dentry churn).
    dual.unlink(root, "/srv/www/public/page7.html")
    try:
        dual.stat(root, "/srv/www/public/page7.html")
    except errors.FsError:
        pass
    fd = dual.open(root, "/srv/www/public/page7.html", O_CREAT | O_RDWR)
    dual.close(root, fd)
    dual.check_invariants()


def capture(dual: DualKernel):
    """(counts, now_ns) per kernel, in config order."""
    return [(dict(kernel.costs.counts), kernel.costs.now_ns)
            for kernel in dual.kernels]


#: Captured from the pre-optimization simulator (see module docstring).
GOLDEN_BASELINE_COUNTS = {
    'chain_compare': 224,
    'chmod_fixed': 1,
    'close_fd': 11,
    'component_hash': 229,
    'dentry_free': 1,
    'dentry_lock': 2,
    'disk_seek': 5,
    'disk_seq_block': 17,
    'fs_create': 18,
    'fs_dirblock_scan': 38,
    'fs_lookup_base': 20,
    'fs_readdir_entry': 16,
    'fs_rename': 1,
    'fs_setattr': 1,
    'fs_unlink': 1,
    'ht_probe': 224,
    'lookup_final': 48,
    'lookup_init': 58,
    'lru_touch': 224,
    'negative_dentry_alloc': 20,
    'open_install_fd': 11,
    'pagecache_hit': 128,
    'perm_check_dac': 252,
    'read_barrier': 229,
    'read_write_base': 8,
    'readdir_fixed': 2,
    'rename_fixed': 1,
    'seqlock_read': 229,
    'stat_fill': 24,
    'symlink_resolve': 10,
    'syscall_fixed': 80,
}
GOLDEN_BASELINE_NOW_NS = 2882191.31999999
GOLDEN_OPTIMIZED_COUNTS = {
    'cached_readdir_entry': 18,
    'chain_compare': 88,
    'chmod_fixed': 1,
    'close_fd': 11,
    'component_hash': 88,
    'dentry_free': 1,
    'dentry_lock': 2,
    'disk_seek': 5,
    'disk_seq_block': 17,
    'dlht_insert': 32,
    'dlht_probe': 63,
    'dotdot_extra_lookup': 5,
    'fastpath_init': 84,
    'fs_create': 18,
    'fs_dirblock_scan': 21,
    'fs_lookup_base': 3,
    'fs_readdir_entry': 14,
    'fs_rename': 1,
    'fs_setattr': 1,
    'fs_unlink': 1,
    'ht_probe': 88,
    'inval_counter_bump': 3,
    'inval_per_dentry': 27,
    'lookup_final': 55,
    'lru_touch': 95,
    'mount_flag_check': 24,
    'negative_dentry_alloc': 27,
    'open_install_fd': 11,
    'pagecache_hit': 102,
    'pcc_insert': 94,
    'pcc_probe': 45,
    'perm_check_dac': 111,
    'read_barrier': 88,
    'read_write_base': 8,
    'readdir_fixed': 2,
    'rename_fixed': 1,
    'seqlock_read': 88,
    'sig_compare': 63,
    'sig_hash': 224,
    'stat_fill': 24,
    'symlink_resolve': 2,
    'syscall_fixed': 80,
}
GOLDEN_OPTIMIZED_NOW_NS = 2876089.5199999968


def test_golden_counts_and_clock():
    dual = DualKernel()
    run_golden_workload(dual)
    (base_counts, base_ns), (opt_counts, opt_ns) = capture(dual)
    assert base_counts == GOLDEN_BASELINE_COUNTS
    assert base_ns == GOLDEN_BASELINE_NOW_NS
    assert opt_counts == GOLDEN_OPTIMIZED_COUNTS
    assert opt_ns == GOLDEN_OPTIMIZED_NOW_NS


def _regenerate() -> str:
    dual = DualKernel()
    run_golden_workload(dual)
    (base_counts, base_ns), (opt_counts, opt_ns) = capture(dual)
    lines = ["GOLDEN_BASELINE_COUNTS = {"]
    lines += [f"    {k!r}: {v}," for k, v in sorted(base_counts.items())]
    lines += ["}", f"GOLDEN_BASELINE_NOW_NS = {base_ns!r}",
              "GOLDEN_OPTIMIZED_COUNTS = {"]
    lines += [f"    {k!r}: {v}," for k, v in sorted(opt_counts.items())]
    lines += ["}", f"GOLDEN_OPTIMIZED_NOW_NS = {opt_ns!r}"]
    return "\n".join(lines)


if __name__ == "__main__":
    print(_regenerate())
