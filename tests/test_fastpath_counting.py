"""Operation-count tests: the fastpath's algorithmic claims.

Using the UNIT cost model (every primitive = 1 ns), these tests assert
the *counts* behind the paper's complexity arguments: the fastpath does a
constant number of hash-table probes and permission checks regardless of
path depth, while the baseline's grow linearly.
"""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_RDWR, errors, make_kernel
from repro.sim.costs import CostModel, UNIT


def _kernel(profile, **overrides):
    return make_kernel(profile, costs=CostModel(dict(UNIT)), **overrides)


def _deep_tree(kernel, task, depth, prefix="d"):
    path = ""
    for i in range(depth):
        path = f"{path}/{prefix}{i}"
        kernel.sys.mkdir(task, path)
    leaf = f"{path}/leaf"
    fd = kernel.sys.open(task, leaf, O_CREAT | O_RDWR)
    kernel.sys.close(task, fd)
    return leaf


def _counts_for_stat(kernel, task, path):
    kernel.sys.stat(task, path)  # warm
    kernel.sys.stat(task, path)
    kernel.costs.reset_attribution()
    kernel.sys.stat(task, path)
    return dict(kernel.costs.counts)


class TestConstantWorkFastpath:
    @pytest.mark.parametrize("depth", [1, 4, 8])
    def test_one_dlht_probe_any_depth(self, depth):
        kernel = _kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        leaf = _deep_tree(kernel, task, depth)
        counts = _counts_for_stat(kernel, task, leaf)
        assert counts.get("dlht_probe") == 1
        assert counts.get("pcc_probe") == 1
        assert counts.get("sig_compare") == 1

    @pytest.mark.parametrize("depth", [1, 4, 8])
    def test_no_per_component_permission_checks(self, depth):
        kernel = _kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        leaf = _deep_tree(kernel, task, depth)
        counts = _counts_for_stat(kernel, task, leaf)
        assert counts.get("perm_check_dac", 0) == 0
        assert counts.get("ht_probe", 0) == 0

    @pytest.mark.parametrize("depth", [1, 4, 8])
    def test_baseline_scales_linearly(self, depth):
        kernel = _kernel("baseline")
        task = kernel.spawn_task(uid=0, gid=0)
        leaf = _deep_tree(kernel, task, depth)
        counts = _counts_for_stat(kernel, task, leaf)
        assert counts.get("perm_check_dac") == depth + 1
        assert counts.get("ht_probe") == depth + 1
        assert counts.get("dlht_probe", 0) == 0

    def test_hashing_still_linear_in_bytes(self):
        kernel = _kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        shallow = _deep_tree(kernel, task, 1, prefix="s")
        counts_shallow = _counts_for_stat(kernel, task, shallow)
        deep = _deep_tree(kernel, task, 8, prefix="e")
        counts_deep = _counts_for_stat(kernel, task, deep)
        assert counts_deep.get("sig_hash") > counts_shallow.get("sig_hash")


class TestFastpathFallbacks:
    def test_first_lookup_misses_then_hits(self):
        kernel = _kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/d")
        fd = kernel.sys.open(task, "/d/f", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        kernel.drop_caches()
        kernel.stats.reset()
        kernel.sys.stat(task, "/d/f")
        assert kernel.stats.get("fastpath_miss") == 1
        kernel.sys.stat(task, "/d/f")
        assert kernel.stats.get("fastpath_hit") == 1

    def test_negative_fastpath_hit(self):
        kernel = _kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/missing")
        kernel.stats.reset()
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/missing")
        assert kernel.stats.get("fastpath_hit") == 1
        assert kernel.stats.get("negative_hit") == 1
        assert kernel.stats.get("fs_lookup") == 0

    def test_deep_negative_fastpath_hit(self):
        kernel = _kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/gone/a/b/c")
        kernel.stats.reset()
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/gone/a/b/c")
        assert kernel.stats.get("fastpath_hit") == 1
        assert kernel.stats.get("fs_lookup") == 0

    def test_deep_negative_disabled_misses(self):
        kernel = _kernel("optimized", deep_negative=False)
        task = kernel.spawn_task(uid=0, gid=0)
        for _ in range(2):
            with pytest.raises(errors.ENOENT):
                kernel.sys.stat(task, "/gone/a/b/c")
        # Without deep negatives the full path never enters the DLHT.
        assert kernel.stats.get("fastpath_hit") == 0

    def test_enotdir_deep_negative(self):
        kernel = _kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        fd = kernel.sys.open(task, "/file", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        with pytest.raises(errors.ENOTDIR):
            kernel.sys.stat(task, "/file/below/deeper")
        kernel.stats.reset()
        with pytest.raises(errors.ENOTDIR):
            kernel.sys.stat(task, "/file/below/deeper")
        assert kernel.stats.get("fastpath_hit") == 1

    def test_force_fastpath_miss_config(self):
        kernel = _kernel("optimized", force_fastpath_miss=True)
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/d")
        for _ in range(3):
            kernel.sys.stat(task, "/d")
        assert kernel.stats.get("fastpath_hit") == 0
        assert kernel.stats.get("fastpath_miss") >= 3

    def test_stub_falls_back_once(self):
        kernel = _kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/d")
        fd = kernel.sys.open(task, "/d/f", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        kernel.drop_caches()
        kernel.sys.listdir(task, "/d")  # creates a stub for f
        kernel.stats.reset()
        kernel.sys.stat(task, "/d/f")  # stub fill: getattr, no fs_lookup
        assert kernel.stats.get("stub_fill") == 1
        assert kernel.stats.get("fs_lookup") == 0

    def test_symlink_followed_via_stored_target_signature(self):
        kernel = _kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        fd = kernel.sys.open(task, "/real", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        kernel.sys.symlink(task, "/real", "/ln")
        kernel.sys.stat(task, "/ln")  # populate link target state
        kernel.stats.reset()
        kernel.costs.reset_attribution()
        kernel.sys.stat(task, "/ln")
        assert kernel.stats.get("fastpath_hit") == 1
        # Two DLHT probes: the link path, then the stored target sig.
        assert kernel.costs.count("dlht_probe") == 2


class TestRelativeLookups:
    def test_relative_resumes_hash_state(self):
        """Relative lookups hash only the relative suffix (§3.1)."""
        kernel = _kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        leaf = _deep_tree(kernel, task, 6)
        parent = leaf.rsplit("/", 1)[0]
        kernel.sys.chdir(task, parent)
        kernel.sys.stat(task, "leaf")
        kernel.sys.stat(task, "leaf")
        kernel.costs.reset_attribution()
        kernel.sys.stat(task, "leaf")
        # Only "leaf" (4 chars + separator) was hashed: one sig_hash call.
        assert kernel.costs.count("sig_hash") == 1
        assert kernel.costs.count("dlht_probe") == 1

    def test_relative_equals_absolute_result(self):
        kernel = _kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        leaf = _deep_tree(kernel, task, 3)
        parent = leaf.rsplit("/", 1)[0]
        kernel.sys.chdir(task, parent)
        assert kernel.sys.stat(task, "leaf").ino == \
            kernel.sys.stat(task, leaf).ino
