"""Resolution memo (:mod:`repro.core.resmemo`) fidelity and invariants.

The memo is a host-side wall-clock cache: with it on, whole path
resolutions are answered by replaying recorded charge vectors instead of
re-running the resolve machinery.  The contract these tests pin is
*bit-identical virtual behaviour*: every virtual cost, every ``Stats``
counter, and every syscall outcome must be exactly equal with the memo
on and off, on all three kernel profiles, under arbitrary interleavings
of lookups and mutations.

Coverage:

* memo-on vs memo-off golden differential over a mixed workload
  (repeated hot stats through record/confirm/replay, renames, chmod,
  chown, unlink, symlink, ENOENT probes) — exact float equality of the
  virtual clock, per-primitive/per-scope charge tables, call counts,
  and the full ``Stats`` snapshot;
* 20 seeded mutation-heavy schedules through
  :class:`repro.testing.scheduler.ConcurrentRunner`, with post-run
  agreement between memoized answers and memo-flushed re-resolution;
* a hypothesis sweep over stat/rename/create/unlink/chmod
  interleavings, differential against a memo-off twin;
* snapshot-restore fidelity with a warm memo (the memo is dropped on
  clone; restored kernels re-record with identical virtual charges);
* the ``DcacheConfig.resolution_memo`` switch and capacity bound.
"""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_RDWR, errors, make_kernel
from repro.sim.snapshot import KernelSnapshot
from repro.testing.dual import _check_kernel_invariants
from repro.testing.races import assert_fastpath_consistent
from repro.testing.scheduler import ConcurrentRunner, normalize_stat
from repro.workloads import lmbench

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the image
    HAVE_HYPOTHESIS = False

PROFILES = ("baseline", "optimized", "optimized-lazy")


def _fingerprint(kernel):
    """Everything virtual: exact equality means bit-identical behaviour."""
    costs = kernel.costs
    return (costs.now_ns, dict(costs.counts), dict(costs.by_primitive),
            dict(costs.by_scope), kernel.stats.snapshot())


def _try_stat(kernel, task, path):
    try:
        return normalize_stat(kernel.sys.stat(task, path))
    except errors.FsError as exc:
        return ("err", type(exc).__name__, exc.errno, str(exc))


def _mkfile(kernel, task, path, content=b""):
    fd = kernel.sys.open(task, path, O_CREAT | O_RDWR)
    if content:
        kernel.sys.write(task, fd, content)
    kernel.sys.close(task, fd)


def _mixed_workload(kernel, task):
    """Lookup-heavy workload with mutations between hot phases.

    Every hot path is resolved at least four times per phase so each
    memo entry walks the full record -> confirm -> replay lifecycle,
    and every mutation class the memo must survive (rename, chmod,
    chown, unlink, negative probes) sits between phases.  Returns all
    observable outcomes so a memo-off twin can be compared exactly.
    """
    sys = kernel.sys
    out = []
    sys.mkdir(task, "/m")
    sys.mkdir(task, "/m/dir")
    for i in range(4):
        _mkfile(kernel, task, f"/m/dir/f{i}", b"x" * (i + 1))
    sys.symlink(task, "/m/dir/f0", "/m/ln")
    hot = [f"/m/dir/f{i}" for i in range(4)] + ["/m/ln", "/m/dir"]
    for _rep in range(4):
        for path in hot:
            out.append(_try_stat(kernel, task, path))
        out.append(_try_stat(kernel, task, "/m/dir/missing"))
    sys.rename(task, "/m/dir", "/m/dir2")
    for _rep in range(3):
        for i in range(4):
            out.append(_try_stat(kernel, task, f"/m/dir2/f{i}"))
        out.append(_try_stat(kernel, task, "/m/dir/f0"))   # now ENOENT
    sys.chmod(task, "/m/dir2", 0o700)
    user = kernel.spawn_task(uid=1000, gid=1000)
    for _rep in range(3):
        out.append(_try_stat(kernel, user, "/m/dir2/f1"))  # EACCES
        out.append(_try_stat(kernel, task, "/m/dir2/f1"))
    sys.chown(task, "/m/dir2/f2", 1000, 1000)
    for _rep in range(3):
        out.append(_try_stat(kernel, task, "/m/dir2/f2"))
    sys.unlink(task, "/m/dir2/f3")
    for _rep in range(3):
        out.append(_try_stat(kernel, task, "/m/dir2/f3"))  # negative
    out.append(sorted(sys.listdir(task, "/m/dir2")))
    return out


# -- golden differential ---------------------------------------------------

class TestGoldenDifferential:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_memo_on_off_bit_identical(self, profile):
        on = make_kernel(profile)
        off = make_kernel(profile, resolution_memo=False)
        assert on.memo is not None
        assert off.memo is None
        out_on = _mixed_workload(on, on.spawn_task(uid=0, gid=0))
        out_off = _mixed_workload(off, off.spawn_task(uid=0, gid=0))
        assert out_on == out_off
        assert _fingerprint(on) == _fingerprint(off)
        # The equality above is vacuous unless replays actually ran.
        assert on.memo.hits > 0
        assert on.memo.flushes > 0

    @pytest.mark.parametrize("profile", PROFILES)
    def test_exec_compiled_replay_bit_identical(self, profile):
        """The exec-generated replay function (installed once an entry
        has replayed ``_EXEC_AFTER`` times) charges bit-identically to
        the interpreted replay path it specializes."""
        from repro.core.resmemo import ResolutionMemo

        def workload(kernel, task):
            kernel.sys.mkdir(task, "/d")
            _mkfile(kernel, task, "/d/f")
            out = []
            for _ in range(12):  # far past _EXEC_AFTER
                out.append(kernel.sys.stat(task, "/d/f"))
                out.append(_try_stat(kernel, task, "/d/missing"))
            return out

        interp = make_kernel(profile)
        execed = make_kernel(profile)
        orig = ResolutionMemo._EXEC_AFTER
        ResolutionMemo._EXEC_AFTER = 1 << 30  # interpreted forever
        try:
            out_i = workload(interp, interp.spawn_task(uid=0, gid=0))
        finally:
            ResolutionMemo._EXEC_AFTER = orig
        out_e = workload(execed, execed.spawn_task(uid=0, gid=0))
        assert out_i == out_e
        assert _fingerprint(interp) == _fingerprint(execed)
        # Vacuous unless the exec path actually engaged on the candidate
        # (and stayed off on the reference).
        assert any(e.compiled is not None and e.compiled[5] is not None
                   for e in execed.memo._entries.values())
        assert all(e.compiled is None or e.compiled[5] is None
                   for e in interp.memo._entries.values())

    @pytest.mark.parametrize("profile", PROFILES)
    def test_flush_midstream_changes_nothing_virtual(self, profile):
        """An explicit flush at an arbitrary point is virtually invisible."""
        plain = make_kernel(profile)
        flushed = make_kernel(profile)
        t_plain = plain.spawn_task(uid=0, gid=0)
        t_flushed = flushed.spawn_task(uid=0, gid=0)
        for kernel, task in ((plain, t_plain), (flushed, t_flushed)):
            kernel.sys.mkdir(task, "/d")
            _mkfile(kernel, task, "/d/f")
            for _ in range(4):
                kernel.sys.stat(task, "/d/f")
        flushed.memo.flush()
        for kernel, task in ((plain, t_plain), (flushed, t_flushed)):
            for _ in range(4):
                kernel.sys.stat(task, "/d/f")
        assert _fingerprint(plain) == _fingerprint(flushed)


# -- concurrent schedules --------------------------------------------------

def _stat_op(kernel, task, path):
    def op():
        return kernel.sys.stat(task, path)
    return op


class TestConcurrentSchedules:
    @pytest.mark.parametrize("seed", range(20))
    def test_mutation_heavy_schedule(self, seed):
        """Memoized answers survive arbitrary hook-level interleavings.

        The memo is warmed before the schedule so live entries exist for
        the rename/chmod/create/unlink storm to invalidate mid-walk;
        afterwards, every probe must answer identically through the memo
        and through a memo-flushed real resolution.
        """
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/s")
        sys.mkdir(task, "/s/d0")
        _mkfile(kernel, task, "/s/d0/a", b"a")
        _mkfile(kernel, task, "/s/d0/b", b"b")
        for _ in range(3):
            for path in ("/s/d0/a", "/s/d0/b", "/s/d0", "/s/d0/gone"):
                _try_stat(kernel, task, path)
        assert len(kernel.memo) > 0

        runner = ConcurrentRunner(kernel, seed)
        outcomes = runner.run([
            _stat_op(kernel, task, "/s/d0/a"),
            _stat_op(kernel, task, "/s/d0/b"),
            _stat_op(kernel, task, "/s/d1/a"),
            _stat_op(kernel, task, "/s/d0/gone"),
            lambda: sys.rename(task, "/s/d0", "/s/d1"),
            lambda: sys.chmod(task, "/s/d1", 0o700),
            lambda: _mkfile(kernel, task, "/s/d0/new"),
            lambda: sys.unlink(task, "/s/d1/b"),
        ])
        assert all(kind in ("ok", "err") for kind, _ in outcomes)

        probes = ["/s/d0/a", "/s/d0/b", "/s/d0/new", "/s/d0/gone",
                  "/s/d1/a", "/s/d1/b", "/s/d0", "/s/d1"]
        memoized = [_try_stat(kernel, task, p) for p in probes]
        kernel.memo.flush()
        resolved = [_try_stat(kernel, task, p) for p in probes]
        assert memoized == resolved
        assert_fastpath_consistent(kernel, task, probes)
        _check_kernel_invariants(kernel)


# -- hypothesis sweep ------------------------------------------------------

_H_TOKENS = (
    [("stat", p) for p in
     ("/h/d/a", "/h/d/b", "/h/d", "/h/e/a", "/h/e", "/h/d/nope")]
    + [("rename", "/h/d", "/h/e"), ("rename", "/h/e", "/h/d"),
       ("create", "/h/d/a"), ("create", "/h/e/c"),
       ("unlink", "/h/d/a"), ("unlink", "/h/e/c"),
       ("chmod", "/h/d", 0o700), ("chmod", "/h/d", 0o755)]
)


def _h_apply(kernel, task, op):
    sys = kernel.sys
    try:
        if op[0] == "stat":
            return normalize_stat(sys.stat(task, op[1]))
        if op[0] == "rename":
            sys.rename(task, op[1], op[2])
        elif op[0] == "create":
            _mkfile(kernel, task, op[1])
        elif op[0] == "unlink":
            sys.unlink(task, op[1])
        elif op[0] == "chmod":
            sys.chmod(task, op[1], op[2])
        return "ok"
    except errors.FsError as exc:
        return ("err", type(exc).__name__, exc.errno)


if HAVE_HYPOTHESIS:
    @given(ops=st.lists(st.sampled_from(_H_TOKENS), min_size=1,
                        max_size=30),
           profile=st.sampled_from(PROFILES))
    @settings(max_examples=25, deadline=None)
    def test_hypothesis_interleavings(ops, profile):
        """Random stat/mutation interleavings: memo-on == memo-off.

        Each generated sequence runs three times back to back so memo
        entries recorded in pass one are confirmed in pass two and
        replayed in pass three — the differential covers every stage of
        the entry lifecycle, not just cold recording.
        """
        on = make_kernel(profile)
        off = make_kernel(profile, resolution_memo=False)
        results = []
        for kernel in (on, off):
            task = kernel.spawn_task(uid=0, gid=0)
            kernel.sys.mkdir(task, "/h")
            kernel.sys.mkdir(task, "/h/d")
            _mkfile(kernel, task, "/h/d/a", b"1")
            _mkfile(kernel, task, "/h/d/b", b"2")
            out = []
            for _rep in range(3):
                for op in ops:
                    out.append(_h_apply(kernel, task, op))
            results.append((out, _fingerprint(kernel)))
        assert results[0] == results[1]
else:  # pragma: no cover - hypothesis is in the image
    @pytest.mark.skip(reason="hypothesis not installed")
    def test_hypothesis_interleavings():
        pass


# -- snapshot fidelity -----------------------------------------------------

class TestSnapshotFidelity:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_warm_memo_dropped_and_refilled_identically(self, profile):
        """Snapshot/restore with a warm memo: dropped, then re-recorded.

        ``ResolutionMemo.__deepcopy__`` drops all entries on clone, so a
        restored kernel starts with an empty memo wired to the *copied*
        caches — and must charge exactly what the original (continuing
        with its warm, confirmed entries) charges for the same ops.
        """
        kernel = make_kernel(profile)
        task = lmbench.prepare_lookup_tree(kernel)
        for _ in range(4):
            kernel.sys.stat(task, lmbench.LONG_PATH)
        assert len(kernel.memo) > 0
        assert kernel.memo.hits > 0

        snap = KernelSnapshot(kernel, task)
        k1, t1 = snap.restore()
        assert k1.memo is not None
        assert k1.memo is not kernel.memo
        assert len(k1.memo) == 0
        assert k1.memo.hits == 0 and k1.memo.flushes == 0
        assert k1.dcache.memo is k1.memo
        assert k1.coherence.memo is k1.memo

        def run(k, t):
            for _ in range(4):
                k.sys.stat(t, lmbench.LONG_PATH)
            k.sys.mkdir(t, "/fresh")
            k.sys.stat(t, "/fresh")
            k.sys.rmdir(t, "/fresh")
            _try_stat(k, t, "/fresh")

        k2, t2 = snap.restore()
        run(k1, t1)        # cold memo: records + confirms
        run(k2, t2)        # cold memo, independent copy
        run(kernel, task)  # warm memo: replays
        assert _fingerprint(k1) == _fingerprint(k2)
        assert _fingerprint(k1) == _fingerprint(kernel)


# -- switch, capacity, counters --------------------------------------------

class TestSwitchAndBounds:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_switch_wiring(self, profile):
        on = make_kernel(profile)
        assert on.memo is not None
        assert on.dcache.memo is on.memo
        assert on.coherence.memo is on.memo
        off = make_kernel(profile, resolution_memo=False)
        assert off.memo is None
        assert off.dcache.memo is None
        assert off.coherence.memo is None

    def test_capacity_bound(self):
        kernel = make_kernel("optimized", resolution_memo_capacity=2)
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/c")
        for i in range(6):
            _mkfile(kernel, task, f"/c/f{i}")
        for _rep in range(3):
            for i in range(6):
                kernel.sys.stat(task, f"/c/f{i}")
        assert len(kernel.memo) <= 2

    def test_counters_move(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/t")
        _mkfile(kernel, task, "/t/f")
        for _ in range(5):
            kernel.sys.stat(task, "/t/f")
        assert kernel.memo.hits > 0
        flushes = kernel.memo.flushes
        kernel.sys.rename(task, "/t/f", "/t/g")
        assert kernel.memo.flushes > flushes
        assert len(kernel.memo) == 0
