"""Network file system tests (§4.3: NFS-like vs AFS-like clients)."""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_RDWR, errors, make_kernel
from repro.fs.netfs import (AfsLikeFs, ExportServer, NfsLikeFs,
                            attach_callback_invalidation)


def _mount_net(kernel, fs_cls, path="/net"):
    task = kernel.spawn_task(uid=0, gid=0)
    server = ExportServer(kernel.costs)
    fs = fs_cls(server)
    kernel.sys.mkdir(task, path)
    kernel.sys.mount_fs(task, fs, path)
    return task, server, fs


class TestNfsLike:
    def test_basic_operations(self, kernel):
        task, _server, _fs = _mount_net(kernel, NfsLikeFs)
        sys = kernel.sys
        sys.mkdir(task, "/net/dir")
        fd = sys.open(task, "/net/dir/f", O_CREAT | O_RDWR)
        sys.write(task, fd, b"over the wire")
        sys.close(task, fd)
        assert sys.stat(task, "/net/dir/f").size == 13

    def test_every_cached_hit_revalidates(self, kernel):
        task, server, _fs = _mount_net(kernel, NfsLikeFs)
        sys = kernel.sys
        fd = sys.open(task, "/net/f", O_CREAT | O_RDWR)
        sys.close(task, fd)
        sys.stat(task, "/net/f")
        rpcs_before = server.rpc_count
        sys.stat(task, "/net/f")  # cached — but must still RPC
        assert server.rpc_count > rpcs_before
        assert kernel.stats.get("revalidate") >= 1

    def test_sees_server_side_changes(self, kernel):
        task, server, fs = _mount_net(kernel, NfsLikeFs)
        sys = kernel.sys
        with pytest.raises(errors.ENOENT):
            sys.stat(task, "/net/appeared")
        server.backing.create(fs.root_ino, "appeared", 0o644, 0, 0)
        # Close-to-open: the next lookup revalidates and finds it.
        assert sys.stat(task, "/net/appeared").filetype == "reg"
        server.backing.unlink(fs.root_ino, "appeared")
        with pytest.raises(errors.ENOENT):
            sys.stat(task, "/net/appeared")

    def test_sees_server_side_attr_changes(self, kernel):
        task, server, fs = _mount_net(kernel, NfsLikeFs)
        sys = kernel.sys
        fd = sys.open(task, "/net/f", O_CREAT | O_RDWR)
        sys.close(task, fd)
        ino = sys.stat(task, "/net/f").ino
        server.backing.setattr(ino, mode=0o600)
        assert sys.stat(task, "/net/f").mode & 0o777 == 0o600

    def test_optimized_never_fastpaths_nfs(self, optimized):
        task, _server, _fs = _mount_net(optimized, NfsLikeFs)
        sys = optimized.sys
        fd = sys.open(task, "/net/f", O_CREAT | O_RDWR)
        sys.close(task, fd)
        for _ in range(3):
            sys.stat(task, "/net/f")
        optimized.stats.reset()
        sys.stat(task, "/net/f")
        assert optimized.stats.get("fastpath_hit") == 0
        # The local prefix (/) is unaffected: local files still fastpath.
        fd = sys.open(task, "/local", O_CREAT | O_RDWR)
        sys.close(task, fd)
        sys.stat(task, "/local")
        optimized.stats.reset()
        sys.stat(task, "/local")
        assert optimized.stats.get("fastpath_hit") == 1

    def test_equivalent_across_kernels(self):
        from repro.core.kernel import BASELINE, OPTIMIZED
        from repro.testing import DualKernel

        dual = DualKernel((BASELINE, OPTIMIZED))
        root = dual.spawn_task(uid=0, gid=0)
        dual.mkdir(root, "/net")
        for kernel, task in zip(dual.kernels, dual.tasks[root]):
            kernel.sys.mount_fs(task, NfsLikeFs(ExportServer(kernel.costs)),
                                "/net")
        fd = dual.open(root, "/net/f", O_CREAT | O_RDWR)
        dual.close(root, fd)
        dual.stat(root, "/net/f")
        dual.stat(root, "/net/f")
        dual.rename(root, "/net/f", "/net/g")
        with pytest.raises(errors.ENOENT):
            dual.stat(root, "/net/f")
        dual.check_invariants()


class TestAfsLike:
    def test_fastpath_works_on_afs(self, optimized):
        task, _server, fs = _mount_net(optimized, AfsLikeFs)
        attach_callback_invalidation(optimized, fs)
        sys = optimized.sys
        fd = sys.open(task, "/net/f", O_CREAT | O_RDWR)
        sys.close(task, fd)
        sys.stat(task, "/net/f")
        optimized.stats.reset()
        sys.stat(task, "/net/f")
        assert optimized.stats.get("fastpath_hit") == 1
        assert optimized.stats.get("revalidate") == 0

    def test_cached_hits_cost_no_rpc(self, optimized):
        task, server, fs = _mount_net(optimized, AfsLikeFs)
        attach_callback_invalidation(optimized, fs)
        sys = optimized.sys
        fd = sys.open(task, "/net/f", O_CREAT | O_RDWR)
        sys.close(task, fd)
        sys.stat(task, "/net/f")
        rpcs = server.rpc_count
        sys.stat(task, "/net/f")
        assert server.rpc_count == rpcs

    def test_callback_break_invalidates(self, optimized):
        task, server, fs = _mount_net(optimized, AfsLikeFs)
        attach_callback_invalidation(optimized, fs)
        sys = optimized.sys
        fd = sys.open(task, "/net/f", O_CREAT | O_RDWR)
        sys.write(task, fd, b"v1")
        sys.close(task, fd)
        assert sys.stat(task, "/net/f").size == 2
        ino = sys.stat(task, "/net/f").ino
        # Another client deletes and recreates the file on the server.
        server.server_unlink(fs.root_ino, "f")
        with pytest.raises(errors.ENOENT):
            sys.stat(task, "/net/f")
        server.server_create(fs.root_ino, "f", b"version2")
        assert sys.stat(task, "/net/f").size == 8
        assert sys.stat(task, "/net/f").ino != ino

    def test_afs_beats_nfs_on_warm_lookups(self):
        """§4.3's expectation: the optimizations benefit a stateful
        protocol; the stateless one pays an RTT per component forever."""
        latencies = {}
        for fs_cls in (NfsLikeFs, AfsLikeFs):
            kernel = make_kernel("optimized")
            task, _server, fs = _mount_net(kernel, fs_cls)
            if fs_cls is AfsLikeFs:
                attach_callback_invalidation(kernel, fs)
            sys = kernel.sys
            sys.mkdir(task, "/net/a")
            fd = sys.open(task, "/net/a/f", O_CREAT | O_RDWR)
            sys.close(task, fd)
            sys.stat(task, "/net/a/f")
            sys.stat(task, "/net/a/f")
            start = kernel.now_ns
            sys.stat(task, "/net/a/f")
            latencies[fs_cls.fstype] = kernel.now_ns - start
        assert latencies["afs-like"] * 50 < latencies["nfs-like"]
