"""Directory completeness caching behaviours (§5.1)."""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_DIRECTORY, O_RDONLY, O_RDWR, errors, make_kernel


@pytest.fixture
def kernel():
    return make_kernel("optimized")


@pytest.fixture
def task(kernel):
    return kernel.spawn_task(uid=0, gid=0)


def _root_child(kernel, name):
    return kernel.dcache.root_dentry(kernel.root_fs).children[name]


def _mkfile(kernel, task, path):
    fd = kernel.sys.open(task, path, O_CREAT | O_RDWR)
    kernel.sys.close(task, fd)


class TestFlagLifecycle:
    def test_mkdir_sets_complete(self, kernel, task):
        kernel.sys.mkdir(task, "/fresh")
        assert _root_child(kernel, "fresh").dir_complete
        assert kernel.stats.get("dir_complete_set") == 1

    def test_full_readdir_sets_complete(self, kernel, task):
        kernel.sys.mkdir(task, "/d")
        _mkfile(kernel, task, "/d/f")
        kernel.drop_caches()
        kernel.sys.listdir(task, "/d")
        assert _root_child(kernel, "d").dir_complete

    def test_seeked_sequence_does_not_set(self, kernel, task):
        kernel.sys.mkdir(task, "/d")
        for i in range(5):
            _mkfile(kernel, task, f"/d/f{i}")
        kernel.drop_caches()
        fd = kernel.sys.open(task, "/d", O_RDONLY | O_DIRECTORY)
        kernel.sys.getdents(task, fd, 2)
        kernel.sys.lseek(task, fd, 3)
        while kernel.sys.getdents(task, fd, 2):
            pass
        kernel.sys.close(task, fd)
        assert not _root_child(kernel, "d").dir_complete

    def test_partial_sequence_does_not_set(self, kernel, task):
        kernel.sys.mkdir(task, "/d")
        for i in range(5):
            _mkfile(kernel, task, f"/d/f{i}")
        kernel.drop_caches()
        fd = kernel.sys.open(task, "/d", O_RDONLY | O_DIRECTORY)
        kernel.sys.getdents(task, fd, 2)  # never reaches the end
        kernel.sys.close(task, fd)
        assert not _root_child(kernel, "d").dir_complete

    def test_rewind_and_complete(self, kernel, task):
        kernel.sys.mkdir(task, "/d")
        for i in range(4):
            _mkfile(kernel, task, f"/d/f{i}")
        kernel.drop_caches()
        fd = kernel.sys.open(task, "/d", O_RDONLY | O_DIRECTORY)
        kernel.sys.getdents(task, fd, 2)
        kernel.sys.lseek(task, fd, 0)  # full restart, re-eligible
        while kernel.sys.getdents(task, fd, 3):
            pass
        kernel.sys.close(task, fd)
        assert _root_child(kernel, "d").dir_complete

    def test_baseline_never_sets(self):
        kernel = make_kernel("baseline")
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/d")
        kernel.sys.listdir(task, "/d")
        assert not _root_child(kernel, "d").dir_complete


class TestServingFromCache:
    def test_second_listing_served_cached(self, kernel, task):
        kernel.sys.mkdir(task, "/d")
        for i in range(8):
            _mkfile(kernel, task, f"/d/f{i}")
        kernel.sys.listdir(task, "/d")
        kernel.stats.reset()
        listing = kernel.sys.listdir(task, "/d")
        assert len(listing) == 8
        assert kernel.stats.get("readdir_cached") == 1
        assert kernel.stats.get("readdir_fs") == 0

    def test_miss_in_complete_dir_is_proven_enoent(self, kernel, task):
        kernel.sys.mkdir(task, "/d")
        kernel.stats.reset()
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/d/absent")
        assert kernel.stats.get("dir_complete_elide") == 1
        assert kernel.stats.get("fs_lookup") == 0

    def test_creation_in_complete_dir_elides_fs_lookup(self, kernel, task):
        kernel.sys.mkdir(task, "/d")
        kernel.stats.reset()
        _mkfile(kernel, task, "/d/newfile")
        assert kernel.stats.get("dir_complete_elide") == 1
        # the create itself of course calls the FS, but no lookup did
        assert kernel.stats.get("fs_lookup") == 0

    def test_interleaved_create_keeps_flag_and_listing(self, kernel, task):
        kernel.sys.mkdir(task, "/d")
        _mkfile(kernel, task, "/d/a")
        assert _root_child(kernel, "d").dir_complete
        listing = {n for n, _i, _t in kernel.sys.listdir(task, "/d")}
        assert listing == {"a"}
        _mkfile(kernel, task, "/d/b")
        kernel.sys.unlink(task, "/d/a")
        assert _root_child(kernel, "d").dir_complete
        listing = {n for n, _i, _t in kernel.sys.listdir(task, "/d")}
        assert listing == {"b"}

    def test_cached_listing_excludes_negatives(self, kernel, task):
        kernel.sys.mkdir(task, "/d")
        _mkfile(kernel, task, "/d/real")
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/d/phantom")  # negative dentry
        listing = {n for n, _i, _t in kernel.sys.listdir(task, "/d")}
        assert listing == {"real"}

    def test_stub_dentries_from_readdir(self, kernel, task):
        kernel.sys.mkdir(task, "/d")
        for i in range(3):
            _mkfile(kernel, task, f"/d/f{i}")
        kernel.drop_caches()
        kernel.sys.listdir(task, "/d")
        dentry = _root_child(kernel, "d")
        stubs = [c for c in dentry.children.values() if c.is_stub]
        assert len(stubs) == 3

    def test_eviction_clears_flag_then_fs_serves(self, kernel, task):
        kernel.sys.mkdir(task, "/d")
        for i in range(6):
            _mkfile(kernel, task, f"/d/f{i}")
        dentry = _root_child(kernel, "d")
        assert dentry.dir_complete
        victim = next(iter(dentry.children.values()))
        kernel.dcache.evict(victim)
        assert not dentry.dir_complete
        kernel.stats.reset()
        listing = kernel.sys.listdir(task, "/d")
        assert len(listing) == 6
        assert kernel.stats.get("readdir_fs") == 1


class TestGetdentsPaging:
    def test_pages_cover_everything_once(self, kernel, task):
        kernel.sys.mkdir(task, "/d")
        for i in range(10):
            _mkfile(kernel, task, f"/d/n{i:02d}")
        fd = kernel.sys.open(task, "/d", O_RDONLY | O_DIRECTORY)
        seen = []
        while True:
            chunk = kernel.sys.getdents(task, fd, 3)
            if not chunk:
                break
            seen.extend(name for name, _i, _t in chunk)
        kernel.sys.close(task, fd)
        assert sorted(seen) == [f"n{i:02d}" for i in range(10)]

    def test_getdents_on_file_rejected(self, kernel, task):
        _mkfile(kernel, task, "/plain")
        fd = kernel.sys.open(task, "/plain", O_RDONLY)
        with pytest.raises(errors.ENOTDIR):
            kernel.sys.getdents(task, fd)

    def test_rewind_rereads_fresh_state(self, kernel, task):
        kernel.sys.mkdir(task, "/d")
        _mkfile(kernel, task, "/d/a")
        fd = kernel.sys.open(task, "/d", O_RDONLY | O_DIRECTORY)
        first = kernel.sys.readdir(task, fd)
        _mkfile(kernel, task, "/d/b")
        kernel.sys.lseek(task, fd, 0)
        second = kernel.sys.readdir(task, fd)
        kernel.sys.close(task, fd)
        assert len(first) == 1 and len(second) == 2
