"""Extended attribute tests, including the security-label coherence tie-in."""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_RDWR, errors, make_kernel
from repro.vfs.lsm import PathPrefixLsm


@pytest.fixture
def task(kernel):
    return kernel.spawn_task(uid=0, gid=0)


def _mkfile(kernel, task, path):
    fd = kernel.sys.open(task, path, O_CREAT | O_RDWR)
    kernel.sys.close(task, fd)


class TestUserXattrs:
    def test_set_get_roundtrip(self, kernel, task):
        _mkfile(kernel, task, "/f")
        kernel.sys.setxattr(task, "/f", "user.origin", b"https://x")
        assert kernel.sys.getxattr(task, "/f", "user.origin") == \
            b"https://x"

    def test_list_and_remove(self, kernel, task):
        _mkfile(kernel, task, "/f")
        kernel.sys.setxattr(task, "/f", "user.a", b"1")
        kernel.sys.setxattr(task, "/f", "user.b", b"2")
        assert kernel.sys.listxattr(task, "/f") == ["user.a", "user.b"]
        kernel.sys.removexattr(task, "/f", "user.a")
        assert kernel.sys.listxattr(task, "/f") == ["user.b"]

    def test_missing_xattr_enoent(self, kernel, task):
        _mkfile(kernel, task, "/f")
        with pytest.raises(errors.ENOENT):
            kernel.sys.getxattr(task, "/f", "user.none")
        with pytest.raises(errors.ENOENT):
            kernel.sys.removexattr(task, "/f", "user.none")

    def test_user_xattr_needs_write_permission(self, kernel, task):
        _mkfile(kernel, task, "/f")
        kernel.sys.chmod(task, "/f", 0o444)
        user = kernel.spawn_task(uid=1000, gid=1000)
        with pytest.raises(errors.EACCES):
            kernel.sys.setxattr(user, "/f", "user.tag", b"x")

    def test_unsupported_namespace(self, kernel, task):
        _mkfile(kernel, task, "/f")
        with pytest.raises(errors.ENOTSUP):
            kernel.sys.setxattr(task, "/f", "trusted.secret", b"x")

    def test_xattrs_on_directories(self, kernel, task):
        kernel.sys.mkdir(task, "/d")
        kernel.sys.setxattr(task, "/d", "user.purpose", b"storage")
        assert kernel.sys.getxattr(task, "/d", "user.purpose") == \
            b"storage"

    def test_overwrite(self, kernel, task):
        _mkfile(kernel, task, "/f")
        kernel.sys.setxattr(task, "/f", "user.v", b"1")
        kernel.sys.setxattr(task, "/f", "user.v", b"2")
        assert kernel.sys.getxattr(task, "/f", "user.v") == b"2"


class TestSecurityXattrs:
    def test_security_requires_root(self, kernel, task):
        _mkfile(kernel, task, "/f")
        kernel.sys.chmod(task, "/f", 0o777)
        user = kernel.spawn_task(uid=1000, gid=1000)
        with pytest.raises(errors.EPERM):
            kernel.sys.setxattr(user, "/f", "security.label", b"t")

    def test_security_label_sets_lsm_label(self):
        lsm = PathPrefixLsm()
        lsm.deny("sandbox", "restricted")
        kernel = make_kernel("optimized", lsm=lsm)
        root = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(root, "/zone", 0o755)
        _mkfile(kernel, root, "/zone/f")
        kernel.sys.chmod(root, "/zone/f", 0o644)
        confined = kernel.spawn_task(uid=1000, gid=1000,
                                     security="sandbox")
        assert kernel.sys.stat(confined, "/zone/f").filetype == "reg"
        kernel.sys.setxattr(root, "/zone", "security.label",
                            b"restricted")
        # The memoized prefix check must die with the label change.
        with pytest.raises(errors.EACCES):
            kernel.sys.stat(confined, "/zone/f")
        kernel.sys.removexattr(root, "/zone", "security.label")
        assert kernel.sys.stat(confined, "/zone/f").filetype == "reg"

    def test_relabel_persists_as_xattr(self, kernel, task):
        kernel.sys.mkdir(task, "/d")
        kernel.sys.relabel(task, "/d", "web_content")
        assert kernel.sys.getxattr(task, "/d", "security.label") == \
            b"web_content"

    def test_xattr_equivalence_across_kernels(self, dual):
        root = dual.spawn_task(uid=0, gid=0)
        fd = dual.open(root, "/f", O_CREAT | O_RDWR)
        dual.close(root, fd)
        dual.setxattr(root, "/f", "user.k", b"v")
        assert dual.getxattr(root, "/f", "user.k") == b"v"
        assert dual.listxattr(root, "/f") == ["user.k"]
        dual.removexattr(root, "/f", "user.k")
        with pytest.raises(errors.ENOENT):
            dual.getxattr(root, "/f", "user.k")
