"""Tests for the PRF signature scheme and the adaptive PCC extension."""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_RDWR, errors, make_kernel
from repro.core.kernel import BASELINE, OPTIMIZED
from repro.core.pcc import AdaptivePrefixCheckCache
from repro.core.signatures import PathHasher, PrfPathHasher, make_hasher
from repro.sim.costs import CostModel, UNIT
from repro.sim.stats import Stats
from repro.testing import DualKernel
from repro.vfs.dentry import Dentry


class TestPrfHasher:
    def test_resumable(self):
        hasher = PrfPathHasher(3)
        whole = hasher.sign_components(["a", "b", "c"])
        state = hasher.extend(hasher.EMPTY, "a")
        state = hasher.extend_components(state, ["b", "c"])
        assert hasher.finish(state) == whole

    def test_prefix_state_unaffected_by_extension(self):
        """Extending must not mutate the stored prefix state (dentries
        share states)."""
        hasher = PrfPathHasher(3)
        prefix = hasher.extend(hasher.EMPTY, "dir")
        sig_before = hasher.finish(prefix)
        hasher.extend(prefix, "child")
        assert hasher.finish(prefix) == sig_before

    def test_keyed_by_boot_seed(self):
        a = PrfPathHasher(1).sign_components(["etc"])
        b = PrfPathHasher(2).sign_components(["etc"])
        assert a != b

    def test_widths(self):
        hasher = PrfPathHasher(9, signature_bits=240, index_bits=16)
        sig = hasher.sign_components(["x"])
        assert 0 <= sig.index < (1 << 16)
        assert 0 <= sig.bits < (1 << 240)

    def test_separator_disambiguation(self):
        hasher = PrfPathHasher(5)
        assert hasher.sign_components(["ab", "c"]) != \
            hasher.sign_components(["a", "bc"])

    def test_make_hasher_dispatch(self):
        assert isinstance(make_hasher("universal", 1), PathHasher)
        assert isinstance(make_hasher("prf", 1), PrfPathHasher)
        with pytest.raises(ValueError):
            make_hasher("md5", 1)

    def test_cost_primitive_names(self):
        assert PathHasher(1).cost_primitive == "sig_hash"
        assert PrfPathHasher(1).cost_primitive == "sig_hash_prf"


class TestPrfKernel:
    def test_fastpath_works_with_prf(self):
        kernel = make_kernel("optimized", signature_scheme="prf")
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/d")
        fd = kernel.sys.open(task, "/d/f", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        kernel.sys.stat(task, "/d/f")
        kernel.stats.reset()
        kernel.sys.stat(task, "/d/f")
        assert kernel.stats.get("fastpath_hit") == 1

    def test_prf_kernel_equivalent_to_baseline(self):
        dual = DualKernel((BASELINE,
                           OPTIMIZED.variant(signature_scheme="prf")))
        root = dual.spawn_task(uid=0, gid=0)
        dual.mkdir(root, "/a")
        fd = dual.open(root, "/a/f", O_CREAT | O_RDWR)
        dual.close(root, fd)
        dual.stat(root, "/a/f")
        dual.stat(root, "/a/f")
        dual.symlink(root, "/a/f", "/ln")
        dual.stat(root, "/ln")
        dual.rename(root, "/a/f", "/a/g")
        with pytest.raises(errors.ENOENT):
            dual.stat(root, "/a/f")
        assert dual.stat(root, "/a/g").filetype == "reg"
        dual.check_invariants()

    def test_prf_charges_prf_primitive(self):
        kernel = make_kernel("optimized", signature_scheme="prf",
                             costs=CostModel(dict(UNIT)))
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/d")
        kernel.sys.stat(task, "/d")
        assert kernel.costs.count("sig_hash_prf") > 0
        assert kernel.costs.count("sig_hash") == 0


class TestAdaptivePcc:
    def _pcc(self, capacity=4, max_capacity=16):
        return AdaptivePrefixCheckCache(CostModel(dict(UNIT)), Stats(),
                                        capacity,
                                        max_capacity=max_capacity)

    def test_grows_under_pressure(self):
        pcc = self._pcc(capacity=4)
        dentries = [Dentry(f"d{i}", None, None) for i in range(32)]
        for _round in range(4):
            for dentry in dentries:
                if not pcc.probe(dentry):
                    pcc.insert(dentry)
        assert pcc.capacity > 4

    def test_respects_max_capacity(self):
        pcc = self._pcc(capacity=4, max_capacity=8)
        dentries = [Dentry(f"d{i}", None, None) for i in range(64)]
        for _round in range(6):
            for dentry in dentries:
                if not pcc.probe(dentry):
                    pcc.insert(dentry)
        assert pcc.capacity == 8

    def test_no_growth_when_fitting(self):
        pcc = self._pcc(capacity=8)
        dentries = [Dentry(f"d{i}", None, None) for i in range(4)]
        for _round in range(10):
            for dentry in dentries:
                if not pcc.probe(dentry):
                    pcc.insert(dentry)
        assert pcc.capacity == 8

    def test_kernel_integration(self):
        kernel = make_kernel("optimized", pcc_capacity=8,
                             pcc_adaptive=True, pcc_max_capacity=1024)
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/d")
        for i in range(64):
            fd = kernel.sys.open(task, f"/d/f{i}", O_CREAT | O_RDWR)
            kernel.sys.close(task, fd)
        for _round in range(3):
            for i in range(64):
                kernel.sys.stat(task, f"/d/f{i}")
        assert task.cred.pcc.capacity > 8
        assert kernel.stats.get("pcc_grow") > 0

    def test_adaptive_equivalent_to_baseline(self):
        dual = DualKernel((BASELINE,
                           OPTIMIZED.variant(pcc_capacity=4,
                                             pcc_adaptive=True)))
        root = dual.spawn_task(uid=0, gid=0)
        dual.mkdir(root, "/d")
        for i in range(20):
            fd = dual.open(root, f"/d/f{i}", O_CREAT | O_RDWR)
            dual.close(root, fd)
        for _round in range(2):
            for i in range(20):
                dual.stat(root, f"/d/f{i}")
        dual.check_invariants()
