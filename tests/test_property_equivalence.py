"""Property-based equivalence: random syscall programs, two kernels.

Hypothesis generates programs over a small path alphabet — creations,
removals, renames, symlinks, permission changes, identity changes,
lookups, listings — and the DualKernel oracle asserts the optimized
kernel is observationally identical to the baseline after every step.
This is the strongest form of the paper's §4 compatibility claim our
substrate can check.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import O_CREAT, O_RDWR, errors
from repro.testing import DualKernel

#: Small alphabet so random programs collide on paths frequently.
NAMES = ["a", "b", "c", "dd"]
MODES = [0o700, 0o755, 0o750, 0o000, 0o444]


def paths(depth: int = 3):
    return st.lists(st.sampled_from(NAMES), min_size=1,
                    max_size=depth).map(lambda parts: "/" + "/".join(parts))


OPS = st.one_of(
    st.tuples(st.just("mkdir"), paths()),
    st.tuples(st.just("create"), paths()),
    st.tuples(st.just("unlink"), paths()),
    st.tuples(st.just("rmdir"), paths()),
    st.tuples(st.just("stat"), paths()),
    st.tuples(st.just("lstat"), paths()),
    st.tuples(st.just("listdir"), paths()),
    st.tuples(st.just("rename"), paths(), paths()),
    st.tuples(st.just("symlink"), paths(), paths()),
    st.tuples(st.just("link"), paths(), paths()),
    st.tuples(st.just("chmod"), paths(), st.sampled_from(MODES)),
    st.tuples(st.just("chdir"), paths()),
    st.tuples(st.just("stat_rel"), st.sampled_from(NAMES)),
    st.tuples(st.just("stat_dotdot"), st.sampled_from(NAMES)),
)


class Driver:
    """Applies one random op to both kernels, swallowing FsErrors
    (the oracle already verified both kernels raised identically)."""

    def __init__(self) -> None:
        self.dual = DualKernel()
        self.root = self.dual.spawn_task(uid=0, gid=0)
        self.user = self.dual.spawn_task(uid=1000, gid=1000)

    def apply(self, op, use_user: bool) -> None:
        task = self.user if use_user else self.root
        name, *args = op
        try:
            if name == "create":
                fd = self.dual.open(task, args[0], O_CREAT | O_RDWR)
                self.dual.close(task, fd)
            elif name == "stat_rel":
                self.dual.stat(task, args[0])
            elif name == "stat_dotdot":
                self.dual.stat(task, f"../{args[0]}")
            else:
                getattr(self.dual, name)(task, *args)
        except errors.FsError:
            pass  # identical on both kernels, checked by the oracle


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=st.lists(st.tuples(OPS, st.booleans()), min_size=1,
                        max_size=40))
def test_random_programs_equivalent(program):
    driver = Driver()
    for op, use_user in program:
        driver.apply(op, use_user)
    driver.dual.check_invariants()


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=st.lists(st.tuples(OPS, st.booleans()), min_size=1,
                        max_size=25),
       reread=st.lists(st.tuples(OPS, st.booleans()), min_size=1,
                       max_size=10))
def test_mutate_then_reread_equivalent(program, reread):
    """Mutations followed by re-lookups: exercises stale-cache paths."""
    driver = Driver()
    for op, use_user in program:
        driver.apply(op, use_user)
    # Re-run pure lookups twice so the optimized kernel serves the second
    # round from its fastpath structures.
    for op, use_user in reread:
        if op[0] in ("stat", "lstat", "listdir", "stat_rel", "stat_dotdot"):
            driver.apply(op, use_user)
            driver.apply(op, use_user)
    driver.dual.check_invariants()


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=st.lists(st.tuples(OPS, st.booleans()), min_size=5,
                        max_size=30))
def test_identity_changes_mid_program(program):
    """setuid transitions interleaved with lookups (PCC/cred COW)."""
    driver = Driver()
    for i, (op, use_user) in enumerate(program):
        driver.apply(op, use_user)
        if i % 7 == 3:
            driver.dual.change_identity(driver.user,
                                        uid=1000 + (i % 3))
    driver.dual.check_invariants()


class PressureDriver(Driver):
    """Driver over kernels with tiny dcaches (constant eviction)."""

    def __init__(self) -> None:
        from repro.core.kernel import BASELINE, OPTIMIZED

        self.dual = DualKernel((BASELINE.variant(dcache_capacity=12),
                                OPTIMIZED.variant(dcache_capacity=12)))
        self.root = self.dual.spawn_task(uid=0, gid=0)
        self.user = self.dual.spawn_task(uid=1000, gid=1000)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=st.lists(st.tuples(OPS, st.booleans()), min_size=1,
                        max_size=40))
def test_random_programs_equivalent_under_pressure(program):
    """Same property with a 12-entry dcache: eviction patterns differ
    wildly between the kernels (stubs, deep negatives, aliases), but
    observable behaviour must not."""
    driver = PressureDriver()
    for op, use_user in program:
        driver.apply(op, use_user)
    driver.dual.check_invariants()


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=st.lists(st.tuples(OPS, st.booleans()), min_size=1,
                        max_size=30))
def test_tiny_signatures_equivalent_for_fresh_creds(program):
    """With 8-bit signatures collisions are common; fresh-credential
    lookups must still be correct (PCC containment, §3.3)."""
    from repro.core.kernel import BASELINE, OPTIMIZED

    dual = DualKernel((BASELINE,
                       OPTIMIZED.variant(signature_bits=8, index_bits=4)))
    for op, _use_user in program:
        # Every operation runs under an ever-fresh credential whose PCC
        # is empty, forcing the always-correct slowpath: same-cred
        # collision corruption is out of contract (the paper accepts it).
        name, *args = op
        fresh_root = dual.spawn_task(uid=0, gid=0)
        try:
            if name == "create":
                fd = dual.open(fresh_root, args[0], O_CREAT | O_RDWR)
                dual.close(fresh_root, fd)
            elif name in ("mkdir", "unlink", "rmdir", "rename", "symlink",
                          "link"):
                getattr(dual, name)(fresh_root, *args)
            elif name in ("stat", "lstat", "listdir"):
                fresh = dual.spawn_task(uid=1000, gid=1000)
                getattr(dual, name)(fresh, *args)
        except errors.FsError:
            pass
    dual.check_invariants()
