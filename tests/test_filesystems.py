"""Unit tests for the low-level file systems (simext, tmpfs, pseudofs)."""

from __future__ import annotations

import pytest

from repro import errors
from repro.fs import base
from repro.fs.pseudofs import PseudoFs
from repro.fs.simext import SimExtFs
from repro.fs.tmpfs import TmpFs
from repro.sim.costs import CostModel, UNIT


@pytest.fixture(params=["simext", "tmpfs"])
def fs(request):
    costs = CostModel(dict(UNIT))
    if request.param == "simext":
        return SimExtFs(costs)
    return TmpFs(costs)


class TestCommonSemantics:
    def test_root_is_dir(self, fs):
        info = fs.getattr(fs.root_ino)
        assert info.is_dir and info.nlink >= 2

    def test_create_and_lookup(self, fs):
        created = fs.create(fs.root_ino, "f", 0o644, 1, 2)
        found = fs.lookup(fs.root_ino, "f")
        assert found is not None
        assert found.ino == created.ino
        assert found.uid == 1 and found.gid == 2
        assert found.filetype == base.DT_REG

    def test_lookup_missing_returns_none(self, fs):
        assert fs.lookup(fs.root_ino, "ghost") is None

    def test_duplicate_create_rejected(self, fs):
        fs.create(fs.root_ino, "f", 0o644, 0, 0)
        with pytest.raises(errors.EEXIST):
            fs.create(fs.root_ino, "f", 0o644, 0, 0)

    def test_mkdir_bumps_parent_nlink(self, fs):
        before = fs.getattr(fs.root_ino).nlink
        fs.mkdir(fs.root_ino, "d", 0o755, 0, 0)
        assert fs.getattr(fs.root_ino).nlink == before + 1

    def test_readdir_lists_everything(self, fs):
        fs.create(fs.root_ino, "a", 0o644, 0, 0)
        fs.mkdir(fs.root_ino, "b", 0o755, 0, 0)
        fs.symlink(fs.root_ino, "c", "/a", 0, 0)
        entries = {name: dtype for name, _ino, dtype in
                   fs.readdir(fs.root_ino)}
        assert entries == {"a": base.DT_REG, "b": base.DT_DIR,
                           "c": base.DT_LNK}

    def test_write_read_roundtrip(self, fs):
        info = fs.create(fs.root_ino, "f", 0o644, 0, 0)
        fs.write(info.ino, 0, b"hello world")
        assert fs.read(info.ino, 0, 5) == b"hello"
        assert fs.read(info.ino, 6, 100) == b"world"
        assert fs.getattr(info.ino).size == 11

    def test_write_at_offset_pads(self, fs):
        info = fs.create(fs.root_ino, "f", 0o644, 0, 0)
        fs.write(info.ino, 4, b"x")
        assert fs.read(info.ino, 0, 5) == b"\0\0\0\0x"

    def test_unlink_removes(self, fs):
        fs.create(fs.root_ino, "f", 0o644, 0, 0)
        fs.unlink(fs.root_ino, "f")
        assert fs.lookup(fs.root_ino, "f") is None

    def test_unlink_missing(self, fs):
        with pytest.raises(errors.ENOENT):
            fs.unlink(fs.root_ino, "ghost")

    def test_unlink_directory_rejected(self, fs):
        fs.mkdir(fs.root_ino, "d", 0o755, 0, 0)
        with pytest.raises(errors.EISDIR):
            fs.unlink(fs.root_ino, "d")

    def test_rmdir_empty(self, fs):
        fs.mkdir(fs.root_ino, "d", 0o755, 0, 0)
        fs.rmdir(fs.root_ino, "d")
        assert fs.lookup(fs.root_ino, "d") is None

    def test_rmdir_nonempty_rejected(self, fs):
        info = fs.mkdir(fs.root_ino, "d", 0o755, 0, 0)
        fs.create(info.ino, "f", 0o644, 0, 0)
        with pytest.raises(errors.ENOTEMPTY):
            fs.rmdir(fs.root_ino, "d")

    def test_rmdir_file_rejected(self, fs):
        fs.create(fs.root_ino, "f", 0o644, 0, 0)
        with pytest.raises(errors.ENOTDIR):
            fs.rmdir(fs.root_ino, "f")

    def test_hard_link_shares_inode(self, fs):
        info = fs.create(fs.root_ino, "a", 0o644, 0, 0)
        linked = fs.link(fs.root_ino, "b", info.ino)
        assert linked.ino == info.ino
        assert fs.getattr(info.ino).nlink == 2
        fs.unlink(fs.root_ino, "a")
        assert fs.getattr(info.ino).nlink == 1
        assert fs.read(info.ino, 0, 1) == b""

    def test_link_to_dir_rejected(self, fs):
        info = fs.mkdir(fs.root_ino, "d", 0o755, 0, 0)
        with pytest.raises(errors.EPERM):
            fs.link(fs.root_ino, "dl", info.ino)

    def test_symlink_and_readlink(self, fs):
        info = fs.symlink(fs.root_ino, "l", "/target/path", 0, 0)
        assert info.is_symlink
        assert fs.readlink(info.ino) == "/target/path"
        assert info.size == len("/target/path")

    def test_readlink_of_file_rejected(self, fs):
        info = fs.create(fs.root_ino, "f", 0o644, 0, 0)
        with pytest.raises(errors.EINVAL):
            fs.readlink(info.ino)

    def test_rename_within_dir(self, fs):
        fs.create(fs.root_ino, "old", 0o644, 0, 0)
        fs.rename(fs.root_ino, "old", fs.root_ino, "new")
        assert fs.lookup(fs.root_ino, "old") is None
        assert fs.lookup(fs.root_ino, "new") is not None

    def test_rename_across_dirs_fixes_nlink(self, fs):
        a = fs.mkdir(fs.root_ino, "a", 0o755, 0, 0)
        b = fs.mkdir(fs.root_ino, "b", 0o755, 0, 0)
        fs.mkdir(a.ino, "sub", 0o755, 0, 0)
        a_links = fs.getattr(a.ino).nlink
        b_links = fs.getattr(b.ino).nlink
        fs.rename(a.ino, "sub", b.ino, "sub")
        assert fs.getattr(a.ino).nlink == a_links - 1
        assert fs.getattr(b.ino).nlink == b_links + 1

    def test_rename_over_file(self, fs):
        src = fs.create(fs.root_ino, "src", 0o644, 0, 0)
        fs.create(fs.root_ino, "dst", 0o644, 0, 0)
        fs.rename(fs.root_ino, "src", fs.root_ino, "dst")
        assert fs.lookup(fs.root_ino, "dst").ino == src.ino

    def test_rename_dir_over_nonempty_rejected(self, fs):
        fs.mkdir(fs.root_ino, "src", 0o755, 0, 0)
        dst = fs.mkdir(fs.root_ino, "dst", 0o755, 0, 0)
        fs.create(dst.ino, "f", 0o644, 0, 0)
        with pytest.raises(errors.ENOTEMPTY):
            fs.rename(fs.root_ino, "src", fs.root_ino, "dst")

    def test_setattr_mode_preserves_type(self, fs):
        info = fs.create(fs.root_ino, "f", 0o644, 0, 0)
        updated = fs.setattr(info.ino, mode=0o600)
        assert updated.filetype == base.DT_REG
        assert updated.mode & 0o7777 == 0o600

    def test_setattr_truncate(self, fs):
        info = fs.create(fs.root_ino, "f", 0o644, 0, 0)
        fs.write(info.ino, 0, b"0123456789")
        fs.setattr(info.ino, size=4)
        assert fs.read(info.ino, 0, 100) == b"0123"

    def test_stale_inode(self, fs):
        with pytest.raises(errors.ENOENT):
            fs.getattr(424242)


class TestSimExtCosts:
    def test_lookup_charges_fs_base(self):
        costs = CostModel(dict(UNIT))
        fs = SimExtFs(costs)
        fs.create(fs.root_ino, "f", 0o644, 0, 0)
        before = costs.count("fs_lookup_base")
        fs.lookup(fs.root_ino, "f")
        assert costs.count("fs_lookup_base") == before + 1

    def test_large_directory_uses_htree(self):
        costs = CostModel(dict(UNIT))
        fs = SimExtFs(costs)
        for i in range(200):  # > HTREE_THRESHOLD_BLOCKS * 16 entries
            fs.create(fs.root_ino, f"f{i}", 0o644, 0, 0)
        before = costs.count("fs_dirblock_scan")
        fs.lookup(fs.root_ino, "f0")
        # htree: index + leaf, not a linear scan of ~13 blocks.
        assert costs.count("fs_dirblock_scan") - before == 2

    def test_cold_cache_pays_device_time(self):
        costs = CostModel()
        fs = SimExtFs(costs)
        fs.create(fs.root_ino, "f", 0o644, 0, 0)
        fs.lookup(fs.root_ino, "f")
        fs.drop_caches()
        start = costs.now_ns
        fs.lookup(fs.root_ino, "f")
        cold = costs.now_ns - start
        start = costs.now_ns
        fs.lookup(fs.root_ino, "f")
        warm = costs.now_ns - start
        assert cold > 10 * warm


class TestPseudoFs:
    def _make(self):
        costs = CostModel(dict(UNIT))
        fs = PseudoFs(costs)
        return fs

    def test_static_entries(self):
        fs = self._make()
        fs.add_static_file(fs.root_ino, "version", "6.0.0")
        info = fs.lookup(fs.root_ino, "version")
        assert info is not None
        assert fs.read(info.ino, 0, 10) == b"6.0.0"

    def test_provider_listing_changes(self):
        fs = self._make()
        pids = {"17": (base.S_IFDIR | 0o555, None)}
        fs.set_provider(fs.root_ino, lambda: dict(pids))
        assert fs.lookup(fs.root_ino, "17") is not None
        assert fs.lookup(fs.root_ino, "99") is None
        pids["99"] = (base.S_IFDIR | 0o555, None)
        assert fs.lookup(fs.root_ino, "99") is not None

    def test_stable_inode_identity(self):
        fs = self._make()
        fs.add_static_file(fs.root_ino, "stat", "cpu 1 2 3")
        first = fs.lookup(fs.root_ino, "stat").ino
        second = fs.lookup(fs.root_ino, "stat").ino
        assert first == second

    def test_readonly(self):
        fs = self._make()
        with pytest.raises(errors.EPERM):
            fs.create(fs.root_ino, "nope", 0o644, 0, 0)
        with pytest.raises(errors.EPERM):
            fs.unlink(fs.root_ino, "nope")

    def test_no_baseline_negative_dentries_flag(self):
        assert PseudoFs(CostModel(dict(UNIT))).baseline_negative_dentries \
            is False

    def test_nested_static_dirs(self):
        fs = self._make()
        sys_ino = fs.add_static_dir(fs.root_ino, "sys")
        fs.add_static_file(sys_ino, "hostname", "node1")
        info = fs.lookup(sys_ino, "hostname")
        assert info is not None
        names = {name for name, _i, _t in fs.readdir(sys_ino)}
        assert names == {"hostname"}
