"""Trace record/replay tests (the §1 methodology)."""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_DIRECTORY, O_RDONLY, O_RDWR, errors, make_kernel
from repro.workloads.traces import (PATH_LOOKUP_OPS, ReplayMismatch, Trace,
                                    TraceEvent, TraceRecorder, replay)


def _record_sample(kernel):
    task = kernel.spawn_task(uid=0, gid=0)
    rec = TraceRecorder(kernel, task)
    rec.mkdir("/proj")
    fd = rec.open("/proj/main.c", O_CREAT | O_RDWR)
    rec.write(fd, b"int main(){}")
    rec.compute(5_000)
    rec.close(fd)
    rec.stat("/proj/main.c")
    with pytest.raises(errors.ENOENT):
        rec.stat("/proj/missing.h")
    fd = rec.open("/proj", O_RDONLY | O_DIRECTORY)
    rec.getdents(fd, 100)
    rec.close(fd)
    rec.rename("/proj/main.c", "/proj/prog.c")
    return rec.trace


class TestRecording:
    def test_events_recorded_in_order(self):
        trace = _record_sample(make_kernel("baseline"))
        ops = [event.op for event in trace.events]
        assert ops == ["mkdir", "open", "write", "close", "stat", "stat",
                       "open", "getdents", "close", "rename"]

    def test_failed_call_records_errno(self):
        trace = _record_sample(make_kernel("baseline"))
        failed = [e for e in trace.events if e.errno is not None]
        assert len(failed) == 1
        import errno as std_errno
        assert failed[0].errno == std_errno.ENOENT

    def test_fd_slots_assigned(self):
        trace = _record_sample(make_kernel("baseline"))
        opens = [e for e in trace.events if e.op == "open"]
        assert [e.returns_fd_slot for e in opens] == [0, 1]
        close_events = [e for e in trace.events if e.op == "close"]
        assert close_events[0].args[0] == ["fd", 0] or \
            close_events[0].args[0] == ("fd", 0)

    def test_compute_attached_to_next_event(self):
        trace = _record_sample(make_kernel("baseline"))
        close_event = [e for e in trace.events if e.op == "close"][0]
        assert close_event.compute_ns == 5_000

    def test_stats(self):
        trace = _record_sample(make_kernel("baseline"))
        stats = trace.stats()
        assert stats.total_syscalls == 10
        assert stats.path_lookup_syscalls == 6  # mkdir,2xopen,2xstat,rename
        assert 0.5 < stats.path_lookup_fraction < 0.7
        assert stats.by_op["stat"] == 2
        assert stats.total_compute_ns == 5_000


class TestSerialization:
    def test_roundtrip(self):
        trace = _record_sample(make_kernel("baseline"))
        text = trace.dumps()
        restored = Trace.loads(text)
        assert len(restored) == len(trace)
        assert [e.op for e in restored.events] == \
            [e.op for e in trace.events]
        assert restored.events[1].returns_fd_slot == 0

    def test_event_json_roundtrip(self):
        event = TraceEvent(op="stat", args=("/x",), errno=2,
                           compute_ns=12.5)
        restored = TraceEvent.from_json(event.to_json())
        assert restored.op == "stat" and restored.args == ("/x",)
        assert restored.errno == 2 and restored.compute_ns == 12.5


class TestReplay:
    def test_replay_on_fresh_kernel(self):
        trace = _record_sample(make_kernel("baseline"))
        for profile in ("baseline", "optimized"):
            kernel = make_kernel(profile)
            task = kernel.spawn_task(uid=0, gid=0)
            replay(kernel, task, trace)
            assert kernel.sys.stat(task, "/proj/prog.c").size == 12

    def test_replay_after_serialization(self):
        trace = Trace.loads(_record_sample(make_kernel("baseline")).dumps())
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        replay(kernel, task, trace)
        assert kernel.sys.exists(task, "/proj/prog.c")

    def test_replay_detects_divergence(self):
        trace = _record_sample(make_kernel("baseline"))
        kernel = make_kernel("baseline")
        task = kernel.spawn_task(uid=0, gid=0)
        # Pre-create the file the trace expects to be missing.
        kernel.sys.mkdir(task, "/proj")
        fd = kernel.sys.open(task, "/proj/missing.h", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        # mkdir /proj will now fail where the recording succeeded.
        with pytest.raises(ReplayMismatch):
            replay(kernel, task, trace)

    def test_replay_gain_matches_direct_run(self):
        """A recorded workload replayed on both kernels shows the same
        winner as running it directly."""
        trace = _record_sample(make_kernel("baseline"))
        # Extend with a warm lookup storm so the fastpath matters.
        storm = Trace(trace.events + [
            TraceEvent(op="stat", args=("/proj/prog.c",))
            for _ in range(50)])
        times = {}
        for profile in ("baseline", "optimized"):
            kernel = make_kernel(profile)
            task = kernel.spawn_task(uid=0, gid=0)
            start = kernel.now_ns
            replay(kernel, task, storm)
            times[profile] = kernel.now_ns - start
        assert times["optimized"] < times["baseline"]

    def test_path_lookup_ops_subset_sane(self):
        assert "stat" in PATH_LOOKUP_OPS
        assert "read" not in PATH_LOOKUP_OPS
        assert "getdents" not in PATH_LOOKUP_OPS
