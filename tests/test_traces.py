"""Trace record/replay tests (the §1 methodology)."""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_DIRECTORY, O_RDONLY, O_RDWR, errors, make_kernel
from repro.workloads.traces import (PATH_LOOKUP_OPS, ReplayMismatch, Trace,
                                    TraceEvent, TraceRecorder, replay)


def _record_sample(kernel):
    task = kernel.spawn_task(uid=0, gid=0)
    rec = TraceRecorder(kernel, task)
    rec.mkdir("/proj")
    fd = rec.open("/proj/main.c", O_CREAT | O_RDWR)
    rec.write(fd, b"int main(){}")
    rec.compute(5_000)
    rec.close(fd)
    rec.stat("/proj/main.c")
    with pytest.raises(errors.ENOENT):
        rec.stat("/proj/missing.h")
    fd = rec.open("/proj", O_RDONLY | O_DIRECTORY)
    rec.getdents(fd, 100)
    rec.close(fd)
    rec.rename("/proj/main.c", "/proj/prog.c")
    return rec.trace


class TestRecording:
    def test_events_recorded_in_order(self):
        trace = _record_sample(make_kernel("baseline"))
        ops = [event.op for event in trace.events]
        assert ops == ["mkdir", "open", "write", "close", "stat", "stat",
                       "open", "getdents", "close", "rename"]

    def test_failed_call_records_errno(self):
        trace = _record_sample(make_kernel("baseline"))
        failed = [e for e in trace.events if e.errno is not None]
        assert len(failed) == 1
        import errno as std_errno
        assert failed[0].errno == std_errno.ENOENT

    def test_fd_slots_assigned(self):
        trace = _record_sample(make_kernel("baseline"))
        opens = [e for e in trace.events if e.op == "open"]
        assert [e.returns_fd_slot for e in opens] == [0, 1]
        close_events = [e for e in trace.events if e.op == "close"]
        assert close_events[0].args[0] == ["fd", 0] or \
            close_events[0].args[0] == ("fd", 0)

    def test_compute_attached_to_next_event(self):
        trace = _record_sample(make_kernel("baseline"))
        close_event = [e for e in trace.events if e.op == "close"][0]
        assert close_event.compute_ns == 5_000

    def test_stats(self):
        trace = _record_sample(make_kernel("baseline"))
        stats = trace.stats()
        assert stats.total_syscalls == 10
        assert stats.path_lookup_syscalls == 6  # mkdir,2xopen,2xstat,rename
        assert 0.5 < stats.path_lookup_fraction < 0.7
        assert stats.by_op["stat"] == 2
        assert stats.total_compute_ns == 5_000


class TestSerialization:
    def test_roundtrip(self):
        trace = _record_sample(make_kernel("baseline"))
        text = trace.dumps()
        restored = Trace.loads(text)
        assert len(restored) == len(trace)
        assert [e.op for e in restored.events] == \
            [e.op for e in trace.events]
        assert restored.events[1].returns_fd_slot == 0

    def test_event_json_roundtrip(self):
        event = TraceEvent(op="stat", args=("/x",), errno=2,
                           compute_ns=12.5)
        restored = TraceEvent.from_json(event.to_json())
        assert restored.op == "stat" and restored.args == ("/x",)
        assert restored.errno == 2 and restored.compute_ns == 12.5

    def test_nested_markers_survive_roundtrip(self):
        """fd markers nested in args AND kwargs re-tuple on load.

        The old from_json only re-tupled the top-level args list, so a
        reloaded trace held ``["fd", 0]`` lists where the original had
        ``("fd", 0)`` tuples — and compared unequal to itself.
        """
        event = TraceEvent(op="read", args=(("fd", 0), 100))
        kw_event = TraceEvent(op="fstatat", args=("name",),
                              kwargs={"dirfd": ("fd", 3), "follow": False})
        for original in (event, kw_event):
            restored = TraceEvent.from_json(original.to_json())
            assert restored == original
            for value in restored.args:
                assert not isinstance(value, list)
            for value in restored.kwargs.values():
                assert not isinstance(value, list)

    def test_dumps_loads_is_identity(self):
        trace = _record_sample(make_kernel("baseline"))
        reloaded = Trace.loads(trace.dumps())
        assert reloaded.events == trace.events
        # And idempotent at the text level.
        assert reloaded.dumps() == trace.dumps()

    def test_roundtrip_property(self):
        """Property test: dumps→loads is the identity for any
        JSON-representable, normalized event."""
        from hypothesis import given, settings, strategies as st

        scalars = st.one_of(
            st.integers(min_value=-2**31, max_value=2**31),
            st.text(max_size=12), st.booleans(), st.none())
        nested = st.recursive(
            scalars,
            lambda child: st.lists(child, max_size=3).map(tuple),
            max_leaves=6)

        @given(op=st.sampled_from(["stat", "read", "rename", "open"]),
               args=st.lists(nested, max_size=4).map(tuple),
               kwargs=st.dictionaries(
                   st.sampled_from(["dirfd", "follow", "mode"]),
                   nested, max_size=2),
               slot=st.one_of(st.none(), st.integers(0, 64)),
               errno=st.one_of(st.none(), st.integers(1, 40)),
               compute=st.floats(0, 1e9, allow_nan=False))
        @settings(max_examples=60, deadline=None)
        def roundtrip(op, args, kwargs, slot, errno, compute):
            event = TraceEvent(op=op, args=args, kwargs=kwargs,
                               returns_fd_slot=slot, errno=errno,
                               compute_ns=compute)
            line = Trace([event]).dumps()
            assert Trace.loads(line).events == [event]

        roundtrip()


class TestReplay:
    def test_replay_on_fresh_kernel(self):
        trace = _record_sample(make_kernel("baseline"))
        for profile in ("baseline", "optimized"):
            kernel = make_kernel(profile)
            task = kernel.spawn_task(uid=0, gid=0)
            replay(kernel, task, trace)
            assert kernel.sys.stat(task, "/proj/prog.c").size == 12

    def test_replay_after_serialization(self):
        trace = Trace.loads(_record_sample(make_kernel("baseline")).dumps())
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        replay(kernel, task, trace)
        assert kernel.sys.exists(task, "/proj/prog.c")

    def test_replay_detects_divergence(self):
        trace = _record_sample(make_kernel("baseline"))
        kernel = make_kernel("baseline")
        task = kernel.spawn_task(uid=0, gid=0)
        # Pre-create the file the trace expects to be missing.
        kernel.sys.mkdir(task, "/proj")
        fd = kernel.sys.open(task, "/proj/missing.h", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        # mkdir /proj will now fail where the recording succeeded.
        with pytest.raises(ReplayMismatch):
            replay(kernel, task, trace)

    def test_replay_gain_matches_direct_run(self):
        """A recorded workload replayed on both kernels shows the same
        winner as running it directly."""
        trace = _record_sample(make_kernel("baseline"))
        # Extend with a warm lookup storm so the fastpath matters.
        storm = Trace(trace.events + [
            TraceEvent(op="stat", args=("/proj/prog.c",))
            for _ in range(50)])
        times = {}
        for profile in ("baseline", "optimized"):
            kernel = make_kernel(profile)
            task = kernel.spawn_task(uid=0, gid=0)
            start = kernel.now_ns
            replay(kernel, task, storm)
            times[profile] = kernel.now_ns - start
        assert times["optimized"] < times["baseline"]

    def test_path_lookup_ops_subset_sane(self):
        assert "stat" in PATH_LOOKUP_OPS
        assert "read" not in PATH_LOOKUP_OPS
        assert "getdents" not in PATH_LOOKUP_OPS

    def test_divergence_carries_structure(self):
        """ReplayDivergence is typed: index/op/errnos, not a bare
        AssertionError message to parse."""
        from repro.workloads.traces import ReplayDivergence
        trace = _record_sample(make_kernel("baseline"))
        kernel = make_kernel("baseline")
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/proj")
        fd = kernel.sys.open(task, "/proj/missing.h", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        with pytest.raises(ReplayDivergence) as excinfo:
            replay(kernel, task, trace)
        exc = excinfo.value
        assert exc.index == 0 and exc.op == "mkdir"
        assert exc.expected_errno is None
        assert exc.actual_errno is not None
        assert isinstance(exc, AssertionError)  # old except clauses work
        assert ReplayMismatch is ReplayDivergence  # legacy alias

    def test_compute_charged_before_erroring_event(self):
        """A compute gap attached to an event that errors is charged
        before the call — the clock advances whether or not the event
        succeeds."""
        kernel = make_kernel("baseline")
        task = kernel.spawn_task(uid=0, gid=0)
        rec = TraceRecorder(kernel, task)
        rec.compute(7_000)
        with pytest.raises(errors.ENOENT):
            rec.stat("/nope")
        trace = rec.trace
        assert trace.events[-1].compute_ns == 7_000
        fresh = make_kernel("baseline")
        ftask = fresh.spawn_task(uid=0, gid=0)
        before = fresh.costs.now_ns
        replay(fresh, ftask, trace)
        assert fresh.costs.now_ns - before >= 7_000
