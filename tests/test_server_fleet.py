"""Differential tests for the multi-tenant server-fleet engine.

The engine stack under test: task-generic shape-keyed charge plans and
whole-drain plans (``sim/costs.py`` + ``workloads/traces.py``),
vectorized interleaved scheduling (``testing/scheduler.py``), and the
fleet workload itself (``workloads/server_fleet.py``).  The contract
everywhere is the same: every wall-clock optimization must leave
virtual output — clock, per-primitive charges, Stats — bit-identical
to the interpreted path, on every profile, with quantized lazy
sweeping on or off.
"""

import random

import pytest

from repro import make_kernel
from repro.testing.scheduler import StreamScheduler
from repro.workloads import server_fleet
from repro.workloads.compile import build_loop_trace, compile_trace
from repro.workloads.traces import replay_interleaved

PROFILES = ["baseline", "optimized", "optimized-lazy"]


def _fingerprint(kernel):
    costs = kernel.costs
    return (costs.now_ns, dict(costs.counts), dict(costs.by_primitive),
            dict(costs.by_scope), kernel.stats.snapshot())


def _small_fleet(kernel, *, tenants=3, total_requests=15,
                 mutation_rate=0.25, seed=5):
    return server_fleet.build_fleet(
        kernel, tenants, total_requests=total_requests,
        mutation_rate=mutation_rate, files_per_site=8, mailboxes=1,
        messages_per_box=4, seed=seed)


def _drained_fingerprint(profile, *, plans, quantize, drains=5, **fleet_kw):
    kernel = make_kernel(profile, lazy_sweep_quantize=quantize)
    fleet = _small_fleet(kernel, **fleet_kw)
    for _ in range(drains):
        server_fleet.drain_fleet(kernel, fleet, plans=plans)
    return _fingerprint(kernel)


class TestFleetBitIdentity:
    """Plans on vs. off must be invisible in virtual output."""

    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("quantize", [False, True])
    def test_plans_on_off_identical(self, profile, quantize):
        on = _drained_fingerprint(profile, plans=True, quantize=quantize)
        off = _drained_fingerprint(profile, plans=False, quantize=quantize)
        assert on == off

    @pytest.mark.parametrize("profile", PROFILES)
    def test_drains_are_self_undoing(self, profile):
        """Steady-state drains charge identical virtual time each.

        Quantized lazy sweeping makes the invariant hold on the lazy
        profile too: without it, sweep deadlines drift mod drain length
        and successive drains legitimately charge slightly different
        sweep batches (a no-op on the other profiles).
        """
        kernel = make_kernel(profile, lazy_sweep_quantize=True)
        fleet = _small_fleet(kernel)
        fds_before = [frozenset(site.task.fds._files)
                      for site in fleet.tenants]
        server_fleet.drain_fleet(kernel, fleet)
        durations = []
        for _ in range(3):
            start = kernel.costs.now_ns
            server_fleet.drain_fleet(kernel, fleet)
            durations.append(kernel.costs.now_ns - start)
        assert durations[0] == durations[1] == durations[2]
        assert [frozenset(site.task.fds._files)
                for site in fleet.tenants] == fds_before

    def test_hypothesis_seed_and_mutation_sweep(self):
        """Plans-on/off identity over random Zipf seeds and mixes."""
        from hypothesis import given, settings, strategies as st

        @given(seed=st.integers(min_value=0, max_value=2**16),
               rate=st.sampled_from([0.0, 0.3, 0.7, 1.0]))
        @settings(max_examples=8, deadline=None)
        def check(seed, rate):
            kw = dict(tenants=2, total_requests=8, mutation_rate=rate,
                      seed=seed)
            on = _drained_fingerprint("optimized", plans=True,
                                      quantize=False, drains=4, **kw)
            off = _drained_fingerprint("optimized", plans=False,
                                       quantize=False, drains=4, **kw)
            assert on == off

        check()


class TestScheduler:
    """The vectorized schedule must equal the dynamic pick loop."""

    @staticmethod
    def _dynamic(seed, unit_counts):
        """The per-unit drain loop ``plan_schedule`` claims to match:
        one RNG draw per step over a shrinking alive list, where a draw
        landing on an exhausted stream retires it without advancing."""
        sched = StreamScheduler(seed)
        remaining = list(unit_counts)
        alive = list(range(len(remaining)))
        picks = []
        while alive:
            i = sched.pick(len(alive))
            s = alive[i]
            if remaining[s] == 0:
                alive.pop(i)
                continue
            remaining[s] -= 1
            picks.append(s)
        return picks, sched.snapshot()

    def test_plan_schedule_identical_picks(self):
        from hypothesis import given, settings, strategies as st

        @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
               counts=st.lists(st.integers(min_value=0, max_value=12),
                               min_size=1, max_size=8))
        @settings(max_examples=60, deadline=None)
        def check(seed, counts):
            want_picks, want_state = self._dynamic(seed, counts)
            sched = StreamScheduler(seed)
            streams, runs = sched.plan_schedule(counts)
            got_picks = [s for s, n in zip(streams, runs) for _ in range(n)]
            assert got_picks == want_picks
            # The planner consumes RNG draws in the same order with the
            # same bounds, so the scheduler ends in the identical state.
            assert sched.snapshot() == want_state
            # Runs are nonempty and expand to exactly the pick count.
            assert all(n >= 1 for n in runs)
            assert sum(runs) == len(want_picks)

        check()

    def test_snapshot_restore_mid_schedule(self):
        """A cloned mid-drain scheduler replays the identical tail."""
        sched = StreamScheduler(seed=9)
        for _ in range(7):
            sched.pick(5)
        state = sched.snapshot()
        tail = [sched.pick(4) for _ in range(20)]
        sched.restore(state)
        assert [sched.pick(4) for _ in range(20)] == tail
        # plan_schedule from a restored state is reproducible too.
        sched.restore(state)
        planned = sched.plan_schedule([3, 1, 4, 1, 5])
        sched.restore(state)
        assert sched.plan_schedule([3, 1, 4, 1, 5]) == planned


class TestZipf:
    def test_zipf_counts_shape(self):
        counts = server_fleet.zipf_counts(8, 120)
        assert sum(counts) >= 8  # every tenant gets at least one
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > counts[-1]
        assert min(counts) >= 1
        # Deterministic: no RNG involved.
        assert counts == server_fleet.zipf_counts(8, 120)


def _loop_streams(kernel, n=4):
    """``n`` same-shape loop-trace streams on distinct tasks."""
    streams = []
    for i in range(n):
        task = kernel.spawn_task(uid=0, gid=0)
        trace = build_loop_trace(files=2, io_rounds=2, subdirs=1,
                                 profile="optimized", root=f"/x{i}")
        streams.append((task, compile_trace(trace)))
    replay_interleaved(kernel, streams, seed=1)  # warm
    return streams


class TestCrossTaskPlans:
    """Shape-shared segment plans across tenants."""

    def test_shared_plan_confirms_across_tasks(self):
        kernel = make_kernel("optimized")
        streams = _loop_streams(kernel)
        registry = kernel.costs.plans
        # Keep the whole-drain plan out of the way so every drain runs
        # the segment path (the machinery under test here).
        registry.drain_cell(streams, 1).dead = True
        for _ in range(3):
            replay_interleaved(kernel, streams, seed=1)
        tel = registry.telemetry()
        # One task's executions compile the shared plan; the other
        # three are admitted by recorded confirmation runs.
        assert tel["task_confirms"] >= 3
        assert tel["applied"] > 0
        assert tel["invalidated"] == 0

    def test_clean_mismatch_invalidates_shared_plan(self):
        """A confirmation run that cleanly disagrees with the shared
        capture must invalidate the cell — and the drain's virtual
        output must still match a plans-off run."""
        kernel = make_kernel("optimized")
        streams = _loop_streams(kernel)
        registry = kernel.costs.plans
        registry.drain_cell(streams, 1).dead = True
        replay_interleaved(kernel, streams, seed=1)
        cells = [cell for cell in registry._shape_tables.values()
                 if cell.plan is not None]
        assert cells, "no shared segment plan compiled"
        for cell in cells:
            # Corrupt the capture and forget the admitted tasks: every
            # task now re-confirms against a capture nothing matches.
            cell.plan.capture = (("__tampered__",), ())
            cell.tasks.clear()
        before = registry.invalidated
        replay_interleaved(kernel, streams, seed=1)
        assert registry.invalidated > before

        # Differential: the same history on a plans-off kernel.
        ref = make_kernel("optimized")
        ref_streams = _loop_streams(ref)
        ref.costs.plans.drain_cell(ref_streams, 1).dead = True
        for _ in range(2):
            replay_interleaved(ref, ref_streams, seed=1, plans=False)
        assert _fingerprint(kernel) == _fingerprint(ref)

    def test_interleaving_matches_any_seed(self):
        """Different seeds interleave differently but plans stay
        invisible: on/off identity holds per seed."""
        for seed in (0, 3, 17):
            fps = []
            for plans in (True, False):
                kernel = make_kernel("optimized-lazy",
                                     lazy_sweep_quantize=True)
                streams = _loop_streams(kernel)
                for _ in range(4):
                    replay_interleaved(kernel, streams, seed=seed,
                                       plans=plans)
                fps.append(_fingerprint(kernel))
            assert fps[0] == fps[1]
