"""Syscall-level tests: open flags, fd I/O, truncate, access, getcwd."""

from __future__ import annotations

import pytest

from repro import (MAY_READ, MAY_WRITE, O_APPEND, O_CREAT,
                   O_DIRECTORY, O_EXCL, O_NOFOLLOW, O_RDONLY, O_RDWR,
                   O_TRUNC, O_WRONLY, errors)


@pytest.fixture
def task(kernel):
    return kernel.spawn_task(uid=0, gid=0)


def _mkfile(kernel, task, path, content=b""):
    fd = kernel.sys.open(task, path, O_CREAT | O_RDWR)
    if content:
        kernel.sys.write(task, fd, content)
    kernel.sys.close(task, fd)


class TestOpenFlags:
    def test_open_missing_enoent(self, kernel, task):
        with pytest.raises(errors.ENOENT):
            kernel.sys.open(task, "/nothing", O_RDONLY)

    def test_creat_mode_respects_umask(self, kernel, task):
        fd = kernel.sys.open(task, "/f", O_CREAT | O_RDWR, 0o666)
        kernel.sys.close(task, fd)
        assert kernel.sys.stat(task, "/f").mode & 0o777 == 0o644

    def test_excl_on_existing(self, kernel, task):
        _mkfile(kernel, task, "/f")
        with pytest.raises(errors.EEXIST):
            kernel.sys.open(task, "/f", O_CREAT | O_EXCL | O_RDWR)

    def test_creat_existing_opens(self, kernel, task):
        _mkfile(kernel, task, "/f", b"data")
        fd = kernel.sys.open(task, "/f", O_CREAT | O_RDWR)
        assert kernel.sys.read(task, fd, 10) == b"data"
        kernel.sys.close(task, fd)

    def test_trunc_zeroes(self, kernel, task):
        _mkfile(kernel, task, "/f", b"longcontent")
        fd = kernel.sys.open(task, "/f", O_RDWR | O_TRUNC)
        kernel.sys.close(task, fd)
        assert kernel.sys.stat(task, "/f").size == 0

    def test_trunc_readonly_noop(self, kernel, task):
        _mkfile(kernel, task, "/f", b"keep")
        fd = kernel.sys.open(task, "/f", O_RDONLY | O_TRUNC)
        kernel.sys.close(task, fd)
        assert kernel.sys.stat(task, "/f").size == 4

    def test_directory_flag(self, kernel, task):
        _mkfile(kernel, task, "/f")
        with pytest.raises(errors.ENOTDIR):
            kernel.sys.open(task, "/f", O_RDONLY | O_DIRECTORY)

    def test_write_open_on_directory_eisdir(self, kernel, task):
        kernel.sys.mkdir(task, "/d")
        with pytest.raises(errors.EISDIR):
            kernel.sys.open(task, "/d", O_WRONLY)

    def test_nofollow_on_symlink(self, kernel, task):
        _mkfile(kernel, task, "/real")
        kernel.sys.symlink(task, "/real", "/ln")
        with pytest.raises(errors.ELOOP):
            kernel.sys.open(task, "/ln", O_RDONLY | O_NOFOLLOW)
        fd = kernel.sys.open(task, "/ln", O_RDONLY)
        kernel.sys.close(task, fd)

    def test_open_checks_read_permission(self, kernel, task):
        _mkfile(kernel, task, "/secret")
        kernel.sys.chmod(task, "/secret", 0o200)
        user = kernel.spawn_task(uid=1000, gid=1000)
        with pytest.raises(errors.EACCES):
            kernel.sys.open(user, "/secret", O_RDONLY)

    def test_open_checks_write_permission(self, kernel, task):
        _mkfile(kernel, task, "/ro")
        kernel.sys.chmod(task, "/ro", 0o444)
        user = kernel.spawn_task(uid=1000, gid=1000)
        with pytest.raises(errors.EACCES):
            kernel.sys.open(user, "/ro", O_WRONLY)

    def test_create_needs_parent_write(self, kernel, task):
        kernel.sys.mkdir(task, "/locked", 0o555)
        user = kernel.spawn_task(uid=1000, gid=1000)
        with pytest.raises(errors.EACCES):
            kernel.sys.open(user, "/locked/new", O_CREAT | O_RDWR)


class TestFdIo:
    def test_read_write_offsets(self, kernel, task):
        fd = kernel.sys.open(task, "/f", O_CREAT | O_RDWR)
        kernel.sys.write(task, fd, b"hello")
        kernel.sys.lseek(task, fd, 0)
        assert kernel.sys.read(task, fd, 2) == b"he"
        assert kernel.sys.read(task, fd, 10) == b"llo"
        kernel.sys.close(task, fd)

    def test_append_mode(self, kernel, task):
        _mkfile(kernel, task, "/f", b"start")
        fd = kernel.sys.open(task, "/f", O_WRONLY | O_APPEND)
        kernel.sys.write(task, fd, b"+end")
        kernel.sys.close(task, fd)
        fd = kernel.sys.open(task, "/f", O_RDONLY)
        assert kernel.sys.read(task, fd, 100) == b"start+end"
        kernel.sys.close(task, fd)

    def test_read_on_write_only_fd(self, kernel, task):
        fd = kernel.sys.open(task, "/f", O_CREAT | O_WRONLY)
        with pytest.raises(errors.EBADF):
            kernel.sys.read(task, fd, 1)
        kernel.sys.close(task, fd)

    def test_write_on_read_only_fd(self, kernel, task):
        _mkfile(kernel, task, "/f")
        fd = kernel.sys.open(task, "/f", O_RDONLY)
        with pytest.raises(errors.EBADF):
            kernel.sys.write(task, fd, b"x")
        kernel.sys.close(task, fd)

    def test_closed_fd_rejected(self, kernel, task):
        fd = kernel.sys.open(task, "/f", O_CREAT | O_RDWR)
        kernel.sys.close(task, fd)
        with pytest.raises(errors.EBADF):
            kernel.sys.read(task, fd, 1)
        with pytest.raises(errors.EBADF):
            kernel.sys.close(task, fd)

    def test_bogus_fd(self, kernel, task):
        with pytest.raises(errors.EBADF):
            kernel.sys.read(task, 999, 1)

    def test_read_directory_fd_eisdir(self, kernel, task):
        kernel.sys.mkdir(task, "/d")
        fd = kernel.sys.open(task, "/d", O_RDONLY)
        with pytest.raises(errors.EISDIR):
            kernel.sys.read(task, fd, 1)
        kernel.sys.close(task, fd)

    def test_fstat(self, kernel, task):
        _mkfile(kernel, task, "/f", b"12345")
        fd = kernel.sys.open(task, "/f", O_RDONLY)
        st = kernel.sys.fstat(task, fd)
        assert st.size == 5 and st.filetype == "reg"
        kernel.sys.close(task, fd)

    def test_ftruncate(self, kernel, task):
        fd = kernel.sys.open(task, "/f", O_CREAT | O_RDWR)
        kernel.sys.write(task, fd, b"0123456789")
        kernel.sys.ftruncate(task, fd, 3)
        assert kernel.sys.fstat(task, fd).size == 3
        kernel.sys.close(task, fd)

    def test_truncate_path(self, kernel, task):
        _mkfile(kernel, task, "/f", b"0123456789")
        kernel.sys.truncate(task, "/f", 4)
        assert kernel.sys.stat(task, "/f").size == 4

    def test_truncate_directory_eisdir(self, kernel, task):
        kernel.sys.mkdir(task, "/d")
        with pytest.raises(errors.EISDIR):
            kernel.sys.truncate(task, "/d", 0)


class TestAccess:
    def test_access_modes(self, kernel, task):
        _mkfile(kernel, task, "/f")
        kernel.sys.chmod(task, "/f", 0o640)
        kernel.sys.chown(task, "/f", uid=1000, gid=50)
        owner = kernel.spawn_task(uid=1000, gid=1)
        kernel.sys.access(owner, "/f", MAY_READ | MAY_WRITE)
        member = kernel.spawn_task(uid=2000, gid=50)
        kernel.sys.access(member, "/f", MAY_READ)
        with pytest.raises(errors.EACCES):
            kernel.sys.access(member, "/f", MAY_WRITE)
        other = kernel.spawn_task(uid=3000, gid=3)
        with pytest.raises(errors.EACCES):
            kernel.sys.access(other, "/f", MAY_READ)

    def test_access_existence_only(self, kernel, task):
        _mkfile(kernel, task, "/f")
        kernel.sys.access(task, "/f", 0)  # F_OK
        with pytest.raises(errors.ENOENT):
            kernel.sys.access(task, "/nope", 0)


class TestCwd:
    def test_getcwd_root(self, kernel, task):
        assert kernel.sys.getcwd(task) == "/"

    def test_getcwd_nested(self, kernel, task):
        kernel.sys.mkdir(task, "/a")
        kernel.sys.mkdir(task, "/a/b")
        kernel.sys.chdir(task, "/a/b")
        assert kernel.sys.getcwd(task) == "/a/b"

    def test_chdir_to_file_enotdir(self, kernel, task):
        _mkfile(kernel, task, "/f")
        with pytest.raises(errors.ENOTDIR):
            kernel.sys.chdir(task, "/f")

    def test_chdir_needs_search(self, kernel, task):
        kernel.sys.mkdir(task, "/locked", 0o600)
        user = kernel.spawn_task(uid=1000, gid=1000)
        with pytest.raises(errors.EACCES):
            kernel.sys.chdir(user, "/locked")

    def test_fchdir(self, kernel, task):
        kernel.sys.mkdir(task, "/w")
        fd = kernel.sys.open(task, "/w", O_RDONLY | O_DIRECTORY)
        kernel.sys.fchdir(task, fd)
        assert kernel.sys.getcwd(task) == "/w"
        kernel.sys.close(task, fd)

    def test_getcwd_after_chroot(self, kernel, task):
        kernel.sys.mkdir(task, "/jail")
        kernel.sys.mkdir(task, "/jail/home")
        kernel.sys.chroot(task, "/jail")
        kernel.sys.chdir(task, "/home")
        assert kernel.sys.getcwd(task) == "/home"


class TestMiscSyscalls:
    def test_exists(self, kernel, task):
        assert kernel.sys.exists(task, "/")
        assert not kernel.sys.exists(task, "/nope")
        _mkfile(kernel, task, "/f")
        assert not kernel.sys.exists(task, "/f/below")  # ENOTDIR → False

    def test_readlink_of_file_einval(self, kernel, task):
        _mkfile(kernel, task, "/f")
        with pytest.raises(errors.EINVAL):
            kernel.sys.readlink(task, "/f")

    def test_unlink_mount_root_ebusy(self, kernel, task):
        with pytest.raises((errors.EBUSY, errors.EISDIR)):
            kernel.sys.unlink(task, "/")

    def test_rename_same_path_noop(self, kernel, task):
        _mkfile(kernel, task, "/f", b"data")
        kernel.sys.rename(task, "/f", "/f")
        assert kernel.sys.stat(task, "/f").size == 4

    def test_chown_requires_root(self, kernel, task):
        _mkfile(kernel, task, "/f")
        user = kernel.spawn_task(uid=1000, gid=1000)
        with pytest.raises(errors.EPERM):
            kernel.sys.chown(user, "/f", uid=1000)

    def test_chroot_requires_root(self, kernel, task):
        kernel.sys.mkdir(task, "/jail")
        user = kernel.spawn_task(uid=1000, gid=1000)
        with pytest.raises(errors.EPERM):
            kernel.sys.chroot(user, "/jail")

    def test_task_exit_releases_fds(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        fd = kernel.sys.open(task, "/f", O_CREAT | O_RDWR)
        dentry = kernel.dcache.root_dentry(kernel.root_fs).children["f"]
        pins = dentry.pin_count
        task.exit()
        assert dentry.pin_count == pins - 1

    def test_fork_shares_cred(self, kernel):
        parent = kernel.spawn_task(uid=1000, gid=1000)
        child = parent.fork()
        assert child.cred is parent.cred
        assert child.pid != parent.pid
