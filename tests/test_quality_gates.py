"""Repository-level quality gates.

These tests keep the library honest as it grows: every cost primitive is
actually charged by some code path, every public item carries a
docstring, and the packaging metadata stays importable.
"""

from __future__ import annotations

import ast
import pathlib

import pytest

import repro
from repro import O_CREAT, O_RDWR, errors, make_kernel
from repro.sim.costs import CALIBRATED

SRC = pathlib.Path(repro.__file__).resolve().parent


def _exercise_everything():
    """One kitchen-sink run touching every major code path."""
    from repro.fs.netfs import ExportServer, NfsLikeFs
    from repro.fs.pseudofs import PseudoFs
    from repro.fs.tmpfs import TmpFs

    from repro.vfs.lsm import SELinuxLikeLsm

    lsm = SELinuxLikeLsm()
    kernel = make_kernel("optimized", lsm=lsm)
    task = kernel.spawn_task(uid=0, gid=0)
    sys = kernel.sys
    sys.mkdir(task, "/d")
    fd = sys.open(task, "/d/f", O_CREAT | O_RDWR)
    sys.write(task, fd, b"x" * 100)
    sys.read(task, fd, 10)
    sys.close(task, fd)
    for _ in range(2):
        sys.stat(task, "/d/f")
    sys.symlink(task, "/d/f", "/ln")
    sys.stat(task, "/ln")
    sys.stat(task, "/ln")
    try:
        sys.stat(task, "/d/../d/f")
    except errors.FsError:
        pass
    for _ in range(2):
        try:
            sys.stat(task, "/miss/deep")
        except errors.ENOENT:
            pass
    sys.listdir(task, "/d")
    sys.listdir(task, "/d")
    sys.chmod(task, "/d", 0o700)
    sys.chown(task, "/d/f", uid=1, gid=1)
    sys.rename(task, "/d/f", "/d/g")
    sys.unlink(task, "/d/g")
    sys.setxattr(task, "/d", "user.k", b"v")
    sys.mkdir(task, "/mnt")
    sys.mount_fs(task, TmpFs(kernel.costs), "/mnt")
    fd = sys.open(task, "/mnt/t", O_CREAT | O_RDWR)
    sys.close(task, fd)
    sys.umount(task, "/mnt")
    sys.mkdir(task, "/proc")
    proc = PseudoFs(kernel.costs)
    proc.add_static_file(proc.root_ino, "version", "1")
    sys.mount_fs(task, proc, "/proc")
    sys.stat(task, "/proc/version")
    server = ExportServer(kernel.costs)
    sys.mkdir(task, "/net")
    sys.mount_fs(task, NfsLikeFs(server), "/net")
    fd = sys.open(task, "/net/r", O_CREAT | O_RDWR)
    sys.close(task, fd)
    sys.stat(task, "/net/r")
    kernel.drop_caches()
    sys.stat(task, "/d")  # cold: disk path
    import random
    fd, _name = sys.mkstemp(task, "/d", rng=random.Random(1))
    sys.close(task, fd)
    # PRF kernel to exercise the PRF primitive.
    prf = make_kernel("optimized", signature_scheme="prf",
                      costs=kernel.costs)
    prf_task = prf.spawn_task(uid=0, gid=0)
    prf.sys.mkdir(prf_task, "/p")
    prf.sys.stat(prf_task, "/p")
    # A lazy kernel covers the epoch-coherence primitives.
    lazy = make_kernel("optimized-lazy", costs=kernel.costs)
    lazy_task = lazy.spawn_task(uid=0, gid=0)
    lazy.sys.mkdir(lazy_task, "/lz")
    lazy.sys.stat(lazy_task, "/lz")
    lazy.sys.chmod(lazy_task, "/lz", 0o700)
    lazy.sys.stat(lazy_task, "/lz")
    # A baseline kernel covers the classic walk-only primitives.
    base = make_kernel("baseline", costs=kernel.costs)
    base_task = base.spawn_task(uid=0, gid=0)
    base.sys.mkdir(base_task, "/b")
    fd = base.sys.open(base_task, "/b/f", O_CREAT | O_RDWR)
    base.sys.close(base_task, fd)
    base.sys.stat(base_task, "/b/f")
    base.sys.listdir(base_task, "/b")
    return kernel


class TestCostTableCoverage:
    def test_every_primitive_is_charged_somewhere(self):
        kernel = _exercise_everything()
        charged = set(kernel.costs.counts)
        never = {name for name in CALIBRATED
                 if not name.endswith("_per_byte")} - charged
        # "dotdot_extra_lookup" fires only on a fastpath dot-dot hit;
        # exercise it explicitly.
        k2 = make_kernel("optimized", costs=kernel.costs)
        t2 = k2.spawn_task(uid=0, gid=0)
        k2.sys.mkdir(t2, "/a")
        k2.sys.mkdir(t2, "/a/b")
        for _ in range(3):
            k2.sys.stat(t2, "/a/b/../b")
        charged = set(kernel.costs.counts)
        never = {name for name in CALIBRATED
                 if not name.endswith("_per_byte")} - charged
        assert not never, f"dead cost primitives: {sorted(never)}"

    def test_per_byte_entries_have_base(self):
        for name in CALIBRATED:
            if name.endswith("_per_byte"):
                assert name[:-len("_per_byte")] in CALIBRATED, name


def _public_defs(tree: ast.Module):
    """Module-level public classes and functions.

    Methods are exempt: overrides inherit their contract from the
    documented base class (e.g. the FileSystem and AppWorkload APIs).
    """
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if not node.name.startswith("_"):
                yield node


class TestDocumentation:
    def test_every_module_has_docstring(self):
        missing = []
        for path in sorted(SRC.rglob("*.py")):
            tree = ast.parse(path.read_text())
            if ast.get_docstring(tree) is None:
                missing.append(str(path.relative_to(SRC)))
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_items_have_docstrings(self):
        missing = []
        for path in sorted(SRC.rglob("*.py")):
            tree = ast.parse(path.read_text())
            for node in _public_defs(tree):
                if ast.get_docstring(node) is None:
                    missing.append(
                        f"{path.relative_to(SRC)}:{node.lineno} "
                        f"{node.name}")
        assert not missing, \
            "public items without docstrings:\n" + "\n".join(missing)


class TestPackaging:
    def test_version_exposed(self):
        assert repro.__version__

    def test_public_exports_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        import importlib
        for package in ("repro.core", "repro.vfs", "repro.fs",
                        "repro.sim", "repro.workloads", "repro.bench",
                        "repro.testing", "repro.tools"):
            importlib.import_module(package)
