"""Tests for the report CLI and miscellaneous small surfaces."""

from __future__ import annotations

import pytest

from repro import make_kernel
from repro.bench import report as report_cli
from repro.vfs.mount import Mount, PathPos


class TestReportCli:
    def test_quick_only_prints_markdown(self, capsys):
        status = report_cli.main(["--quick", "--only", "table4"])
        out = capsys.readouterr().out
        assert status == 0
        assert "### Table 4" in out
        assert "EXPERIMENTS — paper vs. measured" in out

    def test_unknown_only_fails_loudly(self, capsys):
        status = report_cli.main(["--quick", "--only", "nonexistent"])
        captured = capsys.readouterr()
        assert status == 2
        assert "###" not in captured.out
        assert "nonexistent" in captured.err
        # The error lists the known names so the typo is easy to fix.
        assert "table4" in captured.err

    def test_only_accepts_comma_separated_names(self, capsys):
        status = report_cli.main(["--quick", "--only", "table4,fig2"])
        out = capsys.readouterr().out
        assert status == 0
        assert "### Table 4" in out
        assert "### Figure 2" in out

    def test_output_written(self, tmp_path, capsys):
        target = tmp_path / "EXP.md"
        # A full (non-quick) single-experiment run goes to a file...
        # but --only forces stdout; use generate() directly for the file
        # path logic.
        markdown, ok = report_cli.generate(quick=True, only="table4")
        assert ok
        target.write_text(markdown)
        assert "Table 4" in target.read_text()

    def test_registry_names_unique(self):
        names = [name for name, _ in report_cli.EXPERIMENTS]
        assert len(names) == len(set(names))


class TestSmallSurfaces:
    def test_pathpos_same_place(self, kernel):
        root = PathPos(kernel.root_mount,
                       kernel.root_mount.root_dentry)
        again = PathPos(kernel.root_mount,
                        kernel.root_mount.root_dentry)
        assert root.same_place(again)

    def test_mount_repr(self, kernel):
        assert "simext" in repr(kernel.root_mount)

    def test_task_repr_and_cred_repr(self, kernel):
        task = kernel.spawn_task(uid=7, gid=8, security="dom")
        assert "uid=7" in repr(task)
        assert "sec=dom" in repr(task.cred)

    def test_dentry_repr_variants(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/d")
        from repro import errors
        with pytest.raises(errors.ENOENT):
            kernel.sys.stat(task, "/d/missing")
        root = kernel.dcache.root_dentry(kernel.root_fs)
        assert "Dentry" in repr(root.children["d"])
        missing = root.children["d"].children.get("missing")
        if missing is not None:
            assert "neg" in repr(missing)

    def test_stats_repr(self, kernel):
        kernel.stats.bump("lookup")
        assert "lookup=1" in repr(kernel.stats)

    def test_namespace_repr(self, kernel):
        assert "MountNamespace" in repr(kernel.root_ns)

    def test_fastdentry_repr(self, optimized):
        task = optimized.spawn_task(uid=0, gid=0)
        optimized.sys.mkdir(task, "/d")
        optimized.sys.stat(task, "/d")
        dentry = optimized.dcache.root_dentry(optimized.root_fs) \
            .children["d"]
        assert "FastDentry" in repr(dentry.fast)

    def test_inode_repr(self, kernel):
        root = kernel.dcache.root_dentry(kernel.root_fs)
        assert "simext" in repr(root.inode)
