"""Unit tests for the DLFS-like path-keyed file system (§7)."""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_RDWR, errors, make_kernel
from repro.fs.dlfs import DlfsLikeFs
from repro.sim.costs import CostModel, UNIT


@pytest.fixture
def fs():
    return DlfsLikeFs(CostModel(dict(UNIT)))


class TestDlfsBasics:
    def test_create_lookup(self, fs):
        fs.create(fs.root_ino, "f", 0o644, 1, 2)
        info = fs.lookup(fs.root_ino, "f")
        assert info is not None and info.uid == 1

    def test_lookup_missing(self, fs):
        assert fs.lookup(fs.root_ino, "ghost") is None

    def test_nested_dirs(self, fs):
        a = fs.mkdir(fs.root_ino, "a", 0o755, 0, 0)
        b = fs.mkdir(a.ino, "b", 0o755, 0, 0)
        fs.create(b.ino, "f", 0o644, 0, 0)
        assert fs.lookup(b.ino, "f") is not None

    def test_readdir(self, fs):
        fs.create(fs.root_ino, "x", 0o644, 0, 0)
        d = fs.mkdir(fs.root_ino, "d", 0o755, 0, 0)
        fs.create(d.ino, "inner", 0o644, 0, 0)
        names = {name for name, _i, _t in fs.readdir(fs.root_ino)}
        assert names == {"x", "d"}  # inner not listed at the root

    def test_write_read(self, fs):
        info = fs.create(fs.root_ino, "f", 0o644, 0, 0)
        fs.write(info.ino, 0, b"payload")
        assert fs.read(info.ino, 0, 100) == b"payload"

    def test_unlink(self, fs):
        fs.create(fs.root_ino, "f", 0o644, 0, 0)
        fs.unlink(fs.root_ino, "f")
        assert fs.lookup(fs.root_ino, "f") is None

    def test_rmdir_nonempty(self, fs):
        d = fs.mkdir(fs.root_ino, "d", 0o755, 0, 0)
        fs.create(d.ino, "f", 0o644, 0, 0)
        with pytest.raises(errors.ENOTEMPTY):
            fs.rmdir(fs.root_ino, "d")

    def test_no_hard_links(self, fs):
        info = fs.create(fs.root_ino, "f", 0o644, 0, 0)
        with pytest.raises(errors.ENOTSUP):
            fs.link(fs.root_ino, "g", info.ino)


class TestDlfsRename:
    def test_rename_rekeys_descendants(self, fs):
        a = fs.mkdir(fs.root_ino, "a", 0o755, 0, 0)
        b = fs.mkdir(a.ino, "b", 0o755, 0, 0)
        fs.create(b.ino, "f1", 0o644, 0, 0)
        fs.create(b.ino, "f2", 0o644, 0, 0)
        fs.rename(fs.root_ino, "a", fs.root_ino, "z")
        # a + b + f1 + f2 all re-keyed.
        assert fs.rekey_count == 4
        z = fs.lookup(fs.root_ino, "z")
        zb = fs.lookup(z.ino, "b")
        assert fs.lookup(zb.ino, "f1") is not None
        assert fs.lookup(fs.root_ino, "a") is None

    def test_inode_identity_survives_rename(self, fs):
        info = fs.create(fs.root_ino, "f", 0o644, 0, 0)
        fs.rename(fs.root_ino, "f", fs.root_ino, "g")
        assert fs.lookup(fs.root_ino, "g").ino == info.ino
        assert fs.getattr(info.ino).ino == info.ino

    def test_rename_charges_per_object(self, fs):
        d = fs.mkdir(fs.root_ino, "d", 0o755, 0, 0)
        for i in range(10):
            fs.create(d.ino, f"f{i}", 0o644, 0, 0)
        before = fs.costs.now_ns
        fs.rename(fs.root_ino, "d", fs.root_ino, "e")
        elapsed = fs.costs.now_ns - before
        assert elapsed > 11 * 20_000  # 11 objects x ~24 us re-key


class TestDlfsUnderVfs:
    def test_full_kernel_stack(self):
        costs = CostModel()
        kernel = make_kernel("baseline", root_fs=DlfsLikeFs(costs),
                             costs=costs)
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/docs")
        fd = sys.open(task, "/docs/readme", O_CREAT | O_RDWR)
        sys.write(task, fd, b"hello dlfs")
        sys.close(task, fd)
        assert sys.stat(task, "/docs/readme").size == 10
        sys.rename(task, "/docs", "/papers")
        assert sys.stat(task, "/papers/readme").size == 10
        with pytest.raises(errors.ENOENT):
            sys.stat(task, "/docs/readme")

    def test_dual_equivalence_on_dlfs(self):
        from repro.core.kernel import BASELINE, OPTIMIZED
        from repro.testing import DualKernel

        dual = DualKernel((BASELINE, OPTIMIZED),
                          fs_factory=lambda costs: DlfsLikeFs(costs))
        root = dual.spawn_task(uid=0, gid=0)
        dual.mkdir(root, "/a")
        fd = dual.open(root, "/a/f", O_CREAT | O_RDWR)
        dual.close(root, fd)
        dual.stat(root, "/a/f")
        dual.stat(root, "/a/f")
        dual.rename(root, "/a", "/b")
        with pytest.raises(errors.ENOENT):
            dual.stat(root, "/a/f")
        assert dual.stat(root, "/b/f").filetype == "reg"
        dual.check_invariants()
