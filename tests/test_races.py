"""Adversarial lookup-vs-mutation interleavings (§3.2's protocol).

Each test sweeps the mutation's firing point across every hook boundary
of a victim lookup, then asserts (a) the victim observed a linearizable
outcome and (b) no stale state survived in the fastpath structures —
:func:`repro.testing.races.assert_fastpath_consistent` compares every
probe path's fastpath answer against a non-populating slowpath walk.
"""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_RDWR, make_kernel
from repro.testing.races import (assert_fastpath_consistent, run_race)


def _mkfile(kernel, task, path, content=b""):
    fd = kernel.sys.open(task, path, O_CREAT | O_RDWR)
    if content:
        kernel.sys.write(task, fd, content)
    kernel.sys.close(task, fd)


def _sweep(make_env, probe_paths, max_points=24):
    """Run the race at every firing point until the walk runs dry."""
    fired_any = False
    for fire_at in range(max_points):
        kernel, task, victim, mutation = make_env()
        kind, payload, fired = run_race(kernel, victim, mutation, fire_at)
        if not fired:
            break
        fired_any = True
        assert kind in ("ok", "err"), payload
        assert_fastpath_consistent(kernel, task, probe_paths)
    assert fired_any, "mutation never fired; no race was exercised"


class TestRenameRaces:
    def test_lookup_races_directory_rename(self):
        def make_env():
            kernel = make_kernel("optimized")
            task = kernel.spawn_task(uid=0, gid=0)
            sys = kernel.sys
            sys.mkdir(task, "/a")
            sys.mkdir(task, "/a/b")
            _mkfile(kernel, task, "/a/b/f", b"data")
            kernel.drop_caches()  # force the victim onto the slowpath

            def victim():
                return sys.stat(task, "/a/b/f")

            def mutation():
                sys.rename(task, "/a", "/z")

            return kernel, task, victim, mutation

        _sweep(make_env, ["/a/b/f", "/z/b/f", "/a", "/z"])

    def test_lookup_races_file_rename(self):
        def make_env():
            kernel = make_kernel("optimized")
            task = kernel.spawn_task(uid=0, gid=0)
            sys = kernel.sys
            sys.mkdir(task, "/d")
            _mkfile(kernel, task, "/d/old", b"x")
            kernel.drop_caches()

            def victim():
                return sys.stat(task, "/d/old")

            def mutation():
                sys.rename(task, "/d/old", "/d/new")

            return kernel, task, victim, mutation

        _sweep(make_env, ["/d/old", "/d/new"])

    def test_rename_over_victims_target(self):
        def make_env():
            kernel = make_kernel("optimized")
            task = kernel.spawn_task(uid=0, gid=0)
            sys = kernel.sys
            sys.mkdir(task, "/d")
            _mkfile(kernel, task, "/d/target", b"old")
            _mkfile(kernel, task, "/d/incoming", b"new!")
            kernel.drop_caches()

            def victim():
                return sys.stat(task, "/d/target")

            def mutation():
                sys.rename(task, "/d/incoming", "/d/target")

            return kernel, task, victim, mutation

        _sweep(make_env, ["/d/target", "/d/incoming"])


class TestPermissionRaces:
    def test_lookup_races_chmod(self):
        def make_env():
            kernel = make_kernel("optimized")
            root = kernel.spawn_task(uid=0, gid=0)
            sys = kernel.sys
            sys.mkdir(root, "/pub", 0o755)
            _mkfile(kernel, root, "/pub/f", b"x")
            user = kernel.spawn_task(uid=1000, gid=1000)
            kernel.drop_caches()

            def victim():
                return sys.stat(user, "/pub/f")

            def mutation():
                sys.chmod(root, "/pub", 0o700)

            return kernel, user, victim, mutation

        # Note: ground truth is evaluated *after* the mutation, so both
        # cached answers must equal the post-chmod EACCES truth.
        _sweep(make_env, ["/pub/f"])

    def test_lookup_races_relabel(self):
        from repro.vfs.lsm import PathPrefixLsm

        def make_env():
            lsm = PathPrefixLsm()
            lsm.deny("sandbox", "blocked")
            kernel = make_kernel("optimized", lsm=lsm)
            root = kernel.spawn_task(uid=0, gid=0)
            sys = kernel.sys
            sys.mkdir(root, "/zone", 0o755)
            _mkfile(kernel, root, "/zone/f", b"x")
            confined = kernel.spawn_task(uid=1000, gid=1000,
                                         security="sandbox")
            kernel.drop_caches()

            def victim():
                return sys.stat(confined, "/zone/f")

            def mutation():
                sys.relabel(root, "/zone", "blocked")

            return kernel, confined, victim, mutation

        _sweep(make_env, ["/zone/f"])


class TestExistenceRaces:
    def test_lookup_races_unlink(self):
        def make_env():
            kernel = make_kernel("optimized")
            task = kernel.spawn_task(uid=0, gid=0)
            sys = kernel.sys
            sys.mkdir(task, "/d")
            _mkfile(kernel, task, "/d/f", b"x")
            kernel.drop_caches()

            def victim():
                return sys.stat(task, "/d/f")

            def mutation():
                sys.unlink(task, "/d/f")

            return kernel, task, victim, mutation

        _sweep(make_env, ["/d/f"])

    def test_negative_lookup_races_creation(self):
        def make_env():
            kernel = make_kernel("optimized")
            task = kernel.spawn_task(uid=0, gid=0)
            sys = kernel.sys
            sys.mkdir(task, "/d")
            kernel.drop_caches()

            def victim():
                return sys.stat(task, "/d/newfile")

            def mutation():
                _mkfile(kernel, task, "/d/newfile", b"born")

            return kernel, task, victim, mutation

        _sweep(make_env, ["/d/newfile"])

    def test_symlink_lookup_races_target_swap(self):
        def make_env():
            kernel = make_kernel("optimized")
            task = kernel.spawn_task(uid=0, gid=0)
            sys = kernel.sys
            sys.mkdir(task, "/v")
            _mkfile(kernel, task, "/v/one", b"1")
            _mkfile(kernel, task, "/v/two", b"22")
            sys.symlink(task, "/v/one", "/current")
            kernel.drop_caches()

            def victim():
                return sys.stat(task, "/current")

            def mutation():
                sys.unlink(task, "/current")
                sys.symlink(task, "/v/two", "/current")

            return kernel, task, victim, mutation

        _sweep(make_env, ["/current", "/v/one", "/v/two"])


class TestMountRaces:
    def test_lookup_races_mount(self):
        from repro.fs.tmpfs import TmpFs

        def make_env():
            kernel = make_kernel("optimized")
            task = kernel.spawn_task(uid=0, gid=0)
            sys = kernel.sys
            sys.mkdir(task, "/mnt")
            _mkfile(kernel, task, "/mnt/under", b"below")
            kernel.drop_caches()

            def victim():
                return sys.stat(task, "/mnt/under")

            def mutation():
                sys.mount_fs(task, TmpFs(kernel.costs), "/mnt")

            return kernel, task, victim, mutation

        _sweep(make_env, ["/mnt/under", "/mnt"])


class TestInjectorMechanics:
    def test_unfired_when_point_beyond_walk(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        _mkfile(kernel, task, "/f")
        kernel.drop_caches()
        kind, _payload, fired = run_race(
            kernel, lambda: kernel.sys.stat(task, "/f"),
            lambda: None, fire_at=1000)
        assert kind == "ok" and not fired

    def test_requires_optimized_kernel(self):
        from repro.testing.races import RaceInjector
        with pytest.raises(ValueError):
            RaceInjector(make_kernel("baseline"), lambda: None, 0)
