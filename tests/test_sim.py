"""Unit tests for the simulation substrate: clock, costs, stats."""

from __future__ import annotations

import pytest

from repro.sim.clock import Clock, Stopwatch
from repro.sim.concurrency import (ScalingParams, read_latency_curve,
                                   writer_latency_curve)
from repro.sim.costs import CALIBRATED, UNIT, CostModel
from repro.sim.stats import Stats


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now_ns == 0

    def test_advance_accumulates(self):
        clock = Clock()
        clock.advance(10)
        clock.advance(2.5)
        assert clock.now_ns == 12.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            Clock().advance(-1)

    def test_elapsed_since(self):
        clock = Clock()
        clock.advance(5)
        mark = clock.now_ns
        clock.advance(7)
        assert clock.elapsed_since(mark) == 7

    def test_stopwatch(self):
        clock = Clock()
        with Stopwatch(clock) as watch:
            clock.advance(42)
        assert watch.elapsed_ns == 42


class TestCostModel:
    def test_charge_advances_clock(self):
        costs = CostModel(dict(UNIT))
        costs.charge("ht_probe")
        assert costs.now_ns == 1

    def test_charge_times(self):
        costs = CostModel(dict(UNIT))
        costs.charge("ht_probe", times=5)
        assert costs.now_ns == 5
        assert costs.count("ht_probe") == 5

    def test_per_byte_component(self):
        costs = CostModel({"sig_hash": 10.0, "sig_hash_per_byte": 2.0})
        charged = costs.charge("sig_hash", nbytes=4)
        assert charged == 18.0

    def test_unknown_primitive_is_error(self):
        costs = CostModel(dict(UNIT))
        with pytest.raises(KeyError):
            costs.charge("not_a_primitive")

    def test_scopes_attribute_innermost(self):
        costs = CostModel(dict(UNIT))
        with costs.scope("outer"):
            costs.charge("ht_probe")
            with costs.scope("inner"):
                costs.charge("ht_probe")
        assert costs.scope_ns("outer") == 1
        assert costs.scope_ns("inner") == 1

    def test_reset_attribution_keeps_clock(self):
        costs = CostModel(dict(UNIT))
        costs.charge("ht_probe")
        costs.reset_attribution()
        assert costs.now_ns == 1
        assert costs.by_primitive == {}

    def test_charge_ns_raw(self):
        costs = CostModel(dict(UNIT))
        costs.charge_ns("compute", 123.0)
        assert costs.now_ns == 123.0

    def test_calibrated_covers_unit(self):
        assert set(UNIT) == set(CALIBRATED)

    def test_every_per_byte_has_base(self):
        for name in CALIBRATED:
            if name.endswith("_per_byte"):
                assert name[:-len("_per_byte")] in CALIBRATED


class TestStats:
    def test_bump_and_get(self):
        stats = Stats()
        stats.bump("lookup")
        stats.bump("lookup", 2)
        assert stats.get("lookup") == 3

    def test_missing_counter_is_zero(self):
        assert Stats().get("nothing") == 0

    def test_hit_rate_no_lookups(self):
        assert Stats().hit_rate() == 1.0

    def test_hit_rate(self):
        stats = Stats()
        stats.bump("lookup", 10)
        stats.bump("fs_lookup", 3)
        assert stats.hit_rate() == pytest.approx(0.7)

    def test_negative_rate(self):
        stats = Stats()
        stats.bump("lookup", 4)
        stats.bump("negative_hit", 1)
        assert stats.negative_rate() == 0.25

    def test_reset(self):
        stats = Stats()
        stats.bump("x")
        stats.reset()
        assert stats.get("x") == 0

    def test_snapshot_is_copy(self):
        stats = Stats()
        stats.bump("x")
        snap = stats.snapshot()
        stats.bump("x")
        assert snap["x"] == 1


class TestConcurrencyModel:
    def test_read_curve_flat(self):
        curve = read_latency_curve(1000.0, 12)
        assert len(curve) == 12
        assert curve[0] == 1000.0
        assert curve[-1] <= 1100.0  # ≤10% growth at 12 threads

    def test_read_curve_monotonic(self):
        curve = read_latency_curve(500.0, 8)
        assert all(a <= b for a, b in zip(curve, curve[1:]))

    def test_writer_curve_contends(self):
        curve = writer_latency_curve(10_000.0, 12)
        assert curve[0] == 10_000.0
        assert curve[-1] > 5 * curve[0]

    def test_custom_params(self):
        params = ScalingParams(read_coherence_factor=0.0)
        curve = read_latency_curve(100.0, 4, params)
        assert curve == [100.0] * 4
