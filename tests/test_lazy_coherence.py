"""Epoch-based lazy invalidation (the ``optimized-lazy`` profile).

The lazy kernel replaces eager recursive shootdowns with O(1) epoch
stamps and touch-time revalidation (docs/coherence.md).  These tests pin
down the three claims that design rests on:

* observational equivalence with the eager optimized kernel — scripted
  scenarios, a seeded random differential, and deterministic concurrent
  schedules;
* staleness is actually caught at touch time — renames, permission
  changes (including above a mount boundary), and symlink aliases;
* stale entries are reclaimed — touch-time eviction for probed paths,
  the background sweep for abandoned ones.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import O_CREAT, O_RDWR, OPTIMIZED, OPTIMIZED_LAZY, errors, \
    make_kernel
from repro.fs.tmpfs import TmpFs
from repro.testing import DualKernel
from repro.testing.dual import _check_kernel_invariants
from repro.testing.races import assert_fastpath_consistent
from repro.testing.scheduler import ConcurrentRunner


def _mkfile(kernel, task, path, content=b""):
    fd = kernel.sys.open(task, path, O_CREAT | O_RDWR)
    if content:
        kernel.sys.write(task, fd, content)
    kernel.sys.close(task, fd)


@pytest.fixture
def lazy():
    return make_kernel("optimized-lazy")


class TestLazyBasics:
    def test_rename_invalidates_old_path(self, lazy):
        task = lazy.spawn_task(uid=0, gid=0)
        sys = lazy.sys
        sys.mkdir(task, "/a")
        sys.mkdir(task, "/a/b")
        _mkfile(lazy, task, "/a/b/f")
        for _ in range(3):
            sys.stat(task, "/a/b/f")  # warm DLHT + PCC
        sys.rename(task, "/a/b", "/a/c")
        with pytest.raises(errors.ENOENT):
            sys.stat(task, "/a/b/f")
        assert sys.stat(task, "/a/c/f").filetype == "reg"
        _check_kernel_invariants(lazy)

    def test_chmod_revokes_cached_permission(self, lazy):
        root = lazy.spawn_task(uid=0, gid=0)
        user = lazy.spawn_task(uid=1000, gid=1000)
        sys = lazy.sys
        sys.mkdir(root, "/pub", 0o755)
        _mkfile(lazy, root, "/pub/f")
        for _ in range(3):
            sys.stat(user, "/pub/f")  # memoize the prefix check
        sys.chmod(root, "/pub", 0o700)
        with pytest.raises(errors.EACCES):
            sys.stat(user, "/pub/f")
        sys.chmod(root, "/pub", 0o755)
        assert sys.stat(user, "/pub/f").filetype == "reg"

    def test_mutation_does_not_walk_the_subtree(self, lazy):
        """A rename leaves the stale subtree entries registered (they are
        settled lazily), unlike the eager kernel's recursive shootdown."""
        task = lazy.spawn_task(uid=0, gid=0)
        sys = lazy.sys
        sys.mkdir(task, "/big")
        for i in range(30):
            _mkfile(lazy, task, f"/big/f{i}")
            sys.stat(task, f"/big/f{i}")
        dlht = lazy.root_ns.dlht
        before = len(dlht)
        sys.rename(task, "/big", "/bigger")
        # O(1) mutation: nothing evicted at rename time.
        assert len(dlht) == before
        # Touching one stale path settles just that entry.
        with pytest.raises(errors.ENOENT):
            sys.stat(task, "/big/f0")
        assert lazy.stats.snapshot().get("lazy_evict", 0) >= 1

    def test_sweeper_reclaims_untouched_stale_entries(self, lazy):
        task = lazy.spawn_task(uid=0, gid=0)
        sys = lazy.sys
        sys.mkdir(task, "/big")
        for i in range(10):
            _mkfile(lazy, task, f"/big/f{i}")
            sys.stat(task, f"/big/f{i}")
        sys.rename(task, "/big", "/gone")
        sys.rename(task, "/gone", "/gone2")
        dlht = lazy.root_ns.dlht
        stale = {key for key, d in dlht.items()
                 if d.fast is not None and d.fast.epoch_snapshot
                 < lazy.coherence.epoch}
        assert stale, "setup should leave stale registrations behind"
        assert lazy.sweeper is not None
        for _ in range(40):  # full table, batched
            lazy.sweeper.sweep_once()
        remaining = {key for key, _ in dlht.items()}
        # Every stale old-path key was discarded without being touched.
        for key in stale & remaining:
            dentry = dlht.peek(key)
            assert not dentry.dead
            assert key in dlht.keys_of(dentry)
            assert dentry.fast.epoch_snapshot >= lazy.coherence.epoch, \
                "sweeper left a stale key unsettled"


class TestLazyMountCrossing:
    def test_chmod_above_mountpoint_stales_inner_prefix(self, lazy):
        root = lazy.spawn_task(uid=0, gid=0)
        user = lazy.spawn_task(uid=1000, gid=1000)
        sys = lazy.sys
        sys.mkdir(root, "/top", 0o755)
        sys.mkdir(root, "/top/mnt", 0o755)
        sys.mount_fs(root, TmpFs(lazy.costs), "/top/mnt")
        sys.mkdir(root, "/top/mnt/d", 0o755)
        _mkfile(lazy, root, "/top/mnt/d/f")
        for _ in range(3):
            sys.stat(user, "/top/mnt/d/f")  # warm across the mount
        # The mutation is outside the mounted fs; the memoized prefix
        # inside it must still go stale.
        sys.chmod(root, "/top", 0o700)
        with pytest.raises(errors.EACCES):
            sys.stat(user, "/top/mnt/d/f")
        sys.chmod(root, "/top", 0o755)
        assert sys.stat(user, "/top/mnt/d/f").filetype == "reg"
        _check_kernel_invariants(lazy)

    def test_rename_above_mountpoint_invalidates_inner_path(self, lazy):
        task = lazy.spawn_task(uid=0, gid=0)
        sys = lazy.sys
        sys.mkdir(task, "/top")
        sys.mkdir(task, "/top/mnt")
        sys.mount_fs(task, TmpFs(lazy.costs), "/top/mnt")
        _mkfile(lazy, task, "/top/mnt/f")
        for _ in range(3):
            sys.stat(task, "/top/mnt/f")
        sys.rename(task, "/top", "/moved")
        with pytest.raises(errors.ENOENT):
            sys.stat(task, "/top/mnt/f")
        assert sys.stat(task, "/moved/mnt/f").filetype == "reg"

    def test_fresh_mount_shadows_cached_mountpoint(self, lazy):
        task = lazy.spawn_task(uid=0, gid=0)
        sys = lazy.sys
        sys.mkdir(task, "/m")
        _mkfile(lazy, task, "/m/old")
        for _ in range(3):
            sys.stat(task, "/m/old")
        sys.mount_fs(task, TmpFs(lazy.costs), "/m")
        # The cached /m/old belongs to the now-shadowed tree.
        with pytest.raises(errors.ENOENT):
            sys.stat(task, "/m/old")
        sys.umount(task, "/m")
        assert sys.stat(task, "/m/old").filetype == "reg"


class TestLazySymlinkAliases:
    def test_alias_invalidated_when_target_moves(self, lazy):
        task = lazy.spawn_task(uid=0, gid=0)
        sys = lazy.sys
        sys.mkdir(task, "/real")
        _mkfile(lazy, task, "/real/f", b"x")
        sys.symlink(task, "/real", "/ln")
        for _ in range(3):
            sys.stat(task, "/ln/f")  # warm the alias chain
        sys.rename(task, "/real", "/real2")
        with pytest.raises(errors.ENOENT):
            sys.stat(task, "/ln/f")  # dangling link now
        sys.mkdir(task, "/real")
        _mkfile(lazy, task, "/real/g", b"y")
        assert sys.stat(task, "/ln/g").filetype == "reg"
        with pytest.raises(errors.ENOENT):
            sys.stat(task, "/ln/f")
        _check_kernel_invariants(lazy)

    def test_final_symlink_followed_after_retarget(self, lazy):
        task = lazy.spawn_task(uid=0, gid=0)
        sys = lazy.sys
        sys.mkdir(task, "/d")
        _mkfile(lazy, task, "/d/a", b"a")
        _mkfile(lazy, task, "/d/b", b"b")
        sys.symlink(task, "/d/a", "/cur")
        for _ in range(3):
            assert sys.stat(task, "/cur").size == 1
        sys.unlink(task, "/cur")
        sys.symlink(task, "/d/b", "/cur")
        st = sys.stat(task, "/cur")
        assert st.ino == sys.stat(task, "/d/b").ino


class TestEagerLazyEquivalence:
    """The tentpole's differential harness: eager vs lazy, op by op."""

    @pytest.fixture
    def dual(self):
        return DualKernel(configs=(OPTIMIZED, OPTIMIZED_LAZY))

    def test_scripted_churn_workload(self, dual):
        root = dual.spawn_task(uid=0, gid=0)
        user = dual.spawn_task(uid=1000, gid=1000)
        dual.mkdir(root, "/w", 0o755)
        for i in range(5):
            fd = dual.open(root, f"/w/f{i}", O_CREAT | O_RDWR)
            dual.close(root, fd)
        dual.stat(user, "/w/f0")
        dual.rename(root, "/w/f0", "/w/g0")
        with pytest.raises(errors.ENOENT):
            dual.stat(user, "/w/f0")
        dual.stat(user, "/w/g0")
        dual.symlink(root, "/w/g0", "/w/ln")
        dual.stat(user, "/w/ln")
        dual.chmod(root, "/w", 0o700)
        with pytest.raises(errors.EACCES):
            dual.stat(user, "/w/g0")
        dual.chmod(root, "/w", 0o755)
        dual.rename(root, "/w", "/v")
        with pytest.raises(errors.ENOENT):
            dual.stat(user, "/w/g0")
        dual.stat(user, "/v/g0")
        assert sorted(dual.listdir(root, "/v")) == \
            sorted(dual.call(0, "listdir", "/v"))
        dual.unlink(root, "/v/ln")
        dual.check_invariants()

    @pytest.mark.parametrize("seed", range(8))
    def test_seeded_random_churn(self, seed, dual):
        """Random rename/chmod/lookup interleavings, compared op by op."""
        rng = random.Random(seed)
        root = dual.spawn_task(uid=0, gid=0)
        user = dual.spawn_task(uid=1000, gid=1000)
        names = ["a", "b", "c", "d"]
        paths = ["/" + n for n in names] + \
                [f"/{p}/{c}" for p in names for c in names]
        dual.mkdir(root, "/a")
        dual.mkdir(root, "/b")
        outcomes = []
        for _ in range(120):
            op = rng.choice(["rename", "chmod", "stat", "mkdir", "create"])
            task = user if rng.random() < 0.3 else root
            try:
                if op == "rename":
                    dual.rename(root, rng.choice(paths), rng.choice(paths))
                elif op == "chmod":
                    dual.chmod(root, rng.choice(paths),
                               rng.choice([0o755, 0o700, 0o000]))
                elif op == "stat":
                    st = dual.stat(task, rng.choice(paths))
                    outcomes.append(("stat", st.ino, st.mode))
                elif op == "mkdir":
                    dual.mkdir(root, rng.choice(paths))
                else:
                    fd = dual.open(root, rng.choice(paths),
                                   O_CREAT | O_RDWR)
                    dual.close(root, fd)
                outcomes.append(("ok", op))
            except errors.FsError as exc:
                # The DualKernel oracle already asserted both kernels
                # raised the same errno; record it for the history.
                outcomes.append(("err", op, exc.errno))
        assert len(outcomes) >= 120
        dual.check_invariants()


OPS = st.one_of(
    st.tuples(st.just("mkdir"), st.sampled_from(["/a", "/b", "/a/x"])),
    st.tuples(st.just("create"),
              st.sampled_from(["/a/f", "/b/f", "/a/x/f"])),
    st.tuples(st.just("rename"),
              st.sampled_from(["/a", "/b", "/a/x", "/a/f"]),
              st.sampled_from(["/a", "/b", "/a/y", "/b/g"])),
    st.tuples(st.just("chmod"), st.sampled_from(["/a", "/b", "/a/x"]),
              st.sampled_from([0o755, 0o700, 0o000])),
    st.tuples(st.just("stat"),
              st.sampled_from(["/a", "/b", "/a/x", "/a/f", "/a/x/f"])),
    st.tuples(st.just("unlink"), st.sampled_from(["/a/f", "/b/f"])),
)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=st.lists(st.tuples(OPS, st.booleans()), min_size=1,
                        max_size=30))
def test_random_programs_lazy_equivalent(program):
    """Hypothesis differential: lazy is observationally eager."""
    dual = DualKernel(configs=(OPTIMIZED, OPTIMIZED_LAZY))
    root = dual.spawn_task(uid=0, gid=0)
    user = dual.spawn_task(uid=1000, gid=1000)
    for (op, *args), use_user in program:
        task = user if use_user and op == "stat" else root
        try:
            if op == "create":
                fd = dual.open(task, args[0], O_CREAT | O_RDWR)
                dual.close(task, fd)
            else:
                getattr(dual, op)(task, *args)
        except errors.FsError:
            pass  # both kernels raised identically (oracle-checked)
    dual.check_invariants()


class TestLazySchedules:
    """Deterministic concurrent interleavings on the lazy kernel."""

    @pytest.mark.parametrize("seed", range(10))
    def test_lookups_race_rename_and_chmod(self, seed):
        kernel = make_kernel("optimized-lazy")
        root = kernel.spawn_task(uid=0, gid=0)
        user = kernel.spawn_task(uid=1000, gid=1000)
        sys = kernel.sys
        sys.mkdir(root, "/a", 0o755)
        sys.mkdir(root, "/a/b", 0o755)
        _mkfile(kernel, root, "/a/b/f", b"data")
        sys.stat(root, "/a/b/f")  # warm

        def stat(task, path):
            def op():
                return sys.stat(task, path)
            return op

        runner = ConcurrentRunner(kernel, seed)
        outcomes = runner.run([
            stat(root, "/a/b/f"),
            stat(user, "/a/b/f"),
            lambda: sys.rename(root, "/a/b", "/a/c"),
            lambda: sys.chmod(root, "/a", 0o700),
        ])
        assert all(kind in ("ok", "err") for kind, _ in outcomes)
        assert_fastpath_consistent(kernel, root,
                                   ["/a/b/f", "/a/c/f", "/a/b", "/a/c"])
        assert_fastpath_consistent(kernel, user,
                                   ["/a/b/f", "/a/c/f"])
        _check_kernel_invariants(kernel)

    @pytest.mark.parametrize("seed", range(10))
    def test_rename_chain_during_lazy_lookups(self, seed):
        kernel = make_kernel("optimized-lazy")
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/d")
        _mkfile(kernel, task, "/d/one", b"1")
        sys.stat(task, "/d/one")

        def stat(path):
            def op():
                return sys.stat(task, path)
            return op

        def shuffle():
            sys.rename(task, "/d/one", "/d/two")
            sys.rename(task, "/d/two", "/d/three")

        runner = ConcurrentRunner(kernel, seed)
        runner.run([
            stat("/d/one"),
            stat("/d/two"),
            stat("/d/three"),
            shuffle,
        ])
        assert_fastpath_consistent(kernel, task,
                                   ["/d/one", "/d/two", "/d/three"])
        _check_kernel_invariants(kernel)
