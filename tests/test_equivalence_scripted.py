"""Scripted baseline-vs-optimized equivalence scenarios (§4 compatibility).

Every test drives both kernels through the DualKernel oracle, which
asserts identical observable outcomes operation by operation.  These are
the directed scenarios from the paper's compatibility discussion; the
randomized version lives in test_property_equivalence.py.
"""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_DIRECTORY, O_EXCL, O_RDONLY, O_RDWR
from repro import errors
from repro.testing import DualKernel


@pytest.fixture
def dual():
    return DualKernel()


@pytest.fixture
def root(dual):
    return dual.spawn_task(uid=0, gid=0)


def _mkfile(dual, task, path, content=b""):
    fd = dual.open(task, path, O_CREAT | O_RDWR)
    if content:
        dual.write(task, fd, content)
    dual.close(task, fd)


class TestBasicOperations:
    def test_mkdir_stat(self, dual, root):
        dual.mkdir(root, "/a")
        st = dual.stat(root, "/a")
        assert st.filetype == "dir"
        dual.check_invariants()

    def test_create_write_read(self, dual, root):
        dual.mkdir(root, "/d")
        _mkfile(dual, root, "/d/f", b"hello")
        fd = dual.open(root, "/d/f", O_RDONLY)
        assert dual.read(root, fd, 100) == b"hello"
        dual.close(root, fd)

    def test_stat_enoent(self, dual, root):
        with pytest.raises(errors.ENOENT):
            dual.stat(root, "/missing")
        # Repeat: the optimized kernel answers from a negative dentry.
        with pytest.raises(errors.ENOENT):
            dual.stat(root, "/missing")

    def test_deep_path_repeated_stats(self, dual, root):
        path = "/x"
        dual.mkdir(root, path)
        for name in ["y", "z", "w"]:
            path = f"{path}/{name}"
            dual.mkdir(root, path)
        _mkfile(dual, root, path + "/file")
        for _ in range(3):
            assert dual.stat(root, path + "/file").filetype == "reg"
        dual.check_invariants()

    def test_enotdir_intermediate(self, dual, root):
        _mkfile(dual, root, "/plainfile")
        with pytest.raises(errors.ENOTDIR):
            dual.stat(root, "/plainfile/below")
        with pytest.raises(errors.ENOTDIR):
            dual.stat(root, "/plainfile/below/deeper")
        # The file itself still resolves.
        assert dual.stat(root, "/plainfile").filetype == "reg"

    def test_trailing_slash(self, dual, root):
        dual.mkdir(root, "/dir")
        _mkfile(dual, root, "/file")
        assert dual.stat(root, "/dir/").filetype == "dir"
        with pytest.raises(errors.ENOTDIR):
            dual.stat(root, "/file/")

    def test_unlink_then_recreate(self, dual, root):
        dual.mkdir(root, "/d")
        _mkfile(dual, root, "/d/f", b"one")
        dual.unlink(root, "/d/f")
        with pytest.raises(errors.ENOENT):
            dual.stat(root, "/d/f")
        _mkfile(dual, root, "/d/f", b"two!")
        assert dual.stat(root, "/d/f").size == 4

    def test_exclusive_create(self, dual, root):
        _mkfile(dual, root, "/f")
        with pytest.raises(errors.EEXIST):
            dual.open(root, "/f", O_CREAT | O_EXCL | O_RDWR)


class TestRenameCoherence:
    def test_rename_file(self, dual, root):
        dual.mkdir(root, "/d")
        _mkfile(dual, root, "/d/old", b"data")
        dual.stat(root, "/d/old")  # warm caches
        dual.rename(root, "/d/old", "/d/new")
        with pytest.raises(errors.ENOENT):
            dual.stat(root, "/d/old")
        assert dual.stat(root, "/d/new").size == 4

    def test_rename_directory_invalidates_descendants(self, dual, root):
        dual.mkdir(root, "/src")
        dual.mkdir(root, "/src/sub")
        _mkfile(dual, root, "/src/sub/f", b"x")
        dual.stat(root, "/src/sub/f")  # cached on the fastpath
        dual.rename(root, "/src", "/dst")
        with pytest.raises(errors.ENOENT):
            dual.stat(root, "/src/sub/f")
        assert dual.stat(root, "/dst/sub/f").size == 1
        dual.check_invariants()

    def test_rename_over_existing_file(self, dual, root):
        _mkfile(dual, root, "/a", b"aaa")
        _mkfile(dual, root, "/b", b"bbbb")
        dual.stat(root, "/b")
        dual.rename(root, "/a", "/b")
        assert dual.stat(root, "/b").size == 3
        with pytest.raises(errors.ENOENT):
            dual.stat(root, "/a")

    def test_rename_into_own_subtree(self, dual, root):
        dual.mkdir(root, "/p")
        dual.mkdir(root, "/p/q")
        with pytest.raises(errors.EINVAL):
            dual.rename(root, "/p", "/p/q/r")

    def test_rename_dir_over_nonempty_dir(self, dual, root):
        dual.mkdir(root, "/a")
        dual.mkdir(root, "/b")
        _mkfile(dual, root, "/b/keep")
        with pytest.raises(errors.ENOTEMPTY):
            dual.rename(root, "/a", "/b")

    def test_rename_dir_over_empty_dir(self, dual, root):
        dual.mkdir(root, "/a")
        _mkfile(dual, root, "/a/f")
        dual.mkdir(root, "/b")
        dual.rename(root, "/a", "/b")
        assert dual.stat(root, "/b/f").filetype == "reg"

    def test_rename_file_over_dir_fails(self, dual, root):
        _mkfile(dual, root, "/f")
        dual.mkdir(root, "/d")
        with pytest.raises(errors.EISDIR):
            dual.rename(root, "/f", "/d")


class TestPermissions:
    def test_search_permission_denied(self, dual, root):
        dual.mkdir(root, "/secret", 0o700)
        _mkfile(dual, root, "/secret/f", b"x")
        user = dual.spawn_task(uid=1000, gid=1000)
        with pytest.raises(errors.EACCES):
            dual.stat(user, "/secret/f")
        # Root still passes.
        assert dual.stat(root, "/secret/f").size == 1

    def test_chmod_dir_revokes_cached_prefix(self, dual, root):
        dual.mkdir(root, "/pub", 0o755)
        _mkfile(dual, root, "/pub/f", b"x")
        user = dual.spawn_task(uid=1000, gid=1000)
        assert dual.stat(user, "/pub/f").size == 1  # memoized in PCC
        dual.chmod(root, "/pub", 0o700)
        with pytest.raises(errors.EACCES):
            dual.stat(user, "/pub/f")
        dual.chmod(root, "/pub", 0o755)
        assert dual.stat(user, "/pub/f").size == 1

    def test_chmod_requires_owner(self, dual, root):
        _mkfile(dual, root, "/rootfile")
        user = dual.spawn_task(uid=1000, gid=1000)
        with pytest.raises(errors.EPERM):
            dual.chmod(user, "/rootfile", 0o777)

    def test_group_search_permission(self, dual, root):
        dual.mkdir(root, "/grp", 0o750)
        dual.chown(root, "/grp", uid=0, gid=42)
        _mkfile(dual, root, "/grp/f")
        member = dual.spawn_task(uid=1000, gid=42)
        outsider = dual.spawn_task(uid=1001, gid=7)
        assert dual.stat(member, "/grp/f").filetype == "reg"
        with pytest.raises(errors.EACCES):
            dual.stat(outsider, "/grp/f")

    def test_setuid_transition_changes_view(self, dual, root):
        dual.mkdir(root, "/home", 0o755)
        dual.mkdir(root, "/home/alice", 0o700)
        dual.chown(root, "/home/alice", uid=1000, gid=1000)
        _mkfile(dual, root, "/home/alice/diary", b"secret")
        worker = dual.spawn_task(uid=0, gid=0)
        assert dual.stat(worker, "/home/alice/diary").size == 6
        dual.change_identity(worker, uid=2000, gid=2000)
        with pytest.raises(errors.EACCES):
            dual.stat(worker, "/home/alice/diary")

    def test_sticky_bit_deletion(self, dual, root):
        dual.mkdir(root, "/tmp")
        dual.chmod(root, "/tmp", 0o1777)  # umask would strip o+w
        user_a = dual.spawn_task(uid=1000, gid=1000)
        user_b = dual.spawn_task(uid=1001, gid=1001)
        fd = dual.open(user_a, "/tmp/mine", O_CREAT | O_RDWR)
        dual.close(user_a, fd)
        with pytest.raises(errors.EPERM):
            dual.unlink(user_b, "/tmp/mine")
        dual.unlink(user_a, "/tmp/mine")


class TestSymlinks:
    def test_symlink_basics(self, dual, root):
        dual.mkdir(root, "/x")
        dual.mkdir(root, "/x/y")
        _mkfile(dual, root, "/x/y/f", b"link me")
        dual.symlink(root, "/x/y", "/x/l")
        assert dual.stat(root, "/x/l/f").size == 7
        # Again: the optimized kernel now hits the alias dentry.
        assert dual.stat(root, "/x/l/f").size == 7
        assert dual.lstat(root, "/x/l").filetype == "lnk"
        assert dual.readlink(root, "/x/l") == "/x/y"
        dual.check_invariants()

    def test_relative_symlink(self, dual, root):
        dual.mkdir(root, "/x")
        dual.mkdir(root, "/x/target")
        _mkfile(dual, root, "/x/target/f", b"ok")
        dual.symlink(root, "target", "/x/rel")
        assert dual.stat(root, "/x/rel/f").size == 2
        assert dual.stat(root, "/x/rel/f").size == 2

    def test_dangling_symlink(self, dual, root):
        dual.symlink(root, "/nowhere", "/dead")
        with pytest.raises(errors.ENOENT):
            dual.stat(root, "/dead")
        assert dual.lstat(root, "/dead").filetype == "lnk"

    def test_symlink_loop(self, dual, root):
        dual.symlink(root, "/b", "/a")
        dual.symlink(root, "/a", "/b")
        with pytest.raises(errors.ELOOP):
            dual.stat(root, "/a")

    def test_symlink_chain(self, dual, root):
        _mkfile(dual, root, "/real", b"abc")
        dual.symlink(root, "/real", "/l1")
        dual.symlink(root, "/l1", "/l2")
        assert dual.stat(root, "/l2").size == 3
        assert dual.stat(root, "/l2").size == 3

    def test_final_symlink_followed_repeatedly(self, dual, root):
        dual.mkdir(root, "/data")
        _mkfile(dual, root, "/data/v1", b"1111")
        dual.symlink(root, "/data/v1", "/current")
        for _ in range(3):
            assert dual.stat(root, "/current").size == 4

    def test_symlink_target_replaced(self, dual, root):
        dual.mkdir(root, "/d")
        _mkfile(dual, root, "/d/f", b"old!")
        dual.symlink(root, "/d/f", "/ln")
        assert dual.stat(root, "/ln").size == 4
        dual.unlink(root, "/d/f")
        with pytest.raises(errors.ENOENT):
            dual.stat(root, "/ln")
        _mkfile(dual, root, "/d/f", b"newer")
        assert dual.stat(root, "/ln").size == 5

    def test_unlink_symlink_not_target(self, dual, root):
        _mkfile(dual, root, "/t", b"x")
        dual.symlink(root, "/t", "/l")
        dual.unlink(root, "/l")
        assert dual.stat(root, "/t").size == 1
        with pytest.raises(errors.ENOENT):
            dual.lstat(root, "/l")


class TestDotDot:
    def test_simple_dotdot(self, dual, root):
        dual.mkdir(root, "/a")
        dual.mkdir(root, "/a/b")
        _mkfile(dual, root, "/a/f", b"xy")
        assert dual.stat(root, "/a/b/../f").size == 2
        assert dual.stat(root, "/a/b/../f").size == 2

    def test_dotdot_at_root_clamps(self, dual, root):
        dual.mkdir(root, "/top")
        assert dual.stat(root, "/../../top").filetype == "dir"

    def test_dotdot_through_symlink(self, dual, root):
        """Linux semantics: L/.. is the parent of L's *target*."""
        dual.mkdir(root, "/x")
        dual.mkdir(root, "/y")
        dual.mkdir(root, "/y/inner")
        _mkfile(dual, root, "/y/sibling", b"abc")
        dual.symlink(root, "/y/inner", "/x/link")
        # /x/link/.. == /y (target's parent), NOT /x.
        assert dual.stat(root, "/x/link/../sibling").size == 3

    def test_cwd_relative_dotdot(self, dual, root):
        dual.mkdir(root, "/w")
        dual.mkdir(root, "/w/sub")
        _mkfile(dual, root, "/w/f", b"zz")
        dual.chdir(root, "/w/sub")
        assert dual.stat(root, "../f").size == 2
        assert dual.getcwd(root) == "/w/sub"


class TestCwdAndChroot:
    def test_relative_lookup(self, dual, root):
        dual.mkdir(root, "/work")
        _mkfile(dual, root, "/work/f", b"hello")
        dual.chdir(root, "/work")
        assert dual.stat(root, "f").size == 5
        assert dual.stat(root, "./f").size == 5

    def test_directory_reference_semantics(self, dual, root):
        """§3.2: a task keeps using its cwd after upstream revocation."""
        dual.mkdir(root, "/outer", 0o755)
        dual.mkdir(root, "/outer/inner", 0o755)
        _mkfile(dual, root, "/outer/inner/f", b"keep")
        user = dual.spawn_task(uid=1000, gid=1000)
        dual.chdir(user, "/outer/inner")
        assert dual.stat(user, "f").size == 4
        dual.chmod(root, "/outer", 0o700)  # revoke search upstream
        # Absolute access now fails...
        with pytest.raises(errors.EACCES):
            dual.stat(user, "/outer/inner/f")
        # ...but cwd-relative access keeps working (Unix semantics).
        assert dual.stat(user, "f").size == 4
        # And the relative success must NOT leak into absolute fastpath.
        with pytest.raises(errors.EACCES):
            dual.stat(user, "/outer/inner/f")

    def test_chroot_view(self, dual, root):
        dual.mkdir(root, "/jail")
        dual.mkdir(root, "/jail/etc")
        _mkfile(dual, root, "/jail/etc/conf", b"jailed")
        _mkfile(dual, root, "/hostfile", b"host")
        dual.chroot(root, "/jail")
        assert dual.stat(root, "/etc/conf").size == 6
        with pytest.raises(errors.ENOENT):
            dual.stat(root, "/hostfile")
        # Escaping via .. is clamped at the new root.
        with pytest.raises(errors.ENOENT):
            dual.stat(root, "/../hostfile")


class TestReaddir:
    def test_listing_matches(self, dual, root):
        dual.mkdir(root, "/d")
        for i in range(20):
            _mkfile(dual, root, f"/d/f{i}")
        first = dual.listdir(root, "/d")
        second = dual.listdir(root, "/d")  # optimized: cache-served
        assert sorted(first) == sorted(second)
        assert len(first) == 20

    def test_listing_after_create_and_unlink(self, dual, root):
        dual.mkdir(root, "/d")
        _mkfile(dual, root, "/d/a")
        dual.listdir(root, "/d")
        _mkfile(dual, root, "/d/b")
        dual.unlink(root, "/d/a")
        names = {name for name, _i, _t in dual.listdir(root, "/d")}
        assert names == {"b"}

    def test_stat_after_readdir_uses_stub(self, dual, root):
        dual.mkdir(root, "/d")
        for i in range(5):
            _mkfile(dual, root, f"/d/f{i}", b"abc")
        dual.listdir(root, "/d")
        for i in range(5):
            assert dual.stat(root, f"/d/f{i}").size == 3

    def test_create_in_complete_dir_elides_miss(self, dual, root):
        dual.mkdir(root, "/fresh")
        _mkfile(dual, root, "/fresh/newfile", b"1")
        assert dual.stat(root, "/fresh/newfile").size == 1

    def test_getdents_paging(self, dual, root):
        dual.mkdir(root, "/big")
        for i in range(30):
            _mkfile(dual, root, f"/big/f{i:02d}")
        fd = dual.open(root, "/big", O_RDONLY | O_DIRECTORY)
        seen = []
        while True:
            chunk = dual.getdents(root, fd, 7)
            if not chunk:
                break
            seen.extend(chunk)
        dual.close(root, fd)
        assert len(seen) == 30


class TestHardLinks:
    def test_link_shares_inode(self, dual, root):
        _mkfile(dual, root, "/orig", b"shared")
        dual.link(root, "/orig", "/alias")
        st1 = dual.stat(root, "/orig")
        st2 = dual.stat(root, "/alias")
        assert st1.ino == st2.ino
        assert st1.nlink == 2
        dual.unlink(root, "/orig")
        assert dual.stat(root, "/alias").nlink == 1

    def test_link_to_directory_rejected(self, dual, root):
        dual.mkdir(root, "/d")
        with pytest.raises(errors.EPERM):
            dual.link(root, "/d", "/dlink")


class TestMkstemp:
    def test_mkstemp_deterministic(self, dual, root):
        dual.mkdir(root, "/tmp", 0o1777)
        fd, name = dual.mkstemp(root, "/tmp", prefix="t", rng_seed=7)
        assert name.startswith("t")
        assert dual.stat(root, f"/tmp/{name}").filetype == "reg"

    def test_mkstemp_in_populated_dir(self, dual, root):
        dual.mkdir(root, "/tmp")
        for i in range(50):
            _mkfile(dual, root, f"/tmp/existing{i}")
        dual.listdir(root, "/tmp")  # make it complete on optimized
        fd, name = dual.mkstemp(root, "/tmp", rng_seed=3)
        assert dual.stat(root, f"/tmp/{name}").filetype == "reg"
