"""Charge-plan layer: bit-identity, guards, invalidation, snapshots.

The charge-plan compiler (:class:`repro.sim.costs.ChargePlanRegistry` +
the capture/apply protocol in :mod:`repro.workloads.traces`) is a pure
wall-clock optimization: after a compiled replay unit has executed with
a stable charge stream, later executions apply one clock advance and one
bulk counter merge instead of hundreds of interpreted charges.  Every
test here pins the same contract the resolution memo lives under —
virtual costs are bit-identical with plans on vs. off, on every profile,
through every invalidation path.
"""

from __future__ import annotations

import pytest

from repro import make_kernel
from repro.workloads.compile import build_loop_trace, compile_trace
from repro.workloads.traces import (TraceRecorder, replay_compiled,
                                    replay_interleaved)

PROFILES = ("baseline", "optimized", "optimized-lazy")


def _fingerprint(kernel):
    """Every virtual-cost accumulator, exact floats included."""
    costs = kernel.costs
    return (costs.now_ns, dict(costs.counts), dict(costs.by_primitive),
            dict(costs.by_scope), kernel.stats.snapshot())


def _loop_setup(profile):
    kernel = make_kernel(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    program = compile_trace(build_loop_trace(profile=profile))
    return kernel, task, program


# -- plans-on vs plans-off differential -----------------------------------

class TestBitIdentity:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_loop_trace_identical(self, profile):
        fingerprints = {}
        telemetry = {}
        for plans in (False, True):
            kernel, task, program = _loop_setup(profile)
            for _ in range(8):
                replay_compiled(kernel, task, program, plans=plans)
            fingerprints[plans] = _fingerprint(kernel)
            telemetry[plans] = kernel.costs.plans.telemetry()
        assert fingerprints[True] == fingerprints[False]
        # The differential is vacuous unless plans actually engaged.
        assert telemetry[True]["applied"] > 0
        assert telemetry[False]["applied"] == 0

    def test_env_switch_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHARGE_PLANS", "0")
        kernel, task, program = _loop_setup("baseline")
        for _ in range(6):
            replay_compiled(kernel, task, program)
        tel = kernel.costs.plans.telemetry()
        assert tel["compiled"] == 0 and tel["applied"] == 0


# -- whole-pass program plans ---------------------------------------------

class TestWholePassPlans:
    def test_capture_then_apply(self):
        kernel, task, program = _loop_setup("baseline")
        for _ in range(3):  # warm, record, confirm
            replay_compiled(kernel, task, program)
        # Two plans compile: the shape-shared segment plan (the loop's
        # rounds all share one charge shape, so the cell confirms within
        # the warmup pass) and the whole-pass plan.
        tel = kernel.costs.plans.telemetry()
        assert tel["compiled"] == 2
        applied_before = tel["applied"]
        replay_compiled(kernel, task, program)
        assert kernel.costs.plans.telemetry()["applied"] \
            == applied_before + 1

    def test_clock_guard_falls_back_on_interference(self):
        """Any syscall between passes moves the clock off the armed
        value, so the next pass must charge interpreted — and stay
        bit-identical to a plans-off kernel driven the same way."""
        results = {}
        for plans in (False, True):
            kernel, task, program = _loop_setup("optimized")
            for _ in range(4):
                replay_compiled(kernel, task, program, plans=plans)
            kernel.sys.stat(task, "/")  # interference
            replay_compiled(kernel, task, program, plans=plans)
            results[plans] = _fingerprint(kernel)
            if plans:
                assert kernel.costs.plans.telemetry()["fallbacks"] >= 1
        assert results[True] == results[False]

    def test_gen_bump_invalidates_then_recaptures(self):
        """drop_caches bumps the plan generation: the stale plan dies,
        the protocol re-warms against the cold-cache charge stream, and
        applies resume — bit-identical throughout."""
        results = {}
        telemetry = None
        for plans in (False, True):
            kernel, task, program = _loop_setup("baseline")
            for _ in range(4):
                replay_compiled(kernel, task, program, plans=plans)
            kernel.drop_caches(dentries=False)
            for _ in range(8):
                replay_compiled(kernel, task, program, plans=plans)
            results[plans] = _fingerprint(kernel)
            if plans:
                telemetry = kernel.costs.plans.telemetry()
        assert results[True] == results[False]
        assert telemetry["invalidated"] >= 1
        # Applies both before the bump and after the re-capture.
        assert telemetry["applied"] >= 2


# -- interleaved multi-task replay ----------------------------------------

def _mini_streams(kernel, n, mutator=False):
    """n small per-task loop streams (own subtree, cred, cwd, fds),
    plus an optional chmod-churn stream that mutates its own tree —
    which still bumps the global plan generation every round."""
    streams = []
    for i in range(n):
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, f"/home{i}")
        kernel.sys.chdir(task, f"/home{i}")
        trace = build_loop_trace(files=2, io_rounds=2, subdirs=1,
                                 root=f"/mt{i}")
        streams.append((task, compile_trace(trace)))
    if mutator:
        scratch = make_kernel("baseline")
        scratch_task = scratch.spawn_task(uid=0, gid=0)
        rec = TraceRecorder(scratch, scratch_task)
        rec.mkdir("/mut")
        for mode in (0o755, 0o775, 0o777) * 4:
            rec.chmod("/mut", mode)
        rec.rmdir("/mut")
        task = kernel.spawn_task(uid=0, gid=0)
        streams.append((task, compile_trace(rec.trace)))
    return streams


class TestInterleaved:
    def test_same_seed_same_history(self):
        prints = []
        for _ in range(2):
            kernel = make_kernel("optimized")
            streams = _mini_streams(kernel, 6)
            for _ in range(4):
                replay_interleaved(kernel, streams, seed=7)
            prints.append(_fingerprint(kernel))
        assert prints[0] == prints[1]

    @pytest.mark.parametrize("profile", PROFILES)
    def test_plans_identical_under_interleaving(self, profile):
        results = {}
        for plans in (False, True):
            kernel = make_kernel(profile)
            streams = _mini_streams(kernel, 6)
            for _ in range(6):
                replay_interleaved(kernel, streams, seed=3, plans=plans)
            results[plans] = _fingerprint(kernel)
        assert results[True] == results[False]

    def test_cross_task_mutation_invalidates(self):
        """One task's metadata churn must invalidate plans captured for
        *other* tasks' streams (the guards cannot see mode bits), and
        the fallback must keep virtual costs bit-identical."""
        results = {}
        telemetry = None
        for plans in (False, True):
            kernel = make_kernel("optimized")
            streams = _mini_streams(kernel, 4, mutator=True)
            for _ in range(6):
                replay_interleaved(kernel, streams, seed=5, plans=plans)
            results[plans] = _fingerprint(kernel)
            if plans:
                telemetry = kernel.costs.plans.telemetry()
        assert results[True] == results[False]
        assert telemetry["invalidated"] > 0

    def test_hypothesis_mutation_heavy_schedules(self):
        """Property sweep: arbitrary mixes of stream counts, seeds, and
        mutation cadence never let a stale plan leak a wrong charge."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(n=st.integers(2, 5), seed=st.integers(0, 2**16),
               drains=st.integers(3, 6),
               mutator=st.booleans())
        @settings(max_examples=12, deadline=None)
        def sweep(n, seed, drains, mutator):
            results = {}
            for plans in (False, True):
                kernel = make_kernel("optimized")
                streams = _mini_streams(kernel, n, mutator=mutator)
                for _ in range(drains):
                    replay_interleaved(kernel, streams, seed=seed,
                                       plans=plans)
                results[plans] = _fingerprint(kernel)
            assert results[True] == results[False]

        sweep()


# -- snapshot fidelity -----------------------------------------------------

class TestSnapshotFidelity:
    def test_clone_mid_plan_drops_and_recaptures(self):
        """A kernel cloned with live confirmed plans restores with an
        empty registry (plans are host-side wall-clock state, like the
        memo) and its future virtual costs match an uninterrupted
        plans-off run exactly."""
        kernel, task, program = _loop_setup("baseline")
        for _ in range(4):  # confirmed + applying
            replay_compiled(kernel, task, program)
        assert kernel.costs.plans.telemetry()["applied"] >= 1
        restored_kernel, restored_task = kernel.snapshot(task).restore()
        tel = restored_kernel.costs.plans.telemetry()
        assert all(v == 0 for v in tel.values())

        reference, ref_task, ref_program = _loop_setup("baseline")
        for _ in range(10):
            replay_compiled(reference, ref_task, ref_program, plans=False)
        for _ in range(6):
            replay_compiled(restored_kernel, restored_task, program)
        assert _fingerprint(restored_kernel) == _fingerprint(reference)
        # The restored kernel re-warmed and is applying plans again.
        assert restored_kernel.costs.plans.telemetry()["applied"] >= 1
