"""Unit tests for the core optimized structures: DLHT, PCC, coherence."""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_RDWR, make_kernel
from repro.core.dlht import DirectLookupHashTable
from repro.core.pcc import PrefixCheckCache
from repro.core.signatures import PathHasher
from repro.sim.costs import CostModel, UNIT
from repro.sim.stats import Stats
from repro.vfs.dentry import Dentry


@pytest.fixture
def costs():
    return CostModel(dict(UNIT))


@pytest.fixture
def stats():
    return Stats()


def _dentry(name="d"):
    return Dentry(name, None, None)


class TestDlht:
    def _table(self, costs, stats):
        return DirectLookupHashTable(costs, stats)

    def test_insert_probe(self, costs, stats):
        table = self._table(costs, stats)
        hasher = PathHasher(1)
        dentry = _dentry()
        sig = hasher.sign_components(["a", "b"])
        assert table.insert(dentry, sig)
        assert table.probe(sig) is dentry

    def test_probe_miss(self, costs, stats):
        table = self._table(costs, stats)
        hasher = PathHasher(1)
        assert table.probe(hasher.sign_components(["x"])) is None

    def test_first_wins_on_collision(self, costs, stats):
        table = self._table(costs, stats)
        hasher = PathHasher(1)
        sig = hasher.sign_components(["a"])
        first, second = _dentry("one"), _dentry("two")
        assert table.insert(first, sig)
        assert not table.insert(second, sig)
        assert table.probe(sig) is first
        assert second.fast is None or second.fast.dlht is None

    def test_dead_occupant_replaced(self, costs, stats):
        table = self._table(costs, stats)
        hasher = PathHasher(1)
        sig = hasher.sign_components(["a"])
        first, second = _dentry("one"), _dentry("two")
        table.insert(first, sig)
        first.dead = True
        assert table.insert(second, sig)
        assert table.probe(sig) is second

    def test_one_table_per_dentry(self, costs, stats):
        """§4.3: inserting under a new signature drops the old entry."""
        table = self._table(costs, stats)
        hasher = PathHasher(1)
        dentry = _dentry()
        sig1 = hasher.sign_components(["path", "one"])
        sig2 = hasher.sign_components(["path", "two"])
        table.insert(dentry, sig1)
        table.insert(dentry, sig2)
        assert table.probe(sig1) is None
        assert table.probe(sig2) is dentry

    def test_cross_namespace_rehoming(self, costs, stats):
        table_a = self._table(costs, stats)
        table_b = self._table(costs, stats)
        hasher = PathHasher(1)
        dentry = _dentry()
        sig = hasher.sign_components(["shared"])
        table_a.insert(dentry, sig)
        table_b.insert(dentry, sig)
        assert table_a.probe(sig) is None
        assert table_b.probe(sig) is dentry

    def test_remove_idempotent(self, costs, stats):
        table = self._table(costs, stats)
        hasher = PathHasher(1)
        dentry = _dentry()
        table.insert(dentry, hasher.sign_components(["a"]))
        table.remove(dentry)
        table.remove(dentry)
        assert len(table) == 0

    def test_flush(self, costs, stats):
        table = self._table(costs, stats)
        hasher = PathHasher(1)
        dentries = [_dentry(str(i)) for i in range(5)]
        for i, dentry in enumerate(dentries):
            table.insert(dentry, hasher.sign_components([f"p{i}"]))
        table.flush()
        assert len(table) == 0
        assert all(d.fast.dlht is None for d in dentries)

    def test_probe_charges(self, costs, stats):
        table = self._table(costs, stats)
        hasher = PathHasher(1)
        before = costs.count("dlht_probe")
        table.probe(hasher.sign_components(["a"]))
        assert costs.count("dlht_probe") == before + 1


class TestPcc:
    def test_insert_probe_hit(self, costs, stats):
        pcc = PrefixCheckCache(costs, stats, capacity=4)
        dentry = _dentry()
        pcc.insert(dentry)
        assert pcc.probe(dentry)
        assert stats.get("pcc_hit") == 1

    def test_probe_miss(self, costs, stats):
        pcc = PrefixCheckCache(costs, stats, capacity=4)
        assert not pcc.probe(_dentry())
        assert stats.get("pcc_miss") == 1

    def test_stale_seq_rejected(self, costs, stats):
        pcc = PrefixCheckCache(costs, stats, capacity=4)
        dentry = _dentry()
        pcc.insert(dentry)
        dentry.seq += 1
        assert not pcc.probe(dentry)
        assert stats.get("pcc_stale") == 1
        # The stale entry was dropped.
        assert len(pcc) == 0

    def test_dead_dentry_rejected(self, costs, stats):
        pcc = PrefixCheckCache(costs, stats, capacity=4)
        dentry = _dentry()
        pcc.insert(dentry)
        # Death in the dcache is always dead-flag + handle retirement
        # (d_drop/evict); the PCC keys staleness off the retired handle.
        dentry.dead = True
        dentry.retire()
        assert not pcc.probe(dentry)

    def test_lru_bound(self, costs, stats):
        pcc = PrefixCheckCache(costs, stats, capacity=3)
        dentries = [_dentry(str(i)) for i in range(5)]
        for dentry in dentries:
            pcc.insert(dentry)
        assert len(pcc) == 3
        assert not pcc.probe(dentries[0])
        assert pcc.probe(dentries[4])

    def test_probe_refreshes_lru(self, costs, stats):
        pcc = PrefixCheckCache(costs, stats, capacity=2)
        a, b, c = _dentry("a"), _dentry("b"), _dentry("c")
        pcc.insert(a)
        pcc.insert(b)
        pcc.probe(a)  # a is now most recent
        pcc.insert(c)  # evicts b
        assert pcc.probe(a)
        assert not pcc.probe(b)

    def test_invalidate_all(self, costs, stats):
        pcc = PrefixCheckCache(costs, stats, capacity=4)
        pcc.insert(_dentry())
        pcc.invalidate_all()
        assert len(pcc) == 0


class TestCoherence:
    def test_rename_dir_invalidates_pcc_entries(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/a")
        fd = sys.open(task, "/a/f", O_CREAT | O_RDWR)
        sys.close(task, fd)
        sys.stat(task, "/a/f")
        dentry = kernel.dcache.root_dentry(kernel.root_fs) \
            .children["a"].children["f"]
        seq = dentry.seq
        sys.rename(task, "/a", "/b")
        assert dentry.seq > seq

    def test_counter_guard_blocks_stale_population(self):
        """§3.2: a walk racing a shootdown must not repopulate."""
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/d")
        fd = sys.open(task, "/d/f", O_CREAT | O_RDWR)
        sys.close(task, fd)
        # Force the next lookup onto the populating slowpath.
        kernel.drop_caches()
        # Inject a "concurrent" counter bump mid-walk via a hook shim.
        fast = kernel.fast
        original_finish = fast.finish

        def racing_finish(ctx, final):
            kernel.coherence.bump_counter()
            original_finish(ctx, final)

        fast.finish = racing_finish
        aborts_before = kernel.stats.get("populate_abort")
        sys.stat(task, "/d/f")
        fast.finish = original_finish
        assert kernel.stats.get("populate_abort") > aborts_before
        # Nothing stale entered the DLHT for the file.
        dentry = kernel.dcache.root_dentry(kernel.root_fs) \
            .children["d"].children["f"]
        assert dentry.fast is None or dentry.fast.dlht is None

    def test_file_chmod_no_subtree_walk(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/d")
        fd = sys.open(task, "/d/f", O_CREAT | O_RDWR)
        sys.close(task, fd)
        before = kernel.stats.get("inval_dentry")
        sys.chmod(task, "/d/f", 0o600)
        # File chmod does not change any prefix check: no shootdown.
        assert kernel.stats.get("inval_dentry") == before

    def test_dir_chmod_walks_cached_subtree(self):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/d")
        for i in range(10):
            fd = sys.open(task, f"/d/f{i}", O_CREAT | O_RDWR)
            sys.close(task, fd)
        before = kernel.stats.get("inval_dentry")
        sys.chmod(task, "/d", 0o700)
        assert kernel.stats.get("inval_dentry") - before >= 11

    def test_seq_wraparound_flushes(self):
        from repro.core import coherence as coh
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/d")
        sys.stat(task, "/d")
        dentry = kernel.dcache.root_dentry(kernel.root_fs).children["d"]
        pcc = task.cred.pcc
        assert len(pcc) > 0
        dentry.seq = coh.SEQ_WRAP - 1
        kernel.coherence.shootdown_single(dentry)
        assert kernel.stats.get("seq_wraparound_flush") == 1
        assert len(pcc) == 0

    def test_baseline_pays_no_invalidation(self):
        kernel = make_kernel("baseline")
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/d")
        for i in range(20):
            fd = sys.open(task, f"/d/f{i}", O_CREAT | O_RDWR)
            sys.close(task, fd)
        sys.chmod(task, "/d", 0o700)
        assert kernel.stats.get("inval_dentry") == 0
