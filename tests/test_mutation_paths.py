"""Mutation-path overhaul differentials (batched shootdowns, memoized
mutation resolves, delta-patched charge plans).

Three wall-clock optimizations share one contract: virtual costs must be
bit-identical with the optimization on or off, against a reference
implementation, on every profile.  This module pins each:

* the batched column-bound eager shootdown
  (:meth:`repro.core.coherence.Coherence.shootdown_subtree`) against an
  inline re-implementation of the old per-dentry recursive walk —
  fixed-tree golden check plus a hypothesis sweep over random subtree
  shapes including bind mounts, symlinks, and negative dentries;
* the scoped-invalidation resolution memo on mutation-heavy
  create/stat/rename/unlink churn, memo on vs. off;
* charge-plan delta patching
  (:meth:`repro.sim.costs.ChargePlanRegistry.patch`) vs. the
  invalidate+recapture fallback, plans on vs. off;
* the lazy sweeper's ``sweep_all`` as a pure function of cache state
  (the half-consumed-worklist double-scan regression).
"""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_RDWR, make_kernel
from repro.core.coherence import SEQ_WRAP
from repro.errors import FsError
from repro.workloads.compile import build_loop_trace, compile_trace
from repro.workloads.traces import _plan_fn, replay_compiled

PROFILES = ("baseline", "optimized", "optimized-lazy")


def _fingerprint(kernel):
    """Every virtual-cost accumulator, exact floats included."""
    costs = kernel.costs
    return (costs.now_ns, dict(costs.counts), dict(costs.by_primitive),
            dict(costs.by_scope), kernel.stats.snapshot())


# -- batched vs. recursive shootdown ---------------------------------------

def _reference_shootdown_subtree(coh, dentry, include_self=True):
    """The pre-batching eager arm: one recursive per-dentry invalidation.

    Semantically what ``shootdown_subtree`` compiled to before the
    collect-then-bulk rewrite: descend the cached subtree (through
    mountpoints, cycle-safe), charge ``inval_per_dentry`` and bump the
    seq per dentry, drop fast state and DLHT registrations as
    encountered, and elide the global counter bump when no fastpath
    state was found and nothing is mid-walk.  Every accumulator the
    batched walk touches receives the same additions (visit order is
    immaterial: each accumulator folds N copies of the same float).
    """
    assert not coh.lazy
    visited = set()
    found_fast = 0
    mounts = coh._mounts_on

    def invalidate_one(d):
        coh.costs.charge("inval_per_dentry")
        coh.stats.bump("inval_dentry")
        seq = d.seq + 1
        d.seq = seq
        if seq >= SEQ_WRAP:
            coh.wraparound_flush()
        fast = d.fast
        if fast is not None:
            fast.invalidate()
            if fast.dlht is not None:
                fast.dlht.remove(d)

    def walk(d):
        nonlocal found_fast
        if id(d) in visited:
            return
        visited.add(id(d))
        if d.fast is not None:
            found_fast += 1
        invalidate_one(d)
        for child in list(d.children.values()):
            walk(child)
        for root in mounts.get(id(d), ()):
            walk(root)

    if include_self:
        walk(dentry)
    else:
        for child in list(dentry.children.values()):
            walk(child)
        for root in mounts.get(id(dentry), ()):
            walk(root)
    if found_fast == 0 and coh.walks_active == 0:
        coh.stats.bump("counter_bump_elided")
        return
    coh.bump_counter()


def _grow_tree(kernel, task, spec):
    """Build a tree under ``/t`` from a drawn op list; returns dir paths.

    Ops are ``(kind, a, b)`` with ``a``/``b`` small integers selecting
    parents/targets modulo the directories built so far, so any drawn
    list produces *some* valid tree — errors (duplicate names, mount
    loops the VFS rejects) are swallowed, keeping the generator total.
    """
    sys = kernel.sys
    sys.mkdir(task, "/t")
    dirs = ["/t"]
    for kind, a, b in spec:
        parent = dirs[a % len(dirs)]
        try:
            if kind == "dir":
                path = f"{parent}/d{b}"
                sys.mkdir(task, path)
                dirs.append(path)
            elif kind == "file":
                fd = sys.open(task, f"{parent}/f{b}", O_CREAT | O_RDWR)
                sys.close(task, fd)
            elif kind == "symlink":
                sys.symlink(task, dirs[b % len(dirs)], f"{parent}/l{b}")
            elif kind == "neg":
                sys.stat(task, f"{parent}/missing{b}")
            elif kind == "mount":
                dst = f"{parent}/m{b}"
                sys.mkdir(task, dst)
                sys.bind_mount(task, dirs[b % len(dirs)], dst)
        except FsError:
            continue
    # Warm fastpath/DLHT/PCC state over the whole tree so the shootdown
    # has cached descendants to invalidate.
    for path in dirs:
        try:
            sys.stat(task, path)
        except FsError:
            pass
    return dirs


def _shootdown_differential(spec, root_pick, include_self):
    """Run the real batched walk and the reference walk on twin kernels."""
    state = []
    for reference in (False, True):
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        dirs = _grow_tree(kernel, task, spec)
        target = dirs[root_pick % len(dirs)]
        dentry = kernel.sys._resolve(task, target, follow_last=True).dentry
        if reference:
            _reference_shootdown_subtree(kernel.coherence, dentry,
                                         include_self)
        else:
            kernel.coherence.shootdown_subtree(dentry, include_self)
        digest = []
        for path in dirs:
            try:
                d = kernel.sys._resolve(task, path,
                                        follow_last=True).dentry
            except FsError:
                digest.append((path, None, None))
                continue
            stale = d.fast is None or d.fast.hash_state is None
            digest.append((path, d.seq, stale))
        dlht_sizes = sorted(len(t) for t in kernel.coherence.dlhts)
        state.append((_fingerprint(kernel), digest, dlht_sizes,
                      kernel.coherence.counter))
    assert state[0] == state[1]


class TestBatchedShootdown:
    def test_golden_fixed_tree(self):
        """Deterministic differential over a tree with every node kind."""
        spec = [("dir", 0, 0), ("dir", 1, 1), ("file", 1, 0),
                ("file", 2, 1), ("symlink", 0, 2), ("neg", 1, 0),
                ("dir", 0, 3), ("mount", 3, 1), ("file", 3, 2),
                ("neg", 2, 5)]
        _shootdown_differential(spec, root_pick=0, include_self=True)
        _shootdown_differential(spec, root_pick=1, include_self=True)
        _shootdown_differential(spec, root_pick=0, include_self=False)

    def test_shootdown_on_cold_subtree_elides_bump(self):
        """No cached fastpath state + nothing mid-walk: both walks skip
        the counter bump and say so in the same stat."""
        kernel = make_kernel("optimized")
        task = kernel.spawn_task(uid=0, gid=0)
        kernel.sys.mkdir(task, "/cold")
        dentry = kernel.sys._resolve(task, "/cold",
                                     follow_last=True).dentry
        # Strip the fast state the mkdir walk allocated: the elision is
        # for subtrees the fastpath never populated (an allocated-but-
        # invalidated FastDentry still counts as found, since a probe
        # may be holding it).
        dentry.fast = None
        for child in dentry.children.values():
            child.fast = None
        before = kernel.coherence.counter
        elided = kernel.stats.snapshot().get("counter_bump_elided", 0)
        kernel.coherence.shootdown_subtree(dentry)
        assert kernel.coherence.counter == before
        assert kernel.stats.snapshot()["counter_bump_elided"] == elided + 1

    def test_hypothesis_random_subtrees(self):
        """Property sweep: arbitrary tree shapes (dirs, files, symlinks,
        negative dentries, bind mounts), arbitrary shootdown roots."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        op = st.tuples(
            st.sampled_from(["dir", "file", "symlink", "neg", "mount"]),
            st.integers(0, 7), st.integers(0, 7))

        @given(spec=st.lists(op, min_size=3, max_size=16),
               root_pick=st.integers(0, 7),
               include_self=st.booleans())
        @settings(max_examples=25, deadline=None)
        def sweep(spec, root_pick, include_self):
            _shootdown_differential(spec, root_pick, include_self)

        sweep()


# -- memoized mutation-path resolution -------------------------------------

class TestMemoMutationChurn:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_memo_off_on_byte_identity(self, profile):
        """create/stat/rename/unlink churn: bit-identical memo on/off,
        and the memo actually replays across mutation cycles (the
        scoped-kill payoff — a bulk flush per mutation would leave zero
        hits on this workload).  Lazy coherence stamps the global epoch
        on every mutation and recordings never survive an epoch bump,
        so there the check is only that the memo engaged (misses
        recorded) without perturbing costs."""
        prints = {}
        hits = misses = None
        for memo_on in (False, True):
            kernel = make_kernel(profile, resolution_memo=memo_on)
            task = kernel.spawn_task(uid=0, gid=0)
            sys = kernel.sys
            sys.mkdir(task, "/w")
            sys.mkdir(task, "/w/keep")
            for _ in range(25):
                fd = sys.open(task, "/w/f", O_CREAT | O_RDWR)
                sys.close(task, fd)
                sys.stat(task, "/w/f")
                sys.stat(task, "/w/keep")
                sys.rename(task, "/w/f", "/w/g")
                sys.stat(task, "/w/g")
                sys.unlink(task, "/w/g")
            prints[memo_on] = _fingerprint(kernel)
            if memo_on:
                hits = kernel.memo.hits
                misses = kernel.memo.misses
        assert prints[True] == prints[False]
        if profile == "optimized-lazy":
            assert misses > 0
        else:
            assert hits > 0


# -- charge-plan delta patching --------------------------------------------

def _forge_stale_capture(kernel, program, shape_local):
    """Make a live segment plan's capture stale without touching virtual
    state — the situation delta patching exists for (the stored charge
    vector no longer matches what the segment really charges).

    ``shape_local=True`` perturbs one event's count vector (same rows,
    different numbers — patchable); ``False`` drops an event (different
    structure — must fall back to invalidate+recapture).
    """
    registry = kernel.costs.plans
    cell = registry.cells(program, program.plan_segments)[0]
    assert cell.plan is not None, "segment plan did not compile"
    events, deltas = cell.plan.capture
    if shape_local:
        ev = list(events)
        i = next(i for i, e in enumerate(ev) if e[0] is None)
        ev[i] = (ev[i][0], ev[i][1], ev[i][2] + 1, ev[i][3])
        forged = (tuple(ev), deltas)
        assert registry.shape_local(events, forged[0])
    else:
        forged = (events[:-1], deltas)
        assert not registry.shape_local(forged[0], events)
    fn, total = _plan_fn(kernel.costs, forged[0])
    registry.patch(cell, fn, total, forged, kernel.costs.rates_version,
                   object())
    registry.patched = 0  # the forge itself went through patch()
    return cell


class TestPlanDeltaPatch:
    def test_shape_local_classifier(self):
        from repro.sim.costs import ChargePlanRegistry, _RAW_NS
        sl = ChargePlanRegistry.shape_local
        base = ((None, "syscall_fixed", 1, 0),
                (_RAW_NS, "app_compute", 5.0, None))
        assert sl(base, base)
        # Vector moves (times/nbytes/raw-ns) stay shape-local.
        assert sl(((None, "syscall_fixed", 3, 8),
                   (_RAW_NS, "app_compute", 9.5, None)), base)
        # Structural moves do not: primitive, length, raw-row scope.
        assert not sl(((None, "stat_fill", 1, 0),
                       (_RAW_NS, "app_compute", 5.0, None)), base)
        assert not sl(base[:1], base)
        assert not sl(((None, "syscall_fixed", 1, 0),
                       (_RAW_NS, "app_compute", 5.0, "hash")), base)

    @pytest.mark.parametrize("profile", PROFILES)
    def test_delta_patch_bit_identity(self, profile):
        """A shape-locally stale plan is patched back in place from the
        fresh capture — two interpreted runs instead of a warmup+capture
        cycle — and virtual costs match a plans-off kernel exactly."""
        prints = {}
        telemetry = None
        for plans in (False, True):
            kernel = make_kernel(profile)
            task = kernel.spawn_task(uid=0, gid=0)
            program = compile_trace(build_loop_trace(profile=profile))
            for _ in range(4):
                replay_compiled(kernel, task, program, plans=plans)
            if plans:
                cell = _forge_stale_capture(kernel, program,
                                            shape_local=True)
                true_capture = None
            task2 = kernel.spawn_task(uid=0, gid=0)
            for _ in range(3):
                replay_compiled(kernel, task2, program, plans=plans)
            prints[plans] = _fingerprint(kernel)
            if plans:
                telemetry = kernel.costs.plans.telemetry()
                true_capture = cell.plan.capture
        assert prints[True] == prints[False]
        assert telemetry["patched"] >= 1
        assert telemetry["invalidated"] == 0
        # The patched plan carries the *recorded* stream, not the forgery.
        assert true_capture is not None

    @pytest.mark.parametrize("profile", PROFILES)
    def test_structural_mismatch_falls_back(self, profile):
        """A structurally different capture cannot be patched: the cell
        resets through the full invalidate+recapture cycle — and stays
        bit-identical to plans-off throughout."""
        prints = {}
        telemetry = None
        for plans in (False, True):
            kernel = make_kernel(profile)
            task = kernel.spawn_task(uid=0, gid=0)
            program = compile_trace(build_loop_trace(profile=profile))
            for _ in range(4):
                replay_compiled(kernel, task, program, plans=plans)
            if plans:
                _forge_stale_capture(kernel, program, shape_local=False)
            task2 = kernel.spawn_task(uid=0, gid=0)
            for _ in range(4):
                replay_compiled(kernel, task2, program, plans=plans)
            prints[plans] = _fingerprint(kernel)
            if plans:
                telemetry = kernel.costs.plans.telemetry()
        assert prints[True] == prints[False]
        assert telemetry["invalidated"] >= 1
        assert telemetry["patched"] == 0


# -- lazy sweeper: sweep_all purity ----------------------------------------

def _sweep_setup():
    kernel = make_kernel("optimized-lazy")
    task = kernel.spawn_task(uid=0, gid=0)
    sys = kernel.sys
    sys.mkdir(task, "/z")
    for i in range(10):
        fd = sys.open(task, f"/z/f{i}", O_CREAT | O_RDWR)
        sys.close(task, fd)
    for i in range(10):
        sys.stat(task, f"/z/f{i}")
    return kernel


class TestSweepAllPurity:
    def test_sweep_all_ignores_leftover_worklists(self):
        """``sweep_all`` must charge as a pure function of cache state —
        a half-consumed incremental worklist left by ``sweep_once`` is
        discarded and rebuilt, never drained (the double-scan
        regression), and each full sweep is exactly one refill pass
        (``pass_gen`` advances by one)."""
        contaminated, fresh = _sweep_setup(), _sweep_setup()
        contaminated.sweeper.batch = 3
        contaminated.sweeper.sweep_once()  # leaves worklists mid-pass
        assert contaminated.sweeper._dlht_work \
            or contaminated.sweeper._pcc_work
        deltas = []
        for kernel in (contaminated, fresh):
            sweeper = kernel.sweeper
            costs = kernel.costs
            now0, counts0 = costs.now_ns, dict(costs.counts)
            gen0 = sweeper.pass_gen
            sweeper.sweep_all()
            deltas.append((
                costs.now_ns - now0,
                {p: c - counts0.get(p, 0)
                 for p, c in costs.counts.items()
                 if c != counts0.get(p, 0)}))
            assert sweeper.pass_gen == gen0 + 1
            assert not sweeper._dlht_work and not sweeper._pcc_work
        assert deltas[0] == deltas[1]
