"""Tests for mounts, bind mounts, mount flags, and mount namespaces."""

from __future__ import annotations

import pytest

from repro import O_CREAT, O_RDWR, errors, make_kernel
from repro.fs.pseudofs import PseudoFs
from repro.fs.tmpfs import TmpFs
from repro.testing import DualKernel


@pytest.fixture
def dual():
    return DualKernel()


@pytest.fixture
def root(dual):
    return dual.spawn_task(uid=0, gid=0)


def _mkfile(dual, task, path, content=b""):
    fd = dual.open(task, path, O_CREAT | O_RDWR)
    if content:
        dual.write(task, fd, content)
    dual.close(task, fd)


class TestMountBasics:
    def test_mount_and_cross(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/mnt")
        tmp = TmpFs(kernel.costs)
        sys.mount_fs(task, tmp, "/mnt")
        fd = sys.open(task, "/mnt/inside", O_CREAT | O_RDWR)
        sys.close(task, fd)
        st = sys.stat(task, "/mnt/inside")
        assert st.fstype == "tmpfs"

    def test_mount_shadows_underlying(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/mnt")
        fd = sys.open(task, "/mnt/covered", O_CREAT | O_RDWR)
        sys.close(task, fd)
        sys.stat(task, "/mnt/covered")  # cached before the mount
        sys.mount_fs(task, TmpFs(kernel.costs), "/mnt")
        with pytest.raises(errors.ENOENT):
            sys.stat(task, "/mnt/covered")
        sys.umount(task, "/mnt")
        assert sys.stat(task, "/mnt/covered").filetype == "reg"

    def test_mountpoint_stat_reports_mounted_fs(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/mnt")
        sys.mount_fs(task, TmpFs(kernel.costs), "/mnt")
        assert sys.stat(task, "/mnt").fstype == "tmpfs"

    def test_dotdot_crosses_mount_up(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/srv")
        fd = sys.open(task, "/marker", O_CREAT | O_RDWR)
        sys.close(task, fd)
        sys.mount_fs(task, TmpFs(kernel.costs), "/srv")
        sys.mkdir(task, "/srv/deep")
        assert sys.stat(task, "/srv/deep/../../marker").filetype == "reg"

    def test_umount_busy_with_submounts(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/a")
        sys.mount_fs(task, TmpFs(kernel.costs), "/a")
        sys.mkdir(task, "/a/b")
        sys.mount_fs(task, TmpFs(kernel.costs), "/a/b")
        with pytest.raises(errors.EBUSY):
            sys.umount(task, "/a")
        sys.umount(task, "/a/b")
        sys.umount(task, "/a")

    def test_mount_requires_root(self, kernel):
        root = kernel.spawn_task(uid=0, gid=0)
        user = kernel.spawn_task(uid=1000, gid=1000)
        kernel.sys.mkdir(root, "/mnt")
        with pytest.raises(errors.EPERM):
            kernel.sys.mount_fs(user, TmpFs(kernel.costs), "/mnt")

    def test_rename_mountpoint_rejected(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/mp")
        sys.mount_fs(task, TmpFs(kernel.costs), "/mp")
        with pytest.raises(errors.EBUSY):
            sys.rename(task, "/mp", "/elsewhere")

    def test_readonly_mount(self, kernel):
        from repro.vfs.mount import MNT_RDONLY
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/ro")
        tmp = TmpFs(kernel.costs)
        tmp.create(tmp.root_ino, "existing", 0o644, 0, 0)
        sys.mount_fs(task, tmp, "/ro", flags=frozenset({MNT_RDONLY}))
        with pytest.raises(errors.EROFS):
            sys.open(task, "/ro/new", O_CREAT | O_RDWR)
        with pytest.raises(errors.EROFS):
            sys.chmod(task, "/ro/existing", 0o600)
        with pytest.raises(errors.EROFS):
            sys.unlink(task, "/ro/existing")
        # Reads still work.
        assert sys.stat(task, "/ro/existing").filetype == "reg"


class TestBindMounts:
    def test_bind_alias_sees_same_files(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/data")
        fd = sys.open(task, "/data/f", O_CREAT | O_RDWR)
        sys.write(task, fd, b"shared")
        sys.close(task, fd)
        sys.mkdir(task, "/alias")
        sys.bind_mount(task, "/data", "/alias")
        st1 = sys.stat(task, "/data/f")
        st2 = sys.stat(task, "/alias/f")
        assert st1.ino == st2.ino

    def test_writes_visible_through_alias(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/data")
        sys.mkdir(task, "/alias")
        sys.bind_mount(task, "/data", "/alias")
        fd = sys.open(task, "/alias/new", O_CREAT | O_RDWR)
        sys.close(task, fd)
        assert sys.stat(task, "/data/new").filetype == "reg"

    def test_alias_lookup_alternates(self, kernel):
        """§4.3: a dentry lives in the DLHT under one path at a time;
        alternating between aliases must stay correct."""
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/data")
        fd = sys.open(task, "/data/f", O_CREAT | O_RDWR)
        sys.close(task, fd)
        sys.mkdir(task, "/a1")
        sys.mkdir(task, "/a2")
        sys.bind_mount(task, "/data", "/a1")
        sys.bind_mount(task, "/data", "/a2")
        for _ in range(3):
            assert sys.stat(task, "/a1/f").filetype == "reg"
            assert sys.stat(task, "/a2/f").filetype == "reg"
            assert sys.stat(task, "/data/f").filetype == "reg"

    def test_unlink_through_alias(self, kernel):
        task = kernel.spawn_task(uid=0, gid=0)
        sys = kernel.sys
        sys.mkdir(task, "/data")
        fd = sys.open(task, "/data/f", O_CREAT | O_RDWR)
        sys.close(task, fd)
        sys.mkdir(task, "/alias")
        sys.bind_mount(task, "/data", "/alias")
        sys.stat(task, "/alias/f")
        sys.unlink(task, "/alias/f")
        with pytest.raises(errors.ENOENT):
            sys.stat(task, "/data/f")


class TestMountNamespaces:
    def test_unshare_isolates_mounts(self, kernel):
        sys = kernel.sys
        admin = kernel.spawn_task(uid=0, gid=0)
        sys.mkdir(admin, "/shared")
        isolated = kernel.spawn_task(uid=0, gid=0)
        sys.unshare_mountns(isolated)
        sys.mount_fs(isolated, TmpFs(kernel.costs), "/shared")
        fd = sys.open(isolated, "/shared/private", O_CREAT | O_RDWR)
        sys.close(isolated, fd)
        # The original namespace does not see the private mount.
        with pytest.raises(errors.ENOENT):
            sys.stat(admin, "/shared/private")
        assert sys.stat(isolated, "/shared/private").filetype == "reg"

    def test_same_path_different_dentries_across_ns(self, kernel):
        """§4.3: the same path maps to different dentries per namespace;
        each namespace has its own DLHT so both stay fast and correct."""
        sys = kernel.sys
        admin = kernel.spawn_task(uid=0, gid=0)
        sys.mkdir(admin, "/app")
        fd = sys.open(admin, "/app/config", O_CREAT | O_RDWR)
        sys.write(admin, fd, b"host")
        sys.close(admin, fd)
        jailed = kernel.spawn_task(uid=0, gid=0)
        sys.unshare_mountns(jailed)
        sys.mount_fs(jailed, TmpFs(kernel.costs), "/app")
        fd = sys.open(jailed, "/app/config", O_CREAT | O_RDWR)
        sys.write(jailed, fd, b"jailed!")
        sys.close(jailed, fd)
        for _ in range(2):  # second pass exercises per-ns fastpath
            assert sys.stat(admin, "/app/config").size == 4
            assert sys.stat(jailed, "/app/config").size == 7

    def test_unshare_preserves_cwd(self, kernel):
        sys = kernel.sys
        task = kernel.spawn_task(uid=0, gid=0)
        sys.mkdir(task, "/work")
        sys.chdir(task, "/work")
        sys.unshare_mountns(task)
        assert sys.getcwd(task) == "/work"
        fd = sys.open(task, "relative", O_CREAT | O_RDWR)
        sys.close(task, fd)
        assert sys.stat(task, "/work/relative").filetype == "reg"

    def test_unshare_requires_root(self, kernel):
        user = kernel.spawn_task(uid=1000, gid=1000)
        with pytest.raises(errors.EPERM):
            kernel.sys.unshare_mountns(user)


class TestPseudoFsMount:
    def test_proc_like_mount(self, kernel):
        sys = kernel.sys
        task = kernel.spawn_task(uid=0, gid=0)
        sys.mkdir(task, "/proc")
        proc = PseudoFs(kernel.costs)
        proc.add_static_file(proc.root_ino, "version", "SimKernel 1.0")
        proc.add_static_file(proc.root_ino, "uptime", "1234.5")
        sys.mount_fs(task, proc, "/proc")
        assert sys.stat(task, "/proc/version").size == len("SimKernel 1.0")
        names = {n for n, _i, _t in sys.listdir(task, "/proc")}
        assert names == {"version", "uptime"}

    def test_pseudo_negative_caching_differs(self):
        """§5.2: baseline skips negative dentries on pseudo FS; the
        optimized kernel caches them — but both return ENOENT."""
        for profile, expect_cached in (("baseline", False),
                                       ("optimized", True)):
            kernel = make_kernel(profile)
            task = kernel.spawn_task(uid=0, gid=0)
            sys = kernel.sys
            sys.mkdir(task, "/proc")
            proc = PseudoFs(kernel.costs)
            sys.mount_fs(task, proc, "/proc")
            for _ in range(3):
                with pytest.raises(errors.ENOENT):
                    sys.stat(task, "/proc/no_such_entry")
            negative_hits = kernel.stats.get("negative_hit")
            if expect_cached:
                assert negative_hits >= 2
            else:
                assert negative_hits == 0

    def test_mount_equivalence_dual(self, dual, root):
        dual.mkdir(root, "/m")
        # Mount distinct-but-identically-driven tmpfs on each kernel.
        for kernel, task in zip(dual.kernels, dual.tasks[root]):
            kernel.sys.mount_fs(task, TmpFs(kernel.costs), "/m")
        _mkfile(dual, root, "/m/f", b"x")
        assert dual.stat(root, "/m/f").size == 1
        dual.rename(root, "/m/f", "/m/g")
        with pytest.raises(errors.ENOENT):
            dual.stat(root, "/m/f")
        with pytest.raises(errors.EXDEV):
            dual.rename(root, "/m/g", "/outside")
