"""Shared fixtures for the dcache-repro test suite."""

from __future__ import annotations

import pytest

from repro import make_kernel
from repro.sim.costs import CostModel, UNIT
from repro.testing import DualKernel


@pytest.fixture
def baseline():
    """A fresh baseline (unmodified-Linux-style) kernel."""
    return make_kernel("baseline")


@pytest.fixture
def optimized():
    """A fresh optimized (paper design) kernel."""
    return make_kernel("optimized")


@pytest.fixture(params=["baseline", "optimized"])
def kernel(request):
    """Parametrized: each test runs against both kernel profiles."""
    return make_kernel(request.param)


@pytest.fixture
def dual():
    """A synchronized baseline/optimized pair (equivalence oracle)."""
    return DualKernel()


@pytest.fixture
def unit_costs():
    """A cost model where every primitive costs 1 ns (counting tests)."""
    return CostModel(dict(UNIT))


def build_tree(kernel, task, spec, base="") -> None:
    """Create a tree from a nested dict spec.

    Keys are names; values are dicts (subdirectories), strings (file
    contents), or ("symlink", target) tuples.
    """
    from repro import O_CREAT, O_RDWR

    sys = kernel.sys
    for name, value in spec.items():
        path = f"{base}/{name}"
        if isinstance(value, dict):
            sys.mkdir(task, path)
            build_tree(kernel, task, value, path)
        elif isinstance(value, tuple) and value[0] == "symlink":
            sys.symlink(task, value[1], path)
        else:
            fd = sys.open(task, path, O_CREAT | O_RDWR)
            if value:
                sys.write(task, fd, value.encode())
            sys.close(task, fd)


@pytest.fixture
def tree_builder():
    return build_tree
