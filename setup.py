"""Legacy setup shim for environments without the ``wheel`` package.

All real metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-build-isolation`` on offline machines whose
setuptools cannot build PEP 660 editable wheels.
"""

from setuptools import setup

setup()
