"""dcache-repro: a reproduction of "How to Get More Value From Your File
System Directory Cache" (Tsai et al., SOSP 2015).

The library simulates a Unix VFS with two interchangeable directory cache
designs — the Linux-style baseline and the paper's optimized design
(full-path direct lookup, prefix check caching, path signatures,
directory completeness, aggressive negative dentries) — over simulated
low-level file systems with a calibrated virtual-time cost model.

Quickstart::

    from repro import make_kernel, O_CREAT, O_RDWR

    kernel = make_kernel("optimized")
    task = kernel.spawn_task(uid=1000, gid=1000)
    kernel.sys.mkdir(task, "/home")
    fd = kernel.sys.open(task, "/home/readme", flags=O_CREAT | O_RDWR)
    ...

See ``examples/quickstart.py`` for a complete tour and ``DESIGN.md`` for
the system inventory.
"""

from repro.core.kernel import (BASELINE, OPTIMIZED, OPTIMIZED_LAZY,
                               DcacheConfig, Kernel, make_kernel)
from repro.errors import FsError
from repro.vfs.file import (O_APPEND, O_CREAT, O_DIRECTORY, O_EXCL,
                            O_NOFOLLOW, O_RDONLY, O_RDWR, O_TRUNC, O_WRONLY)
from repro.vfs.permissions import MAY_EXEC, MAY_READ, MAY_WRITE

__version__ = "1.0.0"

__all__ = [
    "make_kernel",
    "Kernel",
    "DcacheConfig",
    "BASELINE",
    "OPTIMIZED",
    "OPTIMIZED_LAZY",
    "FsError",
    "O_RDONLY",
    "O_WRONLY",
    "O_RDWR",
    "O_CREAT",
    "O_EXCL",
    "O_TRUNC",
    "O_APPEND",
    "O_DIRECTORY",
    "O_NOFOLLOW",
    "MAY_READ",
    "MAY_WRITE",
    "MAY_EXEC",
    "__version__",
]
