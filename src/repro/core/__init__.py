"""The paper's contribution: the optimized directory cache.

Subpackages implement each mechanism of the SOSP 2015 design:

* :mod:`repro.core.arena` — struct-of-arrays dentry scalar storage.
* :mod:`repro.core.signatures` — 240-bit resumable path signatures (§3.3).
* :mod:`repro.core.dlht` — the Direct Lookup Hash Table (§3.1).
* :mod:`repro.core.pcc` — the per-credential Prefix Check Cache (§3.1, §4.1).
* :mod:`repro.core.fastdentry` — per-dentry fast state (Figure 5).
* :mod:`repro.core.coherence` — invalidation on mutations (§3.2).
* :mod:`repro.core.completeness` — directory completeness caching (§5.1).
* :mod:`repro.core.negative` — aggressive/deep negative dentries (§5.2).
* :mod:`repro.core.fastpath` — the fastpath lookup engine (§3, §4).
* :mod:`repro.core.kernel` — the kernel builder and configuration knobs.

The public entry point is :func:`repro.core.kernel.make_kernel`.

The re-exports below resolve lazily (PEP 562): :mod:`repro.core.arena`
sits *below* :mod:`repro.vfs.dentry` in the layering, so importing it
must not drag in the kernel builder (which sits above the whole VFS).
"""

__all__ = ["Kernel", "DcacheConfig", "BASELINE", "OPTIMIZED", "make_kernel"]


def __getattr__(name):
    if name in __all__:
        from repro.core import kernel
        return getattr(kernel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
