"""The Direct Lookup Hash Table (§3.1).

A system-wide (per mount namespace, §4.3) hash table mapping full-path
signatures to dentries.  It is lazily populated by slowpath walks and
pruned by coherence shootdowns; a probe costs one bucket fetch plus a
constant-size signature compare per chained entry.

Collision semantics follow the paper: chains are searched in insertion
order and the *first* signature match wins, so if two live paths truncate
to the same signature the later one simply never enters the table (its
lookups keep taking the slowpath) — and with very small signatures (test
configurations) a probe can return the colliding dentry, which is exactly
the failure mode §3.3's PCC-containment argument is about.

The lazy-coherence kernel (``optimized-lazy``) runs the table in
*multi-key* mode: mutations do not evict, so after a rename a dentry may
legitimately be registered under both its old-path and new-path
signatures.  The registration recorded on the fast dentry stays the
*primary* one (matching ``hash_state``); older keys move to
``fast.extra_keys`` and are settled — promoted or discarded — by
touch-time revalidation and the background sweep.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.fastdentry import fast_of
from repro.core.signatures import Signature
from repro.sim.costs import CostModel
from repro.sim.stats import Stats
from repro.vfs.dentry import Dentry

#: Fixed charge run for one probe (batched; order is the historical
#: per-call sequence).
_PROBE_CHARGES = ("dlht_probe", "sig_compare")


class DirectLookupHashTable:
    """One namespace's signature -> dentry index."""

    __slots__ = ("costs", "stats", "multi_key", "extra_key_count",
                 "owner_ns", "_table", "__weakref__")

    def __init__(self, costs: CostModel, stats: Stats,
                 multi_key: bool = False):
        self.costs = costs
        self.stats = stats
        #: Lazy mode: keep old-path registrations alongside the primary.
        self.multi_key = multi_key
        #: Live non-primary keys (for honest memory accounting).
        self.extra_key_count = 0
        #: Weakref to the owning namespace (set by the kernel); the lazy
        #: sweep needs it to re-derive canonical paths.
        self.owner_ns = None
        self._table: Dict[Tuple[int, int], Dentry] = {}

    @staticmethod
    def _key(signature: Signature) -> Tuple[int, int]:
        return (signature.index, signature.bits)

    def probe(self, signature: Signature) -> Optional[Dentry]:
        """Look up a signature: bucket fetch + signature compare."""
        costs = self.costs
        costs.charge_many(_PROBE_CHARGES)
        # A Signature is a NamedTuple, so it hashes and compares as the
        # plain ``(index, bits)`` tuple ``_key`` produces — probe with it
        # directly and skip one tuple allocation on the hottest probe.
        dentry = self._table.get(signature)
        if dentry is not None and not dentry.dead:
            rec = costs.recorder
            if rec is not None:
                # Every fastpath conclusion rests on its probe hits; the
                # resolution memo pins them (seq + inode identity).
                rec.deps.append(dentry)
        return dentry

    def peek(self, key: Tuple[int, int]) -> Optional[Dentry]:
        """Uncharged raw-key access (sweep / introspection only)."""
        return self._table.get(key)

    def insert(self, dentry: Dentry, signature: Signature) -> bool:
        """Register ``dentry`` under ``signature``.

        Returns False (leaving the table unchanged) when a *different*
        dentry already owns the signature — first-wins, as in a chained
        bucket where lookup stops at the first signature match.

        Single-key mode (eager): if the dentry is already registered
        elsewhere (other path or other namespace's table), that
        registration is dropped first — a dentry is in at most one DLHT
        under one signature (§4.3).  Multi-key mode (lazy): a prior
        registration in *this* table becomes an extra key instead; a
        registration in another namespace's table is still dropped.
        """
        key = self._key(signature)
        current = self._table.get(key)
        fast = fast_of(dentry)
        if current is dentry:
            if fast.dlht is self and fast.dlht_key != key:
                # Re-registering under an extra key: promote it.
                self._promote(fast, key, signature)
            return True
        if current is not None and not current.dead:
            return False
        if fast.dlht is not None:
            if fast.dlht is self and self.multi_key:
                old_key = fast.dlht_key
                if old_key is not None and self._table.get(old_key) is dentry:
                    if fast.extra_keys is None:
                        fast.extra_keys = [old_key]
                    else:
                        fast.extra_keys.append(old_key)
                    self.extra_key_count += 1
            else:
                fast.dlht.remove(dentry)
        self.costs.charge("dlht_insert")
        self._table[key] = dentry
        fast.dlht = self
        fast.dlht_key = key
        fast.signature = signature
        return True

    def _promote(self, fast, key: Tuple[int, int],
                 signature: Signature) -> None:
        """Make an existing extra key the dentry's primary registration."""
        old_key = fast.dlht_key
        extras = fast.extra_keys
        if extras is not None and key in extras:
            extras.remove(key)
            self.extra_key_count -= 1
            if not extras:
                # Normalize: an emptied shadow list is dead weight for
                # every later check and for snapshot clones.
                fast.extra_keys = None
        if old_key is not None and old_key != key \
                and self._table.get(old_key) is self._table.get(key):
            if fast.extra_keys is None:
                fast.extra_keys = [old_key]
            else:
                fast.extra_keys.append(old_key)
            self.extra_key_count += 1
        fast.dlht_key = key
        fast.signature = signature

    def remove(self, dentry: Dentry) -> None:
        """Drop a dentry's registration — all of its keys (no-op if absent)."""
        fast = dentry.fast
        if fast is None or fast.dlht is not self:
            return
        if fast.dlht_key is not None \
                and self._table.get(fast.dlht_key) is dentry:
            del self._table[fast.dlht_key]
        if fast.extra_keys:
            for key in fast.extra_keys:
                if self._table.get(key) is dentry:
                    del self._table[key]
                self.extra_key_count -= 1
            fast.extra_keys = None
        fast.dlht = None
        fast.dlht_key = None

    def discard_key(self, dentry: Dentry, key: Tuple[int, int]) -> None:
        """Drop one stale key of a dentry (lazy touch-time eviction).

        Discarding the primary key leaves the dentry registered only
        under its extra keys (its ``hash_state`` no longer names a live
        path, so the primary slot is cleared until a revalidation
        promotes one of the survivors).
        """
        if self._table.get(key) is dentry:
            del self._table[key]
        fast = dentry.fast
        if fast is None or fast.dlht is not self:
            return  # orphaned mapping: the table slot above was the leak
        extras = fast.extra_keys
        if extras is not None and key in extras:
            extras.remove(key)
            self.extra_key_count -= 1
            if not extras:
                fast.extra_keys = None
            return
        if fast.dlht_key == key:
            fast.dlht_key = None
            fast.signature = None
            fast.hash_state = None
            if not fast.extra_keys:
                fast.dlht = None

    def keys_of(self, dentry: Dentry) -> list:
        """Every key the dentry is registered under in this table."""
        fast = dentry.fast
        if fast is None or fast.dlht is not self:
            return []
        keys = []
        if fast.dlht_key is not None:
            keys.append(fast.dlht_key)
        if fast.extra_keys:
            keys.extend(fast.extra_keys)
        return keys

    def flush(self) -> None:
        """Drop every entry (version-counter wraparound handling)."""
        for dentry in list(self._table.values()):
            self.remove(dentry)
        self._table.clear()

    def items(self):
        """Snapshot of (key, dentry) pairs (sweep / introspection)."""
        return list(self._table.items())

    def __len__(self) -> int:
        return len(self._table)
