"""The Direct Lookup Hash Table (§3.1).

A system-wide (per mount namespace, §4.3) hash table mapping full-path
signatures to dentries.  It is lazily populated by slowpath walks and
pruned by coherence shootdowns; a probe costs one bucket fetch plus a
constant-size signature compare per chained entry.

Collision semantics follow the paper: chains are searched in insertion
order and the *first* signature match wins, so if two live paths truncate
to the same signature the later one simply never enters the table (its
lookups keep taking the slowpath) — and with very small signatures (test
configurations) a probe can return the colliding dentry, which is exactly
the failure mode §3.3's PCC-containment argument is about.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.fastdentry import fast_of
from repro.core.signatures import Signature
from repro.sim.costs import CostModel
from repro.sim.stats import Stats
from repro.vfs.dentry import Dentry


class DirectLookupHashTable:
    """One namespace's signature -> dentry index."""

    __slots__ = ("costs", "stats", "_table")

    def __init__(self, costs: CostModel, stats: Stats):
        self.costs = costs
        self.stats = stats
        self._table: Dict[Tuple[int, int], Dentry] = {}

    @staticmethod
    def _key(signature: Signature) -> Tuple[int, int]:
        return (signature.index, signature.bits)

    def probe(self, signature: Signature) -> Optional[Dentry]:
        """Look up a signature: bucket fetch + signature compare."""
        self.costs.charge("dlht_probe")
        self.costs.charge("sig_compare")
        return self._table.get(self._key(signature))

    def insert(self, dentry: Dentry, signature: Signature) -> bool:
        """Register ``dentry`` under ``signature``.

        Returns False (leaving the table unchanged) when a *different*
        dentry already owns the signature — first-wins, as in a chained
        bucket where lookup stops at the first signature match.  If the
        dentry is already registered elsewhere (other path or other
        namespace's table), that registration is dropped first: a dentry
        is in at most one DLHT under one signature (§4.3).
        """
        key = self._key(signature)
        current = self._table.get(key)
        if current is dentry:
            return True
        if current is not None and not current.dead:
            return False
        fast = fast_of(dentry)
        if fast.dlht is not None:
            fast.dlht.remove(dentry)
        self.costs.charge("dlht_insert")
        self._table[key] = dentry
        fast.dlht = self
        fast.dlht_key = key
        fast.signature = signature
        return True

    def remove(self, dentry: Dentry) -> None:
        """Drop a dentry's registration (no-op if absent)."""
        fast = dentry.fast
        if fast is None or fast.dlht is not self or fast.dlht_key is None:
            return
        if self._table.get(fast.dlht_key) is dentry:
            del self._table[fast.dlht_key]
        fast.dlht = None
        fast.dlht_key = None

    def flush(self) -> None:
        """Drop every entry (version-counter wraparound handling)."""
        for dentry in list(self._table.values()):
            self.remove(dentry)

    def __len__(self) -> int:
        return len(self._table)
