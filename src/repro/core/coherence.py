"""Coherence with permission and path changes (§3.2).

The optimized kernel trades slower mutations for faster lookups: before a
directory's permissions or position change, every cached descendant gets
its sequence counter bumped (invalidating all PCC entries that reference
it, without touching any PCC directly) and is evicted from its direct
lookup hash table.  A global *invalidation counter* is read before a
slowpath walk and checked before its results repopulate the caches, so a
walk that raced a mutation can never re-cache stale state.

Mutation cost therefore becomes linear in the cached subtree size — the
Figure 7 trade-off — charged here as ``inval_per_dentry``.

The ``optimized-lazy`` kernel keeps the lookup side but flips the
mutation side to *epoch-based lazy invalidation* (cf. Stage Lookup,
arXiv:2010.08741): a mutation bumps one global epoch and stamps the
mutated dentry with it — O(1), no subtree walk — and fastpath hits pay
for it instead, by checking that no dentry on their cached path carries
a stamp newer than the epoch snapshot captured when the entry was
populated.  Stale entries are revalidated or evicted on touch
(:mod:`repro.core.fastpath`), and :class:`LazySweeper` amortizes the
reclamation of never-touched stale entries so memory accounting stays
honest.  See ``docs/coherence.md`` for the staleness argument.
"""

from __future__ import annotations

import weakref
from typing import List

from repro.sim.costs import CostModel
from repro.sim.stats import Stats
from repro.vfs.dcache import DcacheHooks
from repro.vfs.dentry import Dentry

#: Sequence counters are 32-bit in the paper's prototype; wraparound
#: flushes every PCC and DLHT (§3.1).  Kept small enough to test.
SEQ_WRAP = 1 << 32


class Coherence:
    """Invalidation engine shared by all optimized-kernel components."""

    def __init__(self, costs: CostModel, stats: Stats, lazy: bool = False):
        self.costs = costs
        self.stats = stats
        #: Lazy mode: shootdowns stamp epochs instead of walking subtrees.
        self.lazy = lazy
        #: Global invalidation counter guarding slowpath repopulation.
        self.counter = 0
        #: Lazy mode's global epoch: bumped by every mutation that would
        #: have been an eager shootdown; per-dentry stamps come from it.
        self.epoch = 0
        #: Slowpath walks currently in flight (between a walk's ``begin``
        #: hook and its ``_apply``/``abandon``).  Mutations may only skip
        #: the global counter bump when nothing is mid-walk.
        self.walks_active = 0
        #: Monotonic dentry version source (reallocation staleness, §3.1).
        self._version_source = 0
        #: Weak references to every live PCC / DLHT (wraparound flush and
        #: the lazy sweep must reach them all, but must not keep caches of
        #: discarded namespaces or dead credentials alive forever).
        self._pcc_refs: List = []
        self._dlht_refs: List = []
        #: id(mountpoint dentry) -> mounted root dentries (a multiset:
        #: cloned namespaces register the same pair again).  Shootdowns
        #: descend through mountpoints so a permission change above a
        #: mount invalidates the memoized prefix checks inside it.
        self._mounts_on: dict = {}
        #: Resolution memo to bulk-flush on invalidation counter bumps
        #: (set by the kernel when ``DcacheConfig.resolution_memo`` is
        #: on; see :mod:`repro.core.resmemo`).
        self.memo = None
        #: Charge-plan registry to generation-bump on wraparound (set by
        #: the kernel; see :class:`repro.sim.costs.ChargePlanRegistry`).
        #: Deliberately NOT bumped by :meth:`bump_counter` — plan guards
        #: re-validate fd-table state at apply time, so per-pass
        #: structural mutations need no plan invalidation; the gen
        #: covers only out-of-band bulk flushes.
        self.plans = None

    # -- cache registry --------------------------------------------------------

    def track_pcc(self, pcc) -> None:
        self._pcc_refs.append(weakref.ref(pcc))
        # A PCC capacity eviction can remove an entry a confirmed memo
        # recording expects to re-touch; give the PCC a flush handle.
        pcc.memo = self.memo

    def track_dlht(self, dlht) -> None:
        self._dlht_refs.append(weakref.ref(dlht))

    @staticmethod
    def _live(refs: List) -> List:
        alive = []
        dead = False
        for ref in refs:
            obj = ref()
            if obj is None:
                dead = True
            else:
                alive.append(obj)
        if dead:
            refs[:] = [ref for ref in refs if ref() is not None]
        return alive

    @property
    def pccs(self) -> List:
        """Every live PCC (dead ones are pruned as a side effect)."""
        return self._live(self._pcc_refs)

    @property
    def dlhts(self) -> List:
        """Every live DLHT (dead ones are pruned as a side effect)."""
        return self._live(self._dlht_refs)

    # -- mount registry ---------------------------------------------------------

    def register_mount(self, mountpoint: Dentry, root: Dentry) -> None:
        self._mounts_on.setdefault(id(mountpoint), []).append(root)

    def unregister_mount(self, mountpoint: Dentry, root: Dentry) -> None:
        roots = self._mounts_on.get(id(mountpoint))
        if not roots:
            return
        # Match by identity: dentries are compared as tree nodes, and an
        # equality scan could drop a different namespace's registration
        # of the same (mountpoint, root) pair.
        for i, candidate in enumerate(roots):
            if candidate is root:
                del roots[i]
                break
        if not roots:
            del self._mounts_on[id(mountpoint)]

    # -- counter ---------------------------------------------------------------

    def read_counter(self) -> int:
        return self.counter

    def bump_counter(self) -> None:
        self.costs.charge("inval_counter_bump")
        self.counter += 1
        # No memo flush here: memoized resolutions snapshot the counter
        # (so non-steady entries lapse on their own), and steady entries
        # are covered by the dcache's scoped kills plus their per-dentry
        # seq / inode / signature pins.

    # -- shootdowns ----------------------------------------------------------------

    def _invalidate_one(self, dentry: Dentry) -> None:
        self.costs.charge("inval_per_dentry")
        self.stats.bump("inval_dentry")
        # Eager shootdowns touch every cached descendant; bump the seq
        # on the arena column directly instead of through the property.
        h = dentry.h
        if h >= 0:
            seqarr = dentry.arena.seq
            seq = seqarr[h] + 1
            seqarr[h] = seq
        else:
            seq = dentry.seq + 1
            dentry.seq = seq
        if seq >= SEQ_WRAP:
            self.wraparound_flush()
        fast = dentry.fast
        if fast is not None:
            fast.invalidate()
            if fast.dlht is not None:
                fast.dlht.remove(dentry)

    def _invalidate_bulk(self, frontier: List[Dentry]) -> None:
        """Apply :meth:`_invalidate_one` to a collected frontier in bulk.

        Charges accumulate in locals and store once; the float-add
        sequence on the clock and the per-primitive/per-scope tables is
        exactly the one N scalar charges would produce (same additions,
        same order — the intermediate attribute stores carry no rounding),
        recorder events are appended per dentry as before, and the Stats
        counters merge through one :meth:`~repro.sim.stats.Stats.bump_many`
        (integer, associative).  Seq bumps go through the arena column,
        bound once per arena rather than once per dentry.
        """
        costs = self.costs
        ns = costs._rates["inval_per_dentry"][0]
        clock = costs.clock
        stack = costs._scope_stack
        scope = stack[-1] if stack else None
        rec = costs.recorder
        events = rec.events if rec is not None else None
        by_primitive = costs.by_primitive
        now = clock._now_ns
        vp = by_primitive.get("inval_per_dentry", 0.0)
        if scope is not None:
            by_scope = costs.by_scope
            vs = by_scope.get(scope, 0.0)
        arena = None
        seqarr = None
        wraps = 0
        for dentry in frontier:
            now += ns
            vp += ns
            if scope is not None:
                vs += ns
            if events is not None:
                events.append((scope, "inval_per_dentry", 1, 0))
            h = dentry.h
            if h >= 0:
                if dentry.arena is not arena:
                    arena = dentry.arena
                    seqarr = arena.seq
                seq = seqarr[h] + 1
                seqarr[h] = seq
            else:
                seq = dentry.seq + 1
                dentry.seq = seq
            if seq >= SEQ_WRAP:
                wraps += 1
            fast = dentry.fast
            if fast is not None:
                fast.invalidate()
                if fast.dlht is not None:
                    fast.dlht.remove(dentry)
        clock._now_ns = now
        by_primitive["inval_per_dentry"] = vp
        if scope is not None:
            by_scope[scope] = vs
        n = len(frontier)
        counts = costs.counts
        counts["inval_per_dentry"] = counts.get("inval_per_dentry", 0) + n
        self.stats.bump_many((("inval_dentry", n),))
        # Wraparound (32-bit seq space) is once-in-a-blue-moon; the flush
        # itself charges nothing, so deferring it past the bulk stores is
        # observationally identical to the scalar walk firing it inline.
        for _ in range(wraps):
            self.wraparound_flush()

    def _lazy_stamp(self, dentry: Dentry) -> None:
        """O(1) lazy shootdown: advance the epoch, stamp the dentry.

        Descendants are untouched; their next fastpath hit observes the
        stamp on its ancestor chain and revalidates (or dies) then.  The
        dentry's own seq is bumped too so PCC entries *for this dentry*
        (whose memoized prefix runs through the mutated node's parent,
        not the node itself) still obey the eager staleness rule when the
        mutation moved or re-permissioned the node's parent directory —
        and, symmetrically, so reallocation staleness keeps working.
        """
        self.costs.charge("epoch_bump")
        self.stats.bump("lazy_epoch_bump")
        epoch = self.epoch + 1
        self.epoch = epoch
        h = dentry.h
        if h >= 0:
            arena = dentry.arena
            arena.epoch[h] = epoch
            seqarr = arena.seq
            seq = seqarr[h] + 1
            seqarr[h] = seq
        else:
            dentry.epoch = epoch
            seq = dentry.seq + 1
            dentry.seq = seq
        if seq >= SEQ_WRAP:
            self.wraparound_flush()

    def shootdown_single(self, dentry: Dentry) -> None:
        """Invalidate one dentry (file chmod/chown, unlink, ...)."""
        if self.lazy:
            self._lazy_stamp(dentry)
        else:
            self._invalidate_one(dentry)
        self.bump_counter()

    def shootdown_subtree(self, dentry: Dentry,
                          include_self: bool = True) -> None:
        """Invalidate a dentry and all cached descendants.

        Eager mode walks the cached subtree — cost linear in its size
        (§3.2), descending through mountpoints so a prefix check memoized
        for a path that crosses a mount below the changed directory dies
        too.  Lazy mode stamps the one mutated dentry instead; descendant
        state (on either side of a mount boundary) stays in the tables
        and is revalidated on touch.

        The global counter bump is skipped when the eager walk found no
        cached fastpath state to invalidate *and* no slowpath walk is in
        flight — the bump exists to fence racing repopulation, and with
        nothing cached and nobody mid-walk there is nothing to fence.
        """
        if self.lazy:
            root = dentry if include_self else None
            if root is None:
                # Lexical include_self=False callers stamp the parent's
                # children; the paper's syscall layer always passes the
                # mutated dentry itself, but stay correct regardless.
                self.epoch += 1
                self.costs.charge("epoch_bump")
                self.stats.bump("lazy_epoch_bump")
                for child in dentry.children.values():
                    child.epoch = self.epoch
                    child.seq += 1
            else:
                self._lazy_stamp(root)
            self.bump_counter()
            return
        # Collect the frontier first (flat list, exact DFS order of the
        # old per-dentry recursive walk — invalidation mutates no tree
        # edges, so collect-then-apply visits the same dentries in the
        # same order), then shoot it down in one column-bound bulk pass.
        found_fast = 0
        visited = set()
        mounts = self._mounts_on
        stack = [dentry] if include_self else \
            list(dentry.children.values()) + \
            list(mounts.get(id(dentry), ()))
        frontier: List[Dentry] = []
        append = frontier.append
        while stack:
            current = stack.pop()
            ident = id(current)
            if ident in visited:
                continue
            visited.add(ident)
            if current.fast is not None:
                found_fast += 1
            append(current)
            stack.extend(current.children.values())
            roots = mounts.get(ident)
            if roots:
                stack.extend(roots)
        if frontier:
            self._invalidate_bulk(frontier)
        if found_fast == 0 and self.walks_active == 0:
            self.stats.bump("counter_bump_elided")
            return
        self.bump_counter()

    # -- wraparound ------------------------------------------------------------------

    def wraparound_flush(self) -> None:
        """Version wraparound: invalidate every active PCC and DLHT."""
        self.stats.bump("seq_wraparound_flush")
        for pcc in self.pccs:
            pcc.invalidate_all()
        for dlht in self.dlhts:
            dlht.flush()
        memo = self.memo
        if memo is not None:
            # A seq wrap breaks every memo entry's seqcount pins at once;
            # scoped kills cannot see it, so flush explicitly (even when
            # no PCC exists to do it as a side effect).
            memo.flush()
        if self.plans is not None:
            self.plans.bump_gen()


class LazySweeper:
    """Amortized reclamation of never-touched stale lazy entries.

    Touch-time revalidation only reaches entries that get probed again;
    an entry for a path nobody looks up anymore would sit in its DLHT
    (and its PCC) forever, which both leaks memory and makes
    ``sim/memory.py`` overstate live cache state.  The sweeper is polled
    from syscall entry (virtual time has no preemption) and, each time
    its :class:`~repro.sim.clock.Ticker` fires, examines one small batch
    of DLHT keys and PCC entries — discarding the stale, at a bounded
    per-syscall cost.
    """

    #: Virtual pause between sweep batches (1 ms of simulated time).
    INTERVAL_NS = 1_000_000.0
    #: Keys / entries examined per fire.
    BATCH = 64

    __slots__ = ("coherence", "fast", "ticker", "batch",
                 "_dlht_work", "_pcc_work", "pass_gen")

    def __init__(self, coherence: Coherence, fast, ticker,
                 batch: int = BATCH):
        self.coherence = coherence
        #: The kernel's FastLookup: owns the key-revalidation logic.
        self.fast = fast
        self.ticker = ticker
        self.batch = batch
        self._dlht_work: List = []  # (dlht_ref, [(key, dentry)...]) snapshots
        self._pcc_work: List = []   # (pcc_ref, [entry ids...]) snapshots
        #: Pass generation: bumped each time the DLHT worklist refills.
        #: A pass examines exactly the (key, dentry) entries that existed
        #: at refill time; a key reclaimed mid-pass by a shootdown and
        #: re-registered to a different dentry is *not* re-scanned (it
        #: was never part of this pass — see the identity guard below).
        self.pass_gen = 0

    def poll(self) -> None:
        if not self.ticker.due():
            return
        self.ticker.fire()
        self.sweep_once()

    def sweep_once(self) -> None:
        self._sweep_dlhts()
        self._sweep_pccs()

    def sweep_all(self) -> None:
        """Deterministic full sweep: drain fresh worklists to empty.

        The quantized mode (``DcacheConfig.lazy_sweep_quantize``) defers
        mid-pass sweeps to replay-pass boundaries and runs one complete
        catch-up sweep there.  Unlike :meth:`sweep_once`, the result is
        a pure function of current cache state — any half-consumed
        incremental worklist is discarded and rebuilt, and the budget is
        unbounded — which is what lets whole-pass charge plans treat the
        boundary sweep as part of the pass's reproducible charge stream.
        """
        self._dlht_work = []
        self._pcc_work = []
        saved = self.batch
        # Unbounded budget: one refill pass drains everything because
        # the worklists are complete snapshots taken just now.
        self.batch = 1 << 60
        try:
            self._sweep_dlhts()
            self._sweep_pccs()
        finally:
            self.batch = saved
            self._dlht_work = []
            self._pcc_work = []

    def _sweep_dlhts(self) -> None:
        if not self._dlht_work:
            self.pass_gen += 1
            self._dlht_work = [(weakref.ref(dlht), list(dlht.items()))
                               for dlht in self.coherence.dlhts]
            if not self._dlht_work:
                return
        budget = self.batch
        while budget > 0 and self._dlht_work:
            dlht_ref, entries = self._dlht_work[-1]
            dlht = dlht_ref()
            if dlht is None or not entries:
                self._dlht_work.pop()
                continue
            while entries and budget > 0:
                key, dentry = entries.pop()
                budget -= 1
                # Identity guard: a shootdown landing mid-pass reclaims
                # entries whose keys are still in this snapshot; if the
                # slot was re-registered to a different dentry since the
                # refill, the snapshotted entry is gone and the fresh one
                # belongs to the next pass — re-scanning it here would
                # double-charge its validation.
                if dlht.peek(key) is not dentry:
                    continue
                if self.fast.sweep_key(dlht, key):
                    self.coherence.stats.bump("sweep_discard")

    def _sweep_pccs(self) -> None:
        if not self._pcc_work:
            self._pcc_work = [(weakref.ref(pcc), list(pcc._entries.keys()))
                              for pcc in self.coherence.pccs]
            if not self._pcc_work:
                return
        costs = self.coherence.costs
        budget = self.batch
        while budget > 0 and self._pcc_work:
            pcc_ref, ids = self._pcc_work[-1]
            pcc = pcc_ref()
            if pcc is None or not ids:
                self._pcc_work.pop()
                continue
            while ids and budget > 0:
                entry_id = ids.pop()
                budget -= 1
                costs.charge("lazy_validate")
                entry = pcc._entries.get(entry_id)
                if entry is None:
                    continue
                dentry, seq, _epoch = entry
                h = dentry.h  # retired handle <=> dead dentry
                if h < 0 or dentry.arena.seq[h] != seq:
                    del pcc._entries[entry_id]
                    self.coherence.stats.bump("sweep_discard")


class FastDcacheHooks(DcacheHooks):
    """Keeps the fastpath structures coherent with dcache transitions.

    The kernel sets ``self.dcache`` right after constructing the dcache
    (the two reference each other).
    """

    __slots__ = ("coherence", "dcache")

    def __init__(self, coherence: Coherence):
        self.coherence = coherence
        self.dcache = None

    def _drop_children(self, dentry: Dentry) -> None:
        if self.dcache is None:
            return
        # d_drop detaches each child from ``dentry.children`` as it goes,
        # so popping until empty avoids copying the dict per level (the
        # recursive d_drop does its own traversal below each child).
        children = dentry.children
        d_drop = self.dcache.d_drop
        while children:
            _name, child = children.popitem()
            d_drop(child)

    def on_evict(self, dentry: Dentry) -> None:
        self._remove_fast(dentry)

    def on_unhash(self, dentry: Dentry) -> None:
        self._remove_fast(dentry)

    @staticmethod
    def _remove_fast(dentry: Dentry) -> None:
        fast = dentry.fast
        if fast is not None:
            fast.invalidate()
            if fast.dlht is not None:
                fast.dlht.remove(dentry)

    def on_make_negative(self, dentry: Dentry) -> None:
        # A positive dentry turning negative keeps its DLHT entry (the
        # path now resolves to cached nonexistence) but loses children:
        # any stale stubs, aliases, or ENOTDIR negatives below it
        # describe paths that no longer mean anything.
        self._drop_children(dentry)

    def on_make_positive(self, dentry: Dentry) -> None:
        # §5.2: creating a file over a negative dentry evicts any deep
        # negative children cached below it.
        self._drop_children(dentry)
        # The negative dentry may have been a symlink before (unlink
        # keeps it registered for fast ENOENT); the stored target
        # signature described the *old* inode's target and must not
        # survive re-instantiation.
        if dentry.fast is not None:
            dentry.fast.link_target_state = None
