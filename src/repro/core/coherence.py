"""Coherence with permission and path changes (§3.2).

The optimized kernel trades slower mutations for faster lookups: before a
directory's permissions or position change, every cached descendant gets
its sequence counter bumped (invalidating all PCC entries that reference
it, without touching any PCC directly) and is evicted from its direct
lookup hash table.  A global *invalidation counter* is read before a
slowpath walk and checked before its results repopulate the caches, so a
walk that raced a mutation can never re-cache stale state.

Mutation cost therefore becomes linear in the cached subtree size — the
Figure 7 trade-off — charged here as ``inval_per_dentry``.
"""

from __future__ import annotations

from typing import List

from repro.core.dlht import DirectLookupHashTable
from repro.sim.costs import CostModel
from repro.sim.stats import Stats
from repro.vfs.dcache import DcacheHooks
from repro.vfs.dentry import Dentry

#: Sequence counters are 32-bit in the paper's prototype; wraparound
#: flushes every PCC and DLHT (§3.1).  Kept small enough to test.
SEQ_WRAP = 1 << 32


class Coherence:
    """Invalidation engine shared by all optimized-kernel components."""

    def __init__(self, costs: CostModel, stats: Stats):
        self.costs = costs
        self.stats = stats
        #: Global invalidation counter guarding slowpath repopulation.
        self.counter = 0
        #: Monotonic dentry version source (reallocation staleness, §3.1).
        self._version_source = 0
        #: Every PCC ever created (for wraparound flush).
        self.pccs: List = []
        #: Every DLHT ever created (for wraparound flush).
        self.dlhts: List[DirectLookupHashTable] = []
        #: id(mountpoint dentry) -> mounted root dentries (a multiset:
        #: cloned namespaces register the same pair again).  Shootdowns
        #: descend through mountpoints so a permission change above a
        #: mount invalidates the memoized prefix checks inside it.
        self._mounts_on: dict = {}

    # -- mount registry ---------------------------------------------------------

    def register_mount(self, mountpoint: Dentry, root: Dentry) -> None:
        self._mounts_on.setdefault(id(mountpoint), []).append(root)

    def unregister_mount(self, mountpoint: Dentry, root: Dentry) -> None:
        roots = self._mounts_on.get(id(mountpoint))
        if roots and root in roots:
            roots.remove(root)
            if not roots:
                del self._mounts_on[id(mountpoint)]

    # -- counter ---------------------------------------------------------------

    def read_counter(self) -> int:
        return self.counter

    def bump_counter(self) -> None:
        self.costs.charge("inval_counter_bump")
        self.counter += 1

    # -- shootdowns ----------------------------------------------------------------

    def _invalidate_one(self, dentry: Dentry) -> None:
        self.costs.charge("inval_per_dentry")
        self.stats.bump("inval_dentry")
        dentry.seq += 1
        if dentry.seq >= SEQ_WRAP:
            self.wraparound_flush()
        fast = dentry.fast
        if fast is not None:
            fast.invalidate()
            if fast.dlht is not None:
                fast.dlht.remove(dentry)

    def shootdown_single(self, dentry: Dentry) -> None:
        """Invalidate one dentry (file chmod/chown, unlink, ...)."""
        self._invalidate_one(dentry)
        self.bump_counter()

    def shootdown_subtree(self, dentry: Dentry,
                          include_self: bool = True) -> None:
        """Recursively invalidate a dentry and all cached descendants.

        Used before rename/chmod/chown of a directory, mount changes, and
        symlink retargeting; cost is linear in the *cached* subtree.  The
        walk descends through mountpoints into the mounted trees — a
        prefix check memoized for a path that crosses a mount below the
        changed directory must die too.
        """
        visited = set()
        stack = [dentry] if include_self else \
            list(dentry.children.values()) + \
            list(self._mounts_on.get(id(dentry), ()))
        while stack:
            current = stack.pop()
            if id(current) in visited:
                continue
            visited.add(id(current))
            self._invalidate_one(current)
            stack.extend(current.children.values())
            stack.extend(self._mounts_on.get(id(current), ()))
        self.bump_counter()

    # -- wraparound ------------------------------------------------------------------

    def wraparound_flush(self) -> None:
        """Version wraparound: invalidate every active PCC and DLHT."""
        self.stats.bump("seq_wraparound_flush")
        for pcc in self.pccs:
            pcc.invalidate_all()
        for dlht in self.dlhts:
            dlht.flush()


class FastDcacheHooks(DcacheHooks):
    """Keeps the fastpath structures coherent with dcache transitions.

    The kernel sets ``self.dcache`` right after constructing the dcache
    (the two reference each other).
    """

    __slots__ = ("coherence", "dcache")

    def __init__(self, coherence: Coherence):
        self.coherence = coherence
        self.dcache = None

    def _drop_children(self, dentry: Dentry) -> None:
        if self.dcache is None:
            return
        for child in list(dentry.children.values()):
            self.dcache.d_drop(child)

    def on_evict(self, dentry: Dentry) -> None:
        self._remove_fast(dentry)

    def on_unhash(self, dentry: Dentry) -> None:
        self._remove_fast(dentry)

    @staticmethod
    def _remove_fast(dentry: Dentry) -> None:
        fast = dentry.fast
        if fast is not None:
            fast.invalidate()
            if fast.dlht is not None:
                fast.dlht.remove(dentry)

    def on_make_negative(self, dentry: Dentry) -> None:
        # A positive dentry turning negative keeps its DLHT entry (the
        # path now resolves to cached nonexistence) but loses children:
        # any stale stubs, aliases, or ENOTDIR negatives below it
        # describe paths that no longer mean anything.
        self._drop_children(dentry)

    def on_make_positive(self, dentry: Dentry) -> None:
        # §5.2: creating a file over a negative dentry evicts any deep
        # negative children cached below it.
        self._drop_children(dentry)
