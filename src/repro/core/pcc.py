"""The Prefix Check Cache (§3.1, §4.1).

Each committed credential owns a PCC: a bounded LRU memo of dentries whose
prefix check (search permission from the task's root to the dentry,
including any LSM decision) this credential has recently passed.  Entries
record the dentry's sequence number at check time; any permission or
topology change along the path bumps the sequence (see
:mod:`repro.core.coherence`), so stale entries fail validation and the
lookup falls back to the slowpath.

The paper sizes the PCC at 64 KB with 16-byte entries; the default
capacity of 4096 entries matches that, and the benchmark for PCC
working-set sensitivity (§6.1: updatedb's gain drops from 29% to 16.5%
when the tree outgrows the PCC) sweeps this knob.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.sim.costs import CostModel
from repro.sim.stats import Stats
from repro.vfs.cred import Cred
from repro.vfs.dentry import Dentry

#: Paper's configuration: 64 KB of 16-byte entries.
DEFAULT_CAPACITY = 64 * 1024 // 16


class PrefixCheckCache:
    """One credential's memoized prefix checks."""

    __slots__ = ("costs", "stats", "capacity", "_entries", "memo",
                 "__weakref__")

    def __init__(self, costs: CostModel, stats: Stats,
                 capacity: int = DEFAULT_CAPACITY):
        self.costs = costs
        self.stats = stats
        self.capacity = capacity
        self._entries: "OrderedDict[int, tuple]" = OrderedDict()
        #: Resolution memo to flush when this PCC sheds entries a
        #: confirmed recording may expect to re-touch (set by
        #: ``Coherence.track_pcc``; see :mod:`repro.core.resmemo`).
        self.memo = None

    def probe(self, dentry: Dentry, min_epoch: int = 0) -> bool:
        """True when a valid (seq-current) prefix check is cached.

        ``min_epoch`` is the lazy kernel's validity floor: the entry must
        have been inserted at or after the highest epoch stamp on the
        dentry's ancestor chain.  An epoch-stale entry is *kept* — the
        caller may pass a conservative floor, and a later revalidation
        with real permission checks will overwrite it (eager mode always
        passes 0, so epoch never disqualifies there).
        """
        self.costs.charge("pcc_probe")
        entry = self._entries.get(id(dentry))
        if entry is None:
            self.stats.bump("pcc_miss")
            return False
        cached_dentry, cached_seq, cached_epoch = entry
        # A retired handle (h < 0) <=> a dead dentry; a live dentry's seq
        # is read straight off its arena column (no property dispatch on
        # this, the hottest validation in the simulator).
        h = dentry.h
        if (cached_dentry is not dentry or h < 0
                or cached_seq != dentry.arena.seq[h]):
            self.stats.bump("pcc_stale")
            del self._entries[id(dentry)]
            return False
        if cached_epoch < min_epoch:
            self.stats.bump("pcc_epoch_stale")
            return False
        self._entries.move_to_end(id(dentry))
        self.stats.bump("pcc_hit")
        rec = self.costs.recorder
        if rec is not None:
            rec.pcc.append((self, dentry))
        return True

    def insert(self, dentry: Dentry, epoch: int = 0) -> None:
        """Memoize that this cred passed the prefix check to ``dentry``."""
        self.costs.charge("pcc_insert")
        self._entries[id(dentry)] = (dentry, dentry.seq, epoch)
        self._entries.move_to_end(id(dentry))
        if len(self._entries) > self.capacity:
            memo = self.memo
            if memo is not None:
                memo.flush()
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate_all(self) -> None:
        """Flush (sequence-counter wraparound handling, §3.1)."""
        self._entries.clear()
        memo = self.memo
        if memo is not None:
            memo.flush()

    def __len__(self) -> int:
        return len(self._entries)


class AdaptivePrefixCheckCache(PrefixCheckCache):
    """A PCC that grows with its working set (the paper's future work).

    §6.1: "We expect that a production system would dynamically resize
    the PCC up to a maximum working set; we leave investigating an
    appropriate policy ... for future work."  The policy here is simple
    and conservative: when the cache is full and has missed more than
    half its capacity since the last resize — the signature of a working
    set larger than the cache — double the capacity, up to a hard cap.
    """

    __slots__ = ("max_capacity", "_misses_since_resize")

    def __init__(self, costs: CostModel, stats: Stats,
                 capacity: int = DEFAULT_CAPACITY,
                 max_capacity: int = 16 * DEFAULT_CAPACITY):
        super().__init__(costs, stats, capacity)
        self.max_capacity = max_capacity
        self._misses_since_resize = 0

    def probe(self, dentry: Dentry, min_epoch: int = 0) -> bool:
        hit = super().probe(dentry, min_epoch)
        if not hit:
            self._misses_since_resize += 1
            self._maybe_grow()
        return hit

    def _maybe_grow(self) -> None:
        if (len(self._entries) >= self.capacity
                and self._misses_since_resize > self.capacity // 2
                and self.capacity < self.max_capacity):
            self.capacity = min(self.capacity * 2, self.max_capacity)
            self._misses_since_resize = 0
            self.stats.bump("pcc_grow")


def pcc_of(cred: Cred, costs: CostModel, stats: Stats,
           capacity: int = DEFAULT_CAPACITY) -> PrefixCheckCache:
    """Get (allocating on first use) the PCC attached to a credential."""
    if cred.pcc is None:
        cred.pcc = PrefixCheckCache(costs, stats, capacity)
    return cred.pcc


def peek_pcc(cred: Cred) -> Optional[PrefixCheckCache]:
    """The cred's PCC if one has been allocated (no allocation)."""
    return cred.pcc
