"""Kernel builder: wire the VFS, a dcache configuration, and a root FS.

:func:`make_kernel` produces a :class:`Kernel` in one of two canonical
profiles —

* ``baseline``: the unmodified-Linux-style dcache (component-at-a-time
  walk, primary hash table, plain negative dentries);
* ``optimized``: the paper's full design (fastpath DLHT + PCC +
  signatures, directory completeness, aggressive/deep negatives);
* ``optimized-lazy``: the full design with epoch-based lazy
  invalidation instead of eager recursive shootdowns (O(1) mutations,
  touch-time revalidation — see docs/coherence.md);

— or any à-la-carte combination via :class:`DcacheConfig`, which is how
the ablation benchmarks isolate each mechanism's contribution.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, replace
from typing import Optional

from repro.core.coherence import Coherence, FastDcacheHooks
from repro.core.completeness import ReaddirEngine
from repro.core.dlht import DirectLookupHashTable
from repro.core.fastpath import FastLookup
from repro.core.pcc import DEFAULT_CAPACITY
from repro.core.signatures import PathHasher, make_hasher
from repro.fs.base import FileSystem
from repro.fs.simext import SimExtFs
from repro.sim.costs import CALIBRATED, CostModel
from repro.sim.stats import Stats
from repro.vfs.cred import Cred, commit_creds, prepare_creds
from repro.vfs.dcache import Dcache
from repro.vfs.lsm import Lsm, NullLsm
from repro.vfs.mount import Mount, PathPos
from repro.vfs.namespace import MountNamespace
from repro.vfs.task import Task
from repro.vfs.walk import SlowWalk


@dataclass(frozen=True)
class DcacheConfig:
    """Feature knobs of the directory cache design.

    Attributes:
        fastpath: DLHT + PCC + signatures direct lookup (§3).
        dir_complete: directory completeness caching (§5.1).
        aggressive_negative: negatives on unlink/rename and pseudo file
            systems (§5.2).
        deep_negative: deep negative / ENOTDIR dentries (§5.2).
        lexical_dotdot: Plan 9 lexical ``..`` semantics (§4.2); default
            is Linux semantics (extra fastpath lookup per dot-dot).
        lazy_invalidation: epoch-based lazy coherence: mutations stamp
            the mutated dentry in O(1) and fastpath hits revalidate
            against the ancestor-epoch summary on touch, instead of the
            eager recursive shootdown (see docs/coherence.md).
        force_fastpath_miss: always fall from fastpath to slowpath after
            doing the fastpath work (Figure 6's worst case).
        pcc_capacity: PCC entries per credential (paper: 64 KB / 16 B).
        signature_bits: stored signature width (paper: 240).
        dcache_capacity: dentry count before LRU shrink.
        boot_seed: signature hash key seed ("random key at boot").
        resolution_memo: host-side memoization of whole path
            resolutions with replayed virtual charges — a pure
            wall-clock optimization of the simulator itself; virtual
            costs and stats are bit-identical either way (see
            :mod:`repro.core.resmemo`).
        resolution_memo_capacity: memo entries before LRU eviction.
        lazy_sweep_quantize: quantize the :class:`LazySweeper`'s virtual
            deadlines to replay-pass boundaries.  During a compiled
            replay pass the sweeper's ticker is suspended (per-syscall
            polls see no deadline) and one *full* catch-up sweep runs at
            every pass boundary, unconditionally — a deadline-gated
            boundary fire would alternate between fired and unfired
            passes as the deadline drifts mod pass length, and no
            charge plan could confirm against that.  This
            is a deliberate semantic tradeoff, not a free optimization:
            the lazy profile's virtual numbers change (sweep work moves
            from mid-pass batches to boundary full drains), so lazy
            results with quantization on are **not** comparable to lazy
            results with it off.  What it buys: the per-pass charge
            stream becomes a pure function of the pass-entry state, so
            whole-pass and whole-drain charge plans can arm under the
            lazy profile (the trace_replay[optimized-lazy] outlier —
            ~5.9x slower than optimized — comes precisely from fixed
            1 ms virtual deadlines drifting mod pass length).  Plans-on
            vs plans-off output remains bit-identical *within* the mode,
            which the differential tests assert.  Default off; see
            docs/coherence.md.
    """

    name: str = "custom"
    fastpath: bool = False
    dir_complete: bool = False
    aggressive_negative: bool = False
    deep_negative: bool = False
    lexical_dotdot: bool = False
    lazy_invalidation: bool = False
    force_fastpath_miss: bool = False
    pcc_capacity: int = DEFAULT_CAPACITY
    pcc_adaptive: bool = False
    pcc_max_capacity: int = 16 * DEFAULT_CAPACITY
    signature_scheme: str = "universal"
    signature_bits: int = 240
    index_bits: int = 16
    dcache_capacity: int = 1_000_000
    boot_seed: int = 0x5EED
    resolution_memo: bool = True
    resolution_memo_capacity: int = 4096
    lazy_sweep_quantize: bool = False

    def variant(self, **changes) -> "DcacheConfig":
        return replace(self, **changes)


#: The unmodified-Linux baseline of the paper's evaluation.
BASELINE = DcacheConfig(name="baseline")

#: The paper's full optimized design.
OPTIMIZED = DcacheConfig(name="optimized", fastpath=True, dir_complete=True,
                         aggressive_negative=True, deep_negative=True)

#: The optimized design with epoch-based lazy invalidation: O(1)
#: mutations, touch-time revalidation of fastpath hits.
OPTIMIZED_LAZY = OPTIMIZED.variant(name="optimized-lazy",
                                   lazy_invalidation=True)


class Kernel:
    """One simulated kernel instance: caches, resolver, syscalls, time."""

    def __init__(self, config: DcacheConfig,
                 root_fs: Optional[FileSystem] = None,
                 costs: Optional[CostModel] = None,
                 lsm: Optional[Lsm] = None):
        self.config = config
        self.costs = costs or CostModel(dict(CALIBRATED))
        self.stats = Stats()
        self.lsm = lsm or NullLsm()
        self.root_fs = root_fs or SimExtFs(self.costs)
        self.coherence = Coherence(
            self.costs, self.stats,
            lazy=config.fastpath and config.lazy_invalidation)
        # Epoch wraparound renumbers the world; captured charge plans
        # (like the resolution memo) cannot outlive it.
        self.coherence.plans = self.costs.plans
        hooks = FastDcacheHooks(self.coherence) if config.fastpath else None
        self.dcache = Dcache(self.costs, self.stats,
                             capacity=config.dcache_capacity, hooks=hooks)
        if hooks is not None:
            hooks.dcache = self.dcache
        root_dentry = self.dcache.root_dentry(self.root_fs)
        self.root_mount = Mount(self.root_fs, root_dentry)
        self.root_ns = MountNamespace(self.root_mount)
        self.slow_walk = SlowWalk(self.costs, self.stats, self.dcache,
                                  config, lsm=self.lsm)
        self.hasher: Optional[PathHasher] = None
        self.fast: Optional[FastLookup] = None
        if config.fastpath:
            self.hasher = make_hasher(config.signature_scheme,
                                      config.boot_seed,
                                      config.signature_bits,
                                      config.index_bits)
            self.fast = FastLookup(self.costs, self.stats, config,
                                   self.dcache, self.hasher,
                                   self.coherence, self.slow_walk)
            self._install_dlht(self.root_ns)
            self._boot_fast_root()
        self.resolver = self.fast if self.fast is not None else self.slow_walk
        self.memo = None
        if config.resolution_memo:
            from repro.core.resmemo import ResolutionMemo
            self.memo = ResolutionMemo(
                self.costs, self.stats, self.coherence, self.dcache,
                self.resolver, capacity=config.resolution_memo_capacity)
            # Flush hooks: structural dcache mutations and invalidation
            # counter bumps bulk-invalidate the memo.
            self.dcache.memo = self.memo
            self.coherence.memo = self.memo
        self.sweeper = None
        if config.fastpath and config.lazy_invalidation:
            from repro.core.coherence import LazySweeper
            from repro.sim.clock import Ticker
            self.sweeper = LazySweeper(
                self.coherence, self.fast,
                Ticker(self.costs.clock, LazySweeper.INTERVAL_NS))
        self.readdir_engine = ReaddirEngine(self.costs, self.stats,
                                            self.dcache, config)
        # The syscall facade (late import avoids a module cycle).
        from repro.vfs.syscalls import Syscalls
        self.sys = Syscalls(self)

    # -- namespace / fast bootstrap ------------------------------------------

    def _install_dlht(self, ns: MountNamespace) -> None:
        ns.dlht = DirectLookupHashTable(
            self.costs, self.stats,
            multi_key=self.config.lazy_invalidation)
        ns.dlht.owner_ns = weakref.ref(ns)
        self.coherence.track_dlht(ns.dlht)

    def _boot_fast_root(self) -> None:
        from repro.core.fastdentry import fast_of
        fast = fast_of(self.root_mount.root_dentry)
        fast.hash_state = self.hasher.EMPTY
        fast.mount = self.root_mount

    def new_namespace_for(self, task: Task) -> MountNamespace:
        """Clone the task's namespace (unshare), with its own DLHT."""
        ns = task.ns.clone()
        for mount in ns.mounts:
            if mount.mountpoint is not None:
                self.coherence.register_mount(mount.mountpoint,
                                              mount.root_dentry)
        if self.config.fastpath:
            self._install_dlht(ns)
            from repro.core.fastdentry import fast_of
            # The cloned root mount reuses the same root dentry; its hash
            # state (the empty path) is valid in the new namespace too.
            fast = fast_of(ns.root_mount.root_dentry)
            if fast.hash_state is None:
                fast.hash_state = self.hasher.EMPTY
            fast.mount = ns.root_mount
        return ns

    # -- task management ----------------------------------------------------------

    def spawn_task(self, uid: int = 0, gid: int = 0, groups=(),
                   security: Optional[str] = None,
                   ns: Optional[MountNamespace] = None) -> Task:
        """Create a process with fresh credentials at the root."""
        cred = Cred(uid, gid, frozenset(groups), security)
        namespace = ns or self.root_ns
        root = PathPos(namespace.root_mount, namespace.root_mount.root_dentry)
        return Task(cred, root, None, namespace)

    def change_identity(self, task: Task, uid: Optional[int] = None,
                        gid: Optional[int] = None,
                        security: Optional[str] = None) -> None:
        """setuid/setgid/domain transition through the COW cred path."""
        new = prepare_creds(task.cred)
        if uid is not None:
            new.uid = uid
        if gid is not None:
            new.gid = gid
        if security is not None:
            new.security = security
        task.set_cred(commit_creds(task.cred, new))

    # -- snapshots -----------------------------------------------------------

    def snapshot(self, *extras):
        """Capture this kernel (and ``extras``, e.g. warm tasks) for reuse.

        Returns a :class:`~repro.sim.snapshot.KernelSnapshot` whose
        ``restore()`` yields independent ``(kernel, *extras)`` copies
        with bit-identical virtual-cost behaviour — the benchmark
        engine's warm-start primitive (see docs/benchmarking.md).
        """
        from repro.sim.snapshot import KernelSnapshot
        return KernelSnapshot(self, *extras)

    def clone(self, *extras):
        """One-shot deep copy: ``snapshot(*extras).restore()`` without
        keeping the intermediate frozen image."""
        from repro.sim.snapshot import clone_kernel
        return clone_kernel(self, *extras)

    # -- time/statistics convenience -------------------------------------------------

    @property
    def now_ns(self) -> int:
        return self.costs.now_ns

    def elapsed_ns(self, thunk) -> float:
        """Run ``thunk`` and return the virtual nanoseconds it took."""
        start = self.costs.now_ns
        thunk()
        return self.costs.now_ns - start

    def drop_caches(self, dentries: bool = True) -> None:
        """Cold-cache helper: drop buffer caches and (optionally) dentries.

        Mirrors ``echo 3 > /proc/sys/vm/drop_caches`` — the Table 2
        cold-cache methodology.
        """
        for mount in self.root_ns.mounts:
            mount.fs.drop_caches()
        if dentries:
            self.dcache.drop_all()
        if self.memo is not None:
            # Buffer-cache state changed; recorded fs-level charges (if
            # any slipped through) and future cold costs would diverge.
            self.memo.flush()
        # Same reasoning for captured charge plans: drop them all.
        self.costs.plans.bump_gen()


def make_kernel(profile: str = "optimized",
                root_fs: Optional[FileSystem] = None,
                costs: Optional[CostModel] = None,
                lsm: Optional[Lsm] = None,
                config: Optional[DcacheConfig] = None,
                **overrides) -> Kernel:
    """Build a kernel.

    Args:
        profile: ``"baseline"`` or ``"optimized"`` (ignored when an
            explicit ``config`` is given).
        root_fs: root file system; a fresh :class:`SimExtFs` by default.
        costs: cost model (a fresh calibrated one by default).
        lsm: optional Linux-security-module analog.
        config: full configuration, overriding the profile.
        **overrides: field overrides applied to the selected config.
    """
    if config is None:
        if profile == "baseline":
            config = BASELINE
        elif profile == "optimized":
            config = OPTIMIZED
        elif profile == "optimized-lazy":
            config = OPTIMIZED_LAZY
        else:
            raise ValueError(f"unknown profile {profile!r}")
    if overrides:
        config = config.variant(**overrides)
    return Kernel(config, root_fs=root_fs, costs=costs, lsm=lsm)
