"""Aggressive negative caching helpers (§5.2).

Three policies from the paper live here and in the call sites that use
them:

1. *Renaming and deletion*: ``unlink``/``rename`` leave a negative dentry
   at the old path even when the file is still in use (the VFS syscall
   layer calls :func:`negative_after_removal`).
2. *Pseudo file systems*: with ``aggressive_negative`` the slow walk
   caches negatives on pseudo file systems too (gated in
   :meth:`repro.vfs.walk.SlowWalk._miss`).
3. *Deep negative dentries*: when a walk fails mid-path, the remaining
   components are cached as a chain of negative children — including
   ENOTDIR children under regular files — so the full-path fastpath can
   answer repeated failing lookups (:func:`extend_negative_chain`).
"""

from __future__ import annotations

from typing import List

from repro.vfs.dcache import Dcache
from repro.vfs.dentry import NEG_ENOENT, NEG_ENOTDIR, Dentry


def extend_negative_chain(dcache: Dcache, anchor: Dentry,
                          remaining: List[str], kind: str) -> List[Dentry]:
    """Create deep negative children below ``anchor`` for ``remaining``.

    ``anchor`` is either a negative dentry (ENOENT chains) or a positive
    non-directory dentry (ENOTDIR chains).  Existing children are reused.
    Returns the chain of dentries (excluding the anchor), deepest last.
    """
    chain_kind = NEG_ENOTDIR if kind == NEG_ENOTDIR else NEG_ENOENT
    chain: List[Dentry] = []
    cur = anchor
    for name in remaining:
        child = cur.children.get(name)
        if child is None:
            child = dcache.d_alloc(cur, name, None)
        child.neg_kind = chain_kind
        chain.append(child)
        cur = child
    return chain


def negative_after_removal(dcache: Dcache, parent: Dentry,
                           name: str) -> Dentry:
    """Ensure a negative dentry caches the removal of ``parent/name``.

    Used by rename (old path) and by unlink of in-use files, where the
    original dentry object must stay with its open handles and a fresh
    negative takes over the path.
    """
    existing = parent.children.get(name)
    if existing is not None:
        dcache.make_negative(existing)
        return existing
    return dcache.d_alloc(parent, name, None)
