"""Resumable path signatures (§3.3).

The optimized kernel identifies a canonical path by a fixed-width
signature so that key comparison in the direct lookup hash table is a
constant-size compare instead of a PATH_MAX string compare.

The paper uses a keyed 2-universal multilinear hash; we use the closely
related keyed *polynomial* hash over two independent Mersenne-prime
fields, which is ε-almost-universal with ε ≈ len/p per field and — like
the paper's choice — resumable from any prefix: a dentry stores the hash
state of its canonical path, and a relative lookup under it only hashes
the relative suffix (§3.1, "we store the intermediate state of the hash
function in each dentry so that hashing can resume from any prefix").

The two 127-bit field elements give 254 output bits: the low 16 bits index
the hash table and the next ``signature_bits`` (default 240) are the
stored signature, mirroring the paper's 16-bit index + 240-bit signature
split.  The key is drawn from a per-kernel boot seed, so the same path
hashes differently across "boots" — the paper's defence against offline
collision search.
"""

from __future__ import annotations

import random
from typing import Dict, NamedTuple, Tuple

#: Two Mersenne primes; hashing is polynomial evaluation over each field.
_P1 = (1 << 127) - 1
_P2 = (1 << 89) - 1

#: Bits taken from the combined output for the DLHT bucket index.
INDEX_BITS = 16

#: Precomputed r^k tables cover components up to NAME_MAX bytes plus a
#: separator; longer inputs (legal when calling the hasher directly) fall
#: back to pow(r, k, p).
_POW_TABLE_SIZE = 258

#: Per-hasher component-contribution cache bound.  Path components repeat
#: heavily (a file tree has far fewer distinct names than lookups), so a
#: flat clear on overflow keeps memory bounded without LRU bookkeeping on
#: the hit path.
_COMPONENT_CACHE_CAP = 1 << 16

#: Shared component -> UTF-8 bytes memo (bounded like the above).  Both
#: hasher classes consult it so a hot component is encoded once per
#: process, not once per lookup.
_ENCODE_CACHE: Dict[str, bytes] = {}


def encode_component(component: str) -> bytes:
    """UTF-8 (surrogateescape) encoding of one component, memoized."""
    cached = _ENCODE_CACHE.get(component)
    if cached is None:
        if len(_ENCODE_CACHE) >= _COMPONENT_CACHE_CAP:
            _ENCODE_CACHE.clear()
        cached = component.encode("utf-8", "surrogateescape")
        _ENCODE_CACHE[component] = cached
    return cached


class SigState(NamedTuple):
    """Resumable hash state for one canonical-path prefix.

    ``h1``/``h2`` are the running polynomial evaluations, ``length`` the
    number of bytes consumed (used to know whether a separating '/' is
    needed when resuming).
    """

    h1: int
    h2: int
    length: int


class Signature(NamedTuple):
    """A finished signature: DLHT bucket index + stored signature bits."""

    index: int
    bits: int


class PathHasher:
    """Keyed, resumable polynomial hasher for canonical paths.

    Args:
        boot_seed: kernel boot entropy; determines the hash key.
        signature_bits: stored signature width (the paper evaluates 240;
            tests shrink this to force collisions).
        index_bits: hash-table index width (16 in the paper; tests shrink
            it together with signature_bits to force bucket collisions).
    """

    cost_primitive = "sig_hash"

    def __init__(self, boot_seed: int, signature_bits: int = 240,
                 index_bits: int = INDEX_BITS):
        rng = random.Random(boot_seed)
        self.r1 = rng.randrange(256, _P1 - 1)
        self.r2 = rng.randrange(256, _P2 - 1)
        self.signature_bits = signature_bits
        self.index_bits = index_bits
        self._sig_mask = (1 << signature_bits) - 1
        # r^k mod p tables so absorbing an m-byte component is one
        # multiply per field instead of m Horner steps.
        pow1 = [1] * _POW_TABLE_SIZE
        pow2 = [1] * _POW_TABLE_SIZE
        for k in range(1, _POW_TABLE_SIZE):
            pow1[k] = (pow1[k - 1] * self.r1) % _P1
            pow2[k] = (pow2[k - 1] * self.r2) % _P2
        self._pow1 = pow1
        self._pow2 = pow2
        # component -> (c1, c2, s1, s2, nbytes, nchars): the component's
        # polynomial contribution per field, the same with a leading '/'
        # folded in, its encoded byte length, and its character length
        # (SigState.length counts characters, matching the original
        # per-byte loop's ``len(text)`` bookkeeping).
        self._contrib: Dict[str, Tuple[int, int, int, int, int, int]] = {}
        # (state, component) -> state: transition memo.  Path walks
        # repeat the same prefix transitions constantly (every lookup
        # under a hot directory resumes the same state with the same
        # names), and each uncached transition costs two ~128-bit
        # modular multiplies.  The function is pure over exact integers,
        # so caching cannot change any produced value.  Bounded with the
        # same flat-clear policy as ``_contrib``.
        self._ext_cache: Dict[Tuple[SigState, str], SigState] = {}
        # state -> finished signature (same rationale: ``finish`` splits
        # a 216-bit combined value with shifts/masks on every DLHT probe
        # and insert; hot states repeat).
        self._fin_cache: Dict[SigState, Signature] = {}

    #: The state of the empty path (the namespace root).
    EMPTY = SigState(0, 0, 0)

    def _pow(self, table, r: int, p: int, k: int) -> int:
        if k < _POW_TABLE_SIZE:
            return table[k]
        return pow(r, k, p)

    def _contribution(self, component: str):
        """Intern one component's per-field hash contribution.

        For bytes ``b_0 .. b_{m-1}`` with values ``v_i = b_i + 1`` the
        Horner loop computes ``h * r^m + sum(v_i * r^(m-1-i))``; the sum
        is independent of ``h``, so it is computed once per distinct
        component and replayed with one multiply and one add per field.
        """
        entry = self._contrib.get(component)
        if entry is not None:
            return entry
        encoded = encode_component(component)
        m = len(encoded)
        c1 = c2 = 0
        r1, r2 = self.r1, self.r2
        for byte in encoded:
            value = byte + 1
            c1 = (c1 * r1 + value) % _P1
            c2 = (c2 * r2 + value) % _P2
        # With a leading separator the text is "/" + component: the
        # slash's value (ord('/') + 1 = 48) is scaled past the component.
        s1 = (48 * self._pow(self._pow1, r1, _P1, m) + c1) % _P1
        s2 = (48 * self._pow(self._pow2, r2, _P2, m) + c2) % _P2
        entry = (c1, c2, s1, s2, m, len(component))
        if len(self._contrib) >= _COMPONENT_CACHE_CAP:
            self._contrib.clear()
        self._contrib[component] = entry
        return entry

    def extend(self, state: SigState, component: str) -> SigState:
        """Resume ``state`` with one more path component."""
        cache = self._ext_cache
        key = (state, component)
        cached = cache.get(key)
        if cached is not None:
            return cached
        result = self._extend_uncached(state, component)
        if len(cache) >= _COMPONENT_CACHE_CAP:
            cache.clear()
        cache[key] = result
        return result

    def _extend_uncached(self, state: SigState, component: str) -> SigState:
        entry = self._contrib.get(component)
        if entry is None:
            entry = self._contribution(component)
        c1, c2, s1, s2, m, nchars = entry
        h1, h2, length = state
        if length == 0:
            if m < _POW_TABLE_SIZE:
                h1 = (h1 * self._pow1[m] + c1) % _P1
                h2 = (h2 * self._pow2[m] + c2) % _P2
            else:
                h1 = (h1 * pow(self.r1, m, _P1) + c1) % _P1
                h2 = (h2 * pow(self.r2, m, _P2) + c2) % _P2
            return SigState(h1, h2, nchars)
        k = m + 1
        if k < _POW_TABLE_SIZE:
            h1 = (h1 * self._pow1[k] + s1) % _P1
            h2 = (h2 * self._pow2[k] + s2) % _P2
        else:
            h1 = (h1 * pow(self.r1, k, _P1) + s1) % _P1
            h2 = (h2 * pow(self.r2, k, _P2) + s2) % _P2
        return SigState(h1, h2, length + nchars + 1)

    def extend_components(self, state: SigState, components) -> SigState:
        """Resume ``state`` over many components in O(components) time."""
        contrib = self._contrib
        contribution = self._contribution
        pow1, pow2 = self._pow1, self._pow2
        h1, h2, length = state
        for component in components:
            entry = contrib.get(component)
            if entry is None:
                entry = contribution(component)
            c1, c2, s1, s2, m, nchars = entry
            if length == 0:
                k, a1, a2 = m, c1, c2
                length = nchars
            else:
                k, a1, a2 = m + 1, s1, s2
                length += nchars + 1
            if k < _POW_TABLE_SIZE:
                h1 = (h1 * pow1[k] + a1) % _P1
                h2 = (h2 * pow2[k] + a2) % _P2
            else:
                h1 = (h1 * pow(self.r1, k, _P1) + a1) % _P1
                h2 = (h2 * pow(self.r2, k, _P2) + a2) % _P2
        return SigState(h1, h2, length)

    def finish(self, state: SigState) -> Signature:
        """Produce the (index, signature) pair for a finished path."""
        cache = self._fin_cache
        cached = cache.get(state)
        if cached is not None:
            return cached
        combined = (state.h1 << 89) | state.h2
        index = combined & ((1 << self.index_bits) - 1)
        bits = (combined >> self.index_bits) & self._sig_mask
        result = Signature(index, bits)
        if len(cache) >= _COMPONENT_CACHE_CAP:
            cache.clear()
        cache[state] = result
        return result

    def sign_components(self, components) -> Signature:
        """Convenience: hash a whole component list from the root."""
        return self.finish(self.extend_components(self.EMPTY, components))


class PrfSigState(NamedTuple):
    """Resumable state for the PRF hasher: a copyable keyed digest."""

    digest: object  # an updating hashlib.blake2b instance
    length: int

    @property
    def h1(self) -> int:  # interface parity with SigState (debug only)
        return int.from_bytes(self.digest.copy().digest()[:8], "big")


class PrfPathHasher:
    """Keyed-PRF path hasher (§3.3's "more cautious implementation").

    The paper discusses replacing the 2-universal hash with a
    pseudorandom function so that no side channel can leak the key, at
    the cost of slower hashing ("we could not find a function that was
    fast enough to improve over baseline Linux" below four components).
    We use keyed BLAKE2b — resumable via digest-state copies, 256-bit
    output split into the same index+signature layout — and charge it
    under the separate ``sig_hash_prf`` cost primitive so the latency
    trade is measurable.
    """

    cost_primitive = "sig_hash_prf"

    def __init__(self, boot_seed: int, signature_bits: int = 240,
                 index_bits: int = INDEX_BITS):
        import hashlib

        self._hashlib = hashlib
        self.key = random.Random(boot_seed).getrandbits(256) \
            .to_bytes(32, "big")
        self.signature_bits = signature_bits
        self.index_bits = index_bits
        self._sig_mask = (1 << signature_bits) - 1

    @property
    def EMPTY(self) -> PrfSigState:  # noqa: N802 - interface parity
        digest = self._hashlib.blake2b(key=self.key, digest_size=32)
        return PrfSigState(digest, 0)

    def extend(self, state: PrfSigState, component: str) -> PrfSigState:
        encoded = encode_component(component)
        digest = state.digest.copy()
        if state.length == 0:
            digest.update(encoded)
            return PrfSigState(digest, state.length + len(component))
        digest.update(b"/")
        digest.update(encoded)
        return PrfSigState(digest, state.length + len(component) + 1)

    def extend_components(self, state, components):
        for component in components:
            state = self.extend(state, component)
        return state

    def finish(self, state: PrfSigState) -> Signature:
        combined = int.from_bytes(state.digest.copy().digest(), "big")
        index = combined & ((1 << self.index_bits) - 1)
        bits = (combined >> self.index_bits) & self._sig_mask
        return Signature(index, bits)

    def sign_components(self, components) -> Signature:
        return self.finish(self.extend_components(self.EMPTY, components))


def make_hasher(scheme: str, boot_seed: int, signature_bits: int = 240,
                index_bits: int = INDEX_BITS):
    """Build a path hasher: ``"universal"`` (default) or ``"prf"``."""
    if scheme == "universal":
        return PathHasher(boot_seed, signature_bits, index_bits)
    if scheme == "prf":
        return PrfPathHasher(boot_seed, signature_bits, index_bits)
    raise ValueError(f"unknown signature scheme {scheme!r}")


def collision_probability(queries: float, cache_entries: float,
                          signature_bits: int = 240) -> float:
    """The paper's §3.3 collision-risk model.

    Probability that ``queries`` brute-force lookups against a cache
    holding ``cache_entries`` signatures produce at least one collision:
    ``p ≈ 1 - exp(-q * n / |H|)``.
    """
    import math

    space = float(2 ** signature_bits)
    exponent = -(queries * cache_entries) / space
    return -math.expm1(exponent)


def queries_for_risk(risk: float, cache_entries: float,
                     signature_bits: int = 240) -> float:
    """Queries after which collision risk exceeds ``risk`` (§3.3 formula).

    The paper computes ``q ≈ ln(1-p) * |H| / -n ≈ 2^77`` for p=2^-128,
    n=2^35 entries and 240-bit signatures.
    """
    import math

    space = float(2 ** signature_bits)
    return math.log1p(-risk) * space / -cache_entries
