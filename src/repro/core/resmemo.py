"""Resolution memo: seq-validated caching of whole path resolutions.

The paper's central claim (§3.1) is that a repeated full-path lookup
should cost a constant number of table operations.  The simulator's
*virtual* costs already reflect that, but its *wall-clock* cost did
not: every ``stat`` of a hot path re-ran the entire Python resolve
machinery — split, signature resume, DLHT probe, PCC probe, lazy
revalidation.  This module memoizes the whole resolution instead.

A memo entry is keyed per namespace by

    ``(ns id, root dentry id, cwd dentry id, cred id,
       interned path, follow_last, intent_create, create_dir)``

and stores the terminal :class:`~repro.vfs.dentry.PathPos` (or the
raised :class:`~repro.errors.FsError`), the exact sequence of
:class:`~repro.sim.costs.CostModel` charge events, the
:class:`~repro.sim.stats.Stats` counter deltas, and the dcache-LRU /
PCC touches the resolution performed.  A hit is accepted only after a
validity check over the entry's recorded *dependencies*:

* the lazy epoch high-water mark is unchanged (the lazy profile stamps
  epochs instead of shooting down; touch-time revalidation charges
  depend on it, so lazy recordings never survive an epoch bump), and
* the start dentry (root or cwd) is the same object with the same
  seqcount, and
* every dentry the walk's conclusion rested on — dcache-LRU hits, DLHT
  probe hits, PCC probe hits, fastpath negativity checks — is alive
  with its recorded seqcount and the *same inode object* (identity
  pins negativity flips and re-instantiations that do not bump seqs),
  and
* the terminal dentry's state signature (inode kind, negativity kind,
  stub/alias state, DLHT registration) matches the recorded one, and
* every recorded PCC probe hit would hit again right now, and
* for entries whose recordings contain mutation-adjacent charges (see
  ``_STEADY_UNSAFE_PRIMITIVES``), the global invalidation counter is
  additionally unchanged.

Entries whose recordings are free of mutation-adjacent charges are
*steady*: they skip the counter comparison, so a confirmed resolution
survives its workload's own create/unlink/rename cycle and replays
again when the path returns to the recorded state — the memoized
parent resolution for mutation syscalls (an ``unlink`` or ``O_CREAT``
open re-resolves its path from the memo; the mutation invalidates
*after* resolution, so the read is legal).

On acceptance the memo *replays* the recorded charges and counter
deltas through :meth:`CostModel.replay_events`, re-deriving every
nanosecond figure from the current rate table in the same
floating-point operation order as the original charges, so virtual
costs and stats stay bit-identical on all three kernel profiles while
the Python resolve machinery is skipped entirely.

Correctness protocol — confirm on second identical execution
------------------------------------------------------------

A first resolution of a path typically *populates* caches (dentry
allocation, DLHT/PCC inserts, stub fills, lazy re-arms).  Replaying
such a recording would skip those side effects.  Instead of trying to
enumerate every populating side effect, the memo stores the first
recording as *provisional* and only promotes it to *confirmed* —
eligible for replay — after a second execution under a still-valid
snapshot reproduces the identical event sequence, stat deltas, touch
lists, and outcome.  Any cache-populating work makes two consecutive
executions differ (the second run hits what the first one filled), so
confirmed recordings are structurally steady-state: their only side
effects are dcache-LRU reordering and PCC ``move_to_end`` touches,
both of which are captured and mirrored on replay so eviction victims
stay identical.  A successful confirmation also refreshes the validity
snapshot from the confirming run, so the dependencies always describe
the newest of the two identical executions.

The steady classification is the cycle-spanning complement of that
protocol: within one quiescent phase, consecutive identical runs prove
the absence of population; across a mutation cycle, the recording's
own charge stream proves it (population charges ``dentry_alloc`` /
``dlht_insert`` / ``pcc_insert`` / ... — any of which forces the
strict counter comparison, under which today's flush semantics are
preserved).

Resolutions that call into the low-level file system (buffer-cache or
device charges, pseudo-file generation, network RPCs) are never
memoized: their charges depend on state the memo cannot validate
cheaply.  The same applies to terminals on ``requires_revalidation``
file systems (§4.3 network file systems).

Invalidation is *scoped*: the dcache's structural mutation points call
:meth:`ResolutionMemo.kill` (``d_drop``/``d_move``/``evict``: drop
every entry that depends on the dentry) and
:meth:`ResolutionMemo.kill_miss` (``d_alloc``/``d_move``: drop every
entry whose walk concluded from the *absence* of the name now being
instantiated), both O(affected) through reverse indexes.  Bulk
:meth:`flush` remains for the coarse hazards — chmod/chown/label
changes (permission bits feed memoized prefix checks), mount table
edits, PCC capacity evictions, and seqcount wraparound (which breaks
every seq pin at once).  Flushing or killing too often costs only
wall-clock, never fidelity.

Snapshots drop the memo: ``__deepcopy__`` returns a fresh empty memo,
so a restored kernel re-records from its own executions (see
:mod:`repro.sim.snapshot`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro import errors
from repro.vfs.mount import PathPos

__all__ = ["ResolutionMemo"]

#: Charge primitives whose presence makes a recording non-memoizable.
#: They are emitted by the low-level file systems and the simulated
#: device, so their repetition depends on buffer-cache / server state
#: the memo's validity check cannot see.
_UNMEMOIZABLE_PRIMITIVES = frozenset({
    "fs_lookup_base",
    "fs_dirblock_scan",
    "fs_readdir_entry",
    "pagecache_hit",
    "disk_seq_block",
    "disk_seek",
    "pseudo_generate",
    "net_rpc",
})

#: Charge primitives that mark a recording as *not* steady: cache
#: population (allocs/inserts) or invalidation work.  Entries carrying
#: any of these keep the strict global-counter comparison, so they can
#: never replay across a mutation cycle — only pure-probe recordings
#: (hash, table probes, LRU/PCC touches, permission checks) earn
#: cycle-spanning validity.
_STEADY_UNSAFE_PRIMITIVES = frozenset({
    "dentry_alloc",
    "negative_dentry_alloc",
    "dentry_free",
    "dlht_insert",
    "pcc_insert",
    "inval_per_dentry",
    "inval_counter_bump",
    "epoch_bump",
    "dentry_lock",
})

#: Interned kind markers for :func:`_dentry_sig`.
_DIR = "d"
_FILE = "f"


def _dentry_sig(dentry) -> tuple:
    """State signature of a terminal dentry.

    Captures everything about the dentry's *own* state that a resolve
    conclusion can rest on without bumping its seqcount: negativity
    (and its kind), stub/alias state, inode kind, and the DLHT
    registration the fastpath would hit.  Regular-file inodes are
    summarized by kind only — an unlink/create cycle instantiates a
    fresh inode each round, and a file's own inode attributes are
    never read during resolution (permission checks on the terminal
    happen in the syscall layer, after resolve).  Directories are also
    kind-only: their permission bits are covered by the chmod/chown
    bulk flush, and walks *into* them pin the inode identity through
    their dependency list instead.  Symlink inodes are pinned by
    identity — a retarget must not revalidate.
    """
    inode = dentry.inode
    if inode is None:
        kind = None
    elif inode.is_symlink:
        kind = inode
    elif inode.is_dir:
        kind = _DIR
    else:
        kind = _FILE
    fast = dentry.fast
    if fast is None:
        fsig = None
    else:
        fsig = (fast.dlht, fast.dlht_key, fast.hash_state is not None)
    return (kind, dentry.neg_kind, dentry.stub, dentry.alias_target, fsig)


class _Recording:
    """Side-channel filled while a resolution runs with recording on.

    ``events`` is appended to by :class:`~repro.sim.costs.CostModel`
    (every ``charge``/``charge_in``/``charge_ns``), ``lru`` by
    ``Dcache.d_lookup`` hits, ``pcc`` by PCC probe hits, ``deps`` by
    the fastpath's DLHT probe hits and negativity conclusions, and
    ``misses`` by ``Dcache.d_lookup`` misses (the (parent, name) pairs
    whose *absence* the walk observed).
    """

    __slots__ = ("events", "lru", "pcc", "deps", "misses")

    def __init__(self) -> None:
        self.events: List[tuple] = []
        self.lru: list = []
        self.pcc: List[tuple] = []
        self.deps: list = []
        self.misses: List[tuple] = []


class _Entry:
    """One memoized resolution plus its validity snapshot."""

    __slots__ = (
        "outcome_pos",      # terminal PathPos, or None if the walk raised
        "outcome_exc",      # stored FsError instance, or None
        "events",           # tuple of CostModel charge events
        "stat_deltas",      # sorted tuple of (counter name, int delta)
        "lru_touches",      # dentries whose dcache-LRU slot was refreshed
        "pcc_touches",      # (pcc, dentry) pairs moved to PCC MRU
        "counter",          # Coherence.counter (checked unless steady)
        "epoch",            # Coherence.epoch at record time
        "start_dentry",     # root/cwd dentry the walk started from
        "start_seq",
        "term_dentry",      # terminal dentry (None for raised outcomes)
        "term_seq",
        "term_sig",         # _dentry_sig of the terminal at record time
        "deps",             # tuple of (dentry, seq, inode) pins
        "miss_deps",        # tuple of ((id(parent), name), parent) pins
        "steady",           # no mutation-adjacent charges: skip counter
        "refs",             # strong refs pinning every id() in the key
        "confirmed",        # replayable only after a second identical run
        "compiled",         # lazy (rates_version, rows, counts, lru, pcc, fn)
        "replays",          # replay count (gates exec-compilation)
    )


class ResolutionMemo:
    """Capacity-bounded LRU of whole-path resolutions.

    Constructed by :class:`~repro.core.kernel.Kernel` when
    ``DcacheConfig.resolution_memo`` is on, and consulted by
    ``Syscalls._resolve`` for every resolve-bearing entry point
    (including the ``Syscalls.batch`` fast entries, whose path ops are
    bound methods of the same facade).

    ``hits``/``misses``/``stale``/``flushes`` are host-side telemetry
    (surfaced by ``repro-speed --timing``); they deliberately live
    outside :class:`~repro.sim.stats.Stats` so the memo never perturbs
    golden counters.  ``flushes`` counts invalidation events — bulk
    flushes and scoped kills that removed at least one entry.
    """

    __slots__ = (
        "costs", "stats", "coherence", "dcache", "resolver", "capacity",
        "_entries", "_seqarr", "_by_dep", "_by_miss", "_miss_score",
        "_burn", "hits", "misses", "stale", "flushes",
    )

    #: Consecutive misses of one key before its resolutions are worth
    #: recording (see :meth:`resolve`).
    _RECORD_AFTER = 1

    #: Cap on the per-key recording backoff shift (see :meth:`resolve`):
    #: a key whose recordings never confirm ends up recording at most
    #: once per ``_RECORD_AFTER << _MAX_BURN`` misses.
    _MAX_BURN = 6

    #: Interpreted replays before an entry's charge sequence is
    #: exec-compiled into straight-line code (see ``_replay``).
    _EXEC_AFTER = 3

    def __init__(self, costs, stats, coherence, dcache, resolver,
                 capacity: int = 4096) -> None:
        self.costs = costs
        self.stats = stats
        self.coherence = coherence
        self.dcache = dcache
        self.resolver = resolver
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        #: The dcache arena's seq column, bound once: entry validation
        #: indexes it by dentry handle instead of chasing attributes
        #: (every dentry a resolution can touch is allocated from the
        #: kernel dcache's single arena, and arena columns are mutated
        #: only in place, so the binding stays valid for this kernel's
        #: lifetime).
        self._seqarr = dcache.arena.seq
        #: Reverse index: id(dentry) -> {key: entry} for every entry
        #: that depends on the dentry (term or deps).  Drives
        #: :meth:`kill` in O(affected entries).
        self._by_dep: dict = {}
        #: Reverse index: (id(parent), name) -> {key: entry} for every
        #: entry whose walk observed that name absent under that
        #: parent.  Drives :meth:`kill_miss` from ``d_alloc``/``d_move``.
        self._by_miss: dict = {}
        #: Per-key miss streaks surviving flushes (see :meth:`resolve`).
        self._miss_score: dict = {}
        #: Per-key recording backoff: recordings that never confirmed.
        self._burn: dict = {}
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.flushes = 0

    # ------------------------------------------------------------------
    # hot path

    def _valid(self, entry: _Entry, start) -> bool:
        """Does ``entry``'s validity snapshot still hold?"""
        coh = self.coherence
        if entry.epoch != coh.epoch:
            return False
        if not entry.steady and entry.counter != coh.counter:
            return False
        seqarr = self._seqarr
        sh = start.h
        if (start is not entry.start_dentry or sh < 0
                or seqarr[sh] != entry.start_seq):
            return False
        term = entry.term_dentry
        if term is not None:
            th = term.h
            if (th < 0 or seqarr[th] != entry.term_seq
                    or _dentry_sig(term) != entry.term_sig):
                return False
        for d, seq, inode in entry.deps:
            h = d.h
            if h < 0 or seqarr[h] != seq or d.inode is not inode:
                return False
        for pcc, d in entry.pcc_touches:
            e = pcc._entries.get(id(d))
            h = d.h
            if e is None or e[0] is not d or h < 0 or e[1] != seqarr[h]:
                return False
        return True

    def resolve(self, task, path: str, follow_last: bool,
                intent_create: bool, create_dir: bool) -> PathPos:
        """Resolve ``path`` for ``task``, replaying a memoized result
        when the validity snapshot still holds.

        Mirrors the resolver's contract exactly: returns the terminal
        :class:`PathPos` or raises the recorded :class:`FsError`.
        """
        costs = self.costs
        if costs.recorder is not None:
            # Re-entrant resolve while another recording is active:
            # never nest recordings, and never replay into one.
            return self.resolver.resolve(
                task, path, follow_last=follow_last,
                intent_create=intent_create, create_dir=create_dir)
        root_dentry = task.root.dentry
        cwd_dentry = task.cwd.dentry
        key = (id(task.ns), id(root_dentry), id(cwd_dentry),
               id(task.cred), path, follow_last, intent_create, create_dir)
        entries = self._entries
        entry = entries.get(key)
        if entry is not None:
            start = root_dentry if path.startswith("/") else cwd_dentry
            if self._valid(entry, start):
                if entry.confirmed:
                    self.hits += 1
                    entries.move_to_end(key)
                    return self._replay(entry)
                return self._confirm(key, entry, task, path, follow_last,
                                     intent_create, create_dir)
            self.stale += 1
            if entries.get(key) is entry:
                del entries[key]
                self._unregister(key, entry)
        self.misses += 1
        # Record-worthiness gate: recording costs real wall-clock (the
        # attached recorder, the stats diff, the store+match machinery),
        # and in mutation-heavy phases every recording is invalidated
        # before it can confirm — pure waste.  A key must miss
        # _RECORD_AFTER times before its resolutions are recorded; the
        # streak counter survives flushes (it carries no validity
        # state), and recording resets it.  On top of the flat gate
        # sits an exponential backoff: every recording that never
        # confirms doubles the key's effective threshold (capped at
        # ``<< _MAX_BURN``), and a successful confirm resets it — so
        # keys whose recordings can never stabilize asymptotically stop
        # being recorded, while steady hot paths stay eager.  Virtual
        # charges are identical either way — the gate only defers when
        # the memo starts trying to capture a path.
        score = self._miss_score
        streak = score.get(key, 0)
        if streak < self._RECORD_AFTER << min(self._burn.get(key, 0),
                                              self._MAX_BURN):
            if len(score) > (self.capacity << 2):
                score.clear()
            score[key] = streak + 1
            return self.resolver.resolve(
                task, path, follow_last=follow_last,
                intent_create=intent_create, create_dir=create_dir)
        score[key] = 0
        burn = self._burn
        if len(burn) > (self.capacity << 2):
            burn.clear()
        burn[key] = burn.get(key, 0) + 1
        return self._record(key, task, path, follow_last, intent_create,
                            create_dir)

    def _replay(self, entry: _Entry) -> PathPos:
        """Re-apply a confirmed recording without running the resolver."""
        compiled = entry.compiled
        costs = self.costs
        if compiled is None or compiled[0] != costs.rates_version:
            compiled = self._compile(entry)
        fn = compiled[5]
        if fn is not None:
            fn(costs.clock, costs.by_primitive, costs.by_scope,
               costs.counts, self.stats._counters)
        else:
            replays = entry.replays + 1
            entry.replays = replays
            if replays >= self._EXEC_AFTER:
                # This entry is hot: exec-compile the charge sequence
                # into straight-line code for every replay after this.
                fn = costs.compile_replay_fn(compiled[1], compiled[2],
                                             entry.stat_deltas)
                entry.compiled = compiled[:5] + (fn,)
                fn(costs.clock, costs.by_primitive, costs.by_scope,
                   costs.counts, self.stats._counters)
            else:
                costs.replay_compiled(compiled[1], compiled[2])
                self.stats.bump_many(entry.stat_deltas)
        lru = self.dcache._lru
        for dkey, dentry in compiled[3]:
            lru[dkey] = dentry
            lru.move_to_end(dkey)
            dentry.in_lru = True
        for pcc_entries, move_to_end, dkey in compiled[4]:
            if dkey in pcc_entries:
                move_to_end(dkey)
        exc = entry.outcome_exc
        if exc is not None:
            raise exc
        return entry.outcome_pos

    def _compile(self, entry: _Entry) -> tuple:
        """Precompute the replay-side representation of a recording.

        The charge rows come from :meth:`CostModel.compile_events`
        (exact per-event ns against the current rate table; invalidated
        by ``rates_version``).  LRU touches are pre-keyed by ``id()``
        (the entry holds strong refs, so ids are stable), and PCC
        touches pre-bind the entry dict and its ``move_to_end``.
        """
        version, rows, count_deltas = self.costs.compile_events(entry.events)
        lru_rows = tuple((id(d), d) for d in entry.lru_touches)
        pcc_rows = tuple((pcc._entries, pcc._entries.move_to_end, id(d))
                         for pcc, d in entry.pcc_touches)
        # The exec-compiled straight-line replayer (slot 5) is deferred
        # until the entry proves hot (_EXEC_AFTER interpreted replays):
        # churny workloads invalidate entries after a few replays, and
        # an ``exec`` per short-lived entry costs more than it saves.
        compiled = (version, rows, count_deltas, lru_rows, pcc_rows, None)
        entry.compiled = compiled
        entry.replays = 0
        return compiled

    # ------------------------------------------------------------------
    # record / confirm

    def _run_recorded(self, task, path, follow_last, intent_create,
                      create_dir):
        """Run the real resolver with the charge recorder attached."""
        costs = self.costs
        stats = self.stats
        before = dict(stats._counters)
        rec = _Recording()
        costs.recorder = rec
        pos = None
        exc = None
        try:
            pos = self.resolver.resolve(
                task, path, follow_last=follow_last,
                intent_create=intent_create, create_dir=create_dir)
        except errors.FsError as caught:
            exc = caught
        finally:
            costs.recorder = None
        deltas = []
        after = stats._counters
        for name, value in after.items():
            delta = value - before.get(name, 0)
            if delta:
                deltas.append((name, delta))
        deltas.sort()
        return pos, exc, rec, tuple(deltas)

    def _memoizable(self, rec: _Recording, pos: Optional[PathPos]) -> bool:
        unmemoizable = _UNMEMOIZABLE_PRIMITIVES
        for event in rec.events:
            if event[1] in unmemoizable:
                return False
        if pos is not None and pos.dentry.inode is not None:
            if pos.dentry.inode.fs.requires_revalidation:
                return False
        return True

    def _snapshot(self, key, entry: _Entry, task, path,
                  rec: _Recording) -> None:
        """(Re)capture ``entry``'s validity snapshot from ``rec`` and
        register it in the reverse indexes."""
        coh = self.coherence
        entry.counter = coh.counter
        entry.epoch = coh.epoch
        start = task.root.dentry if path.startswith("/") else task.cwd.dentry
        entry.start_dentry = start
        entry.start_seq = start.seq
        pos = entry.outcome_pos
        term = pos.dentry if pos is not None else None
        entry.term_dentry = term
        if term is not None:
            entry.term_seq = term.seq
            entry.term_sig = _dentry_sig(term)
        else:
            entry.term_seq = 0
            entry.term_sig = None
        # Dependency pins: every dentry the walk's conclusion rested on
        # — dcache-LRU hits, fastpath DLHT/negativity conclusions, and
        # PCC probe targets (the PCC hit condition alone does not see
        # negativity flips, so the inode pin rides along here).  The
        # terminal is excluded: its cycle-tolerant state signature
        # replaces the inode pin so unlink/create cycles can revalidate.
        deps = []
        seen = set()
        for source in (rec.lru, rec.deps):
            for d in source:
                if d is term:
                    continue
                i = id(d)
                if i in seen:
                    continue
                seen.add(i)
                deps.append((d, d.seq, d.inode))
        for _pcc, d in rec.pcc:
            if d is term:
                continue
            i = id(d)
            if i in seen:
                continue
            seen.add(i)
            deps.append((d, d.seq, d.inode))
        entry.deps = tuple(deps)
        miss_deps = []
        mseen = set()
        for parent, name in rec.misses:
            mkey = (id(parent), name)
            if mkey in mseen:
                continue
            mseen.add(mkey)
            miss_deps.append((mkey, parent))
        entry.miss_deps = tuple(miss_deps)
        unsafe = _STEADY_UNSAFE_PRIMITIVES
        steady = True
        for event in entry.events:
            if event[1] in unsafe:
                steady = False
                break
        entry.steady = steady
        by_dep = self._by_dep
        for d, _seq, _inode in entry.deps:
            i = id(d)
            bucket = by_dep.get(i)
            if bucket is None:
                by_dep[i] = bucket = {}
            bucket[key] = entry
        if term is not None:
            i = id(term)
            bucket = by_dep.get(i)
            if bucket is None:
                by_dep[i] = bucket = {}
            bucket[key] = entry
        by_miss = self._by_miss
        for mkey, _parent in entry.miss_deps:
            bucket = by_miss.get(mkey)
            if bucket is None:
                by_miss[mkey] = bucket = {}
            bucket[key] = entry

    def _unregister(self, key, entry: _Entry) -> None:
        """Remove ``entry``'s reverse-index registrations."""
        by_dep = self._by_dep
        for d, _seq, _inode in entry.deps:
            i = id(d)
            bucket = by_dep.get(i)
            if bucket is not None:
                bucket.pop(key, None)
                if not bucket:
                    del by_dep[i]
        term = entry.term_dentry
        if term is not None:
            i = id(term)
            bucket = by_dep.get(i)
            if bucket is not None:
                bucket.pop(key, None)
                if not bucket:
                    del by_dep[i]
        by_miss = self._by_miss
        for mkey, _parent in entry.miss_deps:
            bucket = by_miss.get(mkey)
            if bucket is not None:
                bucket.pop(key, None)
                if not bucket:
                    del by_miss[mkey]

    def _store(self, key, task, path, pos, exc, rec, deltas) -> None:
        if not self._memoizable(rec, pos):
            return
        entry = _Entry()
        entry.outcome_pos = pos
        if exc is not None:
            # Drop the traceback so the stored instance does not pin
            # the resolver's frames (and their locals) for the entry's
            # whole lifetime; each replay re-raise installs a fresh one.
            exc.__traceback__ = None
        entry.outcome_exc = exc
        entry.events = tuple(rec.events)
        entry.stat_deltas = deltas
        entry.lru_touches = rec.lru
        entry.pcc_touches = rec.pcc
        # Strong refs keep every object behind an id() in the key (and
        # in the touch lists) alive, so ids can never be recycled while
        # the entry can still match.
        entry.refs = (task.ns, task.root, task.cwd, task.cred)
        entry.confirmed = False
        entry.compiled = None
        entry.replays = 0
        self._snapshot(key, entry, task, path, rec)
        entries = self._entries
        entries[key] = entry
        entries.move_to_end(key)
        if len(entries) > self.capacity:
            old_key, old_entry = entries.popitem(last=False)
            self._unregister(old_key, old_entry)

    def _record(self, key, task, path, follow_last, intent_create,
                create_dir) -> PathPos:
        pos, exc, rec, deltas = self._run_recorded(
            task, path, follow_last, intent_create, create_dir)
        self._store(key, task, path, pos, exc, rec, deltas)
        if exc is not None:
            raise exc
        return pos

    def _confirm(self, key, entry, task, path, follow_last, intent_create,
                 create_dir) -> PathPos:
        """Re-run a provisional entry for real; promote it only if this
        execution is indistinguishable from the recorded one."""
        pos, exc, rec, deltas = self._run_recorded(
            task, path, follow_last, intent_create, create_dir)
        # The resolve itself may have invalidated the entry (e.g. a
        # dcache eviction while populating); only touch the entry if it
        # is still the one we validated.
        if self._entries.get(key) is entry and self._matches(
                entry, pos, exc, rec, deltas):
            entry.confirmed = True
            # Refresh the validity snapshot from this (newest) run: the
            # two executions were observably identical, but the second
            # one's dependencies describe the current cache state.
            self._unregister(key, entry)
            self._snapshot(key, entry, task, path, rec)
            self._entries.move_to_end(key)
            # The capture paid off: drop the recording backoff so the
            # key stays eager after future invalidations.
            self._burn.pop(key, None)
        else:
            if self._entries.get(key) is entry:
                del self._entries[key]
                self._unregister(key, entry)
            self._store(key, task, path, pos, exc, rec, deltas)
        if exc is not None:
            raise exc
        return pos

    @staticmethod
    def _matches(entry: _Entry, pos, exc, rec: _Recording, deltas) -> bool:
        if tuple(rec.events) != entry.events:
            return False
        if deltas != entry.stat_deltas:
            return False
        # Dentry and PCC objects compare by identity (no __eq__), which
        # is exactly the equality we want for the touch lists.
        if rec.lru != entry.lru_touches:
            return False
        if rec.pcc != entry.pcc_touches:
            return False
        old_pos = entry.outcome_pos
        if (pos is None) != (old_pos is None):
            return False
        if pos is not None:
            if pos.dentry is not old_pos.dentry:
                return False
            if pos.mount is not old_pos.mount:
                return False
        old_exc = entry.outcome_exc
        if (exc is None) != (old_exc is None):
            return False
        if exc is not None:
            if type(exc) is not type(old_exc):
                return False
            if exc.errno != old_exc.errno:
                return False
            if str(exc) != str(old_exc):
                return False
        return True

    # ------------------------------------------------------------------
    # invalidation / accounting

    def flush(self) -> None:
        """Bulk-invalidate every entry (coarse hazards only: permission
        or label changes, mount table edits, PCC capacity evictions,
        seqcount wraparound)."""
        if self._entries:
            self._entries.clear()
            self._by_dep.clear()
            self._by_miss.clear()
            self.flushes += 1

    def kill(self, dentry) -> None:
        """Scoped invalidation: drop every entry depending on ``dentry``.

        Called by the dcache on ``d_drop``/``d_move``/``evict`` (and,
        via eviction, for the parent whose ``dir_complete`` flag the
        eviction broke).  O(affected entries) through the reverse
        index; a dentry no entry depends on costs one dict probe.
        """
        bucket = self._by_dep.pop(id(dentry), None)
        if not bucket:
            return
        entries = self._entries
        removed = False
        for key, entry in bucket.items():
            if entries.get(key) is entry:
                del entries[key]
                removed = True
            self._unregister(key, entry)
        if removed:
            self.flushes += 1

    def kill_miss(self, parent, name: str) -> None:
        """Scoped invalidation for a name being instantiated: drop every
        entry whose walk concluded from ``name`` being absent under
        ``parent`` (``d_alloc`` and the destination of ``d_move``)."""
        bucket = self._by_miss.pop((id(parent), name), None)
        if not bucket:
            return
        entries = self._entries
        removed = False
        for key, entry in bucket.items():
            if entries.get(key) is entry:
                del entries[key]
                removed = True
            self._unregister(key, entry)
        if removed:
            self.flushes += 1

    def __len__(self) -> int:
        return len(self._entries)

    def event_count(self) -> int:
        """Total recorded charge events (for memory accounting)."""
        return sum(len(e.events) for e in self._entries.values())

    def __deepcopy__(self, memo) -> "ResolutionMemo":
        """Snapshots drop the memo: a clone starts with an empty one.

        Registered in ``memo`` before the constituent references are
        copied so the dcache→memo and coherence→memo back-edges inside
        a kernel deepcopy resolve to the fresh instance.
        """
        import copy
        new = ResolutionMemo.__new__(ResolutionMemo)
        memo[id(self)] = new
        new.costs = copy.deepcopy(self.costs, memo)
        new.stats = copy.deepcopy(self.stats, memo)
        new.coherence = copy.deepcopy(self.coherence, memo)
        new.dcache = copy.deepcopy(self.dcache, memo)
        new.resolver = copy.deepcopy(self.resolver, memo)
        new.capacity = self.capacity
        new._entries = OrderedDict()
        new._seqarr = new.dcache.arena.seq
        new._by_dep = {}
        new._by_miss = {}
        new._miss_score = {}
        new._burn = {}
        new.hits = 0
        new.misses = 0
        new.stale = 0
        new.flushes = 0
        return new
