"""Per-dentry fast state: the paper's ``struct fast_dentry`` (Figure 5).

The optimized kernel hangs one :class:`FastDentry` off each dentry it has
populated on a fastpath structure.  It records:

* the resumable hash state of the dentry's canonical path (so relative
  lookups can resume hashing from here),
* the finished signature and which DLHT (namespace) the dentry is
  registered in — a dentry lives in at most one DLHT under one path at a
  time (§4.3),
* the mount the path was resolved under, so a fastpath hit can perform
  mount-flag checks without a tree walk.

The dentry's ``seq`` counter itself lives on the VFS dentry (it is also
used for eviction staleness); coherence code bumps it and clears the
state here.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.signatures import Signature, SigState
from repro.vfs.dentry import Dentry
from repro.vfs.mount import Mount


class FastDentry:
    """Optimized-kernel state attached to a dentry."""

    __slots__ = ("hash_state", "signature", "dlht", "dlht_key", "mount",
                 "link_target_state", "epoch_snapshot", "extra_keys")

    def __init__(self) -> None:
        #: Resumable hash state of the canonical path, or None when stale.
        self.hash_state: Optional[SigState] = None
        #: Finished signature under which the dentry sits in a DLHT.
        self.signature: Optional[Signature] = None
        #: The DLHT instance the dentry is registered in (at most one).
        self.dlht = None
        #: Exact key in that DLHT (so removal is O(1)).
        self.dlht_key: Optional[Tuple[int, int]] = None
        #: Mount the cached path resolves under (mount-flag checks, §4.3).
        self.mount: Optional[Mount] = None
        #: For symlink dentries: hash state of the resolved target path,
        #: so a follow-intent fastpath hit can re-probe the DLHT for the
        #: target ("symbolic link dentries store the signatures that
        #: represent the target path", §4.2).
        self.link_target_state: Optional[SigState] = None
        #: Lazy coherence: the global epoch as of which ``hash_state``
        #: (and the primary registration) was last known current.  A
        #: fastpath hit whose chain carries a higher per-dentry epoch
        #: stamp must revalidate before it may be served (always 0 in
        #: eager mode, where shootdowns clear the state instead).
        self.epoch_snapshot = 0
        #: Lazy coherence: additional DLHT keys (old-path signatures)
        #: this dentry is still registered under.  Lazy mutations do not
        #: evict, so after a rename the dentry answers probes for both
        #: its old and new path until validation settles ownership.
        #: None in eager mode (a dentry has exactly one registration).
        self.extra_keys: Optional[list] = None

    def invalidate(self) -> None:
        """Drop path-derived state (signature stays until DLHT removal)."""
        self.hash_state = None
        self.link_target_state = None

    def __deepcopy__(self, memo: dict) -> "FastDentry":
        """Hand-rolled clone: the snapshot hot loop (one per populated
        dentry, see :mod:`repro.sim.snapshot`).

        ``hash_state``/``signature``/``link_target_state`` are immutable
        int-only NamedTuples and ``dlht_key`` an int pair — shared with
        the copy outright instead of walking them through the generic
        deepcopy machinery.  ``dlht``/``mount`` stay identity-mapped
        through ``memo`` so the copied dentry lands in the copied
        table/mount.  An empty ``extra_keys`` list normalizes to None
        (nothing shadows nothing).
        """
        from copy import deepcopy
        new = FastDentry.__new__(FastDentry)
        memo[id(self)] = new
        new.hash_state = self.hash_state
        new.signature = self.signature
        new.dlht = deepcopy(self.dlht, memo) if self.dlht is not None \
            else None
        new.dlht_key = self.dlht_key
        new.mount = deepcopy(self.mount, memo) if self.mount is not None \
            else None
        new.link_target_state = self.link_target_state
        new.epoch_snapshot = self.epoch_snapshot
        new.extra_keys = list(self.extra_keys) if self.extra_keys else None
        return new

    def __repr__(self) -> str:
        state = "valid" if self.hash_state is not None else "stale"
        return f"FastDentry({state}, in_dlht={self.dlht is not None})"


def fast_of(dentry: Dentry) -> FastDentry:
    """Get (allocating on first use) the fast state of a dentry."""
    if dentry.fast is None:
        dentry.fast = FastDentry()
    return dentry.fast
