"""Struct-of-arrays storage for the dcache's hot per-dentry scalars.

Python objects pay an attribute-dictionary (or slot-descriptor) load for
every field touch, and a deep copy of a warm tree pays it again for every
field of every dentry.  *Reconstruct the Directories for In-Memory File
Systems* makes the same observation about pointer-chasing directory
structures and flattens them into contiguous arrays; this module does the
equivalent for the simulator: one :class:`DentryArena` per
:class:`~repro.vfs.dcache.Dcache` owns parallel flat ``array('q')``
columns — sequence counters, lazy epoch stamps, pin counts, child-eviction
counters, a flags word, interned-name indices, parent handles, and a
stable ident — indexed by small integer *handles*.

:class:`~repro.vfs.dentry.Dentry` remains as the compatibility view:
cold paths and tests keep reading ``dentry.seq`` etc. through properties,
while hot loops (lazy ancestor revalidation in
:mod:`repro.core.fastpath`, memo validity checks in
:mod:`repro.core.resmemo`, coherence shootdowns) bind a column once and
index it by handle — and bulk operations become array operations:

* snapshot/restore (:mod:`repro.sim.snapshot`) copies each column with
  one C-level ``array(column)`` memcpy instead of re-copying per-object
  attributes (:meth:`DentryArena.__deepcopy__`);
* memory accounting (:mod:`repro.sim.memory`) reads real footprints off
  ``buffer_info()`` instead of per-object estimates.

Handle lifecycle
----------------

``alloc`` hands out the lowest-water free slot (LIFO reuse off
``_free``), ``retire`` returns a slot to the free list when its dentry
leaves the cache (``d_drop``/``evict``).  Retirement *materializes* the
scalars into the view object first and drops the view's handle to ``-1``,
so a dead dentry still answers ``.seq``/``.pin_count`` reads (PCC
entries, open files on unlinked paths) without pinning the slot — the
slot can be re-issued to the next allocation immediately, and reuse is
deterministic (no GC dependence).  ``compact`` trims trailing free slots
so a tree that shrank gives its column memory back.

Names are interned in a per-arena table (``name_id`` column); the table
only grows — a name, once seen, stays interned for the arena's lifetime,
which keeps ``name_id`` values stable under rename churn.
"""

from __future__ import annotations

from array import array
from typing import List

__all__ = ["DentryArena", "FLAG_MOUNTPOINT", "FLAG_DIR_COMPLETE"]

#: Bits of the ``flags`` column.
FLAG_MOUNTPOINT = 1
FLAG_DIR_COMPLETE = 2

#: ``parent`` column value for detached / superblock-root dentries.
NO_PARENT = -1


class DentryArena:
    """Parallel flat columns of hot per-dentry scalars, keyed by handle."""

    __slots__ = ("seq", "epoch", "pin", "childev", "flags", "name_id",
                 "parent", "ident", "_free", "_names", "_name_ids",
                 "_next_ident", "live")

    #: Column names copied wholesale by snapshots (all ``array('q')``).
    COLUMNS = ("seq", "epoch", "pin", "childev", "flags", "name_id",
               "parent", "ident")

    def __init__(self) -> None:
        self.seq = array("q")
        self.epoch = array("q")
        self.pin = array("q")
        self.childev = array("q")
        self.flags = array("q")
        self.name_id = array("q")
        self.parent = array("q")
        #: Monotonic allocation stamp: unlike the handle (recycled) and
        #: ``id()`` (a heap address), ``ident[h]`` is unique across the
        #: arena's whole history — differential tests key on it.
        self.ident = array("q")
        self._free: List[int] = []
        self._names: List[str] = []
        self._name_ids: dict = {}
        self._next_ident = 0
        #: Live (allocated, unreleased) handle count.
        self.live = 0

    # -- names --------------------------------------------------------------

    def intern_name(self, name: str) -> int:
        """Index of ``name`` in the arena's interned-name table."""
        nid = self._name_ids.get(name)
        if nid is None:
            nid = len(self._names)
            self._names.append(name)
            self._name_ids[name] = nid
        return nid

    def name_of(self, handle: int) -> str:
        return self._names[self.name_id[handle]]

    # -- handle lifecycle ---------------------------------------------------

    def alloc(self, name: str, parent_handle: int) -> int:
        """Allocate a zeroed slot for a new dentry; returns its handle."""
        ident = self._next_ident
        self._next_ident = ident + 1
        nid = self.intern_name(name)
        self.live += 1
        free = self._free
        if free:
            h = free.pop()
            self.seq[h] = 0
            self.epoch[h] = 0
            self.pin[h] = 0
            self.childev[h] = 0
            self.flags[h] = 0
            self.name_id[h] = nid
            self.parent[h] = parent_handle
            self.ident[h] = ident
            return h
        h = len(self.seq)
        self.seq.append(0)
        self.epoch.append(0)
        self.pin.append(0)
        self.childev.append(0)
        self.flags.append(0)
        self.name_id.append(nid)
        self.parent.append(parent_handle)
        self.ident.append(ident)
        return h

    def retire(self, handle: int) -> None:
        """Return ``handle``'s slot to the free list (deterministic LIFO).

        The caller (the :class:`~repro.vfs.dentry.Dentry` view) must have
        materialized the scalars it still needs *before* retiring — the
        slot may be re-issued by the very next :meth:`alloc`.
        """
        self.live -= 1
        self.parent[handle] = NO_PARENT
        self._free.append(handle)

    def compact(self) -> int:
        """Trim trailing free slots off every column; returns slots freed.

        Only the tail can be reclaimed (interior handles must stay
        stable), so this is cheap and safe to call at any quiesce point.
        """
        free = set(self._free)
        top = len(self.seq)
        while top > 0 and (top - 1) in free:
            top -= 1
            free.remove(top)
        trimmed = len(self.seq) - top
        if trimmed:
            self._free = sorted(free)
            for column in self.COLUMNS:
                arr = getattr(self, column)
                del arr[top:]
        return trimmed

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        """Allocated capacity in slots (live + free, pre-compaction)."""
        return len(self.seq)

    def footprint_bytes(self) -> int:
        """Actual bytes behind the columns and the interned-name table.

        Columns are priced off ``array.buffer_info()`` (allocated
        element count times item size — the real buffer, not just the
        used prefix is not visible, so length*itemsize is the honest
        lower bound CPython exposes); the name table is priced as one
        pointer per interned string plus the string bodies.
        """
        total = 0
        for column in self.COLUMNS:
            arr = getattr(self, column)
            _addr, nitems = arr.buffer_info()
            total += nitems * arr.itemsize
        total += 8 * len(self._names)
        total += sum(49 + len(s) for s in self._names)  # CPython ASCII str
        total += 8 * len(self._free)
        return total

    # -- snapshots ----------------------------------------------------------

    def __deepcopy__(self, memo: dict) -> "DentryArena":
        """Bulk array copy: each column is one C-level memcpy.

        Every copied column is registered in ``memo`` under the original
        column's id, so any other structure that bound a column directly
        (hot loops hold references to e.g. ``arena.seq``) resolves to the
        same copy during the surrounding kernel deepcopy — and vice
        versa, a column that was already copied is reused rather than
        duplicated.
        """
        new = DentryArena.__new__(DentryArena)
        memo[id(self)] = new
        for column in self.COLUMNS:
            arr = getattr(self, column)
            copied = memo.get(id(arr))
            if copied is None:
                copied = array("q", arr)
                memo[id(arr)] = copied
            setattr(new, column, copied)
        new._free = list(self._free)
        new._names = list(self._names)
        new._name_ids = dict(self._name_ids)
        new._next_ident = self._next_ident
        new.live = self.live
        return new


#: Fallback arena for dentries constructed outside any dcache (tests,
#: ad-hoc structures).  Dcache-owned dentries always use their cache's
#: arena — allocating from the parent's arena keeps one tree in one
#: arena.
_DEFAULT_ARENA = DentryArena()


def default_arena() -> DentryArena:
    """The process-wide fallback arena for cache-less dentries."""
    return _DEFAULT_ARENA
