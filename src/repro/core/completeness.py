"""Directory completeness caching (§5.1).

A directory dentry whose *entire* contents are cached is flagged
``DIR_COMPLETE``.  The flag is set when a directory is freshly created
(``mkdir``) or when a full ``readdir`` sequence finishes with no
intervening ``lseek`` and no child evicted to reclaim space.  While set:

* ``readdir`` is served straight from the dentry's child list;
* a primary-table miss under the directory is a proven ENOENT — no
  low-level FS call (this also elides the compulsory miss of secure
  temp-file creation, the Figure 9 ``mkstemp`` experiment);
* entries learned from ``readdir`` become inodeless *stub* dentries that
  later lookups link with a real inode via ``getattr`` (cheaper than a
  name search).

Interleaved creations and deletions do *not* clear the flag — they update
the cache in step — only child eviction does (handled in
:meth:`repro.vfs.dcache.Dcache.evict`).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sim.costs import CostModel
from repro.sim.stats import Stats
from repro.vfs.dcache import Dcache
from repro.vfs.dentry import Dentry
from repro.vfs.file import File
from repro.vfs.mount import PathPos


class ReaddirEngine:
    """Implements getdents paging with optional completeness caching."""

    def __init__(self, costs: CostModel, stats: Stats, dcache: Dcache,
                 config):
        self.costs = costs
        self.stats = stats
        self.dcache = dcache
        self.config = config

    # -- sequence start ------------------------------------------------------

    def _cached_listing(self, dentry: Dentry) -> List[Tuple[str, int, str]]:
        """Serve a complete directory from its child dentries."""
        entries = []
        for child in dentry.children.values():
            self.costs.charge("cached_readdir_entry")
            if child.inode is not None:
                entries.append((child.name, child.inode.ino,
                                child.inode.filetype))
            elif child.stub is not None:
                entries.append((child.name, child.stub[0], child.stub[1]))
            # true negatives and aliases are not directory contents
        return entries

    def _fs_listing(self, pos: PathPos) -> List[Tuple[str, int, str]]:
        """Read the directory from the low-level FS, caching stubs."""
        dentry = pos.dentry
        fs = dentry.inode.fs
        entries = list(fs.readdir(dentry.inode.ino))
        if self.config.dir_complete and fs.supports_completeness:
            for name, ino, dtype in entries:
                if name not in dentry.children:
                    self.dcache.d_alloc_stub(dentry, name, ino, dtype)
        return entries

    def begin_sequence(self, file: File) -> None:
        """Capture the listing snapshot for a getdents sequence."""
        dentry = file.pos.dentry
        file.dir_evictions_at_start = dentry.child_evictions
        self.costs.charge("readdir_fixed")
        if self.config.dir_complete and dentry.dir_complete:
            self.stats.bump("readdir_cached")
            file.dir_snapshot = self._cached_listing(dentry)
        else:
            self.stats.bump("readdir_fs")
            file.dir_snapshot = self._fs_listing(file.pos)
        file.dir_offset = 0

    # -- paging ------------------------------------------------------------------

    def getdents(self, file: File, count: int) -> List[Tuple[str, int, str]]:
        """Return up to ``count`` entries; empty list means end."""
        if file.dir_snapshot is None:
            self.begin_sequence(file)
        assert file.dir_snapshot is not None
        chunk = file.dir_snapshot[file.dir_offset:file.dir_offset + count]
        file.dir_offset += len(chunk)
        if not chunk:
            self._sequence_complete(file)
        return chunk

    def _sequence_complete(self, file: File) -> None:
        """A full sequence finished; maybe set DIR_COMPLETE (§5.1)."""
        dentry = file.pos.dentry
        if not self.config.dir_complete:
            return
        if dentry.dir_complete or dentry.is_negative:
            return
        if not dentry.inode.fs.supports_completeness:
            return
        if file.dir_seeked:
            return
        if dentry.child_evictions != file.dir_evictions_at_start:
            return
        dentry.dir_complete = True
        self.stats.bump("dir_complete_set")

    def rewind(self, file: File) -> None:
        """lseek(fd, 0): restart the sequence from scratch."""
        file.dir_snapshot = None
        file.dir_offset = 0
        file.dir_seeked = False

    def seek(self, file: File, offset: int) -> None:
        """lseek to a nonzero offset: disqualifies completeness proof."""
        if offset == 0:
            self.rewind(file)
            return
        file.dir_seeked = True
        if file.dir_snapshot is not None:
            file.dir_offset = min(offset, len(file.dir_snapshot))
        else:
            file.dir_offset = offset

    # -- creation-side flag management ----------------------------------------------

    def mark_new_directory(self, dentry: Dentry) -> None:
        """mkdir: a brand-new directory is trivially complete."""
        if not self.config.dir_complete:
            return
        if not dentry.inode.fs.supports_completeness:
            return
        dentry.dir_complete = True
        self.stats.bump("dir_complete_set")
