"""The fastpath lookup engine (§3, §4).

:class:`FastLookup` is the optimized kernel's resolver.  On the way *in*
it attempts a direct lookup: hash the canonical path (resuming from the
start dentry's stored state), probe the namespace's DLHT, validate the
memoized prefix check in the caller's PCC, and — on a hit — finish after
a constant number of hash-table operations regardless of path depth.  Any
wrinkle (miss, stale sequence, stub, followed symlink without a cached
target) falls back to the shared slowpath.

On the way *out* it implements :class:`repro.vfs.walk.WalkHooks`: it rides
along slowpath walks, accumulating the state needed to repopulate the
DLHT, the PCC, symlink aliases, and deep negative dentries — and applies
it only if the global invalidation counter did not move during the walk
(§3.2's "stale slowpath results are never re-cached" rule).

Population follows the directory-reference rule (§3.2): a relative walk's
results enter the *PCC* only when the start directory itself has a valid
root-prefix entry; otherwise the lookup still succeeds (Unix semantics for
open directory handles and cwd) but is not memoized.  DLHT population is
credential-independent and always allowed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro import errors
from repro.core.coherence import Coherence
from repro.core.fastdentry import fast_of
from repro.core.negative import extend_negative_chain
from repro.core.pcc import PrefixCheckCache
from repro.core.signatures import PathHasher, SigState
from repro.sim.costs import CostModel
from repro.sim.stats import Stats
from repro.vfs import path as vfspath
from repro.vfs.dcache import Dcache
from repro.vfs.dentry import NEG_ENOTDIR, Dentry
from repro.vfs.mount import PathPos
from repro.vfs.task import Task
from repro.vfs.walk import SlowWalk, WalkHooks


class _WalkCtx:
    """Per-walk population state (the opaque ctx of WalkHooks)."""

    __slots__ = ("task", "counter_at_start", "pcc_ok", "anchor_state",
                 "cur_mount", "alias_head", "alias_state", "alias_done",
                 "saved_link", "pending_dlht", "pending_pcc",
                 "pending_alias", "pending_linktarget", "pending_deepneg",
                 "applied")

    def __init__(self, task: Task, counter: int, pcc_ok: bool,
                 anchor_state: Optional[SigState], cur_mount):
        self.task = task
        self.counter_at_start = counter
        self.pcc_ok = pcc_ok
        self.anchor_state = anchor_state
        self.cur_mount = cur_mount
        self.alias_head: Optional[Dentry] = None
        self.alias_state: Optional[SigState] = None
        self.alias_done = False
        self.saved_link: Optional[Tuple[Dentry, SigState]] = None
        self.pending_dlht: List[Tuple[Dentry, SigState, object]] = []
        self.pending_pcc: List[Dentry] = []
        self.pending_alias: List[Tuple[str, Dentry, SigState, object]] = []
        self.pending_linktarget: List[Tuple[Dentry, SigState]] = []
        self.pending_deepneg = None
        self.applied = False


class FastLookup(WalkHooks):
    """Optimized resolver: fastpath + slowpath population hooks.

    No ``__slots__`` here: one instance exists per kernel (nothing to
    save) and tests shim individual hook methods on the instance.
    """

    def __init__(self, costs: CostModel, stats: Stats, config,
                 dcache: Dcache, hasher: PathHasher, coherence: Coherence,
                 slow: SlowWalk):
        self.costs = costs
        self.stats = stats
        self.config = config
        self.dcache = dcache
        self.hasher = hasher
        self.coherence = coherence
        self.slow = slow
        slow.hooks = self
        # Hashing already charged by a failed fastpath attempt is reusable
        # by the population hooks of the fallback slowpath (the hash state
        # is resumable, §3.1), so those bytes are not charged twice.
        self._prehashed_components = 0
        self._prehashed_bytes = 0

    # ------------------------------------------------------------------
    # Fastpath resolution
    # ------------------------------------------------------------------

    def resolve(self, task: Task, path: str, *, follow_last: bool = True,
                intent_create: bool = False, create_dir: bool = False,
                dirfd_pos: Optional[PathPos] = None,
                count_stats: bool = True) -> PathPos:
        """Resolve ``path``, trying the fastpath first."""
        if count_stats:
            self.stats.bump("lookup")
        self._prehashed_components = 0
        self._prehashed_bytes = 0
        absolute, comps, must_dir = vfspath.split(path)
        if self.config.lexical_dotdot:
            comps = vfspath.lexical_normalize(comps)
        start = task.root if absolute else (dirfd_pos or task.cwd)
        # The fastpath sets up less state than a full nameidata; the
        # difference is charged on fallback, where the slowpath completes
        # the setup.
        self.costs.charge_in("init", "fastpath_init")
        outcome = self._try_fastpath(task, start, comps, path,
                                     must_dir=must_dir,
                                     follow_last=follow_last,
                                     intent_create=intent_create,
                                     create_dir=create_dir)
        if outcome is not None:
            kind, payload = outcome
            self.stats.bump("fastpath_hit")
            self.costs.charge_in("final", "lookup_final")
            if kind == "raise":
                raise payload
            return payload
        self.stats.bump("fastpath_miss")
        self.costs.charge_in("init", "fastpath_init")  # complete the nameidata
        try:
            result = self.slow.resolve(task, path, follow_last=follow_last,
                                       intent_create=intent_create,
                                       create_dir=create_dir,
                                       dirfd_pos=dirfd_pos,
                                       count_stats=False,
                                       charge_setup=False)
        finally:
            self._prehashed_components = 0
            self._prehashed_bytes = 0
        self.costs.charge_in("final", "lookup_final")
        return result

    def pcc_for(self, cred) -> PrefixCheckCache:
        """The cred's PCC (created and registered on first use)."""
        if cred.pcc is None:
            if self.config.pcc_adaptive:
                from repro.core.pcc import AdaptivePrefixCheckCache
                cred.pcc = AdaptivePrefixCheckCache(
                    self.costs, self.stats, self.config.pcc_capacity,
                    max_capacity=self.config.pcc_max_capacity)
            else:
                cred.pcc = PrefixCheckCache(self.costs, self.stats,
                                            self.config.pcc_capacity)
            self.coherence.pccs.append(cred.pcc)
        return cred.pcc

    def _state_of(self, dentry: Dentry) -> Optional[SigState]:
        fast = dentry.fast
        if fast is None:
            return None
        return fast.hash_state

    def _extend(self, state: SigState, name: str,
                prehashed: bool = False) -> SigState:
        extra = len(name) + (1 if state.length else 0)
        if not prehashed and self._prehashed_components > 0:
            # This component's hashing was already charged by the failed
            # fastpath attempt; resume its state for free.
            self._prehashed_components -= 1
            self._prehashed_bytes = max(0, self._prehashed_bytes - extra)
        else:
            self.costs.charge_in("hash", self.hasher.cost_primitive,
                                 nbytes=extra)
        return self.hasher.extend(state, name)

    def _extend_probe(self, state: SigState, name: str) -> SigState:
        """Hash during a fastpath attempt (reusable on fallback)."""
        state = self._extend(state, name, prehashed=True)
        self._prehashed_components += 1
        self._prehashed_bytes += len(name) + 1
        return state

    def _try_fastpath(self, task: Task, start: PathPos, comps: List[str],
                      path_hint: str, *, must_dir: bool, follow_last: bool,
                      intent_create: bool, create_dir: bool):
        """Returns ('ok', PathPos), ('raise', FsError), or None (fallback)."""
        ns = task.ns
        dlht = ns.dlht
        if dlht is None:
            return None
        if not comps:
            dentry = start.dentry
            if dentry.is_negative:
                return ("raise", errors.ENOENT(path_hint))
            return ("ok", start)
        pcc = self.pcc_for(task.cred)
        cur_pos = start
        state = self._state_of(start.dentry)
        if state is None:
            return None
        i = 0
        total = len(comps)
        extend_probe = self._extend_probe
        finish = self.hasher.finish
        while i < total:
            if comps[i] == "..":
                # Linux dot-dot semantics: one extra fastpath-validated
                # hop per parent reference (§4.2).
                self.costs.charge("dotdot_extra_lookup")
                cur_pos = ns.cross_down(ns.parent_pos(cur_pos, task.root))
                state = self._state_of(cur_pos.dentry)
                if state is None:
                    return None
                i += 1
                if i == total:
                    dentry = cur_pos.dentry
                    if dentry.is_negative:
                        return ("raise", errors.ENOENT(path_hint))
                    return ("ok", cur_pos)
                continue
            j = i
            while j < total and comps[j] != "..":
                j += 1
            seg_state = state
            for name in comps[i:j]:
                seg_state = extend_probe(seg_state, name)
            with self.costs.scope("htlookup"):
                found = dlht.probe(finish(seg_state))
            if found is None or found.dead:
                return None
            if j == total:
                return self._finish_hit(task, pcc, found, path_hint,
                                        must_dir=must_dir,
                                        follow_last=follow_last,
                                        intent_create=intent_create,
                                        create_dir=create_dir)
            # Interior prefix (a ".." follows): must be a plain cached
            # directory with a valid prefix check.
            if (found.is_alias or found.is_negative or found.is_stub
                    or found.is_symlink or not found.is_dir):
                return None
            with self.costs.scope("perm"):
                if not pcc.probe(found):
                    return None
            fast = found.fast
            if fast is None or fast.mount is None:
                return None
            cur_pos = PathPos(fast.mount, found)
            state = seg_state
            i = j
        return None  # unreachable

    def _finish_hit(self, task: Task, pcc: PrefixCheckCache, found: Dentry,
                    path_hint: str, *, must_dir: bool, follow_last: bool,
                    intent_create: bool, create_dir: bool):
        result = found
        if found.is_alias:
            target = found.alias_target
            if target is None or target.dead:
                return None
            with self.costs.scope("perm"):
                if not pcc.probe(found) or not pcc.probe(target):
                    return None
            result = target
        elif found.is_stub:
            return None
        else:
            with self.costs.scope("perm"):
                if not pcc.probe(found):
                    return None
        if result.is_symlink and (follow_last or must_dir):
            resolved = self._follow_cached_link(task, pcc, result)
            if resolved is None:
                return None
            result = resolved
        if self.config.force_fastpath_miss:
            # Fig 6 worst case: full fastpath work, forced fallback.
            return None
        if result.is_negative:
            return self._negative_hit(result, path_hint,
                                      must_dir=must_dir,
                                      intent_create=intent_create,
                                      create_dir=create_dir)
        if must_dir and not result.is_dir:
            self.stats.bump("negative_hit")
            return ("raise", errors.ENOTDIR(path_hint))
        fast = result.fast
        if fast is None or fast.mount is None:
            return None
        self.costs.charge_in("final", "mount_flag_check")
        return ("ok", PathPos(fast.mount, result))

    def _follow_cached_link(self, task: Task, pcc: PrefixCheckCache,
                            link: Dentry) -> Optional[Dentry]:
        """Resolve a final symlink via its stored target signature (§4.2)."""
        fast = link.fast
        if fast is None or fast.link_target_state is None:
            return None
        dlht = task.ns.dlht
        with self.costs.scope("htlookup"):
            target = dlht.probe(self.hasher.finish(fast.link_target_state))
        if target is None or target.dead or target.is_alias \
                or target.is_stub or target.is_symlink:
            return None
        with self.costs.scope("perm"):
            if not pcc.probe(target):
                return None
        return target

    def _negative_hit(self, result: Dentry, path_hint: str, *,
                      must_dir: bool, intent_create: bool,
                      create_dir: bool):
        self.stats.bump("negative_hit")
        if result.neg_kind == NEG_ENOTDIR:
            return ("raise", errors.ENOTDIR(path_hint))
        if intent_create:
            parent = result.parent
            if parent is None or parent.is_negative or not parent.is_dir:
                return ("raise", errors.ENOENT(path_hint))
            if must_dir and not create_dir:
                return ("raise", errors.ENOENT(path_hint))
            fast = result.fast
            if fast is None or fast.mount is None:
                return None
            return ("ok", PathPos(fast.mount, result))
        return ("raise", errors.ENOENT(path_hint))

    # ------------------------------------------------------------------
    # WalkHooks: slowpath population
    # ------------------------------------------------------------------

    def begin(self, task: Task, start: PathPos, absolute: bool):
        ns = task.ns
        if ns.dlht is None:
            return None
        anchor = self._state_of(start.dentry)
        if anchor is None:
            anchor = self._recompute_state(task, start)
        pcc = self.pcc_for(task.cred)
        if start.dentry is ns.root_mount.root_dentry:
            pcc_ok = True
        else:
            with self.costs.scope("perm"):
                pcc_ok = pcc.probe(start.dentry)
        return _WalkCtx(task, self.coherence.counter, pcc_ok, anchor,
                        start.mount)

    def step(self, ctx, name: str, child: Dentry, result: PathPos) -> None:
        if ctx is None:
            return
        target = result.dentry
        if ctx.anchor_state is not None:
            ctx.anchor_state = self._extend(ctx.anchor_state, name)
            ctx.pending_dlht.append((target, ctx.anchor_state, result.mount))
        ctx.pending_pcc.append(target)
        if ctx.alias_head is not None and ctx.alias_state is not None:
            ctx.alias_state = self._extend(ctx.alias_state, name)
            ctx.pending_alias.append((name, target, ctx.alias_state,
                                      result.mount))
        ctx.cur_mount = result.mount

    def dotdot(self, ctx, result: PathPos) -> None:
        if ctx is None:
            return
        ctx.anchor_state = self._state_of(result.dentry)
        ctx.alias_head = None
        ctx.alias_state = None
        ctx.cur_mount = result.mount
        ctx.pending_pcc.append(result.dentry)

    def symlink_begin(self, ctx, link: Dentry, absolute_target: bool) -> None:
        if ctx is None:
            return
        ctx.saved_link = None
        if not ctx.alias_done and ctx.anchor_state is not None:
            link_state = self._extend(ctx.anchor_state, link.name)
            ctx.pending_dlht.append((link, link_state, ctx.cur_mount))
            ctx.pending_pcc.append(link)
            ctx.saved_link = (link, link_state)
        ctx.alias_done = True
        ctx.alias_head = None
        ctx.alias_state = None
        if absolute_target:
            ctx.anchor_state = self.hasher.EMPTY
            ctx.cur_mount = ctx.task.ns.root_mount
        # A relative target resolves from the link's parent, where the
        # anchor already stands.

    def symlink(self, ctx, link: Dentry, target: PathPos) -> None:
        if ctx is None:
            return
        if ctx.saved_link is not None and ctx.saved_link[0] is link:
            ctx.alias_head = link
            ctx.alias_state = ctx.saved_link[1]
            if ctx.anchor_state is not None:
                ctx.pending_linktarget.append((link, ctx.anchor_state))
            ctx.saved_link = None
        ctx.cur_mount = target.mount
        if ctx.anchor_state is None:
            ctx.anchor_state = self._state_of(target.dentry)

    def negative_tail(self, ctx, neg: Dentry, remaining: List[str],
                      kind: str) -> None:
        if ctx is None:
            return
        if ctx.anchor_state is not None and not neg.dead:
            state = self._extend(ctx.anchor_state, neg.name)
            ctx.pending_dlht.append((neg, state, ctx.cur_mount))
            ctx.pending_pcc.append(neg)
            if self.config.deep_negative and remaining:
                ctx.pending_deepneg = (neg, list(remaining), kind, state)
        self._apply(ctx)

    def finish(self, ctx, final: PathPos) -> None:
        if ctx is None:
            return
        self._apply(ctx)

    # -- deferred application (guarded by the invalidation counter) ---------

    @staticmethod
    def _on_revalidating_sb(dentry: Dentry) -> bool:
        """True when the dentry's superblock forbids direct lookup (§4.3:
        stateless network file systems revalidate every component, so
        caching their paths in the DLHT/PCC would serve stale answers)."""
        node = dentry
        while node is not None:
            if node.inode is not None:
                return node.inode.fs.requires_revalidation
            node = node.parent
        return False

    def _apply(self, ctx: "_WalkCtx") -> None:
        if ctx.applied:
            return
        ctx.applied = True
        if self.coherence.counter != ctx.counter_at_start:
            self.stats.bump("populate_abort")
            return
        dlht = ctx.task.ns.dlht
        for dentry, state, mount in ctx.pending_dlht:
            if dentry.dead or self._on_revalidating_sb(dentry):
                continue
            fast = fast_of(dentry)
            fast.hash_state = state
            fast.mount = mount
            dlht.insert(dentry, self.hasher.finish(state))
        for link, tstate in ctx.pending_linktarget:
            if not link.dead and not self._on_revalidating_sb(link):
                fast_of(link).link_target_state = tstate
        pcc = self.pcc_for(ctx.task.cred) if ctx.pcc_ok else None
        self._apply_aliases(ctx, dlht, pcc)
        self._apply_deep_negatives(ctx, dlht, pcc)
        if pcc is not None:
            for dentry in ctx.pending_pcc:
                if not dentry.dead and not self._on_revalidating_sb(dentry):
                    pcc.insert(dentry)

    def _apply_aliases(self, ctx, dlht, pcc) -> None:
        cur = ctx.alias_head
        if cur is None or self._on_revalidating_sb(cur):
            return
        for name, target, state, mount in ctx.pending_alias:
            if cur.dead or target.dead:
                return
            child = cur.children.get(name)
            if child is None:
                child = self.dcache.d_alloc_alias(cur, name, target)
            elif child.is_alias:
                child.alias_target = target
            else:
                return
            fast = fast_of(child)
            fast.hash_state = state
            fast.mount = mount
            dlht.insert(child, self.hasher.finish(state))
            if pcc is not None:
                pcc.insert(child)
            cur = child

    def _apply_deep_negatives(self, ctx, dlht, pcc) -> None:
        if ctx.pending_deepneg is None or not self.config.deep_negative:
            return
        neg, remaining, kind, state = ctx.pending_deepneg
        if neg.dead or self._on_revalidating_sb(neg):
            return
        chain = extend_negative_chain(self.dcache, neg, remaining, kind)
        for child in chain:
            state = self._extend(state, child.name)
            fast = fast_of(child)
            fast.hash_state = state
            fast.mount = ctx.cur_mount
            dlht.insert(child, self.hasher.finish(state))
            if pcc is not None:
                pcc.insert(child)
        self.stats.bump("deep_negative_chain")

    # -- canonical-path state recomputation -----------------------------------

    def _recompute_state(self, task: Task,
                         pos: PathPos) -> Optional[SigState]:
        """Rebuild a dentry's canonical-path hash state from the tree."""
        ns = task.ns
        names: List[str] = []
        cur = pos
        for _ in range(vfspath.PATH_MAX):
            if (cur.mount is ns.root_mount
                    and cur.dentry is ns.root_mount.root_dentry):
                break
            if cur.dentry is cur.mount.root_dentry:
                if cur.mount.parent is None:
                    break
                cur = PathPos(cur.mount.parent, cur.mount.mountpoint)
                continue
            if cur.dentry.parent is None:
                return None
            names.append(cur.dentry.name)
            cur = PathPos(cur.mount, cur.dentry.parent)
        state = self.hasher.EMPTY
        for name in reversed(names):
            state = self._extend(state, name)
        fast = fast_of(pos.dentry)
        fast.hash_state = state
        fast.mount = pos.mount
        return state
