"""The fastpath lookup engine (§3, §4).

:class:`FastLookup` is the optimized kernel's resolver.  On the way *in*
it attempts a direct lookup: hash the canonical path (resuming from the
start dentry's stored state), probe the namespace's DLHT, validate the
memoized prefix check in the caller's PCC, and — on a hit — finish after
a constant number of hash-table operations regardless of path depth.  Any
wrinkle (miss, stale sequence, stub, followed symlink without a cached
target) falls back to the shared slowpath.

On the way *out* it implements :class:`repro.vfs.walk.WalkHooks`: it rides
along slowpath walks, accumulating the state needed to repopulate the
DLHT, the PCC, symlink aliases, and deep negative dentries — and applies
it only if the global invalidation counter did not move during the walk
(§3.2's "stale slowpath results are never re-cached" rule).

Population follows the directory-reference rule (§3.2): a relative walk's
results enter the *PCC* only when the start directory itself has a valid
root-prefix entry; otherwise the lookup still succeeds (Unix semantics for
open directory handles and cwd) but is not memoized.  DLHT population is
credential-independent and always allowed.

Lazy coherence (``optimized-lazy``, see docs/coherence.md)
----------------------------------------------------------

Under epoch-based lazy invalidation a mutation stamps only the mutated
dentry, so a DLHT/PCC hit may be stale and must earn its answer:

* A probe hit is accepted in O(1) when it is the dentry's *primary*
  registration and the dentry's ``epoch_snapshot`` is current (no
  mutation anywhere since the entry was last validated).
* Otherwise the hit walks the dentry's ancestor chain (crossing mount
  boundaries), collecting the canonical component names and the highest
  epoch stamp.  A snapshot older than that high-water mark forces a
  recompute of the canonical-path hash; a signature mismatch evicts the
  stale key (touch-time eviction), a match refreshes the entry in place.
* Prefix-check staleness is handled the same way: PCC entries carry the
  epoch at which they were inserted and are compared against the chain's
  high-water mark; a stale-but-correct prefix is re-proved with real DAC
  (and LSM) checks and re-memoized.

The fastpath also *completes* trailing components in lazy mode: when the
full-path probe misses but the parent prefix is cached and valid, the
last component is resolved right here (one ``d_lookup`` or one FS lookup)
and populated, instead of falling back to a full slowpath walk — this is
what makes rename/create churn cheap end-to-end, not just mutation-side.

Resolution-memo recording (see :mod:`repro.core.resmemo`)
---------------------------------------------------------

When the resolution memo records a resolve through this engine, every
charge flows through ``CostModel.charge``/``charge_in`` and is captured
by the attached recorder — no explicit hooks here.  The contract this
module upholds for replayability is that a *steady-state* hit's only
host-visible side effects are dcache-LRU touches and PCC
``move_to_end`` reorders (both captured and mirrored on replay);
anything that populates or rehashes state (DLHT/PCC inserts, stub
fills, lazy re-arms) makes two consecutive executions observably
different, which is exactly what keeps such resolutions out of the
memo's confirmed set.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro import errors
from repro.core.coherence import Coherence
from repro.core.fastdentry import fast_of
from repro.core.arena import FLAG_MOUNTPOINT
from repro.core.negative import extend_negative_chain
from repro.core.pcc import PrefixCheckCache
from repro.core.signatures import PathHasher, SigState
from repro.sim.costs import CostModel
from repro.sim.stats import Stats
from repro.vfs import path as vfspath
from repro.vfs import permissions as perms
from repro.vfs.dcache import Dcache
from repro.vfs.dentry import NEG_ENOTDIR, Dentry
from repro.vfs.lsm import NullLsm
from repro.vfs.mount import PathPos
from repro.vfs.task import Task
from repro.vfs.walk import SlowWalk, WalkHooks

#: Returned (lazy mode) when validation discarded the probed key: the
#: slot is free now, so the caller may retry trailing-component
#: completion before giving up and taking the slowpath.
_RETRY_COMPLETE = object()


class _WalkCtx:
    """Per-walk population state (the opaque ctx of WalkHooks)."""

    __slots__ = ("task", "counter_at_start", "pcc_ok", "anchor_state",
                 "cur_mount", "alias_head", "alias_state", "alias_done",
                 "saved_link", "pending_dlht", "pending_pcc",
                 "pending_alias", "pending_linktarget", "pending_deepneg",
                 "applied")

    def __init__(self, task: Task, counter: int, pcc_ok: bool,
                 anchor_state: Optional[SigState], cur_mount):
        self.task = task
        self.counter_at_start = counter
        self.pcc_ok = pcc_ok
        self.anchor_state = anchor_state
        self.cur_mount = cur_mount
        self.alias_head: Optional[Dentry] = None
        self.alias_state: Optional[SigState] = None
        self.alias_done = False
        self.saved_link: Optional[Tuple[Dentry, SigState]] = None
        self.pending_dlht: List[Tuple[Dentry, SigState, object]] = []
        self.pending_pcc: List[Dentry] = []
        self.pending_alias: List[Tuple[str, Dentry, SigState, object]] = []
        self.pending_linktarget: List[Tuple[Dentry, SigState]] = []
        self.pending_deepneg = None
        self.applied = False


class FastLookup(WalkHooks):
    """Optimized resolver: fastpath + slowpath population hooks.

    No ``__slots__`` here: one instance exists per kernel (nothing to
    save) and tests shim individual hook methods on the instance.
    """

    def __init__(self, costs: CostModel, stats: Stats, config,
                 dcache: Dcache, hasher: PathHasher, coherence: Coherence,
                 slow: SlowWalk):
        self.costs = costs
        self.stats = stats
        self.config = config
        self.dcache = dcache
        self.hasher = hasher
        self.coherence = coherence
        self.slow = slow
        self.lazy = bool(config.lazy_invalidation)
        # Every dentry this kernel walks lives in the dcache's arena (a
        # child is allocated from its parent's arena, roots from the
        # cache's), so the lazy chain walks below bind these columns once
        # and index them by dentry handle — no per-hop property calls.
        self._epochs = dcache.arena.epoch
        self._flagsarr = dcache.arena.flags
        slow.hooks = self
        # Hashing already charged by a failed fastpath attempt is reusable
        # by the population hooks of the fallback slowpath (the hash state
        # is resumable, §3.1), so those bytes are not charged twice.
        self._prehashed_components = 0
        self._prehashed_bytes = 0

    # ------------------------------------------------------------------
    # Fastpath resolution
    # ------------------------------------------------------------------

    def resolve(self, task: Task, path: str, *, follow_last: bool = True,
                intent_create: bool = False, create_dir: bool = False,
                dirfd_pos: Optional[PathPos] = None,
                count_stats: bool = True) -> PathPos:
        """Resolve ``path``, trying the fastpath first."""
        if count_stats:
            self.stats.bump("lookup")
        self._prehashed_components = 0
        self._prehashed_bytes = 0
        absolute, comps, must_dir = vfspath.split(path)
        if self.config.lexical_dotdot:
            comps = vfspath.lexical_normalize(comps)
        start = task.root if absolute else (dirfd_pos or task.cwd)
        # The fastpath sets up less state than a full nameidata; the
        # difference is charged on fallback, where the slowpath completes
        # the setup.
        self.costs.charge_in("init", "fastpath_init")
        outcome = self._try_fastpath(task, start, comps, path,
                                     must_dir=must_dir,
                                     follow_last=follow_last,
                                     intent_create=intent_create,
                                     create_dir=create_dir)
        if outcome is not None:
            kind, payload = outcome
            self.stats.bump("fastpath_hit")
            self.costs.charge_in("final", "lookup_final")
            if kind == "raise":
                raise payload
            return payload
        self.stats.bump("fastpath_miss")
        self.costs.charge_in("init", "fastpath_init")  # complete the nameidata
        try:
            result = self.slow.resolve(task, path, follow_last=follow_last,
                                       intent_create=intent_create,
                                       create_dir=create_dir,
                                       dirfd_pos=dirfd_pos,
                                       count_stats=False,
                                       charge_setup=False)
        finally:
            self._prehashed_components = 0
            self._prehashed_bytes = 0
        self.costs.charge_in("final", "lookup_final")
        return result

    def pcc_for(self, cred) -> PrefixCheckCache:
        """The cred's PCC (created and registered on first use)."""
        if cred.pcc is None:
            if self.config.pcc_adaptive:
                from repro.core.pcc import AdaptivePrefixCheckCache
                cred.pcc = AdaptivePrefixCheckCache(
                    self.costs, self.stats, self.config.pcc_capacity,
                    max_capacity=self.config.pcc_max_capacity)
            else:
                cred.pcc = PrefixCheckCache(self.costs, self.stats,
                                            self.config.pcc_capacity)
            self.coherence.track_pcc(cred.pcc)
        return cred.pcc

    def _state_of(self, dentry: Dentry) -> Optional[SigState]:
        fast = dentry.fast
        if fast is None:
            return None
        return fast.hash_state

    def _extend(self, state: SigState, name: str,
                prehashed: bool = False) -> SigState:
        extra = len(name) + (1 if state.length else 0)
        if not prehashed and self._prehashed_components > 0:
            # This component's hashing was already charged by the failed
            # fastpath attempt; resume its state for free.
            self._prehashed_components -= 1
            self._prehashed_bytes = max(0, self._prehashed_bytes - extra)
        else:
            self.costs.charge_in("hash", self.hasher.cost_primitive,
                                 nbytes=extra)
        return self.hasher.extend(state, name)

    def _extend_probe(self, state: SigState, name: str) -> SigState:
        """Hash during a fastpath attempt (reusable on fallback)."""
        state = self._extend(state, name, prehashed=True)
        self._prehashed_components += 1
        self._prehashed_bytes += len(name) + 1
        return state

    def _try_fastpath(self, task: Task, start: PathPos, comps: List[str],
                      path_hint: str, *, must_dir: bool, follow_last: bool,
                      intent_create: bool, create_dir: bool):
        """Returns ('ok', PathPos), ('raise', FsError), or None (fallback)."""
        ns = task.ns
        dlht = ns.dlht
        if dlht is None:
            return None
        if not comps:
            dentry = start.dentry
            rec = self.costs.recorder
            if rec is not None:
                # The conclusion rests on the start's own state (beyond
                # the seq pin): negativity and inode kind.
                rec.deps.append(dentry)
            if dentry.is_negative:
                return ("raise", errors.ENOENT(path_hint))
            return ("ok", start)
        lazy = self.lazy
        pcc = self.pcc_for(task.cred)
        cur_pos = start
        start_floor = 0
        if lazy:
            state, start_floor = self._lazy_pos_state(task, start)
        else:
            state = self._state_of(start.dentry)
        if state is None:
            return None
        i = 0
        total = len(comps)
        extend_probe = self._extend_probe
        finish = self.hasher.finish
        while i < total:
            if comps[i] == "..":
                # Linux dot-dot semantics: one extra fastpath-validated
                # hop per parent reference (§4.2).
                self.costs.charge("dotdot_extra_lookup")
                cur_pos = ns.cross_down(ns.parent_pos(cur_pos, task.root))
                if lazy:
                    state, start_floor = self._lazy_pos_state(task, cur_pos)
                else:
                    state = self._state_of(cur_pos.dentry)
                if state is None:
                    return None
                i += 1
                if i == total:
                    dentry = cur_pos.dentry
                    rec = self.costs.recorder
                    if rec is not None:
                        # Dot-dot terminal: reached through the mount
                        # tree, not a probe — pin its state explicitly.
                        rec.deps.append(dentry)
                    if dentry.is_negative:
                        return ("raise", errors.ENOENT(path_hint))
                    return ("ok", cur_pos)
                continue
            j = i
            while j < total and comps[j] != "..":
                j += 1
            seg_state = state
            prev_state = state
            for name in comps[i:j]:
                prev_state = seg_state
                seg_state = extend_probe(seg_state, name)
            sig = finish(seg_state)
            with self.costs.scope("htlookup"):
                found = dlht.probe(sig)
            if found is None or found.dead:
                if lazy and i == 0 and j == total:
                    return self._try_complete(
                        task, ns, pcc, cur_pos, prev_state, seg_state, sig,
                        comps, path_hint, must_dir=must_dir,
                        follow_last=follow_last, intent_create=intent_create,
                        create_dir=create_dir, start_floor=start_floor)
                return None
            if j == total:
                if lazy:
                    anchor = (cur_pos.dentry, cur_pos.mount, comps[i:j],
                              seg_state, start_floor)
                    outcome = self._finish_hit_lazy(
                        task, ns, pcc, found, sig, path_hint,
                        must_dir=must_dir, follow_last=follow_last,
                        intent_create=intent_create, create_dir=create_dir,
                        anchor=anchor)
                    if outcome is _RETRY_COMPLETE:
                        if i == 0:
                            return self._try_complete(
                                task, ns, pcc, cur_pos, prev_state,
                                seg_state, sig, comps, path_hint,
                                must_dir=must_dir, follow_last=follow_last,
                                intent_create=intent_create,
                                create_dir=create_dir,
                                start_floor=start_floor)
                        return None
                    return outcome
                return self._finish_hit(task, pcc, found, path_hint,
                                        must_dir=must_dir,
                                        follow_last=follow_last,
                                        intent_create=intent_create,
                                        create_dir=create_dir)
            # Interior prefix (a ".." follows): must be a plain cached
            # directory with a valid prefix check.
            if (found.is_alias or found.is_negative or found.is_stub
                    or found.is_symlink or not found.is_dir):
                return None
            if lazy:
                anchor = (cur_pos.dentry, cur_pos.mount, comps[i:j],
                          seg_state, start_floor)
                verdict = self._validate_hit(task, ns, pcc, found, sig,
                                             anchor=anchor)
                if verdict is None or verdict is _RETRY_COMPLETE:
                    return None
                start_floor = verdict
            else:
                with self.costs.scope("perm"):
                    if not pcc.probe(found):
                        return None
            fast = found.fast
            if fast is None or fast.mount is None:
                return None
            cur_pos = PathPos(fast.mount, found)
            state = seg_state
            i = j
        return None  # unreachable

    def _finish_hit(self, task: Task, pcc: PrefixCheckCache, found: Dentry,
                    path_hint: str, *, must_dir: bool, follow_last: bool,
                    intent_create: bool, create_dir: bool):
        result = found
        if found.is_alias:
            target = found.alias_target
            if target is None or target.dead:
                return None
            with self.costs.scope("perm"):
                if not pcc.probe(found) or not pcc.probe(target):
                    return None
            result = target
        elif found.is_stub:
            return None
        else:
            with self.costs.scope("perm"):
                if not pcc.probe(found):
                    return None
        if result.is_symlink and (follow_last or must_dir):
            resolved = self._follow_cached_link(task, pcc, result)
            if resolved is None:
                return None
            result = resolved
        if self.config.force_fastpath_miss:
            # Fig 6 worst case: full fastpath work, forced fallback.
            return None
        if result.is_negative:
            return self._negative_hit(result, path_hint,
                                      must_dir=must_dir,
                                      intent_create=intent_create,
                                      create_dir=create_dir)
        if must_dir and not result.is_dir:
            self.stats.bump("negative_hit")
            return ("raise", errors.ENOTDIR(path_hint))
        fast = result.fast
        if fast is None or fast.mount is None:
            return None
        self.costs.charge_in("final", "mount_flag_check")
        return ("ok", PathPos(fast.mount, result))

    def _follow_cached_link(self, task: Task, pcc: PrefixCheckCache,
                            link: Dentry) -> Optional[Dentry]:
        """Resolve a final symlink via its stored target signature (§4.2)."""
        fast = link.fast
        if fast is None or fast.link_target_state is None:
            return None
        dlht = task.ns.dlht
        tsig = self.hasher.finish(fast.link_target_state)
        with self.costs.scope("htlookup"):
            target = dlht.probe(tsig)
        if target is None or target.dead or target.is_alias \
                or target.is_stub or target.is_symlink:
            return None
        if self.lazy:
            verdict = self._validate_hit(task, task.ns, pcc, target, tsig)
            if verdict is None or verdict is _RETRY_COMPLETE:
                return None
            return target
        with self.costs.scope("perm"):
            if not pcc.probe(target):
                return None
        return target

    def _negative_hit(self, result: Dentry, path_hint: str, *,
                      must_dir: bool, intent_create: bool,
                      create_dir: bool):
        self.stats.bump("negative_hit")
        rec = self.costs.recorder
        if rec is not None:
            # The negativity conclusion (and, for intent_create, the
            # parent's viability) must be pinned by the memo.
            rec.deps.append(result)
        if result.neg_kind == NEG_ENOTDIR:
            return ("raise", errors.ENOTDIR(path_hint))
        if intent_create:
            parent = result.parent
            if rec is not None and parent is not None:
                rec.deps.append(parent)
            if parent is None or parent.is_negative or not parent.is_dir:
                return ("raise", errors.ENOENT(path_hint))
            if must_dir and not create_dir:
                return ("raise", errors.ENOENT(path_hint))
            fast = result.fast
            if fast is None or fast.mount is None:
                return None
            return ("ok", PathPos(fast.mount, result))
        return ("raise", errors.ENOENT(path_hint))

    # ------------------------------------------------------------------
    # Lazy coherence: touch-time validation (optimized-lazy only)
    # ------------------------------------------------------------------

    def _lazy_pos_state(self, task: Task, pos: PathPos):
        """Validated hash state of a *trusted* position (start dir, ``..``
        hop, walk anchor).

        POSIX resolves relative lookups from an open directory handle or
        cwd regardless of renames or permission changes above it, so this
        is path-only revalidation: no prefix checks, no mount-shadowing
        concerns (the caller stands *at* the position).  Returns
        ``(state, floor)`` where ``floor`` is the chain's epoch high-water
        mark (the minimum epoch a PCC entry for this dentry must carry),
        or ``(None, 0)`` when the position's canonical path is gone.
        """
        dentry = pos.dentry
        fast = dentry.fast
        gepoch = self.coherence.epoch
        # The O(1) accept is one integer compare riding the cache line
        # the fastpath already loads; only chain nodes are charged.
        if fast is not None and fast.hash_state is not None \
                and fast.epoch_snapshot >= gepoch:
            return fast.hash_state, fast.epoch_snapshot
        ns = task.ns
        names: List[str] = []
        high = 0
        hops = 0
        cur = pos
        epochs = self._epochs
        root_mount = ns.root_mount
        root_dentry = root_mount.root_dentry
        for _ in range(vfspath.PATH_MAX):
            d = cur.dentry
            h = d.h
            if h < 0:  # retired handle <=> dead dentry
                return None, 0
            e = epochs[h]
            if e > high:
                high = e
            if cur.mount is root_mount and d is root_dentry:
                break
            if d is cur.mount.root_dentry:
                if cur.mount.parent is None:
                    return None, 0
                cur = PathPos(cur.mount.parent, cur.mount.mountpoint)
                hops += 1
                continue
            parent = d.parent
            if parent is None:
                return None, 0
            names.append(d.name)
            cur = PathPos(cur.mount, parent)
            hops += 1
        else:
            return None, 0
        self.costs.charge_in("lazy", "lazy_validate", times=hops + 1)
        fast = fast_of(dentry)
        if fast.hash_state is not None and fast.epoch_snapshot >= high:
            # Still current — only the global epoch moved (mutations
            # elsewhere in the tree).  Re-arm the snapshot.
            fast.epoch_snapshot = gepoch
            return fast.hash_state, high
        names.reverse()
        if names:
            nbytes = sum(len(n) for n in names) + len(names) - 1
            self.costs.charge_in("hash", self.hasher.cost_primitive,
                                 times=len(names), nbytes=nbytes)
        state = self.hasher.extend_components(self.hasher.EMPTY, names)
        fast.hash_state = state
        fast.mount = pos.mount
        fast.epoch_snapshot = gepoch
        return state, high

    def _lazy_chain(self, ns, dentry: Dentry):
        """Walk a probed dentry's ancestor chain (crossing mounts).

        Returns ``(names, perm_nodes, high, reverify_ok)`` or None when
        the chain is broken (dead/detached node, dead mount, or a
        shadowing mountpoint mid-path): ``names`` are the canonical
        components root-first, ``perm_nodes`` the directories a slowpath
        walk would search-check (everything but the dentry itself and
        mountpoint dentries that mounts shadow), ``high`` the largest
        epoch stamp on the chain, and ``reverify_ok`` False when some
        intermediate is not a plain directory (alias chains), in which
        case prefix checks cannot be re-proved here.
        """
        fast = dentry.fast
        cur = dentry
        cur_mount = fast.mount
        names: List[str] = []
        perm_nodes: List[Dentry] = []
        high = 0
        hops = 0
        reverify_ok = True
        skip_perm = False  # set when we just hopped onto a mountpoint
        epochs = self._epochs
        flagsarr = self._flagsarr
        mount_at = ns.mount_at
        root_mount = ns.root_mount
        root_dentry = root_mount.root_dentry
        for _ in range(vfspath.PATH_MAX):
            h = cur.h
            if h < 0:  # retired handle <=> dead dentry
                return None
            e = epochs[h]
            if e > high:
                high = e
            if cur_mount is root_mount and cur is root_dentry:
                if cur is not dentry:
                    perm_nodes.append(cur)
                self._charge_chain(hops)
                names.reverse()
                return names, perm_nodes, high, reverify_ok
            if cur is cur_mount.root_dentry:
                parent_mount = cur_mount.parent
                if parent_mount is None:
                    return None  # detached mount
                mountpoint = cur_mount.mountpoint
                if mount_at(parent_mount, mountpoint) is not cur_mount:
                    return None  # the mount is gone from this namespace
                if cur is not dentry:
                    perm_nodes.append(cur)  # mounted root is search-checked
                cur = mountpoint
                cur_mount = parent_mount
                hops += 1
                # The mountpoint dentry itself is shadowed (walks hop over
                # it without a search check), so skip both checks for it.
                skip_perm = True
                continue
            if cur is not dentry:
                if skip_perm:
                    skip_perm = False
                else:
                    if (flagsarr[h] & FLAG_MOUNTPOINT) \
                            and mount_at(cur_mount, cur) is not None:
                        return None  # a mount now shadows this prefix
                    # Plain cached directory <=> a dir inode with no
                    # alias/stub overlay (negatives have no inode).
                    ino = cur.inode
                    if (ino is not None and ino.is_dir
                            and cur.alias_target is None
                            and cur.stub is None):
                        perm_nodes.append(cur)
                    else:
                        reverify_ok = False
            parent = cur.parent
            if parent is None:
                return None
            names.append(cur.name)
            cur = parent
            hops += 1
        return None

    def _charge_chain(self, hops: int) -> None:
        self.costs.charge_in("lazy", "lazy_validate", times=max(1, hops))

    def _reverse_check(self, ns, dentry: Dentry, anchor: Dentry,
                       anchor_mount, names: List[str]):
        """Match a hit's tree-parent chain against the probed components.

        When the probe was derived by extending a validated anchor with
        ``names``, the hit is current iff walking ``len(names)`` tree
        parents (matching each name) lands exactly on the anchor, with
        no intermediate shadowed by a mount — no rehash needed.  Returns
        ``(suffix_high, perm_nodes, reverify_ok)`` on a match; False when
        the chain provably diverges from the probed components (dead
        node, name mismatch, wrong terminal, or a shadowing mount), so
        the caller can discard the key without rehashing; None when the
        chain leaves the anchor's file system mid-walk (mount-crossing
        canonical paths: only the full chain walk can decide).
        """
        high = 0
        perm_nodes: List[Dentry] = []
        reverify_ok = True
        cur = dentry
        epochs = self._epochs
        flagsarr = self._flagsarr
        mount_at = ns.mount_at
        for idx in range(len(names) - 1, -1, -1):
            h = cur.h
            # A retired handle (h < 0) <=> a dead dentry.
            if h < 0 or cur.name != names[idx]:
                return False
            e = epochs[h]
            if e > high:
                high = e
            if cur is not dentry:
                if (flagsarr[h] & FLAG_MOUNTPOINT) \
                        and mount_at(anchor_mount, cur) is not None:
                    return False  # a mount now shadows this prefix
                # Plain cached directory <=> a dir inode with no
                # alias/stub overlay (negatives have no inode).
                ino = cur.inode
                if (ino is not None and ino.is_dir
                        and cur.alias_target is None and cur.stub is None):
                    perm_nodes.append(cur)
                else:
                    reverify_ok = False
            cur = cur.parent
            if cur is None:
                return None  # crossed an fs boundary: full walk needed
        if cur is not anchor:
            return False
        ah = cur.h
        e = epochs[ah] if ah >= 0 else cur.epoch
        if e > high:
            high = e
        # The walk search-checks the anchor (start directory) too.
        ino = cur.inode
        if (ino is not None and ino.is_dir
                and cur.alias_target is None and cur.stub is None):
            perm_nodes.append(cur)
        else:
            reverify_ok = False
        self._charge_chain(len(names))
        return high, perm_nodes, reverify_ok

    def _validate_hit(self, task: Task, ns, pcc: PrefixCheckCache,
                      dentry: Dentry, sig, anchor=None):
        """Earn a lazy-mode probe hit: path validity, then prefix checks.

        ``anchor``, when given, is ``(anchor_dentry, anchor_mount, names,
        seg_state, floor)`` describing how the probed signature was
        derived (a validated position extended by ``names``); it enables
        the cheap reverse identity check in place of the full chain walk
        plus hash recompute.

        Returns the chain's epoch floor (an int) on success, None for a
        plain fallback, or :data:`_RETRY_COMPLETE` when the probed key
        was discarded (stale registration) and the caller may retry
        trailing-component completion against the now-free slot.
        """
        fast = dentry.fast
        dlht = ns.dlht
        if fast is None or fast.dlht is not dlht or fast.mount is None:
            return None
        key = (sig.index, sig.bits)
        primary = fast.dlht_key == key
        gepoch = self.coherence.epoch
        # The O(1) accept/reject is one integer compare on state the
        # probe already loaded; only chain nodes get charged below.
        if fast.hash_state is not None and fast.epoch_snapshot >= gepoch:
            if not primary:
                # The primary registration is provably current, so any
                # other key names a path this dentry no longer lives at:
                # discard it without walking the chain.
                dlht.discard_key(dentry, key)
                self.stats.bump("lazy_evict")
                return _RETRY_COMPLETE
            with self.costs.scope("perm"):
                if pcc.probe(dentry, fast.epoch_snapshot):
                    return fast.epoch_snapshot
            # Prefix check missing or epoch-stale: fall through to the
            # chain validation, which can re-prove it with DAC checks.
        perm_anchor = None
        if anchor is not None:
            a_dentry, a_mount, names, seg_state, floor = anchor
            rev = self._reverse_check(ns, dentry, a_dentry, a_mount, names)
            if rev is False:
                # The hit's tree position provably diverges from the
                # probed components: the key is stale, no rehash needed.
                dlht.discard_key(dentry, key)
                self.stats.bump("lazy_evict")
                return _RETRY_COMPLETE
        else:
            rev = None
        if rev is not None:
            # The probed components are exactly the hit's canonical tail
            # below the validated anchor: adopt the probe's hash state
            # (already charged) instead of recomputing.
            suffix_high, perm_nodes, reverify_ok = rev
            high = floor if floor > suffix_high else suffix_high
            if not primary or fast.hash_state is None \
                    or fast.epoch_snapshot < high:
                fast.hash_state = seg_state
                fast.mount = a_mount
                dlht.insert(dentry, sig)  # promotes the key to primary
                self.stats.bump("lazy_refresh")
            perm_anchor = (a_dentry, floor)
        else:
            chain = self._lazy_chain(ns, dentry)
            if chain is None:
                dlht.discard_key(dentry, key)
                self.stats.bump("lazy_evict")
                return _RETRY_COMPLETE
            names, perm_nodes, high, reverify_ok = chain
            if not primary or fast.hash_state is None \
                    or fast.epoch_snapshot < high:
                # The registration under this key predates a mutation on
                # the chain: recompute the canonical hash and compare.
                if names:
                    nbytes = sum(len(n) for n in names) + len(names) - 1
                    self.costs.charge_in("hash", self.hasher.cost_primitive,
                                         times=len(names), nbytes=nbytes)
                state = self.hasher.extend_components(self.hasher.EMPTY,
                                                      names)
                self.costs.charge("sig_compare")
                fsig = self.hasher.finish(state)
                if (fsig.index, fsig.bits) != key:
                    # The dentry no longer lives at the probed path.
                    dlht.discard_key(dentry, key)
                    self.stats.bump("lazy_evict")
                    return _RETRY_COMPLETE
                fast.hash_state = state
                dlht.insert(dentry, fsig)  # promotes the key to primary
                self.stats.bump("lazy_refresh")
        fast.epoch_snapshot = gepoch
        dh = dentry.h
        if (self._flagsarr[dh] & FLAG_MOUNTPOINT if dh >= 0
                else dentry.is_mountpoint) \
                and ns.mount_at(fast.mount, dentry) is not None:
            # The path is right but now resolves into a mounted fs; the
            # slowpath will repopulate the key with the mounted root.
            dlht.discard_key(dentry, key)
            self.stats.bump("lazy_evict")
            return _RETRY_COMPLETE
        with self.costs.scope("perm"):
            if pcc.probe(dentry, high):
                return high
        if not reverify_ok:
            return None
        cred = task.cred
        lsm = self.slow.lsm
        lsm_active = not isinstance(lsm, NullLsm)
        for node in perm_nodes:
            inode = node.inode
            self.costs.charge_in("perm", "perm_check_dac")
            if not perms.may_search(cred, inode):
                return None  # slowpath re-derives the EACCES with context
            if lsm_active:
                self.costs.charge_in("perm", "perm_check_lsm")
                if not lsm.inode_permission(cred, inode, perms.MAY_EXEC):
                    return None
        if perm_anchor is not None:
            # Anchored reprove covers the anchor and below — memoizing
            # the full-root prefix additionally needs the anchor's own
            # entry to be valid (the directory-reference rule).
            a_dentry, floor = perm_anchor
            if a_dentry is not ns.root_mount.root_dentry:
                with self.costs.scope("perm"):
                    if not pcc.probe(a_dentry, floor):
                        return high  # served, but not memoized
        pcc.insert(dentry, gepoch)
        self.stats.bump("lazy_pcc_reprove")
        return high

    def _finish_hit_lazy(self, task: Task, ns, pcc: PrefixCheckCache,
                         found: Dentry, sig, path_hint: str, *,
                         must_dir: bool, follow_last: bool,
                         intent_create: bool, create_dir: bool,
                         anchor=None):
        result = found
        target = found.alias_target
        if target is not None:  # alias hit
            if target.h < 0:  # retired handle <=> dead dentry
                return None
            verdict = self._validate_hit(task, ns, pcc, found, sig,
                                         anchor=anchor)
            if verdict is None:
                return None
            if verdict is _RETRY_COMPLETE:
                return _RETRY_COMPLETE
            tfast = target.fast
            if tfast is None or tfast.signature is None:
                return None
            tv = self._validate_hit(task, ns, pcc, target, tfast.signature)
            if tv is None or tv is _RETRY_COMPLETE:
                return None
            result = target
        elif found.inode is None and found.stub is not None:  # stub hit
            return None
        else:
            verdict = self._validate_hit(task, ns, pcc, found, sig,
                                         anchor=anchor)
            if verdict is None:
                return None
            if verdict is _RETRY_COMPLETE:
                return _RETRY_COMPLETE
        ino = result.inode
        if ino is not None and ino.is_symlink and (follow_last or must_dir):
            resolved = self._follow_cached_link(task, pcc, result)
            if resolved is None:
                return None
            result = resolved
            ino = result.inode
        if self.config.force_fastpath_miss:
            # Fig 6 worst case: full fastpath work, forced fallback.
            return None
        if ino is None and result.stub is None \
                and result.alias_target is None:  # negative hit
            return self._negative_hit(result, path_hint,
                                      must_dir=must_dir,
                                      intent_create=intent_create,
                                      create_dir=create_dir)
        if must_dir and not result.is_dir:
            self.stats.bump("negative_hit")
            return ("raise", errors.ENOTDIR(path_hint))
        fast = result.fast
        if fast is None or fast.mount is None:
            return None
        self.costs.charge_in("final", "mount_flag_check")
        return ("ok", PathPos(fast.mount, result))

    def _try_complete(self, task: Task, ns, pcc: PrefixCheckCache,
                      start_pos: PathPos, parent_state: SigState,
                      seg_state: SigState, sig, comps: List[str],
                      path_hint: str, *, must_dir: bool, follow_last: bool,
                      intent_create: bool, create_dir: bool,
                      start_floor: int):
        """Resolve just the trailing component of a full-path probe miss.

        Lazy mutations leave the prefix of a churned path cached and
        valid; falling all the way back to the slowpath would re-walk it
        component by component.  Instead, when the parent directory is
        cached (or *is* the start position) and passes validation and a
        real search check, do the one ``d_lookup``/FS lookup the slowpath
        would do for the last component, populate the caches, and finish
        the lookup right here.
        """
        if self.config.force_fastpath_miss:
            return None
        dlht = ns.dlht
        last = comps[-1]
        if len(comps) == 1:
            # Relative single-component lookup: the start position is the
            # parent, already validated by _lazy_pos_state.  No prefix
            # check is *required* (POSIX dirfd/cwd semantics) but the
            # directory-reference rule gates memoizing the child's check.
            parent = start_pos.dentry
            parent_mount = start_pos.mount
            if parent.is_negative or not parent.is_dir:
                return None
            if parent is ns.root_mount.root_dentry:
                pcc_ok = True
            else:
                with self.costs.scope("perm"):
                    pcc_ok = pcc.probe(parent, start_floor)
        else:
            psig = self.hasher.finish(parent_state)
            with self.costs.scope("htlookup"):
                parent = dlht.probe(psig)
            if parent is None or parent.dead:
                return None
            if (parent.is_alias or parent.is_negative or parent.is_stub
                    or parent.is_symlink or not parent.is_dir):
                return None
            anchor = (start_pos.dentry, start_pos.mount, comps[:-1],
                      parent_state, start_floor)
            verdict = self._validate_hit(task, ns, pcc, parent, psig,
                                         anchor=anchor)
            if verdict is None or verdict is _RETRY_COMPLETE:
                return None
            pcc_ok = True
            pfast = parent.fast
            if pfast is None or pfast.mount is None:
                return None
            parent_mount = pfast.mount
        if parent.is_mountpoint \
                and ns.mount_at(parent_mount, parent) is not None:
            return None  # path continues inside the mounted fs
        if parent.inode is None:
            return None
        fs = parent.inode.fs
        if fs.requires_revalidation:
            return None  # §4.3: never serve or cache such paths here
        # The search check the slowpath would do before the last lookup.
        cred = task.cred
        lsm = self.slow.lsm
        self.costs.charge_in("perm", "perm_check_dac")
        if not perms.may_search(cred, parent.inode):
            return None  # slowpath raises EACCES with full context
        if not isinstance(lsm, NullLsm):
            self.costs.charge_in("perm", "perm_check_lsm")
            if not lsm.inode_permission(cred, parent.inode, perms.MAY_EXEC):
                return None
        child = self.dcache.d_lookup(parent, last)
        if child is not None:
            if child.dead or child.is_stub or child.is_alias \
                    or child.is_symlink:
                return None
            if child.is_mountpoint \
                    and ns.mount_at(parent_mount, child) is not None:
                return None
            self.stats.bump("dcache_hit")
        elif parent.dir_complete:
            # §5.1: completeness proves absence without an FS call.
            self.stats.bump("dir_complete_elide")
            child = self.dcache.d_alloc(parent, last, None)
        else:
            if not (fs.baseline_negative_dentries
                    or self.config.aggressive_negative):
                # A miss could not be cached as a negative dentry; leave
                # the whole case to the slowpath rather than risk paying
                # the FS lookup twice.
                return None
            self.stats.bump("dcache_miss")
            self.stats.bump("fs_lookup")
            with self.costs.scope("miss"):
                info = fs.lookup(parent.inode.ino, last)
            if info is not None:
                inode = self.dcache.inode_table(fs).obtain(info)
                child = self.dcache.d_alloc(parent, last, inode)
                if child.is_symlink:
                    return None  # symlink tails need the slowpath
            else:
                child = self.dcache.d_alloc(parent, last, None)
        gepoch = self.coherence.epoch
        fast = fast_of(child)
        fast.hash_state = seg_state
        fast.mount = parent_mount
        fast.epoch_snapshot = gepoch
        dlht.insert(child, sig)
        if pcc_ok:
            pcc.insert(child, gepoch)
        self.stats.bump("fastpath_complete")
        if child.is_negative:
            return self._negative_hit(child, path_hint, must_dir=must_dir,
                                      intent_create=intent_create,
                                      create_dir=create_dir)
        if must_dir and not child.is_dir:
            self.stats.bump("negative_hit")
            return ("raise", errors.ENOTDIR(path_hint))
        self.costs.charge_in("final", "mount_flag_check")
        return ("ok", PathPos(parent_mount, child))

    def sweep_key(self, dlht, key) -> bool:
        """Settle one DLHT key for the background sweep; True if discarded.

        Same validation the touch path does, minus permission concerns
        (the sweep has no credential): broken chain or signature mismatch
        discards the key; a survivor is refreshed so the next touch is
        O(1) again.
        """
        dentry = dlht.peek(key)
        if dentry is None:
            return False
        self.costs.charge_in("lazy", "lazy_validate")
        fast = dentry.fast
        if dentry.dead or fast is None or fast.dlht is not dlht \
                or fast.mount is None:
            dlht.discard_key(dentry, key)
            return True
        gepoch = self.coherence.epoch
        if fast.dlht_key == key and fast.hash_state is not None \
                and fast.epoch_snapshot >= gepoch:
            return False
        ns = dlht.owner_ns() if dlht.owner_ns is not None else None
        if ns is None:
            return False
        chain = self._lazy_chain(ns, dentry)
        if chain is None:
            dlht.discard_key(dentry, key)
            return True
        names, _perm_nodes, high, _reverify_ok = chain
        if fast.dlht_key == key and fast.hash_state is not None \
                and fast.epoch_snapshot >= high:
            fast.epoch_snapshot = gepoch
            return False
        if names:
            nbytes = sum(len(n) for n in names) + len(names) - 1
            self.costs.charge_in("hash", self.hasher.cost_primitive,
                                 times=len(names), nbytes=nbytes)
        state = self.hasher.extend_components(self.hasher.EMPTY, names)
        self.costs.charge("sig_compare")
        fsig = self.hasher.finish(state)
        if (fsig.index, fsig.bits) != key:
            dlht.discard_key(dentry, key)
            return True
        fast.hash_state = state
        dlht.insert(dentry, fsig)
        fast.epoch_snapshot = gepoch
        return False

    # ------------------------------------------------------------------
    # WalkHooks: slowpath population
    # ------------------------------------------------------------------

    def begin(self, task: Task, start: PathPos, absolute: bool):
        ns = task.ns
        if ns.dlht is None:
            return None
        self.coherence.walks_active += 1
        floor = 0
        if self.lazy:
            anchor, floor = self._lazy_pos_state(task, start)
        else:
            anchor = self._state_of(start.dentry)
            if anchor is None:
                anchor = self._recompute_state(task, start)
        pcc = self.pcc_for(task.cred)
        if start.dentry is ns.root_mount.root_dentry:
            pcc_ok = True
        else:
            with self.costs.scope("perm"):
                pcc_ok = pcc.probe(start.dentry, floor)
        return _WalkCtx(task, self.coherence.counter, pcc_ok, anchor,
                        start.mount)

    def step(self, ctx, name: str, child: Dentry, result: PathPos) -> None:
        if ctx is None:
            return
        target = result.dentry
        if ctx.anchor_state is not None:
            ctx.anchor_state = self._extend(ctx.anchor_state, name)
            ctx.pending_dlht.append((target, ctx.anchor_state, result.mount))
        ctx.pending_pcc.append(target)
        if ctx.alias_head is not None and ctx.alias_state is not None:
            ctx.alias_state = self._extend(ctx.alias_state, name)
            ctx.pending_alias.append((name, target, ctx.alias_state,
                                      result.mount))
        ctx.cur_mount = result.mount

    def dotdot(self, ctx, result: PathPos) -> None:
        if ctx is None:
            return
        if self.lazy:
            ctx.anchor_state, _ = self._lazy_pos_state(ctx.task, result)
        else:
            ctx.anchor_state = self._state_of(result.dentry)
        ctx.alias_head = None
        ctx.alias_state = None
        ctx.cur_mount = result.mount
        ctx.pending_pcc.append(result.dentry)

    def symlink_begin(self, ctx, link: Dentry, absolute_target: bool) -> None:
        if ctx is None:
            return
        ctx.saved_link = None
        if not ctx.alias_done and ctx.anchor_state is not None:
            link_state = self._extend(ctx.anchor_state, link.name)
            ctx.pending_dlht.append((link, link_state, ctx.cur_mount))
            ctx.pending_pcc.append(link)
            ctx.saved_link = (link, link_state)
        ctx.alias_done = True
        ctx.alias_head = None
        ctx.alias_state = None
        if absolute_target:
            ctx.anchor_state = self.hasher.EMPTY
            ctx.cur_mount = ctx.task.ns.root_mount
        # A relative target resolves from the link's parent, where the
        # anchor already stands.

    def symlink(self, ctx, link: Dentry, target: PathPos) -> None:
        if ctx is None:
            return
        if ctx.saved_link is not None and ctx.saved_link[0] is link:
            ctx.alias_head = link
            ctx.alias_state = ctx.saved_link[1]
            if ctx.anchor_state is not None:
                ctx.pending_linktarget.append((link, ctx.anchor_state))
            ctx.saved_link = None
        ctx.cur_mount = target.mount
        if ctx.anchor_state is None:
            if self.lazy:
                ctx.anchor_state, _ = self._lazy_pos_state(ctx.task, target)
            else:
                ctx.anchor_state = self._state_of(target.dentry)

    def negative_tail(self, ctx, neg: Dentry, remaining: List[str],
                      kind: str) -> None:
        if ctx is None:
            return
        if ctx.anchor_state is not None and not neg.dead:
            state = self._extend(ctx.anchor_state, neg.name)
            ctx.pending_dlht.append((neg, state, ctx.cur_mount))
            ctx.pending_pcc.append(neg)
            if self.config.deep_negative and remaining:
                ctx.pending_deepneg = (neg, list(remaining), kind, state)
        self._apply(ctx)

    def finish(self, ctx, final: PathPos) -> None:
        if ctx is None:
            return
        self._apply(ctx)

    def abandon(self, ctx) -> None:
        """The walk died (error path): balance the in-flight accounting.

        Nothing may be charged or populated here — the slowpath error is
        the observable outcome.
        """
        if ctx is None or ctx.applied:
            return
        ctx.applied = True
        self.coherence.walks_active -= 1

    # -- deferred application (guarded by the invalidation counter) ---------

    @staticmethod
    def _on_revalidating_sb(dentry: Dentry) -> bool:
        """True when the dentry's superblock forbids direct lookup (§4.3:
        stateless network file systems revalidate every component, so
        caching their paths in the DLHT/PCC would serve stale answers)."""
        inode = dentry.inode
        if inode is not None:
            return inode.fs.requires_revalidation
        node = dentry.parent
        while node is not None:
            if node.inode is not None:
                return node.inode.fs.requires_revalidation
            node = node.parent
        return False

    def _apply(self, ctx: "_WalkCtx") -> None:
        if ctx.applied:
            return
        ctx.applied = True
        self.coherence.walks_active -= 1
        if self.coherence.counter != ctx.counter_at_start:
            self.stats.bump("populate_abort")
            return
        lazy = self.lazy
        # Counter unchanged means no mutation ran during the walk, so the
        # walk's observations are current as of the present epoch.
        gepoch = self.coherence.epoch
        dlht = ctx.task.ns.dlht
        on_revalidating_sb = self._on_revalidating_sb
        insert = dlht.insert
        finish = self.hasher.finish
        for dentry, state, mount in ctx.pending_dlht:
            if dentry.dead or on_revalidating_sb(dentry):
                continue
            fast = fast_of(dentry)
            fast.hash_state = state
            fast.mount = mount
            if lazy:
                fast.epoch_snapshot = gepoch
            insert(dentry, finish(state))
        for link, tstate in ctx.pending_linktarget:
            if not link.dead and not self._on_revalidating_sb(link):
                fast_of(link).link_target_state = tstate
        pcc = self.pcc_for(ctx.task.cred) if ctx.pcc_ok else None
        self._apply_aliases(ctx, dlht, pcc, gepoch)
        self._apply_deep_negatives(ctx, dlht, pcc, gepoch)
        if pcc is not None:
            epoch = gepoch if lazy else 0
            pcc_insert = pcc.insert
            for dentry in ctx.pending_pcc:
                if not dentry.dead and not on_revalidating_sb(dentry):
                    pcc_insert(dentry, epoch)

    def _apply_aliases(self, ctx, dlht, pcc, gepoch: int) -> None:
        cur = ctx.alias_head
        if cur is None or self._on_revalidating_sb(cur):
            return
        lazy = self.lazy
        for name, target, state, mount in ctx.pending_alias:
            if cur.dead or target.dead:
                return
            child = cur.children.get(name)
            if child is None:
                child = self.dcache.d_alloc_alias(cur, name, target)
            elif child.is_alias:
                child.alias_target = target
            else:
                return
            fast = fast_of(child)
            fast.hash_state = state
            fast.mount = mount
            if lazy:
                fast.epoch_snapshot = gepoch
            dlht.insert(child, self.hasher.finish(state))
            if pcc is not None:
                pcc.insert(child, gepoch if lazy else 0)
            cur = child

    def _apply_deep_negatives(self, ctx, dlht, pcc, gepoch: int) -> None:
        if ctx.pending_deepneg is None or not self.config.deep_negative:
            return
        neg, remaining, kind, state = ctx.pending_deepneg
        if neg.dead or self._on_revalidating_sb(neg):
            return
        lazy = self.lazy
        chain = extend_negative_chain(self.dcache, neg, remaining, kind)
        for child in chain:
            state = self._extend(state, child.name)
            fast = fast_of(child)
            fast.hash_state = state
            fast.mount = ctx.cur_mount
            if lazy:
                fast.epoch_snapshot = gepoch
            dlht.insert(child, self.hasher.finish(state))
            if pcc is not None:
                pcc.insert(child, gepoch if lazy else 0)
        self.stats.bump("deep_negative_chain")

    # -- canonical-path state recomputation -----------------------------------

    def _recompute_state(self, task: Task,
                         pos: PathPos) -> Optional[SigState]:
        """Rebuild a dentry's canonical-path hash state from the tree."""
        ns = task.ns
        names: List[str] = []
        cur = pos
        for _ in range(vfspath.PATH_MAX):
            if (cur.mount is ns.root_mount
                    and cur.dentry is ns.root_mount.root_dentry):
                break
            if cur.dentry is cur.mount.root_dentry:
                if cur.mount.parent is None:
                    break
                cur = PathPos(cur.mount.parent, cur.mount.mountpoint)
                continue
            if cur.dentry.parent is None:
                return None
            names.append(cur.dentry.name)
            cur = PathPos(cur.mount, cur.dentry.parent)
        state = self.hasher.EMPTY
        for name in reversed(names):
            state = self._extend(state, name)
        fast = fast_of(pos.dentry)
        fast.hash_state = state
        fast.mount = pos.mount
        if self.lazy:
            fast.epoch_snapshot = self.coherence.epoch
        return state
