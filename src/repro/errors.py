"""Errno-carrying exception hierarchy for the simulated VFS.

Every failing system call in :mod:`repro.vfs.syscalls` raises a subclass of
:class:`FsError`.  The classes mirror the POSIX errno values the paper's
kernel returns; tests match on the class, and the equivalence oracle
(optimized kernel vs baseline kernel) matches on ``errno`` numbers.
"""

from __future__ import annotations

import errno


class FsError(Exception):
    """Base class for all simulated file system errors.

    Attributes:
        errno: the POSIX errno value (e.g. ``errno.ENOENT``).
        path: the path the failing operation was applied to, if any.
    """

    errno: int = 0

    def __init__(self, path: str = "", message: str = ""):
        self.path = path
        detail = message or errno.errorcode.get(self.errno, "E?")
        super().__init__(f"{detail}: {path!r}" if path else detail)


class ENOENT(FsError):
    """No such file or directory."""

    errno = errno.ENOENT


class EACCES(FsError):
    """Permission denied (search or access permission missing)."""

    errno = errno.EACCES


class EPERM(FsError):
    """Operation not permitted (ownership/capability failure)."""

    errno = errno.EPERM


class ENOTDIR(FsError):
    """A path component used as a directory is not a directory."""

    errno = errno.ENOTDIR


class EISDIR(FsError):
    """The target is a directory but the operation needs a non-directory."""

    errno = errno.EISDIR


class EEXIST(FsError):
    """Target already exists."""

    errno = errno.EEXIST


class ENOTEMPTY(FsError):
    """Directory not empty (rmdir/rename over a populated directory)."""

    errno = errno.ENOTEMPTY


class EINVAL(FsError):
    """Invalid argument (e.g. rename of a directory into its own subtree)."""

    errno = errno.EINVAL


class ELOOP(FsError):
    """Too many levels of symbolic links."""

    errno = errno.ELOOP


class EROFS(FsError):
    """Read-only file system (mount flag violation)."""

    errno = errno.EROFS


class EXDEV(FsError):
    """Cross-device link or rename."""

    errno = errno.EXDEV


class ENAMETOOLONG(FsError):
    """Path or component exceeds PATH_MAX / NAME_MAX."""

    errno = errno.ENAMETOOLONG


class ENOSPC(FsError):
    """No space left on the simulated device."""

    errno = errno.ENOSPC


class EBADF(FsError):
    """Bad file descriptor."""

    errno = errno.EBADF


class EBUSY(FsError):
    """Resource busy (e.g. unmounting a busy mount, rename over a mountpoint)."""

    errno = errno.EBUSY


class ENOTSUP(FsError):
    """Operation not supported by the low-level file system."""

    errno = errno.ENOTSUP


#: Mapping used by tests and the equivalence oracle to normalize errors.
ERRNO_CLASSES = {
    cls.errno: cls
    for cls in (
        ENOENT,
        EACCES,
        EPERM,
        ENOTDIR,
        EISDIR,
        EEXIST,
        ENOTEMPTY,
        EINVAL,
        ELOOP,
        EROFS,
        EXDEV,
        ENAMETOOLONG,
        ENOSPC,
        EBADF,
        EBUSY,
        ENOTSUP,
    )
}
