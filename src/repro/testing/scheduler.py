"""Deterministic concurrent execution of syscalls at hook granularity.

:class:`ConcurrentRunner` runs several operations "concurrently" against
one optimized kernel: each operation lives on its own thread, but threads
execute strictly one at a time and switch only at walk-hook boundaries —
the same granularity at which a real RCU walk can observe concurrent
mutations (mutations themselves hold ``rename_lock``-style exclusivity
between hooks).  A seeded RNG drives the schedule, so every interleaving
is reproducible, and sweeping seeds explores many distinct histories of
the §3.2 protocol: multiple lookups populating the DLHT/PCC while
renames, chmods, and unlinks invalidate underneath them.

After a run, callers verify with
:func:`repro.testing.races.assert_fastpath_consistent` and the DualKernel
invariants that no stale state survived any schedule.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro import errors
from repro.core.kernel import Kernel
from repro.vfs.walk import WalkHooks


class StreamScheduler:
    """Seeded unit-granularity scheduler for interleaved compiled replay.

    Where :class:`ConcurrentRunner` interleaves *within* syscalls (walk
    hooks, real threads), this scheduler interleaves *between* them: at
    every step :func:`repro.workloads.traces.replay_interleaved` asks it
    which of the currently live streams advances by one unit.  Picks are
    uniform over live streams from a seeded RNG, so a given
    ``(seed, stream count)`` pair always produces the identical
    schedule — the determinism the ``multi_task_replay`` speed cell and
    the cross-task invalidation tests rely on.

    When every stream's unit count is statically known (compiled
    programs — unit boundaries are a pure function of the program),
    :meth:`plan_schedule` precomputes the entire pick sequence as flat
    run-length-coalesced arrays, letting the drain loop advance streams
    in runs instead of paying one RNG call plus one generator dispatch
    per unit.  The planned schedule is *pick-for-pick identical* to
    driving :meth:`pick` dynamically (``tests/test_server_fleet.py``
    asserts this), so vectorization cannot change any interleaving.
    """

    __slots__ = ("_rng",)

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def pick(self, alive: int) -> int:
        """Index (``0 <= i < alive``) of the stream to advance next."""
        return self._rng.randrange(alive)

    # -- RNG state capture (mid-drain kernel clones) ---------------------

    def snapshot(self):
        """Opaque RNG state token for :meth:`restore`.

        A kernel snapshot taken mid-schedule can capture the scheduler
        alongside (``sim/snapshot.py`` extras); restoring both replays
        the identical remaining pick sequence, so a cloned drain cannot
        diverge from the original.
        """
        return self._rng.getstate()

    def restore(self, state) -> None:
        """Restore a previously captured RNG state verbatim."""
        self._rng.setstate(state)

    # -- static schedule planning ----------------------------------------

    def plan_schedule(self, unit_counts) -> "Tuple[List[int], List[int]]":
        """Precompute the full drain schedule as flat (stream, run) arrays.

        Simulates the exact dynamic algorithm the unit-by-unit drain
        loop uses — one ``randrange(len(alive))`` per step over a
        shrinking alive list, where a pick landing on an exhausted
        stream *consumes an RNG draw* and retires the stream without
        advancing anything (the dynamic loop discovers exhaustion via
        ``StopIteration`` on that extra pick).  Because the RNG draws
        happen in the same order with the same bounds, the resulting
        advance sequence is identical to the dynamic loop's, and the
        scheduler's RNG ends in the identical state.

        Consecutive picks of the same stream are coalesced into runs:
        the return value is ``(streams, runs)`` where stream
        ``streams[i]`` advances ``runs[i]`` units, in order.
        """
        remaining = list(unit_counts)
        alive = list(range(len(remaining)))
        streams: List[int] = []
        runs: List[int] = []
        randrange = self._rng.randrange
        last = -1
        while alive:
            i = randrange(len(alive))
            s = alive[i]
            if remaining[s] == 0:
                # The dynamic loop's StopIteration pick: retire, no work.
                alive.pop(i)
                last = -1  # a retirement breaks any coalescable run
                continue
            remaining[s] -= 1
            if s == last:
                runs[-1] += 1
            else:
                streams.append(s)
                runs.append(1)
                last = s
        return streams, runs


class _YieldingHooks(WalkHooks):
    """Delegating hooks that park the calling thread at every event."""

    def __init__(self, inner: WalkHooks, runner: "ConcurrentRunner"):
        self.inner = inner
        self.runner = runner

    def _pause(self) -> None:
        self.runner._yield_point()

    def begin(self, task, start, absolute):
        self._pause()
        return self.inner.begin(task, start, absolute)

    def step(self, ctx, name, child, result):
        self._pause()
        self.inner.step(ctx, name, child, result)

    def dotdot(self, ctx, result):
        self._pause()
        self.inner.dotdot(ctx, result)

    def symlink_begin(self, ctx, link, absolute_target):
        self._pause()
        self.inner.symlink_begin(ctx, link, absolute_target)

    def symlink(self, ctx, link, target):
        self._pause()
        self.inner.symlink(ctx, link, target)

    def negative_tail(self, ctx, neg, remaining, kind):
        self._pause()
        self.inner.negative_tail(ctx, neg, remaining, kind)

    def finish(self, ctx, final):
        self._pause()
        self.inner.finish(ctx, final)

    def abandon(self, ctx):
        # No pause: the walk is already dead, and the inner hook must
        # still balance its in-flight accounting (walks_active).
        self.inner.abandon(ctx)


class _Worker:
    __slots__ = ("thread", "go", "parked", "finished", "outcome")

    def __init__(self) -> None:
        self.thread: Optional[threading.Thread] = None
        self.go = threading.Event()
        self.parked = threading.Event()
        self.finished = False
        self.outcome: Tuple[str, Any] = ("pending", None)


class ConcurrentRunner:
    """Cooperative, deterministic multi-threaded syscall execution."""

    def __init__(self, kernel: Kernel, seed: int = 0):
        self.kernel = kernel
        self.rng = random.Random(seed)
        self._workers: List[_Worker] = []
        self._local = threading.local()

    # -- worker side -----------------------------------------------------------

    def _yield_point(self) -> None:
        worker = getattr(self._local, "worker", None)
        if worker is None:
            return  # a call outside any scheduled op (setup/verification)
        worker.parked.set()
        worker.go.wait()
        worker.go.clear()

    def _run_op(self, worker: _Worker, op: Callable[[], Any]) -> None:
        self._local.worker = worker
        worker.go.wait()
        worker.go.clear()
        try:
            result = op()
            worker.outcome = ("ok", result)
        except errors.FsError as exc:
            worker.outcome = ("err", exc.errno)
        except BaseException as exc:  # surfaced by run()
            worker.outcome = ("crash", exc)
        finally:
            worker.finished = True
            worker.parked.set()

    # -- scheduler side -----------------------------------------------------------

    def run(self, ops: Sequence[Callable[[], Any]],
            timeout: float = 30.0) -> List[Tuple[str, Any]]:
        """Execute ``ops`` under one random deterministic schedule.

        Returns one ``("ok", result) | ("err", errno)`` outcome per op,
        in op order.  Crashes inside an op re-raise here.
        """
        inner_hooks = self.kernel.slow_walk.hooks
        self.kernel.slow_walk.hooks = _YieldingHooks(inner_hooks, self)
        try:
            workers = []
            for op in ops:
                worker = _Worker()
                worker.thread = threading.Thread(
                    target=self._run_op, args=(worker, op), daemon=True)
                workers.append(worker)
                worker.thread.start()
            runnable = list(workers)
            while runnable:
                worker = self.rng.choice(runnable)
                worker.parked.clear()
                worker.go.set()
                if not worker.parked.wait(timeout):
                    raise RuntimeError("scheduled op wedged")
                if worker.finished:
                    runnable.remove(worker)
                    worker.thread.join(timeout)
            outcomes = []
            for worker in workers:
                kind, payload = worker.outcome
                if kind == "crash":
                    raise payload
                outcomes.append((kind, payload))
            return outcomes
        finally:
            self.kernel.slow_walk.hooks = inner_hooks


def normalize_stat(result) -> Any:
    """Stat outcomes comparable across runs."""
    from repro.vfs.syscalls import StatResult

    if isinstance(result, StatResult):
        return (result.ino, result.mode, result.filetype)
    return result
