"""Differential-testing utilities.

The paper's §4 is a compatibility argument: the optimized dcache must be
observationally equivalent to the baseline for every POSIX behaviour.
:class:`~repro.testing.dual.DualKernel` drives a baseline kernel and an
optimized kernel with identical syscall sequences and asserts that every
result — return values, errnos, listings, metadata — matches.  The
hypothesis-based property tests build random programs on top of it.
"""

from repro.testing.dual import DualKernel, Mismatch

__all__ = ["DualKernel", "Mismatch"]
