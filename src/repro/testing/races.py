"""Race injection: adversarial interleaving of lookups and mutations.

The §3.2 protocol exists for exactly one reason: a slowpath walk can race
a directory mutation, and its results must never be re-cached stale.  The
Python simulator is single-threaded, but every slowpath walk passes
through the :class:`~repro.vfs.walk.WalkHooks` callbacks — the same
boundaries where a real kernel's RCU walk can observe concurrent
mutations.  :class:`RaceInjector` wraps the optimized kernel's hook chain
and fires a mutation *inside* a victim lookup at a chosen hook index,
exactly emulating "the rename committed between component 2 and 3 of the
walk".

After the dust settles, :func:`assert_fastpath_consistent` verifies the
linearizability obligation: for every probe path, the fastpath answer
(possibly served from the DLHT/PCC) must equal a freshly walked,
non-populating slowpath answer — i.e., no stale state survived the race.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

from repro import errors
from repro.core.kernel import Kernel
from repro.vfs.task import Task
from repro.vfs.walk import WalkHooks

#: Hook names, in the order a walk can reach them.
HOOK_POINTS = ["begin", "step", "dotdot", "symlink_begin", "symlink",
               "negative_tail", "finish"]


class RaceInjector(WalkHooks):
    """Wraps a kernel's walk hooks, firing a mutation mid-walk.

    Args:
        kernel: an *optimized* kernel (hooks are the FastLookup engine).
        mutation: zero-arg callable performing the concurrent mutation.
        fire_at: global hook-event index at which to fire (0 = the first
            hook event of the victim lookup).
    """

    def __init__(self, kernel: Kernel, mutation: Callable[[], None],
                 fire_at: int):
        if kernel.fast is None:
            raise ValueError("race injection requires an optimized kernel")
        self.kernel = kernel
        self.inner = kernel.fast
        self.mutation = mutation
        self.fire_at = fire_at
        self.events = 0
        self.fired = False
        self.armed = False

    # -- arming -------------------------------------------------------------

    def __enter__(self) -> "RaceInjector":
        self.kernel.slow_walk.hooks = self
        self.armed = True
        return self

    def __exit__(self, *exc) -> None:
        self.kernel.slow_walk.hooks = self.inner
        self.armed = False

    def _maybe_fire(self) -> None:
        if self.armed and not self.fired and self.events == self.fire_at:
            self.fired = True
            # Disarm while the mutation runs (its own lookups must not
            # re-enter the injector).
            self.kernel.slow_walk.hooks = self.inner
            try:
                self.mutation()
            finally:
                self.kernel.slow_walk.hooks = self
        self.events += 1

    # -- hook chain -------------------------------------------------------------

    def begin(self, task, start, absolute):
        self._maybe_fire()
        return self.inner.begin(task, start, absolute)

    def step(self, ctx, name, child, result):
        self._maybe_fire()
        self.inner.step(ctx, name, child, result)

    def dotdot(self, ctx, result):
        self._maybe_fire()
        self.inner.dotdot(ctx, result)

    def symlink_begin(self, ctx, link, absolute_target):
        self._maybe_fire()
        self.inner.symlink_begin(ctx, link, absolute_target)

    def symlink(self, ctx, link, target):
        self._maybe_fire()
        self.inner.symlink(ctx, link, target)

    def negative_tail(self, ctx, neg, remaining, kind):
        self._maybe_fire()
        self.inner.negative_tail(ctx, neg, remaining, kind)

    def finish(self, ctx, final):
        self._maybe_fire()
        self.inner.finish(ctx, final)


def _outcome(thunk) -> Tuple[str, object]:
    try:
        result = thunk()
    except errors.FsError as exc:
        return ("err", exc.errno)
    from repro.vfs.syscalls import StatResult
    if isinstance(result, StatResult):
        return ("ok", (result.ino, result.mode, result.filetype,
                       result.fstype))
    return ("ok", result)


def ground_truth_stat(kernel: Kernel, task: Task, path: str,
                      follow: bool = True) -> Tuple[str, object]:
    """A non-populating, non-fastpath stat: the semantic ground truth."""
    saved_hooks = kernel.slow_walk.hooks
    kernel.slow_walk.hooks = WalkHooks()
    try:
        def thunk():
            pos = kernel.slow_walk.resolve(task, path, follow_last=follow,
                                           count_stats=False)
            inode = pos.dentry.inode
            return (inode.ino, inode.mode, inode.filetype,
                    inode.fs.fstype)
        return _outcome(thunk)
    finally:
        kernel.slow_walk.hooks = saved_hooks


def assert_fastpath_consistent(kernel: Kernel, task: Task,
                               paths: Sequence[str]) -> None:
    """Every probe path's fastpath answer must match the ground truth."""
    for path in paths:
        fast = _outcome(lambda p=path: kernel.sys.stat(task, p))
        truth = ground_truth_stat(kernel, task, path)
        assert fast == truth, (
            f"stale cache after race: stat({path!r}) -> {fast} but "
            f"ground truth is {truth}")
        # And it must be stable (a second fastpath-served call agrees).
        again = _outcome(lambda p=path: kernel.sys.stat(task, p))
        assert again == fast, (
            f"unstable result for {path!r}: {fast} then {again}")


def run_race(kernel: Kernel, victim: Callable[[], object],
             mutation: Callable[[], None],
             fire_at: int) -> Tuple[str, object, bool]:
    """Run ``victim`` with ``mutation`` injected at hook ``fire_at``.

    Returns (outcome kind, outcome payload, mutation fired?).  When
    ``fire_at`` exceeds the number of hook events the victim generates,
    the mutation simply never fires (callers sweep fire_at upward until
    that happens).
    """
    with RaceInjector(kernel, mutation, fire_at) as injector:
        kind, payload = _outcome(victim)
    return kind, payload, injector.fired
