"""Drive two kernels with identical operations and compare every result.

A :class:`DualKernel` owns one kernel per configuration (by default the
paper's baseline and optimized profiles) plus parallel task universes.
Calling a syscall on it runs the call on every kernel and asserts the
observable outcome is identical:

* return values are normalized (stat tuples, sorted listings, data);
* exceptions must match by errno;
* directory listings compare as multisets (cache-served order may differ).

Any divergence raises :class:`Mismatch` with both outcomes — this is the
equivalence oracle behind the compatibility test suite.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro import errors
from repro.core.kernel import BASELINE, OPTIMIZED, DcacheConfig, Kernel
from repro.vfs.syscalls import StatResult
from repro.vfs.task import Task


class Mismatch(AssertionError):
    """Two kernels disagreed on an operation's outcome."""


def _normalize(value: Any) -> Any:
    """Make results comparable across kernels."""
    if isinstance(value, StatResult):
        # mtime is excluded: the kernels' virtual clocks legitimately
        # differ (that difference is the experiment).
        ino = value.ino if value.fstype != "proc" else None
        return ("stat", ino, value.mode, value.uid, value.gid,
                value.nlink, value.size, value.filetype, value.fstype)
    if isinstance(value, list) and value and isinstance(value[0], tuple):
        return ("listing", tuple(sorted(value)))
    if isinstance(value, tuple) and len(value) == 2 and \
            isinstance(value[0], int) and isinstance(value[1], str):
        # mkstemp returns (fd, name); fds are kernel-local.
        return ("mkstemp", value[1])
    if isinstance(value, int):
        # File descriptors are kernel-local handles; both kernels follow
        # the same allocation discipline, so they match anyway, but we
        # compare them only for equality of success.
        return ("int", value)
    return value


class DualKernel:
    """Synchronized pair (or set) of kernels under test."""

    def __init__(self, configs: Sequence[DcacheConfig] = (BASELINE,
                                                          OPTIMIZED),
                 fs_factory: Optional[Callable] = None,
                 lsm_factory: Optional[Callable] = None):
        self.kernels: List[Kernel] = []
        for config in configs:
            root_fs = None
            lsm = lsm_factory() if lsm_factory else None
            kernel = Kernel(config, root_fs=root_fs, lsm=lsm)
            if fs_factory is not None:
                # fs_factory needs the kernel's cost model; rebuild.
                kernel = Kernel(config, root_fs=fs_factory(kernel.costs),
                                lsm=lsm)
            self.kernels.append(kernel)
        #: Parallel task lists: tasks[i][k] is task i on kernel k.
        self.tasks: List[List[Task]] = []

    # -- task universe -----------------------------------------------------------

    def spawn_task(self, uid: int = 0, gid: int = 0, groups=(),
                   security: Optional[str] = None) -> int:
        """Spawn the same task on every kernel; returns a task handle."""
        row = [kernel.spawn_task(uid=uid, gid=gid, groups=groups,
                                 security=security)
               for kernel in self.kernels]
        self.tasks.append(row)
        return len(self.tasks) - 1

    def change_identity(self, task: int, **kw) -> None:
        for kernel, t in zip(self.kernels, self.tasks[task]):
            kernel.change_identity(t, **kw)

    # -- synchronized syscalls ------------------------------------------------------

    def call(self, task: int, op: str, *args, **kwargs) -> Any:
        """Run ``sys.<op>(task, *args)`` on every kernel and compare."""
        outcomes: List[Tuple[str, Any]] = []
        results: List[Any] = []
        for kernel, t in zip(self.kernels, self.tasks[task]):
            method = getattr(kernel.sys, op)
            call_kwargs = dict(kwargs)
            if "rng_seed" in call_kwargs:
                call_kwargs["rng"] = random.Random(call_kwargs.pop("rng_seed"))
            try:
                result = method(t, *args, **call_kwargs)
                outcomes.append(("ok", _normalize(result)))
                results.append(result)
            except errors.FsError as exc:
                outcomes.append(("err", exc.errno))
                results.append(exc)
        first = outcomes[0]
        for i, outcome in enumerate(outcomes[1:], start=1):
            if outcome != first:
                raise Mismatch(
                    f"{op}{args!r} diverged: "
                    f"{self.kernels[0].config.name}={first!r} vs "
                    f"{self.kernels[i].config.name}={outcome!r}")
        if first[0] == "err":
            raise results[0]
        return results[0]

    # -- convenience wrappers used by scripted tests -----------------------------------

    def __getattr__(self, op: str):
        if op.startswith("_"):
            raise AttributeError(op)

        def call(task: int, *args, **kwargs):
            return self.call(task, op, *args, **kwargs)

        return call

    # -- invariants ---------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Structural invariants on every kernel (run between ops)."""
        for kernel in self.kernels:
            _check_kernel_invariants(kernel)


def _check_kernel_invariants(kernel: Kernel) -> None:
    """Cache-structure invariants from the paper's design.

    * parent-in-cache: every cached dentry's parent chain is cached;
    * DLHT entries point at live dentries registered back to the table;
    * a DIR_COMPLETE directory's positive children exactly match the
      low-level file system's listing.
    """
    dcache = kernel.dcache
    for root in dcache._roots.values():
        stack = [root]
        while stack:
            dentry = stack.pop()
            for name, child in dentry.children.items():
                assert child.parent is dentry, \
                    f"broken parent link at {name!r}"
                assert not child.dead, f"dead dentry {name!r} still linked"
                stack.append(child)
            if dentry.dir_complete and dentry.inode is not None:
                fs_names = {name for name, _ino, _dt
                            in dentry.inode.fs.readdir(dentry.inode.ino)}
                cached = {c.name for c in dentry.children.values()
                          if c.inode is not None or c.stub is not None}
                assert cached == fs_names, (
                    f"DIR_COMPLETE mismatch at {dentry.path_from_root()}: "
                    f"cached={cached} fs={fs_names}")
    for ns in (kernel.root_ns,):
        if ns.dlht is None:
            continue
        for key, dentry in ns.dlht._table.items():
            fast = dentry.fast
            assert fast is not None and fast.dlht is ns.dlht, \
                "DLHT entry not registered back"
            # Multi-key mode (lazy coherence) legitimately registers a
            # dentry under extra old-path keys besides its primary.
            assert key in ns.dlht.keys_of(dentry), "DLHT key mismatch"
