"""Debugfs-style inspection of a kernel's directory caches.

The real patch would expose this through debugfs; here the functions
render a kernel's live cache state as text — the dentry tree with
per-entry flags, DLHT occupancy, PCC fill, and a one-screen summary.
Used by tests, examples, and interactive debugging sessions.

Run the demo::

    python -m repro.tools.inspect
"""

from __future__ import annotations

from typing import List

from repro.sim.memory import measure_kernel
from repro.vfs.dentry import Dentry


def _flags(dentry: Dentry) -> str:
    flags = []
    if dentry.is_negative:
        flags.append(f"NEG:{dentry.neg_kind}")
    if dentry.is_stub:
        flags.append("STUB")
    if dentry.is_alias:
        target = dentry.alias_target
        flags.append(f"ALIAS->{target.path_from_root() if target else '?'}")
    if dentry.dir_complete:
        flags.append("COMPLETE")
    if dentry.is_mountpoint:
        flags.append("MOUNTPOINT")
    if dentry.pin_count:
        flags.append(f"pin={dentry.pin_count}")
    if dentry.fast is not None and dentry.fast.dlht is not None:
        flags.append("DLHT")
    return " ".join(flags)


def dcache_tree(kernel, max_depth: int = 8,
                max_children: int = 32) -> str:
    """Render the cached dentry trees of every superblock."""
    lines: List[str] = []
    for root in kernel.dcache._roots.values():
        fstype = root.inode.fs.fstype if root.inode else "?"
        lines.append(f"[{fstype}] / seq={root.seq} {_flags(root)}".rstrip())
        _render(root, lines, 1, max_depth, max_children)
    return "\n".join(lines)


def _render(dentry: Dentry, lines: List[str], depth: int,
            max_depth: int, max_children: int) -> None:
    if depth > max_depth:
        return
    children = list(dentry.children.values())
    for child in children[:max_children]:
        kind = "d" if child.is_dir else \
            ("l" if child.is_symlink else "-")
        ino = child.inode.ino if child.inode else "-"
        lines.append(f"{'  ' * depth}{kind} {child.name} "
                     f"ino={ino} seq={child.seq} "
                     f"{_flags(child)}".rstrip())
        _render(child, lines, depth + 1, max_depth, max_children)
    if len(children) > max_children:
        lines.append(f"{'  ' * depth}... {len(children) - max_children} "
                     f"more")


def dlht_summary(kernel) -> str:
    """Per-namespace direct lookup hash table occupancy."""
    if kernel.fast is None:
        return "DLHT: (baseline kernel, not present)"
    lines = []
    for i, dlht in enumerate(kernel.coherence.dlhts):
        kinds = {"positive": 0, "negative": 0, "alias": 0, "symlink": 0}
        for dentry in dlht._table.values():
            if dentry.is_alias:
                kinds["alias"] += 1
            elif dentry.is_negative:
                kinds["negative"] += 1
            elif dentry.is_symlink:
                kinds["symlink"] += 1
            else:
                kinds["positive"] += 1
        detail = ", ".join(f"{k}={v}" for k, v in kinds.items() if v)
        lines.append(f"DLHT[{i}]: {len(dlht)} entries"
                     + (f" ({detail})" if detail else ""))
    return "\n".join(lines)


def pcc_summary(kernel) -> str:
    """Fill level of every credential's prefix check cache."""
    if kernel.fast is None:
        return "PCC: (baseline kernel, not present)"
    if not kernel.coherence.pccs:
        return "PCC: none allocated yet"
    lines = []
    for i, pcc in enumerate(kernel.coherence.pccs):
        lines.append(f"PCC[{i}]: {len(pcc)}/{pcc.capacity} entries")
    return "\n".join(lines)


def kernel_summary(kernel) -> str:
    """One-screen overview: caches, counters, memory, virtual time."""
    stats = kernel.stats.snapshot()
    memory = measure_kernel(kernel)
    interesting = ["lookup", "fastpath_hit", "fastpath_miss",
                   "dcache_hit", "dcache_miss", "negative_hit",
                   "fs_lookup", "readdir_cached", "readdir_fs",
                   "inval_dentry", "dir_complete_set"]
    counter_text = "\n".join(f"  {name:18s} {stats.get(name, 0):>10}"
                             for name in interesting if name in stats)
    return "\n".join([
        f"kernel profile: {kernel.config.name}",
        f"virtual time:   {kernel.now_ns / 1e6:.3f} ms",
        f"dentries:       {len(kernel.dcache)} "
        f"({memory.total_bytes / 1024:.0f} KiB cache footprint)",
        dlht_summary(kernel),
        pcc_summary(kernel),
        "counters:",
        counter_text or "  (none)",
    ])


def _demo() -> None:
    from repro import O_CREAT, O_RDWR, errors, make_kernel

    kernel = make_kernel("optimized")
    task = kernel.spawn_task(uid=0, gid=0)
    sys = kernel.sys
    sys.mkdir(task, "/etc")
    fd = sys.open(task, "/etc/passwd", O_CREAT | O_RDWR)
    sys.write(task, fd, b"root:x:0:0::/:/bin/sh\n")
    sys.close(task, fd)
    sys.symlink(task, "/etc/passwd", "/etc/pw")
    sys.stat(task, "/etc/pw")
    try:
        sys.stat(task, "/etc/shadow/backup")
    except errors.FsError:
        pass
    sys.listdir(task, "/etc")
    print(kernel_summary(kernel))
    print()
    print(dcache_tree(kernel))


if __name__ == "__main__":
    _demo()
