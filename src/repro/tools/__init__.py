"""Operator tooling: cache inspection and reporting utilities."""

from repro.tools.inspect import (dcache_tree, dlht_summary, kernel_summary,
                                 pcc_summary)

__all__ = ["dcache_tree", "dlht_summary", "pcc_summary", "kernel_summary"]
