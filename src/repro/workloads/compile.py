"""Trace/workload compiler: AOT-lower syscall streams to flat programs.

The paper's argument is amortization — pay once so the per-lookup cost
is O(1).  This module applies the same move to the *driver* layer: a
recorded :class:`~repro.workloads.traces.Trace` is interpreted with full
per-event Python overhead (string-keyed dispatch, dataclass attribute
chasing, fd-slot dict remaps), all of which is knowable ahead of time.
:func:`compile_trace` lowers a trace once into a :class:`CompiledTrace`
— parallel row tuples of ``(op_index, args, patches, store_slot,
expected_errno, compute_ns, unpack_pair)`` with kwargs folded into
positional tuples against the :class:`~repro.vfs.syscalls.Syscalls`
signatures, fd-slot markers resolved to patch sites, and path strings
interned — which :func:`~repro.workloads.traces.replay_compiled`
executes in a tight loop over a prebound
:meth:`~repro.vfs.syscalls.Syscalls.batch` method table.

Compiled execution is a pure wall-clock optimization: it charges
bit-identical virtual costs (clock, cost counts, Stats) to interpreted
:func:`~repro.workloads.traces.replay` on every kernel profile
(``tests/test_compiled_replay.py`` is the differential gate).

The second half of this module lowers the repo's generator-driven
workloads (``workloads/apps.py``, ``lmbench.py``, ``maildir.py``,
``webserver.py``) into self-contained traces: a recording proxy kernel
routes their syscalls through a :class:`TraceRecorder` and their
``charge_ns`` compute budgets into recorded compute gaps.  Setup phases
are recorded too, so a lowered trace replays on a *fresh* kernel of any
profile.  Note the one attribution fold: workload-specific compute
scopes (``imap_compute``, ``httpd_compute``, ...) become ``app_compute``
gaps in the trace — total virtual nanoseconds are preserved, only the
attribution label coarsens (the virtual clock and Stats are unaffected).
"""

from __future__ import annotations

import inspect
import sys as _host_sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from repro import O_CREAT, O_DIRECTORY, O_RDONLY, O_RDWR, errors, make_kernel
from repro.core.kernel import Kernel
from repro.vfs import path as vfspath
from repro.vfs.syscalls import Syscalls
from repro.vfs.task import Task
from repro.workloads.traces import Trace, TraceRecorder


class TraceCompileError(ValueError):
    """The trace cannot be lowered; callers fall back to interpretation.

    Raised for events that reference unknown ops, pass kwargs the op's
    signature does not accept, or omit required arguments — anything
    where AOT argument folding cannot prove it will reproduce the
    interpreter's call exactly.
    """


# -- signature folding ----------------------------------------------------

#: op name -> ordered (param_name, default) pairs, ``task`` excluded.
_SIGNATURE_CACHE: Dict[str, Tuple[Tuple[str, Any], ...]] = {}

_NO_DEFAULT = inspect.Parameter.empty


def _op_params(op: str) -> Tuple[Tuple[str, Any], ...]:
    cached = _SIGNATURE_CACHE.get(op)
    if cached is not None:
        return cached
    method = getattr(Syscalls, op, None)
    if method is None or not callable(method):
        raise TraceCompileError(f"unknown syscall op: {op!r}")
    params = []
    for name, param in inspect.signature(method).parameters.items():
        if name in ("self", "task"):
            continue
        if param.kind in (inspect.Parameter.VAR_POSITIONAL,
                          inspect.Parameter.VAR_KEYWORD):
            raise TraceCompileError(
                f"op {op!r} has a variadic signature; cannot fold")
        params.append((name, param.default))
    result = tuple(params)
    _SIGNATURE_CACHE[op] = result
    return result


def _fold(op: str, args: Tuple[Any, ...],
          kwargs: Dict[str, Any]) -> List[Any]:
    """Fold kwargs into a positional argument list for ``op``.

    The folded call ``method(task, *folded)`` binds identically to the
    interpreter's ``method(task, *args, **kwargs)``.
    """
    params = _op_params(op)
    if len(args) > len(params):
        raise TraceCompileError(
            f"op {op!r}: {len(args)} positional args, signature takes "
            f"{len(params)}")
    names = [name for name, _default in params]
    unknown = set(kwargs) - set(names[len(args):])
    if unknown:
        raise TraceCompileError(
            f"op {op!r}: kwargs {sorted(unknown)} not foldable "
            f"(unknown or already bound positionally)")
    folded = list(args)
    for name, default in params[len(args):]:
        if name in kwargs:
            folded.append(kwargs[name])
        elif default is not _NO_DEFAULT:
            folded.append(default)
        else:
            raise TraceCompileError(
                f"op {op!r}: required argument {name!r} missing")
    # Trim trailing untouched defaults so most rows stay short.
    while folded and len(folded) > len(args):
        name, default = params[len(folded) - 1]
        if name in kwargs or folded[-1] is not default:
            break
        folded.pop()
    return folded


def _is_fd_marker(value: Any) -> bool:
    return (isinstance(value, tuple) and len(value) == 2
            and value[0] == "fd" and isinstance(value[1], int))


# -- charge-plan segmentation ---------------------------------------------

#: Ops eligible for charge planning.  The criterion is *static charge
#: behaviour*: given the apply-time guards (fd open, inode present,
#: non-directory), these ops charge a fixed event stream independent of
#: any state the guards cannot see.  ``read``/``write`` are excluded
#: (pagecache/device charges), as is anything resolving a path.
_PLAN_OPS = frozenset(["lseek", "fstat"])

#: Minimum rows for a segment to be worth a plan: shorter runs pay more
#: in guard checks and dispatch than the interpreted loop costs.
_PLAN_MIN_ROWS = 6


class PlanSegment(NamedTuple):
    """A contiguous run of compiled rows coverable by one charge plan.

    ``guards`` lists, per distinct fd slot the segment touches,
    ``(slot, need_inode, need_not_dir)`` — the apply-time state checks
    that make the captured charge stream provably reproducible
    (``fstat`` needs a live inode, ``lseek`` must not hit the
    directory-seek branch; both need an open, unclosed fd).  ``seeks``
    lists ``(slot, offset)`` for the *final* ``lseek`` per slot — the
    only host-visible state a planned segment mutates, applied in bulk
    (intermediate offsets are unobservable inside the segment: no row
    in a plannable segment reads the file offset).

    ``shape`` is the segment's charge-stream identity: a per-row tuple
    of ``(op_name, compute_ns)``.  Under the apply-time guards, the fast
    fd entries for ``lseek``/``fstat`` charge fixed primitive streams
    with no Stats bumps, so two segments with equal shapes produce equal
    charge vectors on *any* task and *any* fd binding — the key that
    lets tenants running the same program shape share one captured plan
    (task-generic plan cells in :class:`ChargePlanRegistry`).
    """

    start: int
    end: int
    guards: Tuple[Tuple[int, bool, bool], ...]
    seeks: Tuple[Tuple[int, int], ...]
    shape: Tuple[Tuple[str, float], ...] = ()


def _plan_segments(op_table: Tuple[str, ...],
                   rows: List[Tuple]) -> Tuple[PlanSegment, ...]:
    """Statically segment compiled rows into charge-plannable runs.

    Segmentation is a pure function of the program, so every replay —
    plans on or off, single-stream or interleaved — sees identical
    segment boundaries (the interleaved scheduler uses them as unit
    boundaries, which is what keeps plan state orthogonal to the
    schedule).
    """
    plannable_idx = {i for i, op in enumerate(op_table) if op in _PLAN_OPS}
    if not plannable_idx:
        return ()
    lseek_idx = op_table.index("lseek") if "lseek" in op_table else -1
    fstat_idx = op_table.index("fstat") if "fstat" in op_table else -1

    def plannable(row) -> bool:
        op_idx, args, patches, store, errno_exp, _compute, _pair = row
        if op_idx not in plannable_idx or store != -1 \
                or errno_exp is not None:
            return False
        # Exactly one fd patch, at argument 0 (the fd slot).
        if patches is None or len(patches) != 1 or patches[0][0] != 0:
            return False
        if op_idx == lseek_idx:
            return (len(args) == 2 and isinstance(args[1], int)
                    and args[1] >= 0)
        return len(args) == 1  # fstat

    segments: List[PlanSegment] = []
    n = len(rows)
    i = 0
    while i < n:
        if not plannable(rows[i]):
            i += 1
            continue
        j = i
        while j < n and plannable(rows[j]):
            j += 1
        if j - i >= _PLAN_MIN_ROWS:
            needs: Dict[int, List[bool]] = {}
            finals: Dict[int, int] = {}
            for row in rows[i:j]:
                op_idx, args, patches, _s, _e, _c, _p = row
                slot = patches[0][1]
                need = needs.setdefault(slot, [False, False])
                if op_idx == fstat_idx:
                    need[0] = True
                else:
                    need[1] = True
                    finals[slot] = args[1]
            guards = tuple((slot, need[0], need[1])
                           for slot, need in sorted(needs.items()))
            seeks = tuple(sorted(finals.items()))
            shape = tuple((op_table[row[0]], row[5]) for row in rows[i:j])
            segments.append(PlanSegment(i, j, guards, seeks, shape))
        i = j
    return tuple(segments)


# -- the compiled program -------------------------------------------------

@dataclass
class CompiledTrace:
    """A trace lowered to a flat opcode program.

    ``rows`` is a list of 7-tuples::

        (op_index, args, patches, store_slot, expected_errno,
         compute_ns, unpack_pair)

    * ``op_index`` indexes ``op_table`` (and the per-replay prebound
      method table built from a :meth:`Syscalls.batch` prologue).
    * ``args`` is a tuple when the event has no fd arguments, else a
      *list* with ``None`` placeholders that ``patches`` — precomputed
      ``(arg_index, slot)`` pairs — fills in from the live slot table
      before each call.
    * ``store_slot`` is the fd slot a returned fd lands in (−1: none);
      ``unpack_pair`` marks ops returning ``(fd, ...)`` (mkstemp).
    * ``expected_errno`` is ``None`` for events recorded as successes.
    * ``compute_ns`` is the application compute gap charged before the
      call (0.0 compiles to a skipped branch).
    """

    op_table: Tuple[str, ...]
    rows: List[Tuple]
    slot_count: int
    #: Host seconds spent compiling (reported by ``repro-speed
    #: --timing`` so compilation overhead cannot hide in op/s numbers).
    compile_wall_s: float
    #: Statically derived charge-plannable runs (see
    #: :class:`PlanSegment`); empty when nothing qualifies.  Duck-typed
    #: programs without this attribute simply never plan.
    plan_segments: Tuple[PlanSegment, ...] = ()

    def __len__(self) -> int:
        return len(self.rows)


def compile_trace(trace: Trace) -> CompiledTrace:
    """Lower ``trace`` into a :class:`CompiledTrace`.

    Raises :class:`TraceCompileError` when any event cannot be proven to
    fold exactly; use :func:`try_compile` for a fall-back-to-interpreter
    policy.

    Every string argument is interned, so compiled rows carry the
    resolution-memo key preinterned: all replay passes present the same
    path *object* and the memo's key tuples hash and compare by pointer
    (see :mod:`repro.core.resmemo`).  Path-like arguments additionally
    pre-warm the ``vfspath.split`` parse cache here, outside the timed
    replay loop.
    """
    t0 = time.perf_counter()
    intern = _host_sys.intern
    op_indices: Dict[str, int] = {}
    op_table: List[str] = []
    rows: List[Tuple] = []
    for event in trace.events:
        op_idx = op_indices.get(event.op)
        if op_idx is None:
            _op_params(event.op)  # validates the op exists
            op_idx = len(op_table)
            op_indices[event.op] = op_idx
            op_table.append(intern(event.op))
        folded = _fold(event.op, event.args, event.kwargs)
        if event.op == "write" and len(folded) >= 2 \
                and isinstance(folded[1], str):
            # The interpreter re-encodes the latin-1 payload per event;
            # the compiler pays it once.
            folded[1] = folded[1].encode("latin-1")
        patches: List[Tuple[int, int]] = []
        for i, value in enumerate(folded):
            if _is_fd_marker(value):
                patches.append((i, value[1]))
                folded[i] = None
            elif isinstance(value, str):
                folded[i] = intern(value)
                if folded[i].startswith("/"):
                    try:
                        vfspath.split(folded[i])
                    except Exception:
                        pass  # not a resolvable path; replay will decide
        store = (-1 if event.returns_fd_slot is None
                 else event.returns_fd_slot)
        rows.append((
            op_idx,
            folded if patches else tuple(folded),
            tuple(patches) if patches else None,
            store,
            event.errno,
            event.compute_ns,
            event.op == "mkstemp",
        ))
    op_table_t = tuple(op_table)
    return CompiledTrace(op_table=op_table_t, rows=rows,
                         slot_count=trace.slot_count(),
                         plan_segments=_plan_segments(op_table_t, rows),
                         compile_wall_s=time.perf_counter() - t0)


def try_compile(trace: Trace) -> Optional[CompiledTrace]:
    """:func:`compile_trace`, or ``None`` when the trace is not
    compilable (the caller should fall back to interpreted
    :func:`~repro.workloads.traces.replay`)."""
    try:
        return compile_trace(trace)
    except TraceCompileError:
        return None


# -- workload lowering ----------------------------------------------------

class RecordingSyscalls:
    """Task-first adapter over a :class:`TraceRecorder`.

    Workload code calls ``sys.stat(task, path)``; the recorder's own
    methods are task-less (the recording task is pinned).  This adapter
    drops the leading task argument so unmodified workload drivers can
    run against a recorder.
    """

    def __init__(self, recorder: TraceRecorder):
        self._recorder = recorder

    def __getattr__(self, op: str):
        if op.startswith("_"):
            raise AttributeError(op)
        record = getattr(self._recorder, op)

        def wrapper(_task, *args, **kwargs):
            return record(*args, **kwargs)

        self.__dict__[op] = wrapper
        return wrapper


class _RecordingCosts:
    """Cost-model proxy that turns compute charges into trace gaps.

    ``charge_ns`` both charges the real kernel (via
    :meth:`TraceRecorder.compute`) and records the gap on the next
    event.  Workload-specific scopes fold into ``app_compute`` — the
    clock and Stats are unaffected, only attribution coarsens.
    Everything else delegates to the real cost model.
    """

    def __init__(self, recorder: TraceRecorder, real_costs):
        self._recorder = recorder
        self._real = real_costs

    def charge_ns(self, scope: str, ns: float) -> None:
        self._recorder.compute(ns)

    def __getattr__(self, name: str):
        return getattr(self._real, name)


class RecordingKernel:
    """Kernel proxy whose ``sys``/``costs`` record a trace.

    Drop-in for workload drivers that take a kernel: syscalls route
    through a :class:`TraceRecorder` (executing on the real kernel *and*
    recording), compute charges become trace gaps, and every other
    attribute (``now_ns``, ``stats``, ``spawn_task``, ...) delegates to
    the real kernel.  All recorded ops execute under the recorder's
    pinned task regardless of which task object the driver passes —
    lowered traces replay under a single task.
    """

    def __init__(self, kernel: Kernel, task: Optional[Task] = None):
        self._kernel = kernel
        if task is None:
            task = kernel.spawn_task(uid=0, gid=0)
        self.recorder = TraceRecorder(kernel, task)
        self.sys = RecordingSyscalls(self.recorder)
        self.costs = _RecordingCosts(self.recorder, kernel.costs)

    @property
    def trace(self) -> Trace:
        return self.recorder.trace

    def __getattr__(self, name: str):
        return getattr(self._kernel, name)


def lower_app(app, *, warm: bool = True,
              profile: str = "baseline") -> Trace:
    """Record one :class:`~repro.workloads.apps.AppWorkload` (setup and
    run phases) into a self-contained trace."""
    from repro.workloads.apps import run_app
    rk = RecordingKernel(make_kernel(profile))
    run_app(rk, app, warm=warm)
    return rk.trace


def lower_webserver(nfiles: int = 64, requests: int = 10,
                    profile: str = "baseline") -> Trace:
    """Record the Table 3 autoindex benchmark into a trace."""
    from repro.workloads import webserver
    rk = RecordingKernel(make_kernel(profile))
    webserver.run_benchmark(rk, nfiles, requests=requests)
    return rk.trace


def lower_maildir(mailbox_size: int = 50, mailboxes: int = 4,
                  operations: int = 40,
                  profile: str = "baseline") -> Trace:
    """Record the Figure 10 maildir benchmark into a trace."""
    from repro.workloads import maildir
    rk = RecordingKernel(make_kernel(profile))
    maildir.run_benchmark(rk, mailbox_size, mailboxes=mailboxes,
                          operations=operations)
    return rk.trace


def lower_lmbench(rounds: int = 3, profile: str = "baseline") -> Trace:
    """Record Figure 6's path-shape stat/open rounds into a trace."""
    from repro.workloads import lmbench
    rk = RecordingKernel(make_kernel(profile))
    task = lmbench.prepare_lookup_tree(rk)
    rsys = rk.sys
    for _ in range(rounds):
        for name, path in lmbench.PATH_PATTERNS:
            rk.costs.charge_ns("app_compute", 120.0)
            try:
                rsys.stat(task, path)
            except errors.FsError:
                pass
            if name in lmbench.POSITIVE_PATTERNS:
                fd = rsys.open(task, path, O_RDONLY)
                rsys.close(task, fd)
    return rk.trace


# -- the benchmark loop trace ---------------------------------------------

def build_loop_trace(files: int = 16, io_rounds: int = 40,
                     subdirs: int = 4,
                     profile: str = "baseline",
                     root: str = "/loop") -> Trace:
    """Record a *self-undoing* iBench-shaped trace for benchmark loops.

    The composition follows the paper's §1 statistic — 10–20% of trace
    syscalls do a path lookup, the rest operate on open fds — so replay
    engine overhead is measured against a realistic mix rather than a
    stat storm.  The trace creates a subtree, holds its files open
    through rounds of lseek/read/write/fstat traffic interleaved with
    warm stats and ENOENT probes, walks the directories
    (open/readdir/fstatat-with-dirfd/close), does mkstemp and a rename
    flip-flop that ends back at the original names — then removes
    everything it created.  Because the final filesystem state equals
    the initial state (and every fd is closed, keeping fd numbering
    deterministic), the same trace can be replayed any number of times
    on one kernel: exactly what the ``trace_replay`` speed benchmark and
    pytest-benchmark rounds need.
    """
    kernel = make_kernel(profile)
    task = kernel.spawn_task(uid=0, gid=0)
    rec = TraceRecorder(kernel, task)
    paths = [f"{root}/d{i % subdirs}/f{i:03d}" for i in range(files)]

    rec.mkdir(root)
    for d in range(subdirs):
        rec.mkdir(f"{root}/d{d}")
    fds = []
    for path in paths:
        fd = rec.open(path, O_CREAT | O_RDWR)
        rec.write(fd, b"payload-" * 8)
        fds.append(fd)

    # The fd-dominated body: per round, three fd ops per open file
    # (lseek/fstat/lseek — the bulk of real iBench streams) plus one
    # read, one warm stat, and an ENOENT probe every other round, which
    # keeps the path-lookup fraction in the paper's 10–20% band when
    # counted with the lookup-performing setup/teardown phases.
    for round_no in range(io_rounds):
        rec.compute(1_000.0)
        for fd in fds:
            rec.lseek(fd, 0)
            rec.fstat(fd)
            rec.lseek(fd, 64)
        hot = fds[round_no % files]
        rec.lseek(hot, 0)
        rec.read(hot, 64)
        rec.stat(paths[round_no % files])
        if round_no % 2:
            try:
                rec.stat(f"{root}/d0/missing")
            except errors.ENOENT:
                pass

    for fd in fds:
        rec.close(fd)

    # Directory walk: open/readdir/fstatat-with-dirfd per entry.
    for d in range(subdirs):
        fd = rec.open(f"{root}/d{d}", O_RDONLY | O_DIRECTORY)
        for name, _ino, _dtype in rec.readdir(fd):
            rec.fstatat(name, dirfd=fd, follow=False)
            rec.compute(150.0)
        rec.close(fd)

    # mkstemp's default rng is freshly seeded per call, so the generated
    # name is deterministic; record-time and replay-time names match.
    fd, tmp_name = rec.mkstemp(f"{root}/d0")
    rec.write(fd, b"tmp")
    rec.close(fd)
    rec.unlink(f"{root}/d0/{tmp_name}")

    # Rename flip-flop ending at the original name (self-undoing).
    rec.rename(f"{root}/d0", f"{root}/dX")
    rec.stat(f"{root}/dX/f000")
    rec.rename(f"{root}/dX", f"{root}/d0")
    rec.stat(f"{root}/d0/f000")

    for path in paths:
        rec.unlink(path)
    for d in range(subdirs):
        rec.rmdir(f"{root}/d{d}")
    rec.rmdir(root)
    return rec.trace
