"""Workload generators for the paper's evaluation (§6).

* :mod:`repro.workloads.tree` — synthetic directory trees (Linux-source
  shaped, /usr shaped, maildir shaped).
* :mod:`repro.workloads.lmbench` — lat_syscall-style microbenchmarks
  (Figures 2, 3, 6, 7, 8, 9).
* :mod:`repro.workloads.apps` — find/tar/rm/make/du/updatedb/git trace
  generators (Figure 1, Tables 1–2).
* :mod:`repro.workloads.maildir` — Dovecot-style IMAP flag workload
  (Figure 10).
* :mod:`repro.workloads.webserver` — Apache directory-listing workload
  (Table 3).
* :mod:`repro.workloads.traces` — record/replay: ``TraceRecorder``, the
  per-event :func:`~repro.workloads.traces.replay` interpreter, and the
  :func:`~repro.workloads.traces.replay_compiled` opcode loop.
* :mod:`repro.workloads.compile` — the trace compiler: AOT-lowers
  traces (and the generator-driven workloads above) to flat opcode
  programs executed through the batched syscall dispatch table; see
  ``docs/benchmarking.md``.
"""

from repro.workloads.tree import TreeSpec, build_linux_like_tree, populate

__all__ = ["TreeSpec", "build_linux_like_tree", "populate"]
