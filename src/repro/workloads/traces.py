"""Syscall trace recording and replay (iBench-style, §1).

The paper motivates its work with syscall traces: "between 10-20% of all
system calls in the iBench system call traces do a path lookup."  This
module gives the reproduction the same methodology: record a workload's
syscall stream once (with per-event compute gaps), then replay it
verbatim against any kernel configuration and compare.

File descriptors are kernel-local, so traces store *fd slots*: the
recorder maps each returned fd to a dense slot id, and replay remaps
slots to the fds its own kernel returns.  Traces serialize to JSON lines
for storage and diffing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import errors
from repro.core.kernel import Kernel
from repro.vfs.task import Task

#: Syscalls that perform a path lookup (the §1 statistic).
PATH_LOOKUP_OPS = frozenset([
    "stat", "lstat", "fstatat", "access", "open", "openat", "mkdir",
    "rmdir", "unlink", "rename", "chmod", "chown", "symlink", "link",
    "readlink", "chdir", "truncate",
])

#: Argument positions (per op) holding fd slots, for remapping.  The fd
#: is always args[0] for these ops (for ``openat`` it is the dirfd).
_FD_ARG_OPS = frozenset(["close", "read", "write", "lseek", "ftruncate",
                         "getdents", "fstat", "fchdir", "readdir",
                         "openat"])


def _normalize(value: Any) -> Any:
    """Recursively turn JSON sequences back into tuples.

    ``json`` round-trips every tuple as a list; re-tupling only the top
    level left nested markers like ``("fd", 3)`` as lists after a
    dumps/loads cycle, so a reloaded trace compared unequal to the
    original.  Normalizing recursively makes dumps→loads the identity.
    """
    if isinstance(value, (list, tuple)):
        return tuple(_normalize(v) for v in value)
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in value.items()}
    return value


@dataclass
class TraceEvent:
    """One recorded syscall (or compute gap)."""

    op: str
    args: Tuple[Any, ...]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Slot id assigned to a returned fd (open/openat/mkstemp).
    returns_fd_slot: Optional[int] = None
    #: errno when the recorded call failed (replay must match).
    errno: Optional[int] = None
    #: Application compute charged before this call (virtual ns).
    compute_ns: float = 0.0

    def to_json(self) -> str:
        return json.dumps({
            "op": self.op, "args": list(self.args),
            "kwargs": self.kwargs, "fd_slot": self.returns_fd_slot,
            "errno": self.errno, "compute_ns": self.compute_ns,
        })

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        raw = json.loads(line)
        return cls(op=raw["op"], args=_normalize(raw["args"]),
                   kwargs={k: _normalize(v)
                           for k, v in raw.get("kwargs", {}).items()},
                   returns_fd_slot=raw.get("fd_slot"),
                   errno=raw.get("errno"),
                   compute_ns=raw.get("compute_ns", 0.0))


@dataclass
class TraceStats:
    """Aggregate statistics over a trace (the §1 measurements)."""

    total_syscalls: int
    path_lookup_syscalls: int
    by_op: Dict[str, int]
    total_compute_ns: float

    @property
    def path_lookup_fraction(self) -> float:
        if self.total_syscalls == 0:
            return 0.0
        return self.path_lookup_syscalls / self.total_syscalls


class Trace:
    """An ordered stream of recorded syscalls."""

    def __init__(self, events: Optional[List[TraceEvent]] = None):
        self.events: List[TraceEvent] = events or []

    def slot_count(self) -> int:
        """Number of fd slots a replay must provision for this trace."""
        highest = -1
        for event in self.events:
            if event.returns_fd_slot is not None \
                    and event.returns_fd_slot > highest:
                highest = event.returns_fd_slot
            for value in event.args:
                if isinstance(value, tuple) and len(value) == 2 \
                        and value[0] == "fd" and value[1] > highest:
                    highest = value[1]
            for value in event.kwargs.values():
                if isinstance(value, tuple) and len(value) == 2 \
                        and value[0] == "fd" and value[1] > highest:
                    highest = value[1]
        return highest + 1

    def stats(self) -> TraceStats:
        by_op: Dict[str, int] = {}
        path_calls = 0
        compute = 0.0
        for event in self.events:
            by_op[event.op] = by_op.get(event.op, 0) + 1
            if event.op in PATH_LOOKUP_OPS:
                path_calls += 1
            compute += event.compute_ns
        return TraceStats(total_syscalls=len(self.events),
                          path_lookup_syscalls=path_calls,
                          by_op=by_op, total_compute_ns=compute)

    # -- persistence ---------------------------------------------------------

    def dumps(self) -> str:
        return "\n".join(event.to_json() for event in self.events)

    @classmethod
    def loads(cls, text: str) -> "Trace":
        return cls([TraceEvent.from_json(line)
                    for line in text.splitlines() if line.strip()])

    def __len__(self) -> int:
        return len(self.events)


class TraceRecorder:
    """Record syscalls as they execute on a live kernel.

    Use it like the syscall facade; every call is executed *and*
    recorded.  Compute gaps are recorded with :meth:`compute`.
    """

    def __init__(self, kernel: Kernel, task: Task):
        self._kernel = kernel
        self._task = task
        self.trace = Trace()
        self._fd_slots: Dict[int, int] = {}
        self._next_slot = 0
        self._pending_compute = 0.0

    def compute(self, ns: float) -> None:
        """Record (and charge) an application compute gap."""
        self._kernel.costs.charge_ns("app_compute", ns)
        self._pending_compute += ns

    def __getattr__(self, op: str):
        method = getattr(self._kernel.sys, op)

        def wrapper(*args, **kwargs):
            event = TraceEvent(op=op, args=self._encode(op, args),
                               kwargs=self._encode_kwargs(kwargs),
                               compute_ns=self._pending_compute)
            self._pending_compute = 0.0
            try:
                result = method(self._task, *args, **kwargs)
            except errors.FsError as exc:
                event.errno = exc.errno
                self.trace.events.append(event)
                raise
            if op in ("open", "openat"):
                event.returns_fd_slot = self._assign_slot(result)
            elif op == "mkstemp":
                event.returns_fd_slot = self._assign_slot(result[0])
            self.trace.events.append(event)
            return result

        return wrapper

    def _assign_slot(self, fd: int) -> int:
        slot = self._next_slot
        self._next_slot += 1
        self._fd_slots[fd] = slot
        return slot

    def _encode(self, op: str, args: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Replace fd arguments with their slots for portability."""
        if op in _FD_ARG_OPS and args:
            fd = args[0]
            return (("fd", self._fd_slots[fd]),) + tuple(
                a.decode("latin-1") if isinstance(a, bytes) else a
                for a in args[1:])
        return tuple(a.decode("latin-1") if isinstance(a, bytes) else a
                     for a in args)

    def _encode_kwargs(self, kwargs: Dict[str, Any]) -> Dict[str, Any]:
        out = {}
        for key, value in kwargs.items():
            if key == "dirfd" and value is not None:
                out[key] = ("fd", self._fd_slots[value])
            elif isinstance(value, (str, int, float, bool, type(None))):
                out[key] = value
            # Non-serializable kwargs (e.g. an rng) are dropped; replay
            # uses the callee's deterministic default.
        return out


class ReplayDivergence(AssertionError):
    """A replayed call's outcome diverged from the recording.

    Carries enough structure for callers to triage programmatically:
    the event index within the trace, the op name, and the recorded vs
    observed errno (``None`` means success).
    """

    def __init__(self, index: int, op: str,
                 expected_errno: Optional[int],
                 actual_errno: Optional[int],
                 detail: str = ""):
        self.index = index
        self.op = op
        self.expected_errno = expected_errno
        self.actual_errno = actual_errno
        super().__init__(
            f"event {index} ({op}): recorded errno={expected_errno}, "
            f"replayed errno={actual_errno}" + (f" [{detail}]" if detail
                                                else ""))


#: Backwards-compatible alias (pre-compiler name).
ReplayMismatch = ReplayDivergence


def replay(kernel: Kernel, task: Task, trace: Trace,
           strict: bool = True) -> None:
    """Replay a trace against a kernel, checking outcomes.

    With ``strict``, a call that succeeded at record time must succeed at
    replay time and vice versa (matching errno, else
    :class:`ReplayDivergence`).  Per-event application compute is charged
    *before* the call, unconditionally — error events carry their
    preceding compute gap too, so the virtual clock advances identically
    whether an event succeeds or fails.
    """
    slot_fds: List[int] = [-1] * trace.slot_count()
    charge_ns = kernel.costs.charge_ns
    sys_facade = kernel.sys

    def decode(value):
        if isinstance(value, tuple) and len(value) == 2 \
                and value[0] == "fd":
            return slot_fds[value[1]]
        return value

    for index, event in enumerate(trace.events):
        if event.compute_ns:
            charge_ns("app_compute", event.compute_ns)
        args = tuple(decode(a) for a in event.args)
        if event.op == "write" and len(args) == 2 \
                and isinstance(args[1], str):
            args = (args[0], args[1].encode("latin-1"))
        kwargs = {k: decode(v) for k, v in event.kwargs.items()}
        method = getattr(sys_facade, event.op)
        try:
            result = method(task, *args, **kwargs)
        except errors.FsError as exc:
            if strict and exc.errno != event.errno:
                raise ReplayDivergence(index, event.op, event.errno,
                                       exc.errno, f"args={args!r}")
            continue
        if strict and event.errno is not None:
            raise ReplayDivergence(index, event.op, event.errno, None,
                                   f"args={args!r}")
        if event.returns_fd_slot is not None:
            fd = result[0] if event.op == "mkstemp" else result
            slot_fds[event.returns_fd_slot] = fd


def replay_compiled(kernel: Kernel, task: Task, program,
                    strict: bool = True) -> None:
    """Execute a :class:`~repro.workloads.compile.CompiledTrace`.

    Semantically identical to :func:`replay` of the source trace —
    same syscalls, same order, same compute charges, hence bit-identical
    virtual costs and Stats (``tests/test_compiled_replay.py`` is the
    differential gate) — but the per-event interpretation work is gone:
    op dispatch is an index into a prebound method table (built once per
    replay from a :meth:`~repro.vfs.syscalls.Syscalls.batch` prologue),
    args are prefolded tuples, fd remaps are precomputed patch sites,
    and the errno check is branch-on-None.

    ``program`` is duck-typed (``op_table``, ``rows``, ``slot_count``)
    so this module need not import the compiler.
    """
    batch = kernel.sys.batch(task)
    methods = [getattr(batch, name) for name in program.op_table]
    slot_fds: List[int] = [-1] * program.slot_count
    charge_ns = kernel.costs.charge_ns
    fs_error = errors.FsError

    if not strict:
        # Lenient path: mirror replay(strict=False) — unexpected
        # outcomes are ignored and the stream continues.
        for op_idx, args, patches, store, errno_exp, compute, pair \
                in program.rows:
            if compute:
                charge_ns("app_compute", compute)
            if patches is not None:
                for arg_idx, slot in patches:
                    args[arg_idx] = slot_fds[slot]
            try:
                result = methods[op_idx](*args)
            except fs_error:
                continue
            if store >= 0 and errno_exp is None:
                slot_fds[store] = result[0] if pair else result
        return

    index = -1
    try:
        # Row layout (see compile.py): op_idx, args, patches, store_slot,
        # expected_errno, compute_ns, unpack_pair.  Events expected to
        # succeed run with NO per-event try/except — the hoisted outer
        # handler converts a stray FsError into a ReplayDivergence —
        # while expected-error events (the minority) keep a local one.
        # Patched args stay a list across calls (f(*list) binds the same
        # as f(*tuple)); only the patch sites are rewritten per event.
        for index, (op_idx, args, patches, store, errno_exp, compute,
                    pair) in enumerate(program.rows):
            if compute:
                charge_ns("app_compute", compute)
            if patches is not None:
                for arg_idx, slot in patches:
                    args[arg_idx] = slot_fds[slot]
            if errno_exp is None:
                result = methods[op_idx](*args)
                if store >= 0:
                    slot_fds[store] = result[0] if pair else result
            else:
                try:
                    methods[op_idx](*args)
                except fs_error as exc:
                    if exc.errno != errno_exp:
                        raise ReplayDivergence(
                            index, program.op_table[op_idx], errno_exp,
                            exc.errno, f"args={tuple(args)!r}") from exc
                else:
                    raise ReplayDivergence(
                        index, program.op_table[op_idx], errno_exp,
                        None, f"args={tuple(args)!r}")
    except fs_error as exc:
        op_idx = program.rows[index][0]
        raise ReplayDivergence(index, program.op_table[op_idx],
                               None, exc.errno) from exc
