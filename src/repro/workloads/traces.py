"""Syscall trace recording and replay (iBench-style, §1).

The paper motivates its work with syscall traces: "between 10-20% of all
system calls in the iBench system call traces do a path lookup."  This
module gives the reproduction the same methodology: record a workload's
syscall stream once (with per-event compute gaps), then replay it
verbatim against any kernel configuration and compare.

File descriptors are kernel-local, so traces store *fd slots*: the
recorder maps each returned fd to a dense slot id, and replay remaps
slots to the fds its own kernel returns.  Traces serialize to JSON lines
for storage and diffing.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import errors
from repro.core.kernel import Kernel
from repro.sim.costs import ChargePlan, PlanCell, PlanRecording, _RAW_NS
from repro.vfs.task import Task

#: Syscalls that perform a path lookup (the §1 statistic).
PATH_LOOKUP_OPS = frozenset([
    "stat", "lstat", "fstatat", "access", "open", "openat", "mkdir",
    "rmdir", "unlink", "rename", "chmod", "chown", "symlink", "link",
    "readlink", "chdir", "truncate",
])

#: Argument positions (per op) holding fd slots, for remapping.  The fd
#: is always args[0] for these ops (for ``openat`` it is the dirfd).
_FD_ARG_OPS = frozenset(["close", "read", "write", "lseek", "ftruncate",
                         "getdents", "fstat", "fchdir", "readdir",
                         "openat"])

#: Environment switch for the charge-plan layer (CI differential gates
#: set it to ``0``); explicit ``plans=`` arguments override it.
_PLANS_ENV = "REPRO_CHARGE_PLANS"


def _plans_enabled() -> bool:
    return os.environ.get(_PLANS_ENV, "1").strip().lower() \
        not in ("0", "off", "false", "no")


#: Primitives a clean charge-plan capture may contain.  This whitelist
#: is the soundness boundary: the fd fast entries for the plannable ops
#: (``lseek``/``fstat``, see ``vfs/syscalls.py``) charge only these,
#: and both are state-independent constants once the apply-time guards
#: hold.  Any other primitive in a capture — a sweeper batch that fired
#: mid-segment, a future charge added to those syscalls — rejects the
#: capture, so plans fail closed.
_PLAN_SAFE_PRIMITIVES = frozenset(["syscall_fixed", "stat_fill"])


def _capture_clean(events) -> bool:
    for event in events:
        scope = event[0]
        if scope is _RAW_NS:
            if event[1] != "app_compute":
                return False
        elif scope is not None or event[1] not in _PLAN_SAFE_PRIMITIVES:
            return False
    return True


#: Compiled plan replay functions keyed by (rate table, event stream).
#: Shared across CostModel instances on purpose: benchmark repetitions
#: restore snapshots whose captures produce byte-identical streams, so
#: the exec-compile cost of a large whole-pass plan is paid once per
#: distinct stream, not once per restored kernel.  The key includes the
#: full rate table (not ``rates_version``, which is per-instance), so
#: two models with different calibrations can never share a function.
_FN_CACHE: Dict[Any, Tuple[Any, float]] = {}
_FN_CACHE_MAX = 64


def _plan_fn(costs, events: tuple) -> Tuple[Any, float]:
    """(straight-line replay fn, exact total ns) for an event stream."""
    key = (tuple(sorted(costs.charges.items())), events)
    hit = _FN_CACHE.get(key)
    if hit is None:
        _version, crows, count_deltas = costs.compile_events(events)
        fn = costs.compile_replay_fn(crows, count_deltas)
        total = 0.0
        for crow in crows:
            total += crow[3]
        if len(_FN_CACHE) >= _FN_CACHE_MAX:
            _FN_CACHE.clear()
        hit = _FN_CACHE[key] = (fn, total)
    return hit


def _normalize(value: Any) -> Any:
    """Recursively turn JSON sequences back into tuples.

    ``json`` round-trips every tuple as a list; re-tupling only the top
    level left nested markers like ``("fd", 3)`` as lists after a
    dumps/loads cycle, so a reloaded trace compared unequal to the
    original.  Normalizing recursively makes dumps→loads the identity.
    """
    if isinstance(value, (list, tuple)):
        return tuple(_normalize(v) for v in value)
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in value.items()}
    return value


@dataclass
class TraceEvent:
    """One recorded syscall (or compute gap)."""

    op: str
    args: Tuple[Any, ...]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Slot id assigned to a returned fd (open/openat/mkstemp).
    returns_fd_slot: Optional[int] = None
    #: errno when the recorded call failed (replay must match).
    errno: Optional[int] = None
    #: Application compute charged before this call (virtual ns).
    compute_ns: float = 0.0

    def to_json(self) -> str:
        return json.dumps({
            "op": self.op, "args": list(self.args),
            "kwargs": self.kwargs, "fd_slot": self.returns_fd_slot,
            "errno": self.errno, "compute_ns": self.compute_ns,
        })

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        raw = json.loads(line)
        return cls(op=raw["op"], args=_normalize(raw["args"]),
                   kwargs={k: _normalize(v)
                           for k, v in raw.get("kwargs", {}).items()},
                   returns_fd_slot=raw.get("fd_slot"),
                   errno=raw.get("errno"),
                   compute_ns=raw.get("compute_ns", 0.0))


@dataclass
class TraceStats:
    """Aggregate statistics over a trace (the §1 measurements)."""

    total_syscalls: int
    path_lookup_syscalls: int
    by_op: Dict[str, int]
    total_compute_ns: float

    @property
    def path_lookup_fraction(self) -> float:
        if self.total_syscalls == 0:
            return 0.0
        return self.path_lookup_syscalls / self.total_syscalls


class Trace:
    """An ordered stream of recorded syscalls."""

    def __init__(self, events: Optional[List[TraceEvent]] = None):
        self.events: List[TraceEvent] = events or []

    def slot_count(self) -> int:
        """Number of fd slots a replay must provision for this trace."""
        highest = -1
        for event in self.events:
            if event.returns_fd_slot is not None \
                    and event.returns_fd_slot > highest:
                highest = event.returns_fd_slot
            for value in event.args:
                if isinstance(value, tuple) and len(value) == 2 \
                        and value[0] == "fd" and value[1] > highest:
                    highest = value[1]
            for value in event.kwargs.values():
                if isinstance(value, tuple) and len(value) == 2 \
                        and value[0] == "fd" and value[1] > highest:
                    highest = value[1]
        return highest + 1

    def stats(self) -> TraceStats:
        by_op: Dict[str, int] = {}
        path_calls = 0
        compute = 0.0
        for event in self.events:
            by_op[event.op] = by_op.get(event.op, 0) + 1
            if event.op in PATH_LOOKUP_OPS:
                path_calls += 1
            compute += event.compute_ns
        return TraceStats(total_syscalls=len(self.events),
                          path_lookup_syscalls=path_calls,
                          by_op=by_op, total_compute_ns=compute)

    # -- persistence ---------------------------------------------------------

    def dumps(self) -> str:
        return "\n".join(event.to_json() for event in self.events)

    @classmethod
    def loads(cls, text: str) -> "Trace":
        return cls([TraceEvent.from_json(line)
                    for line in text.splitlines() if line.strip()])

    def __len__(self) -> int:
        return len(self.events)


class TraceRecorder:
    """Record syscalls as they execute on a live kernel.

    Use it like the syscall facade; every call is executed *and*
    recorded.  Compute gaps are recorded with :meth:`compute`.
    """

    def __init__(self, kernel: Kernel, task: Task):
        self._kernel = kernel
        self._task = task
        self.trace = Trace()
        self._fd_slots: Dict[int, int] = {}
        self._next_slot = 0
        self._pending_compute = 0.0

    def compute(self, ns: float) -> None:
        """Record (and charge) an application compute gap."""
        self._kernel.costs.charge_ns("app_compute", ns)
        self._pending_compute += ns

    def __getattr__(self, op: str):
        method = getattr(self._kernel.sys, op)

        def wrapper(*args, **kwargs):
            event = TraceEvent(op=op, args=self._encode(op, args),
                               kwargs=self._encode_kwargs(kwargs),
                               compute_ns=self._pending_compute)
            self._pending_compute = 0.0
            try:
                result = method(self._task, *args, **kwargs)
            except errors.FsError as exc:
                event.errno = exc.errno
                self.trace.events.append(event)
                raise
            if op in ("open", "openat"):
                event.returns_fd_slot = self._assign_slot(result)
            elif op == "mkstemp":
                event.returns_fd_slot = self._assign_slot(result[0])
            self.trace.events.append(event)
            return result

        return wrapper

    def _assign_slot(self, fd: int) -> int:
        slot = self._next_slot
        self._next_slot += 1
        self._fd_slots[fd] = slot
        return slot

    def _encode(self, op: str, args: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Replace fd arguments with their slots for portability."""
        if op in _FD_ARG_OPS and args:
            fd = args[0]
            return (("fd", self._fd_slots[fd]),) + tuple(
                a.decode("latin-1") if isinstance(a, bytes) else a
                for a in args[1:])
        return tuple(a.decode("latin-1") if isinstance(a, bytes) else a
                     for a in args)

    def _encode_kwargs(self, kwargs: Dict[str, Any]) -> Dict[str, Any]:
        out = {}
        for key, value in kwargs.items():
            if key == "dirfd" and value is not None:
                out[key] = ("fd", self._fd_slots[value])
            elif isinstance(value, (str, int, float, bool, type(None))):
                out[key] = value
            # Non-serializable kwargs (e.g. an rng) are dropped; replay
            # uses the callee's deterministic default.
        return out


class ReplayDivergence(AssertionError):
    """A replayed call's outcome diverged from the recording.

    Carries enough structure for callers to triage programmatically:
    the event index within the trace, the op name, and the recorded vs
    observed errno (``None`` means success).
    """

    def __init__(self, index: int, op: str,
                 expected_errno: Optional[int],
                 actual_errno: Optional[int],
                 detail: str = ""):
        self.index = index
        self.op = op
        self.expected_errno = expected_errno
        self.actual_errno = actual_errno
        super().__init__(
            f"event {index} ({op}): recorded errno={expected_errno}, "
            f"replayed errno={actual_errno}" + (f" [{detail}]" if detail
                                                else ""))


#: Backwards-compatible alias (pre-compiler name).
ReplayMismatch = ReplayDivergence


def replay(kernel: Kernel, task: Task, trace: Trace,
           strict: bool = True) -> None:
    """Replay a trace against a kernel, checking outcomes.

    With ``strict``, a call that succeeded at record time must succeed at
    replay time and vice versa (matching errno, else
    :class:`ReplayDivergence`).  Per-event application compute is charged
    *before* the call, unconditionally — error events carry their
    preceding compute gap too, so the virtual clock advances identically
    whether an event succeeds or fails.
    """
    slot_fds: List[int] = [-1] * trace.slot_count()
    charge_ns = kernel.costs.charge_ns
    sys_facade = kernel.sys

    def decode(value):
        if isinstance(value, tuple) and len(value) == 2 \
                and value[0] == "fd":
            return slot_fds[value[1]]
        return value

    for index, event in enumerate(trace.events):
        if event.compute_ns:
            charge_ns("app_compute", event.compute_ns)
        args = tuple(decode(a) for a in event.args)
        if event.op == "write" and len(args) == 2 \
                and isinstance(args[1], str):
            args = (args[0], args[1].encode("latin-1"))
        kwargs = {k: decode(v) for k, v in event.kwargs.items()}
        method = getattr(sys_facade, event.op)
        try:
            result = method(task, *args, **kwargs)
        except errors.FsError as exc:
            if strict and exc.errno != event.errno:
                raise ReplayDivergence(index, event.op, event.errno,
                                       exc.errno, f"args={args!r}")
            continue
        if strict and event.errno is not None:
            raise ReplayDivergence(index, event.op, event.errno, None,
                                   f"args={args!r}")
        if event.returns_fd_slot is not None:
            fd = result[0] if event.op == "mkstemp" else result
            slot_fds[event.returns_fd_slot] = fd


def replay_compiled(kernel: Kernel, task: Task, program,
                    strict: bool = True,
                    plans: Optional[bool] = None) -> None:
    """Execute a :class:`~repro.workloads.compile.CompiledTrace`.

    Semantically identical to :func:`replay` of the source trace —
    same syscalls, same order, same compute charges, hence bit-identical
    virtual costs and Stats (``tests/test_compiled_replay.py`` is the
    differential gate) — but the per-event interpretation work is gone:
    op dispatch is an index into a prebound method table (built once per
    replay from a :meth:`~repro.vfs.syscalls.Syscalls.batch` prologue),
    args are prefolded tuples, fd remaps are precomputed patch sites,
    and the errno check is branch-on-None.

    On strict replays of compiled programs the charge-plan layer
    additionally captures and applies charge plans at two granularities
    — bit-identical virtual costs either way
    (``tests/test_charge_plans.py`` is the differential gate), pure
    wall-clock win.  ``plans`` forces the layer on/off; ``None`` reads
    the ``REPRO_CHARGE_PLANS`` environment switch (default on).

    1. *Whole-pass program plans* (:func:`_program_plan_pass`): for a
       self-undoing trace replayed back to back on one quiescent kernel
       — the benchmark loop shape — the entire pass's charge stream is
       captured once (confirmed on a second identical recorded run) and
       later passes apply one straight-line charge replay plus one bulk
       Stats merge, guarded by the registry generation, the rate-table
       version, and *exact clock equality* with the previous pass's end
       (any interleaving syscall moves the clock and forces interpreted
       fallback plus re-validation).  Disabled when a lazy sweeper
       exists: its deadlines drift relative to pass boundaries, so a
       full pass's stream is never stable under one.

    2. *Per-segment plans* (:func:`_compiled_units`) for programs
       carrying ``plan_segments``: runs of fd-table syscalls captured
       and applied under per-fd guards — the granularity
       :func:`replay_interleaved` schedules, and the fallback whenever
       whole-pass planning is unavailable.

    ``program`` is duck-typed (``op_table``, ``rows``, ``slot_count``)
    so this module need not import the compiler; programs without
    ``plan_segments`` replay exactly as before.
    """
    if strict and getattr(program, "plan_segments", None) is not None:
        if plans is None:
            plans = _plans_enabled()
        if plans and kernel.costs.recorder is None:
            registry = kernel.costs.plans
            if kernel.sweeper is None and _program_plan_pass(
                    kernel, task, program, registry):
                return
            if program.plan_segments:
                for _ in _compiled_units(kernel, task, program, registry,
                                         fine=False):
                    pass
                return
    batch = kernel.sys.batch(task)
    methods = [getattr(batch, name) for name in program.op_table]
    slot_fds: List[int] = [-1] * program.slot_count
    charge_ns = kernel.costs.charge_ns
    fs_error = errors.FsError

    if not strict:
        # Lenient path: mirror replay(strict=False) — unexpected
        # outcomes are ignored and the stream continues.
        for op_idx, args, patches, store, errno_exp, compute, pair \
                in program.rows:
            if compute:
                charge_ns("app_compute", compute)
            if patches is not None:
                for arg_idx, slot in patches:
                    args[arg_idx] = slot_fds[slot]
            try:
                result = methods[op_idx](*args)
            except fs_error:
                continue
            if store >= 0 and errno_exp is None:
                slot_fds[store] = result[0] if pair else result
        return

    index = -1
    try:
        # Row layout (see compile.py): op_idx, args, patches, store_slot,
        # expected_errno, compute_ns, unpack_pair.  Events expected to
        # succeed run with NO per-event try/except — the hoisted outer
        # handler converts a stray FsError into a ReplayDivergence —
        # while expected-error events (the minority) keep a local one.
        # Patched args stay a list across calls (f(*list) binds the same
        # as f(*tuple)); only the patch sites are rewritten per event.
        for index, (op_idx, args, patches, store, errno_exp, compute,
                    pair) in enumerate(program.rows):
            if compute:
                charge_ns("app_compute", compute)
            if patches is not None:
                for arg_idx, slot in patches:
                    args[arg_idx] = slot_fds[slot]
            if errno_exp is None:
                result = methods[op_idx](*args)
                if store >= 0:
                    slot_fds[store] = result[0] if pair else result
            else:
                try:
                    methods[op_idx](*args)
                except fs_error as exc:
                    if exc.errno != errno_exp:
                        raise ReplayDivergence(
                            index, program.op_table[op_idx], errno_exp,
                            exc.errno, f"args={tuple(args)!r}") from exc
                else:
                    raise ReplayDivergence(
                        index, program.op_table[op_idx], errno_exp,
                        None, f"args={tuple(args)!r}")
    except fs_error as exc:
        op_idx = program.rows[index][0]
        raise ReplayDivergence(index, program.op_table[op_idx],
                               None, exc.errno) from exc


def _program_plan_pass(kernel: Kernel, task: Task, program,
                       registry) -> bool:
    """Whole-pass charge-plan protocol; True iff this pass was executed.

    A compiled trace replayed strictly in a loop must reach the same
    outcomes every pass (strict replay raises on any divergence), and a
    *self-undoing* trace returns the file system, fd table, and cwd to
    their starting state — so in the absence of outside interference
    every pass charges the identical event stream.  This captures that
    stream once (warm pass, then two recorded passes that must match
    event-for-event and in Stats deltas) and thereafter applies the
    whole pass as one straight-line charge replay plus one bulk Stats
    merge.

    Soundness rests on the quiescence guard rather than a per-charge
    whitelist: the plan applies only when the virtual clock sits at the
    *exact* float value the previous pass ended on.  Every syscall
    charges at least one primitive, so any interleaving activity on the
    kernel moves the clock off that value and forces interpreted
    fallback; repeated failures drop the plan and re-enter capture
    against the changed world.  Out-of-band invalidations
    (``drop_caches``, ``chmod``-class memo flushes, recalibration) are
    caught by the generation/rates guards.  Captures that leave the fd
    table changed (a non-self-undoing trace) are rejected: freezing
    host state would starve the next pass.

    Applied passes advance the clock, ``by_primitive``/``by_scope``,
    ``counts``, and Stats bit-identically to interpreted execution, and
    leave kernel object state untouched — which for a self-undoing
    trace is exactly the state the next pass starts from.  Host-side
    telemetry outside those surfaces (page-cache hit counters, memo
    counters) does not advance during applied passes.
    """
    costs = kernel.costs
    if costs._scope_stack:
        return False
    cell = registry.pass_cell(program, task)
    if cell.dead:
        return False
    clock = costs.clock
    plan = cell.plan
    if plan is not None:
        if plan.gen != registry.gen \
                or plan.rates_version != costs.rates_version:
            registry.invalidated += 1
            cell.reset()
            return False
        if clock._now_ns != cell.armed_now:
            registry.fallbacks += 1
            cell.fail_streak += 1
            if cell.fail_streak >= registry.PASS_FAIL_STREAK:
                registry.invalidated += 1
                cell.reset()
            return False
        plan.fn(clock, costs.by_primitive, costs.by_scope, costs.counts,
                None)
        if plan.stat_deltas:
            kernel.stats.bump_many(plan.stat_deltas)
        cell.armed_now = clock._now_ns
        cell.fail_streak = 0
        registry.applied += 1
        return True
    n = cell.execs
    cell.execs = n + 1
    if n < registry.WARMUP:
        return False
    # Capture: record one full interpreted pass (plans=False disables
    # both plan granularities underneath; the attached recorder also
    # makes the resolution memo bypass itself, so the stream equals
    # ground-truth interpreted charging).
    rec = PlanRecording()
    stats = kernel.stats
    before = dict(stats._counters)
    fds_before = frozenset(task.fds._files)
    costs.recorder = rec
    try:
        replay_compiled(kernel, task, program, strict=True, plans=False)
    finally:
        costs.recorder = None
    if costs._scope_stack or frozenset(task.fds._files) != fds_before:
        cell.pending = None
        cell.retries += 1
        if cell.retries > registry.MAX_RETRIES:
            cell.dead = True
        return True
    deltas = []
    for name, value in stats._counters.items():
        delta = value - before.get(name, 0)
        if delta:
            deltas.append((name, delta))
    deltas.sort()
    capture = (tuple(rec.events), tuple(deltas))
    pending = cell.pending
    if pending is None:
        cell.pending = capture
    elif pending == capture:
        fn, total = _plan_fn(costs, capture[0])
        plan = ChargePlan()
        plan.fn = fn
        plan.stat_deltas = capture[1]
        plan.total_ns = total
        plan.gen = registry.gen
        plan.rates_version = costs.rates_version
        cell.plan = plan
        cell.pending = None
        cell.fail_streak = 0
        cell.armed_now = clock._now_ns
        registry.compiled += 1
    else:
        cell.pending = capture
        cell.retries += 1
        if cell.retries > registry.MAX_RETRIES:
            cell.dead = True
            cell.pending = None
    return True


def _compiled_units(kernel: Kernel, task: Task, program, registry,
                    fine: bool):
    """Strict compiled replay as a generator, one yield per unit.

    Unit boundaries are a *static* function of the program: each
    charge-plannable segment is one unit, everything between segments
    is one unit (or, with ``fine``, one unit per row — the granularity
    :func:`replay_interleaved` schedules at).  Plan state never moves a
    boundary, so interleavings are identical with plans on or off.

    The charge-plan protocol per segment (state in
    :class:`~repro.sim.costs.PlanCell`):

    1. *Warm*: the first execution runs interpreted (first executions
       populate fd-table/inode state the capture should not see).
    2. *Capture*: the next two executions run interpreted with the
       charge recorder attached; both must produce the identical event
       stream and Stats deltas — the resolution memo's
       confirm-on-second-identical-run protocol.  Captures containing
       anything outside the plannable-op whitelist (a lazy sweep that
       fired mid-segment, an LRU/PCC touch, a scope-attributed charge)
       are rejected and retried; repeated rejection marks the segment
       permanently interpreted.
    3. *Guarded apply*: later executions check the registry generation,
       the rate-table version, per-fd-slot liveness (open, unclosed,
       inode present, non-directory — the exact branch conditions of
       the fd fast entries), and that no sweeper deadline falls inside
       the plan's virtual span; then apply the precompiled straight-line
       charge replay, the bulk Stats merge, and the segment's final
       ``lseek`` offsets.  Any guard failure falls back to interpreted
       execution for that pass; a streak of failures re-enters capture.
    """
    costs = kernel.costs
    batch = kernel.sys.batch(task)
    methods = [getattr(batch, name) for name in program.op_table]
    slot_fds: List[int] = [-1] * program.slot_count
    charge_ns = costs.charge_ns
    fs_error = errors.FsError
    rows = program.rows
    op_table = program.op_table
    segments = getattr(program, "plan_segments", ()) or ()
    stats = kernel.stats
    clock = costs.clock
    sweeper = kernel.sweeper
    ticker = sweeper.ticker if sweeper is not None else None
    files = task.fds._files
    scope_stack = costs._scope_stack
    cells = (registry.cells(program, len(segments))
             if registry is not None and segments else None)

    def run_rows(lo: int, hi: int) -> None:
        index = lo
        try:
            for index in range(lo, hi):
                op_idx, args, patches, store, errno_exp, compute, pair \
                    = rows[index]
                if compute:
                    charge_ns("app_compute", compute)
                if patches is not None:
                    for arg_idx, slot in patches:
                        args[arg_idx] = slot_fds[slot]
                if errno_exp is None:
                    result = methods[op_idx](*args)
                    if store >= 0:
                        slot_fds[store] = result[0] if pair else result
                else:
                    try:
                        methods[op_idx](*args)
                    except fs_error as exc:
                        if exc.errno != errno_exp:
                            raise ReplayDivergence(
                                index, op_table[op_idx], errno_exp,
                                exc.errno, f"args={tuple(args)!r}") from exc
                    else:
                        raise ReplayDivergence(
                            index, op_table[op_idx], errno_exp, None,
                            f"args={tuple(args)!r}")
        except ReplayDivergence:
            raise
        except fs_error as exc:
            raise ReplayDivergence(index, op_table[rows[index][0]],
                                   None, exc.errno) from exc

    pos = 0
    for seg_i, seg in enumerate(segments):
        start = seg.start
        if pos < start:
            if fine:
                for i in range(pos, start):
                    run_rows(i, i + 1)
                    yield
            else:
                run_rows(pos, start)
                yield
        pos = seg.end
        if cells is None:
            run_rows(start, pos)
            yield
            continue
        cell = cells[seg_i]
        if cell is None:
            cell = cells[seg_i] = PlanCell()
        plan = cell.plan
        if plan is not None:
            if plan.gen == registry.gen \
                    and plan.rates_version == costs.rates_version:
                ok = not scope_stack
                if ok:
                    for slot, need_inode, need_not_dir in seg.guards:
                        f = files.get(slot_fds[slot])
                        if f is None or f.closed:
                            ok = False
                            break
                        if need_inode or need_not_dir:
                            inode = f.pos.dentry.inode
                            if inode is None:
                                if need_inode:
                                    ok = False
                                    break
                            elif need_not_dir and inode.is_dir:
                                ok = False
                                break
                # The +1 ns pad absorbs float-fold discrepancies between
                # total_ns and the per-event accumulation: padding only
                # ever forces an (always-sound) interpreted fallback.
                if ok and ticker is not None \
                        and ticker.fires_within(plan.total_ns + 1.0):
                    ok = False
                if ok:
                    plan.fn(clock, costs.by_primitive, costs.by_scope,
                            costs.counts, None)
                    if plan.stat_deltas:
                        stats.bump_many(plan.stat_deltas)
                    for slot, offset in seg.seeks:
                        files[slot_fds[slot]].offset = offset
                    registry.applied += 1
                    cell.fail_streak = 0
                    yield
                    continue
                registry.fallbacks += 1
                cell.fail_streak += 1
                if cell.fail_streak >= registry.MAX_FAIL_STREAK:
                    registry.invalidated += 1
                    cell.reset()
            else:
                # Out-of-band invalidation (gen bump) or recalibration:
                # drop the plan and re-enter capture.
                registry.invalidated += 1
                cell.reset()
            run_rows(start, pos)
            yield
            continue
        if cell.dead or costs.recorder is not None:
            run_rows(start, pos)
            yield
            continue
        n = cell.execs
        cell.execs = n + 1
        if n < registry.WARMUP:
            run_rows(start, pos)
            yield
            continue
        # Capture execution: interpreted, with the recorder attached.
        rec = PlanRecording()
        before = dict(stats._counters)
        costs.recorder = rec
        try:
            run_rows(start, pos)
        finally:
            costs.recorder = None
        events = tuple(rec.events)
        if rec.lru or rec.pcc or not _capture_clean(events):
            cell.pending = None
            cell.retries += 1
            if cell.retries > registry.MAX_RETRIES:
                cell.dead = True
            yield
            continue
        deltas = []
        for name, value in stats._counters.items():
            delta = value - before.get(name, 0)
            if delta:
                deltas.append((name, delta))
        deltas.sort()
        capture = (events, tuple(deltas))
        pending = cell.pending
        if pending is None:
            cell.pending = capture
        elif pending == capture:
            fn, total = _plan_fn(costs, events)
            plan = ChargePlan()
            plan.fn = fn
            plan.stat_deltas = capture[1]
            plan.total_ns = total
            plan.gen = registry.gen
            plan.rates_version = costs.rates_version
            cell.plan = plan
            cell.pending = None
            cell.fail_streak = 0
            registry.compiled += 1
        else:
            cell.pending = capture
            cell.retries += 1
            if cell.retries > registry.MAX_RETRIES:
                cell.dead = True
                cell.pending = None
        yield
    n_rows = len(rows)
    if pos < n_rows:
        if fine:
            for i in range(pos, n_rows):
                run_rows(i, i + 1)
                yield
        else:
            run_rows(pos, n_rows)
            yield


def replay_interleaved(kernel: Kernel,
                       streams: Sequence[Tuple[Task, Any]],
                       seed: int = 0, strict: bool = True,
                       plans: Optional[bool] = None) -> None:
    """Replay N compiled per-task programs interleaved on one kernel.

    ``streams`` is a sequence of ``(task, program)`` pairs — distinct
    :class:`~repro.vfs.task.Task` objects (own creds, cwds, fd tables)
    against a single kernel.  Execution proceeds unit-by-unit under a
    seeded :class:`~repro.testing.scheduler.StreamScheduler`: each step
    advances one stream by one unit (one row, or one whole
    charge-plannable segment — boundaries are static, see
    :func:`_compiled_units`), so the interleaving is deterministic for
    a given seed and identical with plans on or off.

    Charge plans are validated per task at apply time (fd-table guards
    read through the executing stream's slots), and captured plans are
    shared across streams replaying the same program object.  A
    mutation by one task that bumps the plan registry's generation
    (``chmod``-class memo flushes, ``drop_caches``) invalidates plans
    held by every other stream — the cross-task coherence slice of the
    multi-tenant traffic engine.
    """
    if not strict:
        raise ValueError("interleaved replay supports strict mode only")
    if plans is None:
        plans = _plans_enabled()
    registry = kernel.costs.plans \
        if plans and kernel.costs.recorder is None else None
    from repro.testing.scheduler import StreamScheduler
    units = [_compiled_units(kernel, task, prog, registry, fine=True)
             for task, prog in streams]
    scheduler = StreamScheduler(seed)
    alive = list(range(len(units)))
    while alive:
        pick = scheduler.pick(len(alive))
        try:
            next(units[alive[pick]])
        except StopIteration:
            alive.pop(pick)
