"""Syscall trace recording and replay (iBench-style, §1).

The paper motivates its work with syscall traces: "between 10-20% of all
system calls in the iBench system call traces do a path lookup."  This
module gives the reproduction the same methodology: record a workload's
syscall stream once (with per-event compute gaps), then replay it
verbatim against any kernel configuration and compare.

File descriptors are kernel-local, so traces store *fd slots*: the
recorder maps each returned fd to a dense slot id, and replay remaps
slots to the fds its own kernel returns.  Traces serialize to JSON lines
for storage and diffing.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import errors
from repro.core.kernel import Kernel
from repro.sim.costs import ChargePlan, PlanRecording, _RAW_NS
from repro.vfs.task import Task

#: Syscalls that perform a path lookup (the §1 statistic).
PATH_LOOKUP_OPS = frozenset([
    "stat", "lstat", "fstatat", "access", "open", "openat", "mkdir",
    "rmdir", "unlink", "rename", "chmod", "chown", "symlink", "link",
    "readlink", "chdir", "truncate",
])

#: Argument positions (per op) holding fd slots, for remapping.  The fd
#: is always args[0] for these ops (for ``openat`` it is the dirfd).
_FD_ARG_OPS = frozenset(["close", "read", "write", "lseek", "ftruncate",
                         "getdents", "fstat", "fchdir", "readdir",
                         "openat"])

#: Environment switch for the charge-plan layer (CI differential gates
#: set it to ``0``); explicit ``plans=`` arguments override it.
_PLANS_ENV = "REPRO_CHARGE_PLANS"


def _plans_enabled() -> bool:
    return os.environ.get(_PLANS_ENV, "1").strip().lower() \
        not in ("0", "off", "false", "no")


#: Primitives a clean charge-plan capture may contain.  This whitelist
#: is the soundness boundary: the fd fast entries for the plannable ops
#: (``lseek``/``fstat``, see ``vfs/syscalls.py``) charge only these,
#: and both are state-independent constants once the apply-time guards
#: hold.  Any other primitive in a capture — a sweeper batch that fired
#: mid-segment, a future charge added to those syscalls — rejects the
#: capture, so plans fail closed.
_PLAN_SAFE_PRIMITIVES = frozenset(["syscall_fixed", "stat_fill"])


def _capture_clean(events) -> bool:
    for event in events:
        scope = event[0]
        if scope is _RAW_NS:
            if event[1] != "app_compute":
                return False
        elif scope is not None or event[1] not in _PLAN_SAFE_PRIMITIVES:
            return False
    return True


#: Compiled plan replay functions keyed by (rate table, event stream).
#: Shared across CostModel instances on purpose: benchmark repetitions
#: restore snapshots whose captures produce byte-identical streams, so
#: the exec-compile cost of a large whole-pass plan is paid once per
#: distinct stream, not once per restored kernel.  The key includes the
#: full rate table (not ``rates_version``, which is per-instance), so
#: two models with different calibrations can never share a function.
_FN_CACHE: Dict[Any, Tuple[Any, float]] = {}
_FN_CACHE_MAX = 64


def _plan_fn(costs, events: tuple) -> Tuple[Any, float]:
    """(straight-line replay fn, exact total ns) for an event stream."""
    key = (tuple(sorted(costs.charges.items())), events)
    hit = _FN_CACHE.get(key)
    if hit is None:
        _version, crows, count_deltas = costs.compile_events(events)
        fn = costs.compile_replay_fn(crows, count_deltas)
        total = 0.0
        for crow in crows:
            total += crow[3]
        if len(_FN_CACHE) >= _FN_CACHE_MAX:
            _FN_CACHE.clear()
        hit = _FN_CACHE[key] = (fn, total)
    return hit


def _normalize(value: Any) -> Any:
    """Recursively turn JSON sequences back into tuples.

    ``json`` round-trips every tuple as a list; re-tupling only the top
    level left nested markers like ``("fd", 3)`` as lists after a
    dumps/loads cycle, so a reloaded trace compared unequal to the
    original.  Normalizing recursively makes dumps→loads the identity.
    """
    if isinstance(value, (list, tuple)):
        return tuple(_normalize(v) for v in value)
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in value.items()}
    return value


@dataclass
class TraceEvent:
    """One recorded syscall (or compute gap)."""

    op: str
    args: Tuple[Any, ...]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Slot id assigned to a returned fd (open/openat/mkstemp).
    returns_fd_slot: Optional[int] = None
    #: errno when the recorded call failed (replay must match).
    errno: Optional[int] = None
    #: Application compute charged before this call (virtual ns).
    compute_ns: float = 0.0

    def to_json(self) -> str:
        return json.dumps({
            "op": self.op, "args": list(self.args),
            "kwargs": self.kwargs, "fd_slot": self.returns_fd_slot,
            "errno": self.errno, "compute_ns": self.compute_ns,
        })

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        raw = json.loads(line)
        return cls(op=raw["op"], args=_normalize(raw["args"]),
                   kwargs={k: _normalize(v)
                           for k, v in raw.get("kwargs", {}).items()},
                   returns_fd_slot=raw.get("fd_slot"),
                   errno=raw.get("errno"),
                   compute_ns=raw.get("compute_ns", 0.0))


@dataclass
class TraceStats:
    """Aggregate statistics over a trace (the §1 measurements)."""

    total_syscalls: int
    path_lookup_syscalls: int
    by_op: Dict[str, int]
    total_compute_ns: float

    @property
    def path_lookup_fraction(self) -> float:
        if self.total_syscalls == 0:
            return 0.0
        return self.path_lookup_syscalls / self.total_syscalls


class Trace:
    """An ordered stream of recorded syscalls."""

    def __init__(self, events: Optional[List[TraceEvent]] = None):
        self.events: List[TraceEvent] = events or []

    def slot_count(self) -> int:
        """Number of fd slots a replay must provision for this trace."""
        highest = -1
        for event in self.events:
            if event.returns_fd_slot is not None \
                    and event.returns_fd_slot > highest:
                highest = event.returns_fd_slot
            for value in event.args:
                if isinstance(value, tuple) and len(value) == 2 \
                        and value[0] == "fd" and value[1] > highest:
                    highest = value[1]
            for value in event.kwargs.values():
                if isinstance(value, tuple) and len(value) == 2 \
                        and value[0] == "fd" and value[1] > highest:
                    highest = value[1]
        return highest + 1

    def stats(self) -> TraceStats:
        by_op: Dict[str, int] = {}
        path_calls = 0
        compute = 0.0
        for event in self.events:
            by_op[event.op] = by_op.get(event.op, 0) + 1
            if event.op in PATH_LOOKUP_OPS:
                path_calls += 1
            compute += event.compute_ns
        return TraceStats(total_syscalls=len(self.events),
                          path_lookup_syscalls=path_calls,
                          by_op=by_op, total_compute_ns=compute)

    # -- persistence ---------------------------------------------------------

    def dumps(self) -> str:
        return "\n".join(event.to_json() for event in self.events)

    @classmethod
    def loads(cls, text: str) -> "Trace":
        return cls([TraceEvent.from_json(line)
                    for line in text.splitlines() if line.strip()])

    def __len__(self) -> int:
        return len(self.events)


class TraceRecorder:
    """Record syscalls as they execute on a live kernel.

    Use it like the syscall facade; every call is executed *and*
    recorded.  Compute gaps are recorded with :meth:`compute`.
    """

    def __init__(self, kernel: Kernel, task: Task):
        self._kernel = kernel
        self._task = task
        self.trace = Trace()
        self._fd_slots: Dict[int, int] = {}
        self._next_slot = 0
        self._pending_compute = 0.0

    def compute(self, ns: float) -> None:
        """Record (and charge) an application compute gap."""
        self._kernel.costs.charge_ns("app_compute", ns)
        self._pending_compute += ns

    def __getattr__(self, op: str):
        method = getattr(self._kernel.sys, op)

        def wrapper(*args, **kwargs):
            event = TraceEvent(op=op, args=self._encode(op, args),
                               kwargs=self._encode_kwargs(kwargs),
                               compute_ns=self._pending_compute)
            self._pending_compute = 0.0
            try:
                result = method(self._task, *args, **kwargs)
            except errors.FsError as exc:
                event.errno = exc.errno
                self.trace.events.append(event)
                raise
            if op in ("open", "openat"):
                event.returns_fd_slot = self._assign_slot(result)
            elif op == "mkstemp":
                event.returns_fd_slot = self._assign_slot(result[0])
            self.trace.events.append(event)
            return result

        return wrapper

    def _assign_slot(self, fd: int) -> int:
        slot = self._next_slot
        self._next_slot += 1
        self._fd_slots[fd] = slot
        return slot

    def _encode(self, op: str, args: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Replace fd arguments with their slots for portability."""
        if op in _FD_ARG_OPS and args:
            fd = args[0]
            return (("fd", self._fd_slots[fd]),) + tuple(
                a.decode("latin-1") if isinstance(a, bytes) else a
                for a in args[1:])
        return tuple(a.decode("latin-1") if isinstance(a, bytes) else a
                     for a in args)

    def _encode_kwargs(self, kwargs: Dict[str, Any]) -> Dict[str, Any]:
        out = {}
        for key, value in kwargs.items():
            if key == "dirfd" and value is not None:
                out[key] = ("fd", self._fd_slots[value])
            elif isinstance(value, (str, int, float, bool, type(None))):
                out[key] = value
            # Non-serializable kwargs (e.g. an rng) are dropped; replay
            # uses the callee's deterministic default.
        return out


class ReplayDivergence(AssertionError):
    """A replayed call's outcome diverged from the recording.

    Carries enough structure for callers to triage programmatically:
    the event index within the trace, the op name, and the recorded vs
    observed errno (``None`` means success).
    """

    def __init__(self, index: int, op: str,
                 expected_errno: Optional[int],
                 actual_errno: Optional[int],
                 detail: str = ""):
        self.index = index
        self.op = op
        self.expected_errno = expected_errno
        self.actual_errno = actual_errno
        super().__init__(
            f"event {index} ({op}): recorded errno={expected_errno}, "
            f"replayed errno={actual_errno}" + (f" [{detail}]" if detail
                                                else ""))


#: Backwards-compatible alias (pre-compiler name).
ReplayMismatch = ReplayDivergence


def replay(kernel: Kernel, task: Task, trace: Trace,
           strict: bool = True) -> None:
    """Replay a trace against a kernel, checking outcomes.

    With ``strict``, a call that succeeded at record time must succeed at
    replay time and vice versa (matching errno, else
    :class:`ReplayDivergence`).  Per-event application compute is charged
    *before* the call, unconditionally — error events carry their
    preceding compute gap too, so the virtual clock advances identically
    whether an event succeeds or fails.
    """
    slot_fds: List[int] = [-1] * trace.slot_count()
    charge_ns = kernel.costs.charge_ns
    sys_facade = kernel.sys

    def decode(value):
        if isinstance(value, tuple) and len(value) == 2 \
                and value[0] == "fd":
            return slot_fds[value[1]]
        return value

    for index, event in enumerate(trace.events):
        if event.compute_ns:
            charge_ns("app_compute", event.compute_ns)
        args = tuple(decode(a) for a in event.args)
        if event.op == "write" and len(args) == 2 \
                and isinstance(args[1], str):
            args = (args[0], args[1].encode("latin-1"))
        kwargs = {k: decode(v) for k, v in event.kwargs.items()}
        method = getattr(sys_facade, event.op)
        try:
            result = method(task, *args, **kwargs)
        except errors.FsError as exc:
            if strict and exc.errno != event.errno:
                raise ReplayDivergence(index, event.op, event.errno,
                                       exc.errno, f"args={args!r}")
            continue
        if strict and event.errno is not None:
            raise ReplayDivergence(index, event.op, event.errno, None,
                                   f"args={args!r}")
        if event.returns_fd_slot is not None:
            fd = result[0] if event.op == "mkstemp" else result
            slot_fds[event.returns_fd_slot] = fd


# ---------------------------------------------------------------------------
# Compiled replay engine
# ---------------------------------------------------------------------------


def _quantized(kernel: Kernel, body) -> None:
    """Run ``body`` as one quantized replay pass when configured.

    Under ``DcacheConfig.lazy_sweep_quantize`` the lazy sweeper's ticker
    is suspended for the duration of ``body`` and one full catch-up
    sweep (:meth:`~repro.core.coherence.LazySweeper.sweep_all`) runs at
    the boundary — *every* boundary, not only when the deadline elapsed
    inside the pass.  The unconditional fire is what makes a pass's
    charge stream a pure function of its start state — the precondition
    for whole-pass and whole-drain charge plans under a lazy kernel: a
    deadline-conditioned fire would make consecutive passes alternate
    between fired and unfired captures (the 1 ms deadline drifts mod
    pass length), so confirm-twice could never stabilize.  It is a
    deliberate semantic tradeoff (see ``docs/coherence.md``): lazy
    numbers under quantization are *not* comparable to non-quantized
    lazy numbers, but plans-on and plans-off stay bit-identical within
    the mode.  The ticker re-arms at each boundary, so ambient
    per-syscall polls between passes stay quiet.

    No-op (straight call) when there is no sweeper, when the mode is
    off, or when already inside an outer quantized region.  When a plan
    recorder is attached, the boundary position and fired-ness are
    stamped on it so captures can compile split body/sweep replay
    functions (:func:`_compile_pass_plan`).
    """
    sweeper = kernel.sweeper
    if sweeper is None or not kernel.config.lazy_sweep_quantize:
        body()
        return
    ticker = sweeper.ticker
    if ticker.suspended:
        body()
        return
    ticker.suspended = True
    try:
        body()
    finally:
        ticker.suspended = False
    rec = kernel.costs.recorder
    if rec is not None:
        rec.boundary = len(rec.events)
        rec.fired = True
    ticker.fire()
    sweeper.sweep_all()


def _new_plan(fn, stat_deltas, total_ns, gen, rates_version, capture=None,
              fn2=None, q_fired=None, body_ns=None) -> ChargePlan:
    plan = ChargePlan()
    plan.fn = fn
    plan.stat_deltas = stat_deltas
    plan.total_ns = total_ns
    plan.gen = gen
    plan.rates_version = rates_version
    plan.capture = capture
    plan.fn2 = fn2
    plan.q_fired = q_fired
    plan.body_ns = total_ns if body_ns is None else body_ns
    return plan


def _stat_deltas(stats, before) -> tuple:
    deltas = []
    for name, value in stats._counters.items():
        delta = value - before.get(name, 0)
        if delta:
            deltas.append((name, delta))
    deltas.sort()
    return tuple(deltas)


def _compile_pass_plan(costs, registry, capture) -> ChargePlan:
    """Compile a confirmed whole-pass/whole-drain capture into a plan.

    Non-quantized captures (``boundary is None``) compile to a single
    straight-line function.  Quantized captures split at the stamped
    boundary: ``fn`` replays the body's charges, ``fn2`` (when the
    boundary sweep fired and charged anything) replays the catch-up
    sweep's charges, and apply emulates the ticker in between
    (:func:`_apply_plan`).
    """
    events, deltas, boundary, fired = capture
    if boundary is None:
        fn, total = _plan_fn(costs, events)
        return _new_plan(fn, deltas, total, registry.gen,
                         costs.rates_version, capture=capture)
    body_fn, body_ns = _plan_fn(costs, events[:boundary])
    fn2 = None
    total = body_ns
    if boundary < len(events):
        fn2, sweep_ns = _plan_fn(costs, events[boundary:])
        total = body_ns + sweep_ns
    return _new_plan(body_fn, deltas, total, registry.gen,
                     costs.rates_version, capture=capture, fn2=fn2,
                     q_fired=fired, body_ns=body_ns)


#: Static unit tables keyed by (id(program), fine) with identity check.
#: A unit is a half-open row range plus the index of the plan segment it
#: covers (-1 for gap rows).  ``fine=True`` splits gaps into single-row
#: units — the granularity the interleaved scheduler picks at — while
#: ``fine=False`` keeps gaps as one unit each for single-stream replay.
_UNIT_CACHE: Dict[Tuple[int, bool], Tuple[Any, tuple]] = {}
_UNIT_CACHE_MAX = 256


def _unit_table(program, fine: bool) -> tuple:
    key = (id(program), fine)
    entry = _UNIT_CACHE.get(key)
    if entry is not None and entry[0] is program:
        return entry[1]
    segments = getattr(program, "plan_segments", ()) or ()
    units: List[Tuple[int, int, int]] = []
    pos = 0
    for seg_i, seg in enumerate(segments):
        start = seg.start
        if pos < start:
            if fine:
                units.extend((i, i + 1, -1) for i in range(pos, start))
            else:
                units.append((pos, start, -1))
        units.append((start, seg.end, seg_i))
        pos = seg.end
    n = len(program.rows)
    if pos < n:
        if fine:
            units.extend((i, i + 1, -1) for i in range(pos, n))
        else:
            units.append((pos, n, -1))
    if len(_UNIT_CACHE) >= _UNIT_CACHE_MAX:
        _UNIT_CACHE.clear()
    _UNIT_CACHE[key] = (program, tuple(units))
    return _UNIT_CACHE[key][1]


#: Precomputed interleaving schedules keyed by (seed, unit counts).  The
#: schedule depends on nothing else, and the multi-tenant benchmarks
#: replay the same stream population thousands of times.
_SCHEDULE_CACHE: Dict[Any, Tuple[List[int], List[int]]] = {}
_SCHEDULE_CACHE_MAX = 64


def _drain_schedule(seed: int, unit_counts: tuple):
    key = (seed, unit_counts)
    hit = _SCHEDULE_CACHE.get(key)
    if hit is None:
        from repro.testing.scheduler import StreamScheduler
        if len(_SCHEDULE_CACHE) >= _SCHEDULE_CACHE_MAX:
            _SCHEDULE_CACHE.clear()
        hit = StreamScheduler(seed).plan_schedule(unit_counts)
        _SCHEDULE_CACHE[key] = hit
    return hit


class _StreamState:
    """One stream's bound replay state, advanced a run of units at a time.

    Construction binds everything the drain loop needs — the prebound
    batch method table, the fd slot table, the static unit table and the
    (possibly shape-shared) per-segment plan cells — so advancing is
    attribute-local work with no per-unit rebinding.  The interleaved
    drain keeps per-stream state in parallel arrays (struct-of-arrays,
    the same layout argument as ``core/arena.py``) and dispatches one
    :meth:`advance` per scheduled run.
    """

    __slots__ = ("kernel", "task", "program", "methods", "slot_fds",
                 "units", "cursor", "cells", "segments", "registry",
                 "costs", "stats", "clock", "ticker", "files", "rows",
                 "op_table")

    def __init__(self, kernel: Kernel, task: Task, program, registry,
                 fine: bool):
        self.kernel = kernel
        self.task = task
        self.program = program
        batch = kernel.sys.batch(task)
        self.methods = [getattr(batch, name) for name in program.op_table]
        self.slot_fds: List[int] = [-1] * program.slot_count
        self.units = _unit_table(program, fine)
        self.cursor = 0
        self.costs = kernel.costs
        self.stats = kernel.stats
        self.clock = kernel.costs.clock
        sweeper = kernel.sweeper
        self.ticker = sweeper.ticker if sweeper is not None else None
        self.files = task.fds._files
        self.rows = program.rows
        self.op_table = program.op_table
        self.segments = getattr(program, "plan_segments", ()) or ()
        self.registry = registry
        self.cells = (registry.cells(program, self.segments)
                      if registry is not None and self.segments else None)

    def run_rows(self, lo: int, hi: int) -> None:
        """Interpreted execution of rows ``[lo, hi)`` (the slow path)."""
        rows = self.rows
        methods = self.methods
        slot_fds = self.slot_fds
        charge_ns = self.costs.charge_ns
        op_table = self.op_table
        fs_error = errors.FsError
        index = lo
        try:
            for index in range(lo, hi):
                op_idx, args, patches, store, errno_exp, compute, pair \
                    = rows[index]
                if compute:
                    charge_ns("app_compute", compute)
                if patches is not None:
                    for arg_idx, slot in patches:
                        args[arg_idx] = slot_fds[slot]
                if errno_exp is None:
                    result = methods[op_idx](*args)
                    if store >= 0:
                        slot_fds[store] = result[0] if pair else result
                else:
                    try:
                        methods[op_idx](*args)
                    except fs_error as exc:
                        if exc.errno != errno_exp:
                            raise ReplayDivergence(
                                index, op_table[op_idx], errno_exp,
                                exc.errno,
                                f"args={tuple(args)!r}") from exc
                    else:
                        raise ReplayDivergence(
                            index, op_table[op_idx], errno_exp, None,
                            f"args={tuple(args)!r}")
        except ReplayDivergence:
            raise
        except fs_error as exc:
            raise ReplayDivergence(index, op_table[rows[index][0]], None,
                                   exc.errno) from exc

    def advance(self, n: int) -> None:
        """Execute the next ``n`` units of this stream."""
        units = self.units
        cursor = self.cursor
        self.cursor = end = cursor + n
        cells = self.cells
        for u in range(cursor, end):
            lo, hi, seg_i = units[u]
            if seg_i >= 0 and cells is not None:
                self._segment_unit(self.segments[seg_i], cells[seg_i],
                                   lo, hi)
            else:
                self.run_rows(lo, hi)

    def _segment_unit(self, seg, cell, lo: int, hi: int) -> None:
        """Run one plannable segment through the charge-plan protocol."""
        registry = self.registry
        costs = self.costs
        plan = cell.plan
        if plan is not None:
            if plan.gen == registry.gen \
                    and plan.rates_version == costs.rates_version:
                task_key = id(self.task)
                if task_key not in cell.tasks:
                    self._confirm_task(plan, cell, lo, hi, task_key)
                    return
                ok = not costs._scope_stack
                files = self.files
                slot_fds = self.slot_fds
                if ok:
                    for slot, need_inode, need_not_dir in seg.guards:
                        f = files.get(slot_fds[slot])
                        if f is None or f.closed:
                            ok = False
                            break
                        if need_inode:
                            inode = f.pos.dentry.inode
                            if inode is None or (need_not_dir
                                                 and inode.is_dir):
                                ok = False
                                break
                ticker = self.ticker
                if ok and ticker is not None \
                        and ticker.fires_within(plan.total_ns + 1.0):
                    ok = False
                if ok:
                    plan.fn(self.clock, costs.by_primitive,
                            costs.by_scope, costs.counts, None)
                    if plan.stat_deltas:
                        self.stats.bump_many(plan.stat_deltas)
                    for slot, offset in seg.seeks:
                        files[slot_fds[slot]].offset = offset
                    registry.applied += 1
                    cell.fail_streak = 0
                    return
                registry.fallbacks += 1
                cell.fail_streak += 1
                if cell.fail_streak >= registry.MAX_FAIL_STREAK:
                    registry.invalidated += 1
                    cell.reset()
            else:
                registry.invalidated += 1
                cell.reset()
            self.run_rows(lo, hi)
            return
        if cell.dead or costs.recorder is not None:
            self.run_rows(lo, hi)
            return
        n = cell.execs
        cell.execs = n + 1
        if n < registry.WARMUP:
            self.run_rows(lo, hi)
            return
        rec = PlanRecording()
        before = dict(self.stats._counters)
        costs.recorder = rec
        try:
            self.run_rows(lo, hi)
        finally:
            costs.recorder = None
        events = tuple(rec.events)
        if rec.lru or rec.pcc or not _capture_clean(events):
            cell.pending = None
            cell.retries += 1
            if cell.retries > registry.MAX_RETRIES:
                cell.dead = True
            return
        capture = (events, _stat_deltas(self.stats, before))
        pending = cell.pending
        if pending is None:
            cell.pending = capture
        elif pending == capture:
            fn, total = _plan_fn(costs, events)
            cell.plan = _new_plan(fn, capture[1], total, registry.gen,
                                  costs.rates_version, capture=capture)
            cell.pending = None
            cell.fail_streak = 0
            cell.tasks = {id(self.task): self.task}
            registry.compiled += 1
        else:
            cell.pending = capture
            cell.retries += 1
            if cell.retries > registry.MAX_RETRIES:
                cell.dead = True
                cell.pending = None

    def _confirm_task(self, plan, cell, lo: int, hi: int,
                      task_key: int) -> None:
        """Admit this task to a shape-shared plan iff its run matches.

        Segment cells are shared across tasks by charge shape
        (:meth:`~repro.sim.costs.ChargePlanRegistry.cells`), so the
        first execution on each *new* task runs interpreted under a
        recorder and is compared byte-for-byte against the plan's
        confirmed capture.  A match admits the task — subsequent
        executions apply the shared plan under the usual guards.  An
        unclean recording (a sweep batch fired mid-run, an LRU/PCC
        touch) gives no verdict either way; a *clean* mismatch means
        the shape key failed to predict this task's charges.

        Clean mismatches split two ways.  When the fresh capture is
        *shape-local* to the stored one — same ``(scope, primitive)``
        rows, only the charge vectors moved (a rename changed component
        byte counts, say) — the plan is *delta-patched* in place: the
        capture stages on ``cell.pending``, and a second identical
        recorded run rebuilds the plan from it
        (:meth:`~repro.sim.costs.ChargePlanRegistry.patch`) without
        tearing the cell down through warmup.  The same
        confirm-on-second-identical-run bar as compilation, at a third
        of the interpreted executions.  A structural mismatch — or a
        cell that has burned its retry budget staging patches — falls
        back to the full invalidate+recapture cycle.
        """
        registry = self.registry
        costs = self.costs
        rec = PlanRecording()
        before = dict(self.stats._counters)
        costs.recorder = rec
        try:
            self.run_rows(lo, hi)
        finally:
            costs.recorder = None
        events = tuple(rec.events)
        capture = (events, _stat_deltas(self.stats, before))
        if capture == plan.capture:
            cell.tasks[task_key] = self.task
            registry.task_confirms += 1
        elif rec.lru or rec.pcc or not _capture_clean(events):
            registry.fallbacks += 1
        elif cell.retries <= registry.MAX_RETRIES \
                and registry.shape_local(events, plan.capture[0]):
            if cell.pending == capture:
                fn, total = _plan_fn(costs, events)
                registry.patch(cell, fn, total, capture,
                               costs.rates_version, self.task)
            else:
                cell.pending = capture
                cell.retries += 1
                registry.fallbacks += 1
        else:
            registry.invalidated += 1
            cell.reset()


def _run_stream(kernel: Kernel, task: Task, program, registry) -> None:
    """Replay one full program as a single stream (coarse gap units)."""
    state = _StreamState(kernel, task, program, registry, fine=False)
    state.advance(len(state.units))


def replay_compiled(kernel: Kernel, task: Task, program,
                    strict: bool = True,
                    plans: Optional[bool] = None) -> None:
    """Execute a :class:`~repro.workloads.compile.CompiledTrace`.

    Semantically identical to :func:`replay` of the source trace —
    same syscalls, same order, same compute charges, hence bit-identical
    virtual costs and Stats (``tests/test_compiled_replay.py`` is the
    differential gate) — but the per-event interpretation work is gone:
    op dispatch is an index into a prebound method table (built once per
    replay from a :meth:`~repro.vfs.syscalls.Syscalls.batch` prologue),
    args are prefolded tuples, fd remaps are precomputed patch sites,
    and the errno check is branch-on-None.

    On strict replays the charge-plan layer additionally captures and
    applies charge plans at two granularities — bit-identical virtual
    costs either way (``tests/test_charge_plans.py`` is the
    differential gate), pure wall-clock win.  ``plans`` forces the
    layer on or off; ``None`` reads the ``REPRO_CHARGE_PLANS``
    environment switch (default on).

    1. *Whole-pass plans* (:func:`_program_plan_pass`): for a
       self-undoing trace replayed back to back on one quiescent kernel
       — the benchmark loop shape — the entire pass's charge stream is
       captured once (confirmed on a second identical recorded run) and
       later passes apply one straight-line charge replay plus a bulk
       Stats merge, guarded by the registry generation, the rate-table
       version and *exact clock equality* with the previous pass's end.
       Under a live lazy sweeper a pass's stream is never stable (fixed
       virtual deadlines drift modulo pass length), so whole-pass plans
       require either no sweeper or the quantized-sweep mode
       (``DcacheConfig.lazy_sweep_quantize``), where the boundary
       catch-up sweep is part of the captured stream and apply emulates
       the ticker exactly (:func:`_apply_plan`).

    2. *Per-segment plans*, task-generic and shared by charge shape
       (:meth:`~repro.sim.costs.ChargePlanRegistry.cells`), for
       programs carrying ``plan_segments``: runs of fd-table syscalls
       captured once and applied under per-fd guards.  This is the
       granularity :func:`replay_interleaved` schedules, and the
       fallback whenever whole-pass planning is unavailable.

    Strict replays on a quantized-lazy kernel run under
    :func:`_quantized` regardless of the plans switch, so plans-on and
    plans-off streams stay bit-identical within the mode.

    ``program`` is duck-typed (``op_table``, ``rows``, ``slot_count``)
    so this module need not import the compiler; programs without
    ``plan_segments`` replay as plain row streams.
    """
    if strict and getattr(program, "plan_segments", None) is not None:
        if plans is None:
            plans = _plans_enabled()
        if plans and kernel.costs.recorder is None:
            registry = kernel.costs.plans
            sweeper = kernel.sweeper
            quantize = (sweeper is not None
                        and kernel.config.lazy_sweep_quantize
                        and not sweeper.ticker.suspended)
            if (sweeper is None or quantize) and _program_plan_pass(
                    kernel, task, program, registry, quantize):
                return
            if program.plan_segments:
                _quantized(kernel, lambda: _run_stream(kernel, task,
                                                       program, registry))
                return
    if strict:
        _quantized(kernel, lambda: _run_stream(kernel, task, program,
                                               None))
        return
    # Lenient path: mirror replay(strict=False) — unexpected outcomes
    # are ignored and the stream continues.  No pass semantics here, so
    # no sweep quantization either.
    batch = kernel.sys.batch(task)
    methods = [getattr(batch, name) for name in program.op_table]
    slot_fds: List[int] = [-1] * program.slot_count
    charge_ns = kernel.costs.charge_ns
    fs_error = errors.FsError
    for op_idx, args, patches, store, errno_exp, compute, pair \
            in program.rows:
        if compute:
            charge_ns("app_compute", compute)
        if patches is not None:
            for arg_idx, slot in patches:
                args[arg_idx] = slot_fds[slot]
        try:
            result = methods[op_idx](*args)
        except fs_error:
            continue
        if store >= 0 and errno_exp is None:
            slot_fds[store] = result[0] if pair else result


def _apply_plan(kernel: Kernel, registry, cell, quantize: bool) -> bool:
    """Guard and apply an armed whole-pass/whole-drain plan.

    True means the plan applied: virtual costs and Stats advanced
    exactly as an interpreted run would, kernel state untouched.  False
    means a guard failed and the caller must run interpreted (the
    streak/invalidation bookkeeping has already happened).

    The clock guard is *exact equality* with the clock value at which
    the plan was armed — any interleaving syscall moves the clock off
    it.  Under quantization the boundary sweep fires unconditionally
    (see :func:`_quantized`), so no deadline guard is needed: apply
    replays the body charges, fires the ticker (reading the clock at
    the exact body-end time, bit-identical to interpreted execution)
    and replays the captured sweep charges — the real sweep is
    *skipped*, deliberately: applied passes leave cache state frozen,
    and a live sweep would examine that frozen state instead of the
    states the interpreted run would produce.
    """
    costs = kernel.costs
    clock = costs.clock
    plan = cell.plan
    if plan.gen != registry.gen \
            or plan.rates_version != costs.rates_version:
        registry.invalidated += 1
        cell.reset()
        return False
    if clock._now_ns != cell.armed_now:
        registry.fallbacks += 1
        cell.fail_streak += 1
        if cell.fail_streak >= registry.PASS_FAIL_STREAK:
            registry.invalidated += 1
            cell.reset()
        return False
    plan.fn(clock, costs.by_primitive, costs.by_scope, costs.counts,
            None)
    if quantize and plan.q_fired:
        kernel.sweeper.ticker.fire()
        if plan.fn2 is not None:
            plan.fn2(clock, costs.by_primitive, costs.by_scope,
                     costs.counts, None)
    if plan.stat_deltas:
        kernel.stats.bump_many(plan.stat_deltas)
    cell.armed_now = clock._now_ns
    cell.fail_streak = 0
    registry.applied += 1
    return True


def _program_plan_pass(kernel: Kernel, task: Task, program, registry,
                       quantize: bool) -> bool:
    """Whole-pass charge-plan protocol.  True iff this pass was handled.

    Lifecycle per (program, task) cell: one warmup pass, then two
    recorded interpreted passes whose captures must match
    byte-for-byte, then the capture compiles to a straight-line charge
    replay applied on every subsequent pass that starts at *exactly*
    the clock value the previous pass ended on (:func:`_apply_plan`).
    Any rejection — scope stack active, fd table changed across the
    pass, capture mismatch — burns a retry; ``MAX_RETRIES`` rejections
    kill the cell and the program falls back to segment planning
    forever.  Returns False only when the caller should run the pass
    itself (warmup, dead cell, guard failure); recorded passes return
    True because the recording ran the pass.
    """
    costs = kernel.costs
    if costs._scope_stack:
        return False
    cell = registry.pass_cell(program, task)
    if cell.dead:
        return False
    if cell.plan is not None:
        return _apply_plan(kernel, registry, cell, quantize)
    n = cell.execs
    cell.execs = n + 1
    if n < registry.WARMUP:
        return False
    rec = PlanRecording()
    stats = kernel.stats
    before = dict(stats._counters)
    fds_before = frozenset(task.fds._files)
    costs.recorder = rec
    try:
        replay_compiled(kernel, task, program, strict=True, plans=False)
    finally:
        costs.recorder = None
    if costs._scope_stack or frozenset(task.fds._files) != fds_before:
        cell.pending = None
        cell.retries += 1
        if cell.retries > registry.MAX_RETRIES:
            cell.dead = True
        return True
    capture = (tuple(rec.events), _stat_deltas(stats, before),
               rec.boundary, rec.fired)
    pending = cell.pending
    if pending is None:
        cell.pending = capture
    elif pending == capture:
        cell.plan = _compile_pass_plan(costs, registry, capture)
        cell.pending = None
        cell.fail_streak = 0
        cell.armed_now = costs.clock._now_ns
        registry.compiled += 1
    else:
        cell.pending = capture
        cell.retries += 1
        if cell.retries > registry.MAX_RETRIES:
            cell.dead = True
            cell.pending = None
    return True


def _drain_plan(kernel: Kernel, streams, seed: int, registry,
                quantize: bool) -> bool:
    """Whole-drain charge-plan protocol.  True iff this drain was handled.

    The interleaved analogue of :func:`_program_plan_pass`: the cell
    covers one entire :func:`replay_interleaved` drain, keyed by the
    seed and the identities of every (task, program) pair
    (:meth:`~repro.sim.costs.ChargePlanRegistry.drain_cell`).  The
    capture records the drain interpreted with segment plans *off*, and
    the fd-table check covers every participating task.  Everything
    else — confirm-twice, exact-clock arming, quantized boundary
    emulation — is shared with the pass protocol.
    """
    costs = kernel.costs
    if costs._scope_stack:
        return False
    cell = registry.drain_cell(streams, seed)
    if cell.dead:
        return False
    if cell.plan is not None:
        return _apply_plan(kernel, registry, cell, quantize)
    n = cell.execs
    cell.execs = n + 1
    if n < registry.WARMUP:
        return False
    rec = PlanRecording()
    stats = kernel.stats
    before = dict(stats._counters)
    fds_before = [frozenset(task.fds._files) for task, _prog in streams]
    costs.recorder = rec
    try:
        _quantized(kernel, lambda: _drain_interleaved(kernel, streams,
                                                      seed, None))
    finally:
        costs.recorder = None
    fds_after = [frozenset(task.fds._files) for task, _prog in streams]
    if costs._scope_stack or fds_after != fds_before:
        cell.pending = None
        cell.retries += 1
        if cell.retries > registry.MAX_RETRIES:
            cell.dead = True
        return True
    capture = (tuple(rec.events), _stat_deltas(stats, before),
               rec.boundary, rec.fired)
    pending = cell.pending
    if pending is None:
        cell.pending = capture
    elif pending == capture:
        cell.plan = _compile_pass_plan(costs, registry, capture)
        cell.pending = None
        cell.fail_streak = 0
        cell.armed_now = costs.clock._now_ns
        registry.compiled += 1
    else:
        cell.pending = capture
        cell.retries += 1
        if cell.retries > registry.MAX_RETRIES:
            cell.dead = True
            cell.pending = None
    return True


def _drain_interleaved(kernel: Kernel, streams, seed: int,
                       registry) -> None:
    """Vectorized interpreted drain of interleaved streams.

    The schedule — which stream advances at each step — is precomputed
    as flat (stream, run-length) arrays by
    :meth:`~repro.testing.scheduler.StreamScheduler.plan_schedule`,
    pick-for-pick identical to draining with per-unit RNG calls
    (asserted by ``tests/test_server_fleet.py``), then run-length
    coalesced so consecutive picks of one stream cost a single
    dispatch.  Per-stream state lives in :class:`_StreamState`; the
    loop body is one bound-method call per run.
    """
    states = [_StreamState(kernel, task, prog, registry, fine=True)
              for task, prog in streams]
    order, runs = _drain_schedule(
        seed, tuple(len(state.units) for state in states))
    advances = [state.advance for state in states]
    for i, s in enumerate(order):
        advances[s](runs[i])


def replay_interleaved(kernel: Kernel, streams, seed: int = 0,
                       strict: bool = True,
                       plans: Optional[bool] = None) -> None:
    """Replay multiple compiled programs interleaved on one kernel.

    ``streams`` is a sequence of ``(task, program)`` pairs.  Each
    program's rows execute in order, but the streams advance in a
    seeded pseudo-random interleaving at plan-unit granularity (a
    plannable segment is one unit, every other row is its own unit) —
    the multi-tenant server shape: per-tenant request streams sharing
    one directory cache.  Deterministic: the same (streams, seed)
    always produces the same interleaving, virtual costs and Stats.

    Strict-only: lenient replay swallows errors *within* a stream,
    which would let streams desynchronize silently.

    The charge-plan layer applies at two levels.  Per-segment plans
    (shape-shared across tenants) capture and apply inside the drain
    exactly as in :func:`replay_compiled`.  When the whole drain is
    replayed back to back on a quiescent kernel — the benchmark shape —
    a *whole-drain* plan (:func:`_drain_plan`) captures the entire
    drain's charge stream once and replays it straight-line, guarded by
    exact clock equality; like whole-pass plans this needs either no
    sweeper or ``DcacheConfig.lazy_sweep_quantize``.  Bit-identical
    virtual output with ``plans`` on or off either way
    (``tests/test_server_fleet.py`` is the differential gate).
    """
    if not strict:
        raise ValueError("replay_interleaved is strict-only: lenient "
                         "replay could desynchronize streams")
    streams = list(streams)
    if plans is None:
        plans = _plans_enabled()
    costs = kernel.costs
    registry = costs.plans \
        if plans and costs.recorder is None else None
    if registry is not None:
        sweeper = kernel.sweeper
        quantize = (sweeper is not None
                    and kernel.config.lazy_sweep_quantize
                    and not sweeper.ticker.suspended)
        if (sweeper is None or quantize) and _drain_plan(
                kernel, streams, seed, registry, quantize):
            return
    _quantized(kernel, lambda: _drain_interleaved(kernel, streams, seed,
                                                  registry))

