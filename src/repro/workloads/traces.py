"""Syscall trace recording and replay (iBench-style, §1).

The paper motivates its work with syscall traces: "between 10-20% of all
system calls in the iBench system call traces do a path lookup."  This
module gives the reproduction the same methodology: record a workload's
syscall stream once (with per-event compute gaps), then replay it
verbatim against any kernel configuration and compare.

File descriptors are kernel-local, so traces store *fd slots*: the
recorder maps each returned fd to a dense slot id, and replay remaps
slots to the fds its own kernel returns.  Traces serialize to JSON lines
for storage and diffing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import errors
from repro.core.kernel import Kernel
from repro.vfs.task import Task

#: Syscalls that perform a path lookup (the §1 statistic).
PATH_LOOKUP_OPS = frozenset([
    "stat", "lstat", "fstatat", "access", "open", "openat", "mkdir",
    "rmdir", "unlink", "rename", "chmod", "chown", "symlink", "link",
    "readlink", "chdir", "truncate",
])

#: Argument positions (per op) holding fd slots, for remapping.
_FD_ARG_OPS = frozenset(["close", "read", "write", "lseek", "ftruncate",
                         "getdents", "fstat", "fchdir"])


@dataclass
class TraceEvent:
    """One recorded syscall (or compute gap)."""

    op: str
    args: Tuple[Any, ...]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Slot id assigned to a returned fd (open/openat/mkstemp).
    returns_fd_slot: Optional[int] = None
    #: errno when the recorded call failed (replay must match).
    errno: Optional[int] = None
    #: Application compute charged before this call (virtual ns).
    compute_ns: float = 0.0

    def to_json(self) -> str:
        return json.dumps({
            "op": self.op, "args": list(self.args),
            "kwargs": self.kwargs, "fd_slot": self.returns_fd_slot,
            "errno": self.errno, "compute_ns": self.compute_ns,
        })

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        raw = json.loads(line)
        return cls(op=raw["op"], args=tuple(raw["args"]),
                   kwargs=raw.get("kwargs", {}),
                   returns_fd_slot=raw.get("fd_slot"),
                   errno=raw.get("errno"),
                   compute_ns=raw.get("compute_ns", 0.0))


@dataclass
class TraceStats:
    """Aggregate statistics over a trace (the §1 measurements)."""

    total_syscalls: int
    path_lookup_syscalls: int
    by_op: Dict[str, int]
    total_compute_ns: float

    @property
    def path_lookup_fraction(self) -> float:
        if self.total_syscalls == 0:
            return 0.0
        return self.path_lookup_syscalls / self.total_syscalls


class Trace:
    """An ordered stream of recorded syscalls."""

    def __init__(self, events: Optional[List[TraceEvent]] = None):
        self.events: List[TraceEvent] = events or []

    def stats(self) -> TraceStats:
        by_op: Dict[str, int] = {}
        path_calls = 0
        compute = 0.0
        for event in self.events:
            by_op[event.op] = by_op.get(event.op, 0) + 1
            if event.op in PATH_LOOKUP_OPS:
                path_calls += 1
            compute += event.compute_ns
        return TraceStats(total_syscalls=len(self.events),
                          path_lookup_syscalls=path_calls,
                          by_op=by_op, total_compute_ns=compute)

    # -- persistence ---------------------------------------------------------

    def dumps(self) -> str:
        return "\n".join(event.to_json() for event in self.events)

    @classmethod
    def loads(cls, text: str) -> "Trace":
        return cls([TraceEvent.from_json(line)
                    for line in text.splitlines() if line.strip()])

    def __len__(self) -> int:
        return len(self.events)


class TraceRecorder:
    """Record syscalls as they execute on a live kernel.

    Use it like the syscall facade; every call is executed *and*
    recorded.  Compute gaps are recorded with :meth:`compute`.
    """

    def __init__(self, kernel: Kernel, task: Task):
        self._kernel = kernel
        self._task = task
        self.trace = Trace()
        self._fd_slots: Dict[int, int] = {}
        self._next_slot = 0
        self._pending_compute = 0.0

    def compute(self, ns: float) -> None:
        """Record (and charge) an application compute gap."""
        self._kernel.costs.charge_ns("app_compute", ns)
        self._pending_compute += ns

    def __getattr__(self, op: str):
        method = getattr(self._kernel.sys, op)

        def wrapper(*args, **kwargs):
            event = TraceEvent(op=op, args=self._encode(op, args),
                               kwargs=self._encode_kwargs(kwargs),
                               compute_ns=self._pending_compute)
            self._pending_compute = 0.0
            try:
                result = method(self._task, *args, **kwargs)
            except errors.FsError as exc:
                event.errno = exc.errno
                self.trace.events.append(event)
                raise
            if op in ("open", "openat"):
                event.returns_fd_slot = self._assign_slot(result)
            elif op == "mkstemp":
                event.returns_fd_slot = self._assign_slot(result[0])
            self.trace.events.append(event)
            return result

        return wrapper

    def _assign_slot(self, fd: int) -> int:
        slot = self._next_slot
        self._next_slot += 1
        self._fd_slots[fd] = slot
        return slot

    def _encode(self, op: str, args: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Replace fd arguments with their slots for portability."""
        if op in _FD_ARG_OPS and args:
            fd = args[0]
            return (("fd", self._fd_slots[fd]),) + tuple(
                a.decode("latin-1") if isinstance(a, bytes) else a
                for a in args[1:])
        return tuple(a.decode("latin-1") if isinstance(a, bytes) else a
                     for a in args)

    def _encode_kwargs(self, kwargs: Dict[str, Any]) -> Dict[str, Any]:
        out = {}
        for key, value in kwargs.items():
            if key == "dirfd" and value is not None:
                out[key] = ("fd", self._fd_slots[value])
            elif isinstance(value, (str, int, float, bool, type(None))):
                out[key] = value
            # Non-serializable kwargs (e.g. an rng) are dropped; replay
            # uses the callee's deterministic default.
        return out


class ReplayMismatch(AssertionError):
    """A replayed call's outcome diverged from the recording."""


def replay(kernel: Kernel, task: Task, trace: Trace,
           strict: bool = True) -> None:
    """Replay a trace against a kernel, checking outcomes.

    With ``strict``, a call that succeeded at record time must succeed at
    replay time and vice versa (matching errno).
    """
    slot_fds: Dict[int, int] = {}

    def decode(value):
        if isinstance(value, (tuple, list)) and len(value) == 2 \
                and value[0] == "fd":
            return slot_fds[value[1]]
        return value

    for event in trace.events:
        if event.compute_ns:
            kernel.costs.charge_ns("app_compute", event.compute_ns)
        args = tuple(decode(a) for a in event.args)
        if event.op == "write" and len(args) == 2 \
                and isinstance(args[1], str):
            args = (args[0], args[1].encode("latin-1"))
        kwargs = {k: decode(v) for k, v in event.kwargs.items()}
        method = getattr(kernel.sys, event.op)
        try:
            result = method(task, *args, **kwargs)
        except errors.FsError as exc:
            if strict and exc.errno != event.errno:
                raise ReplayMismatch(
                    f"{event.op}{args!r}: recorded "
                    f"errno={event.errno}, replayed errno={exc.errno}")
            continue
        if strict and event.errno is not None:
            raise ReplayMismatch(
                f"{event.op}{args!r}: recorded errno={event.errno}, "
                f"replay succeeded")
        if event.returns_fd_slot is not None:
            fd = result[0] if event.op == "mkstemp" else result
            slot_fds[event.returns_fd_slot] = fd
