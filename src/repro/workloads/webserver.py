"""Apache-style directory-listing workload (Table 3).

Each request for an auto-indexed directory makes Apache: resolve the URI
to a filesystem path, probe ``.htaccess`` at every level (negative
lookups), open and read the directory, ``stat`` every entry for the
size/date columns, and render HTML.  Pages are generated per request —
not cached — exactly as in the paper's benchmark.

Throughput is requests per virtual second.
"""

from __future__ import annotations

from repro import errors
from repro.core.kernel import Kernel
from repro.vfs.file import O_DIRECTORY, O_RDONLY
from repro.vfs.task import Task
from repro.workloads.tree import build_flat_dir

#: Per-request protocol work (accept, parse, headers, send).
REQUEST_FIXED_NS = 22_000.0
#: HTML row rendering per directory entry.
PER_ENTRY_HTML_NS = 1_200.0

DOCROOT = "/var/www/html"


def provision(kernel: Kernel, task: Task, nfiles: int,
              docroot: str = DOCROOT) -> str:
    """Create the docroot and a listing directory with ``nfiles`` files."""
    sys = kernel.sys
    prefix = ""
    for part in docroot.strip("/").split("/"):
        prefix = f"{prefix}/{part}"
        if not sys.exists(task, prefix):
            sys.mkdir(task, prefix)
    listing = f"{docroot}/files{nfiles}"
    build_flat_dir(kernel, task, listing, nfiles, prefix="asset")
    return listing


def handle_request(kernel: Kernel, task: Task, listing: str) -> int:
    """One autoindex request; returns the number of rows rendered."""
    sys = kernel.sys
    kernel.costs.charge_ns("httpd_compute", REQUEST_FIXED_NS)
    # URI -> path resolution.
    sys.stat(task, listing)
    # mod_authz: .htaccess probe at the docroot and every level below it.
    parts = listing.strip("/").split("/")
    prefix = ""
    for part in parts:
        prefix = f"{prefix}/{part}"
        try:
            sys.stat(task, f"{prefix}/.htaccess")
        except (errors.ENOENT, errors.ENOTDIR):
            pass
    fd = sys.open(task, listing, O_RDONLY | O_DIRECTORY)
    try:
        entries = sys.readdir(task, fd)
        for name, _ino, _dtype in entries:
            sys.fstatat(task, name, dirfd=fd, follow=False)
            kernel.costs.charge_ns("httpd_compute", PER_ENTRY_HTML_NS)
    finally:
        sys.close(task, fd)
    return len(entries)


#: Config-check/reload compute around an atomic docroot swap.
DEPLOY_FIXED_NS = 9_000.0


def deploy_rotation(kernel: Kernel, task: Task, listing: str) -> None:
    """Zero-downtime deploy pair: rotate the listing aside and back.

    The standard atomic deploy swaps the live content directory with
    ``rename(2)``.  The cache work is what matters here: the listing's
    subtree (one dentry per asset) is hot — every autoindex request
    ``fstatat``\\ s each entry — so the eager profile pays a per-dentry
    subtree shootdown at swap time *and* cold per-entry refills on the
    requests that follow, while the lazy profile bumps an epoch and
    revalidates each entry in place on its next touch.  The pair
    restores the original name, keeping the operation self-undoing for
    replay loops (see :mod:`repro.workloads.server_fleet`).
    """
    kernel.costs.charge_ns("httpd_compute", DEPLOY_FIXED_NS)
    kernel.sys.rename(task, listing, f"{listing}.old")
    kernel.sys.rename(task, f"{listing}.old", listing)


def run_benchmark(kernel: Kernel, nfiles: int, *,
                  requests: int = 50) -> float:
    """Table 3 driver: returns requests per virtual second."""
    task = kernel.spawn_task(uid=0, gid=0)
    listing = provision(kernel, task, nfiles)
    handle_request(kernel, task, listing)  # warm, as a running server is
    start = kernel.now_ns
    for _ in range(requests):
        handle_request(kernel, task, listing)
    elapsed_s = (kernel.now_ns - start) / 1e9
    return requests / elapsed_s
