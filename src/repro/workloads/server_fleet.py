"""Multi-tenant server fleet: interleaved per-tenant request streams.

The paper's caches live in a *shared* kernel: one directory cache
serving every process on the machine.  The single-workload drivers
(:mod:`~repro.workloads.webserver`, :mod:`~repro.workloads.maildir`)
exercise that cache from one task at a time; this module builds the
multi-tenant shape — a hosting box running many tenants' webservers and
mail stores at once, each tenant a separate task (own uid, own
``/srv/t{i}`` subtree) whose request stream was recorded once and
replays interleaved with everyone else's through
:func:`~repro.workloads.traces.replay_interleaved`.

Request volume across tenants follows a Zipf distribution — a few hot
tenants dominate, a long tail barely shows up — which is what makes the
shared cache interesting: the hot tenants' dentries stay resident while
the tail's churn.  Each tenant's stream mixes read-only autoindex
requests with *mutating* requests — atomic docroot rotations, maildir
flag-flip pairs and, rarest, whole-mailbox rename pairs — at a
configurable ``mutation_rate``; the mutating operations are the lever
that separates eager from lazy coherence (see
``bench/exp_tenant_crossover.py``).

Every recorded stream is **self-undoing**: autoindex requests are
read-only, and every mutating operation restores the exact names it
renamed.  A full drain therefore returns the filesystem (and fd
numbering) to its start state, so the same fleet can be drained any
number of times on one kernel — the property the ``server_fleet`` and
``multi_task_replay`` speed benchmarks and the whole-drain charge plans
depend on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.kernel import Kernel
from repro.vfs.task import Task
from repro.workloads import maildir, webserver
from repro.workloads.compile import RecordingKernel, compile_trace
from repro.workloads.traces import replay_interleaved

FLEET_ROOT = "/srv"

#: Zipf exponent for the tenant popularity distribution.
ZIPF_EXPONENT = 1.1

#: Mutating-request mix, as cumulative fractions of one uniform draw:
#: below ``DEPLOY_FRACTION`` the request is an atomic docroot rotation
#: (:func:`~repro.workloads.webserver.deploy_rotation` — the shape
#: where lazy coherence shines: hot per-entry subtree, eager shootdown
#: plus cold refills vs. in-place revalidation); between it and
#: ``DEPLOY_FRACTION + MARK_FRACTION`` a maildir flag-flip pair (whose
#: full-mailbox syncs lean *eager*: listdir enumeration pays lazy
#: revalidation per entry while eager's shot-down entries are never
#: individually re-looked-up); the rest rename a whole mailbox
#: (:func:`~repro.workloads.maildir.folder_rename_operation`).
DEPLOY_FRACTION = 0.7
MARK_FRACTION = 0.2


def zipf_counts(tenants: int, total_requests: int,
                s: float = ZIPF_EXPONENT) -> List[int]:
    """Per-tenant request counts under a Zipf(s) popularity law.

    Tenant 0 is the hottest; every tenant gets at least one request so
    no stream is empty.  Deterministic — no RNG involved.
    """
    weights = [1.0 / (rank + 1) ** s for rank in range(tenants)]
    scale = total_requests / sum(weights)
    return [max(1, round(w * scale)) for w in weights]


@dataclass
class TenantSite:
    """One provisioned tenant: its task, content, and compiled stream."""

    index: int
    task: Task
    listing: str
    mail: maildir.MaildirSetup
    requests: int
    program: object  # CompiledTrace; duck-typed to avoid a hard import


@dataclass
class FleetSetup:
    """A provisioned fleet, ready to drain.

    ``admin`` pins the root task that provisioned ``/srv``: a task's
    credential owns a PCC registered (weakly) with the coherence
    engine, and lazy sweep charges scale with the PCCs still alive —
    letting the task die would make virtual costs depend on garbage
    collection timing.
    """

    tenants: List[TenantSite]
    seed: int
    mutation_rate: float
    admin: Task

    @property
    def streams(self) -> List[Tuple[Task, object]]:
        """The ``(task, program)`` pairs ``replay_interleaved`` takes."""
        return [(site.task, site.program) for site in self.tenants]

    @property
    def total_requests(self) -> int:
        return sum(site.requests for site in self.tenants)


def provision_tenant(kernel: Kernel, admin: Task, index: int, *,
                     files_per_site: int = 48, mailboxes: int = 1,
                     messages_per_box: int = 12,
                     seed: int = 0) -> Tuple[Task, str,
                                             maildir.MaildirSetup]:
    """Create tenant ``index``'s task and ``/srv/t{index}`` subtree.

    ``admin`` is the long-lived root task that owns ``/srv`` (see
    :class:`FleetSetup` for why it must outlive provisioning).  The
    tenant runs under its own uid/gid (``1000 + index``) and owns
    everything below its base directory; ``/srv`` itself is root-owned
    and sticky, ``/tmp``-style, so tenants cannot touch each other's
    trees — which also means their dentries only meet in the shared
    cache, never in a shared path prefix below ``/srv``.
    """
    sys = kernel.sys
    if not sys.exists(admin, FLEET_ROOT):
        sys.mkdir(admin, FLEET_ROOT)
        sys.chmod(admin, FLEET_ROOT, 0o1777)
    task = kernel.spawn_task(uid=1000 + index, gid=1000 + index)
    base = f"{FLEET_ROOT}/t{index}"
    sys.mkdir(task, base)
    listing = webserver.provision(kernel, task, files_per_site,
                                  docroot=f"{base}/www")
    mail = maildir.provision(kernel, task, mailboxes, messages_per_box,
                             root=f"{base}/mail", seed=seed * 1000 + index)
    return task, listing, mail


def record_tenant_stream(kernel: Kernel, task: Task, listing: str,
                         mail: maildir.MaildirSetup, requests: int,
                         mutation_rate: float, rng: random.Random):
    """Record ``requests`` tenant requests and compile them to a program.

    Recording executes the requests on the live fleet kernel (through
    :class:`~repro.workloads.compile.RecordingKernel`), so provisioning
    plus one recording pass leaves the kernel exactly one self-undoing
    drain past its provisioned state — i.e. *at* its steady state,
    caches warm, ready for replay.
    """
    rk = RecordingKernel(kernel, task=task)
    for _ in range(requests):
        if rng.random() < mutation_rate:
            kind = rng.random()
            if kind < DEPLOY_FRACTION:
                webserver.deploy_rotation(rk, task, listing)
            elif kind < DEPLOY_FRACTION + MARK_FRACTION:
                maildir.mark_unmark_operation(rk, task, mail, rng)
            else:
                maildir.folder_rename_operation(rk, task, mail, rng)
        else:
            webserver.handle_request(rk, task, listing)
    return compile_trace(rk.trace)


def build_fleet(kernel: Kernel, tenants: int = 8, *,
                total_requests: int = 120, mutation_rate: float = 0.1,
                files_per_site: int = 48, mailboxes: int = 1,
                messages_per_box: int = 12, seed: int = 0) -> FleetSetup:
    """Provision ``tenants`` tenants and record their request streams.

    Deterministic for a given argument tuple: tenant popularity comes
    from :func:`zipf_counts` and the request mix from one seeded RNG
    consumed in tenant order.
    """
    rng = random.Random(seed)
    counts = zipf_counts(tenants, total_requests)
    admin = kernel.spawn_task(uid=0, gid=0)
    sites: List[TenantSite] = []
    for index in range(tenants):
        task, listing, mail = provision_tenant(
            kernel, admin, index, files_per_site=files_per_site,
            mailboxes=mailboxes, messages_per_box=messages_per_box,
            seed=seed)
        program = record_tenant_stream(kernel, task, listing, mail,
                                       counts[index], mutation_rate, rng)
        sites.append(TenantSite(index=index, task=task, listing=listing,
                                mail=mail, requests=counts[index],
                                program=program))
    return FleetSetup(tenants=sites, seed=seed,
                      mutation_rate=mutation_rate, admin=admin)


def drain_fleet(kernel: Kernel, setup: FleetSetup, *,
                plans=None) -> None:
    """One interleaved drain of every tenant's stream."""
    replay_interleaved(kernel, setup.streams, seed=setup.seed,
                       plans=plans)


def run_benchmark(kernel: Kernel, tenants: int = 8, *,
                  total_requests: int = 120, mutation_rate: float = 0.1,
                  drains: int = 4, seed: int = 0, plans=None,
                  files_per_site: int = 48, mailboxes: int = 1,
                  messages_per_box: int = 12) -> float:
    """Fleet driver: requests per virtual second over ``drains`` drains."""
    setup = build_fleet(kernel, tenants, total_requests=total_requests,
                        mutation_rate=mutation_rate, seed=seed,
                        files_per_site=files_per_site, mailboxes=mailboxes,
                        messages_per_box=messages_per_box)
    drain_fleet(kernel, setup, plans=plans)  # warm, as a running box is
    start = kernel.now_ns
    for _ in range(drains):
        drain_fleet(kernel, setup, plans=plans)
    elapsed_s = (kernel.now_ns - start) / 1e9
    return drains * setup.total_requests / elapsed_s
