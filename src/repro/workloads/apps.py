"""Application trace workloads (Figure 1, Tables 1 and 2).

Each workload replays the syscall pattern of one command-line utility
over a synthetic Linux-source-shaped tree:

* ``find`` / ``du`` / ``updatedb`` — fts-style traversal: ``getdents``
  plus one single-component ``fstatat`` per entry (the paper notes these
  use the \\*at() APIs exclusively);
* ``tar xzf`` — creation-heavy: mkdir/open(O_CREAT)/write with a
  decompression compute budget per file;
* ``rm -r`` — traversal plus unlink/rmdir;
* ``make`` — per-source-file header probing (the paper's ~20% negative
  dentry rate comes from speculative include-path lookups), reads, object
  creation, and a dominating compile compute budget;
* ``git status`` / ``git diff`` — multi-component ``lstat`` of every
  tracked path from the index, as git's refresh loop does.

Per-application compute budgets are charged through
``CostModel.charge_ns`` so that path-based syscalls occupy a Figure 1-like
fraction of total runtime; they are identical across kernels, so Table 1's
relative gains depend only on the dcache design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import O_CREAT, O_DIRECTORY, O_RDONLY, O_RDWR, errors
from repro.core.kernel import Kernel
from repro.vfs.task import Task
from repro.workloads.tree import BuiltTree

#: Path-based syscalls counted for Figure 1's time fraction.
PATH_SYSCALLS = frozenset([
    "stat", "lstat", "fstatat", "access", "open", "openat", "mkdir",
    "rmdir", "unlink", "rename", "chmod", "chown", "symlink", "link",
    "readlink", "chdir", "truncate",
])


class MeteredSyscalls:
    """Wraps a kernel's syscalls, metering virtual time per call.

    Records total time in path-based syscalls, per-call counts, and path
    shape statistics (bytes and components of every path argument).
    """

    def __init__(self, kernel: Kernel):
        self._kernel = kernel
        self._sys = kernel.sys
        self.path_syscall_ns = 0.0
        self.syscall_ns = 0.0
        self.counts: Dict[str, int] = {}
        self.path_bytes = 0
        self.path_components = 0
        self.path_count = 0

    def __getattr__(self, name: str):
        method = getattr(self._sys, name)

        def wrapper(*args, **kwargs):
            start = self._kernel.now_ns
            try:
                return method(*args, **kwargs)
            finally:
                elapsed = self._kernel.now_ns - start
                self.syscall_ns += elapsed
                self.counts[name] = self.counts.get(name, 0) + 1
                if name in PATH_SYSCALLS:
                    self.path_syscall_ns += elapsed
                    path = self._first_path(args, kwargs)
                    if path:
                        self.path_count += 1
                        self.path_bytes += len(path)
                        self.path_components += len(
                            [p for p in path.split("/") if p and p != "."])

        return wrapper

    @staticmethod
    def _first_path(args, kwargs) -> Optional[str]:
        for value in list(args[1:]) + list(kwargs.values()):
            if isinstance(value, str):
                return value
        return None


@dataclass
class AppResult:
    """One application run's outcome (a Table 1/2 row)."""

    name: str
    total_ns: float
    path_syscall_ns: float
    lookups: int
    component_hit_rate: float
    negative_rate: float
    avg_path_bytes: float
    avg_path_components: float
    syscall_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def path_fraction(self) -> float:
        """Figure 1's metric: time in path syscalls / total time."""
        if self.total_ns == 0:
            return 0.0
        return self.path_syscall_ns / self.total_ns


class AppWorkload:
    """Base class: build the tree once, run the trace, report stats."""

    name = "app"
    tree_scale = "medium"

    def setup(self, kernel: Kernel, task: Task) -> BuiltTree:
        """Default setup: a Linux-source-shaped tree at /src."""
        from repro.workloads.tree import build_linux_like_tree
        return build_linux_like_tree(kernel, task, "/src",
                                     scale=self.tree_scale)

    def prepare_run(self, kernel: Kernel, task: Task,
                    tree: BuiltTree) -> None:
        """Untimed per-run staging (e.g. recreating a tree to delete)."""

    def run(self, kernel: Kernel, sys: MeteredSyscalls, task: Task,
            tree: BuiltTree) -> None:
        raise NotImplementedError


def run_app(kernel: Kernel, app: AppWorkload, *,
            warm: bool = True) -> AppResult:
    """Run one application; warm runs discard a first warming pass.

    Cold runs drop the dcache and buffer caches after setup, so the first
    (measured) pass pays low-level FS and device costs (Table 2).
    """
    task = kernel.spawn_task(uid=0, gid=0)
    tree = app.setup(kernel, task)
    if warm:
        app.prepare_run(kernel, task, tree)
        warmup = MeteredSyscalls(kernel)
        app.run(kernel, warmup, task, tree)
    app.prepare_run(kernel, task, tree)
    if not warm:
        kernel.drop_caches()
    kernel.stats.reset()
    sys = MeteredSyscalls(kernel)
    hit0 = kernel.stats.get("dcache_hit")
    start = kernel.now_ns
    app.run(kernel, sys, task, tree)
    total_ns = kernel.now_ns - start
    stats = kernel.stats
    hits = stats.get("dcache_hit") - hit0
    misses = stats.get("dcache_miss")
    steps = hits + misses
    return AppResult(
        name=app.name,
        total_ns=total_ns,
        path_syscall_ns=sys.path_syscall_ns,
        lookups=stats.get("lookup"),
        component_hit_rate=(hits / steps) if steps else 1.0,
        negative_rate=stats.negative_rate(),
        avg_path_bytes=(sys.path_bytes / sys.path_count)
        if sys.path_count else 0.0,
        avg_path_components=(sys.path_components / sys.path_count)
        if sys.path_count else 0.0,
        syscall_counts=dict(sys.counts),
    )


# ----------------------------------------------------------------------
# Traversal utilities
# ----------------------------------------------------------------------

def _walk_at(sys: MeteredSyscalls, task: Task, path: str,
             per_entry: Callable[[str, str, int], None],
             stat_entries: bool = True) -> None:
    """fts-style traversal with openat/getdents/fstatat single components."""
    fd = sys.open(task, path, O_RDONLY | O_DIRECTORY)
    try:
        entries = sys.readdir(task, fd)
        for name, _ino, dtype in entries:
            if stat_entries:
                sys.fstatat(task, name, dirfd=fd, follow=False)
            per_entry(path, name, fd)
            if dtype == "dir":
                _walk_at(sys, task, f"{path}/{name}", per_entry,
                         stat_entries)
    finally:
        sys.close(task, fd)


# ----------------------------------------------------------------------
# The applications
# ----------------------------------------------------------------------

class FindWorkload(AppWorkload):
    """``find /src -name 'pattern'``: stat everything, match names."""

    name = "find"
    match_compute_ns = 150.0

    def run(self, kernel, sys, task, tree):
        def match(_path, _name, _fd):
            kernel.costs.charge_ns("app_compute", self.match_compute_ns)

        _walk_at(sys, task, tree.root, match)


class DuWorkload(AppWorkload):
    """``du -s /src``: sum block counts over the whole tree."""

    name = "du -s"
    sum_compute_ns = 100.0

    def run(self, kernel, sys, task, tree):
        def accumulate(_path, _name, _fd):
            kernel.costs.charge_ns("app_compute", self.sum_compute_ns)

        _walk_at(sys, task, tree.root, accumulate)


class UpdatedbWorkload(AppWorkload):
    """``updatedb -U /src``: build a path database from a traversal.

    updatedb records names straight from readdir and only stats the
    directories it recurses into, so repeated runs are dominated by
    directory listing — the workload directory-completeness caching
    (§5.1) helps most.
    """

    name = "updatedb"
    entry_compute_ns = 80.0

    def run(self, kernel, sys, task, tree):
        names: List[str] = []

        def scan(path: str) -> None:
            fd = sys.open(task, path, O_RDONLY | O_DIRECTORY)
            try:
                for name, _ino, dtype in sys.readdir(task, fd):
                    names.append(f"{path}/{name}")
                    kernel.costs.charge_ns("app_compute",
                                           self.entry_compute_ns)
                    if dtype == "dir":
                        sys.fstatat(task, name, dirfd=fd)
                        scan(f"{path}/{name}")
            finally:
                sys.close(task, fd)

        scan(tree.root)
        db = "\n".join(names).encode()
        if not kernel.sys.exists(task, "/var"):
            sys.mkdir(task, "/var")
        fd = sys.open(task, "/var/locatedb", O_CREAT | O_RDWR)
        sys.write(task, fd, db)
        sys.close(task, fd)


class TarExtractWorkload(AppWorkload):
    """``tar xzf linux.tar.gz``: create a parallel tree from an archive."""

    name = "tar xzf"
    decompress_ns_per_file = 55_000.0

    def __init__(self) -> None:
        self._runs = 0

    def prepare_run(self, kernel, task, tree):
        # Each run extracts to a fresh destination, as a real extraction
        # would: creations are compulsory misses, not negative-dentry hits.
        self._runs += 1

    def run(self, kernel, sys, task, tree):
        dest_root = f"/extract{self._runs}"
        sys.mkdir(task, dest_root)
        for directory in tree.directories:
            if directory == tree.root:
                continue
            rel = directory[len(tree.root) + 1:]
            sys.mkdir(task, f"{dest_root}/{rel}")
        for path in tree.files:
            rel = path[len(tree.root) + 1:]
            kernel.costs.charge_ns("app_compute",
                                   self.decompress_ns_per_file)
            fd = sys.open(task, f"{dest_root}/{rel}", O_CREAT | O_RDWR)
            sys.write(task, fd, b"extracted")
            sys.close(task, fd)


def _rm_tree(sys: MeteredSyscalls, task: Task, path: str) -> None:
    fd = sys.open(task, path, O_RDONLY | O_DIRECTORY)
    try:
        for name, _ino, dtype in sys.readdir(task, fd):
            child = f"{path}/{name}"
            if dtype == "dir":
                _rm_tree(sys, task, child)
            else:
                sys.unlink(task, child)
    finally:
        sys.close(task, fd)
    sys.rmdir(task, path)


def _plain_rm_tree(kernel: Kernel, task: Task, path: str) -> None:
    """Unmetered recursive removal (staging between runs)."""
    sys = kernel.sys
    for name, _ino, dtype in sys.listdir(task, path):
        child = f"{path}/{name}"
        if dtype == "dir":
            _plain_rm_tree(kernel, task, child)
        else:
            sys.unlink(task, child)
    sys.rmdir(task, path)


class RmTreeWorkload(AppWorkload):
    """``rm -r``: remove a freshly staged copy of the source tree."""

    name = "rm -r"
    copy_root = "/rmcopy"
    fts_compute_ns = 300.0

    def prepare_run(self, kernel, task, tree):
        # Each run removes a fresh copy so warm runs stay meaningful;
        # staging is unmetered (it happens before the timer starts).
        plain = kernel.sys
        if plain.exists(task, self.copy_root):
            _plain_rm_tree(kernel, task, self.copy_root)
        plain.mkdir(task, self.copy_root)
        for directory in tree.directories:
            if directory != tree.root:
                plain.mkdir(task,
                            self.copy_root + directory[len(tree.root):])
        for path in tree.files:
            fd = plain.open(task, self.copy_root + path[len(tree.root):],
                            O_CREAT | O_RDWR)
            plain.close(task, fd)

    def run(self, kernel, sys, task, tree):
        _rm_tree(sys, task, self.copy_root)
        kernel.costs.charge_ns("app_compute",
                               self.fts_compute_ns * len(tree.all_paths))


class MakeWorkload(AppWorkload):
    """``make``: header probing, reads, object creation, compilation.

    For every ``.c`` file the compiler driver probes a series of include
    directories for headers that mostly do not exist — the negative
    dentry traffic the paper highlights (make is the only Table 1 app
    with ~20% negative lookups) — then reads the source and writes an
    object file.
    """

    name = "make"
    compile_ns_per_file = 160_000.0
    parallelism = 1

    #: Simulated include search path (probed in order, like -I).
    include_dirs = ["include", "arch0/include", "include/generated"]
    #: Headers each source probes; header i lives in include dir i%3, so
    #: probes average ~1 miss per header (the paper's ~18-20% negative
    #: dentry rate for make).
    headers = ["types.h", "config.h", "module.h", "printk.h"]

    def setup(self, kernel, task):
        tree = super().setup(kernel, task)
        sys = kernel.sys
        for inc in self.include_dirs:
            prefix = tree.root
            for part in inc.split("/"):
                prefix = f"{prefix}/{part}"
                if not sys.exists(task, prefix):
                    sys.mkdir(task, prefix)
        for i, header in enumerate(self.headers):
            home = self.include_dirs[i % len(self.include_dirs)]
            fd = sys.open(task, f"{tree.root}/{home}/{header}",
                          O_CREAT | O_RDWR)
            sys.write(task, fd, b"#define CONFIG 1")
            sys.close(task, fd)
        return tree

    def run(self, kernel, sys, task, tree):
        sources = [p for p in tree.files if p.endswith(".c")]
        for src in sources:
            sys.stat(task, src)
            sys.stat(task, src[:src.rfind("/")] or "/")
            try:
                sys.stat(task, src[:-2] + ".obj")
            except errors.ENOENT:
                pass
            for header in self.headers:
                for inc in self.include_dirs:
                    try:
                        sys.stat(task, f"{tree.root}/{inc}/{header}")
                        break
                    except errors.ENOENT:
                        continue
            fd = sys.open(task, src, O_RDONLY)
            sys.read(task, fd, 4096)
            sys.close(task, fd)
            kernel.costs.charge_ns(
                "app_compute", self.compile_ns_per_file / self.parallelism)
            obj = src[:-2] + ".obj"
            try:
                fd = sys.open(task, obj, O_CREAT | O_RDWR)
                sys.write(task, fd, b"ELF")
                sys.close(task, fd)
            except errors.EEXIST:  # pragma: no cover - O_CREAT reuses
                pass


class MakeJ12Workload(MakeWorkload):
    """``make -j12``: the same trace with the compute budget split."""

    name = "make -j12"
    parallelism = 12


class GitStatusWorkload(AppWorkload):
    """``git status``: lstat every tracked path from the index."""

    name = "git status"
    per_file_compute_ns = 3_500.0

    def run(self, kernel, sys, task, tree):
        for path in tree.files:
            try:
                sys.lstat(task, path)
            except errors.ENOENT:
                pass
            kernel.costs.charge_ns("app_compute", self.per_file_compute_ns)
        # status also lists work-tree directories for untracked files
        for directory in tree.directories:
            sys.listdir(task, directory)


class GitDiffWorkload(AppWorkload):
    """``git diff``: index refresh (lstat storm) without untracked scan."""

    name = "git diff"
    per_file_compute_ns = 400.0

    def run(self, kernel, sys, task, tree):
        for path in tree.files:
            try:
                sys.lstat(task, path)
            except errors.ENOENT:
                pass
            kernel.costs.charge_ns("app_compute", self.per_file_compute_ns)


#: The Table 1/2 application roster in paper order.
ALL_APPS: List[Callable[[], AppWorkload]] = [
    FindWorkload,
    TarExtractWorkload,
    RmTreeWorkload,
    MakeWorkload,
    MakeJ12Workload,
    DuWorkload,
    UpdatedbWorkload,
    GitStatusWorkload,
    GitDiffWorkload,
]
