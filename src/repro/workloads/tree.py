"""Synthetic directory trees for the evaluation workloads.

The application benchmarks (Tables 1–2) run over a Linux-source-shaped
tree: a few levels of subsystem directories with C files of realistic
name lengths.  Everything is seeded and deterministic, so baseline and
optimized kernels see byte-identical trees.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import O_CREAT, O_RDWR
from repro.core.kernel import Kernel
from repro.vfs.task import Task

#: Plausible kernel-tree directory names (used cyclically).
_DIR_WORDS = [
    "arch", "block", "crypto", "drivers", "firmware", "fs", "include",
    "init", "ipc", "kernel", "lib", "mm", "net", "scripts", "security",
    "sound", "tools", "usr", "virt", "media", "gpu", "char", "pci",
    "usb", "video", "core", "common", "platform", "boot", "configs",
]

_FILE_STEMS = [
    "main", "core", "util", "init", "setup", "driver", "probe", "debug",
    "table", "cache", "sched", "lock", "event", "trace", "sysfs", "ioctl",
    "queue", "buffer", "string", "memory",
]

_FILE_EXTS = [".c", ".h", ".o", ".S", ".txt", ".Kconfig"]


@dataclass
class TreeSpec:
    """Shape of a synthetic tree.

    Attributes:
        depth: directory nesting below the root.
        dirs_per_level: fanout of subdirectories at each level.
        files_per_dir: regular files in every directory.
        file_bytes: content size per file (0 keeps creation cheap).
        seed: RNG seed for name jitter.
    """

    depth: int = 3
    dirs_per_level: int = 4
    files_per_dir: int = 8
    file_bytes: int = 0
    seed: int = 1234

    def approx_files(self) -> int:
        dirs = sum(self.dirs_per_level ** level
                   for level in range(self.depth + 1))
        return dirs * self.files_per_dir


@dataclass
class BuiltTree:
    """What :func:`populate` produced."""

    root: str
    directories: List[str] = field(default_factory=list)
    files: List[str] = field(default_factory=list)

    @property
    def all_paths(self) -> List[str]:
        return self.directories + self.files


def populate(kernel: Kernel, task: Task, root: str,
             spec: Optional[TreeSpec] = None) -> BuiltTree:
    """Create a tree under ``root`` (which must not exist yet)."""
    spec = spec or TreeSpec()
    rng = random.Random(spec.seed)
    sys = kernel.sys
    sys.mkdir(task, root)
    built = BuiltTree(root=root, directories=[root])
    _fill(kernel, task, root, spec, spec.depth, rng, built)
    return built


def _fill(kernel: Kernel, task: Task, base: str, spec: TreeSpec,
          levels_left: int, rng: random.Random, built: BuiltTree) -> None:
    sys = kernel.sys
    for i in range(spec.files_per_dir):
        stem = _FILE_STEMS[i % len(_FILE_STEMS)]
        ext = _FILE_EXTS[rng.randrange(len(_FILE_EXTS))]
        path = f"{base}/{stem}{rng.randrange(100)}{ext}"
        fd = sys.open(task, path, O_CREAT | O_RDWR)
        if spec.file_bytes:
            sys.write(task, fd, b"x" * spec.file_bytes)
        sys.close(task, fd)
        built.files.append(path)
    if levels_left <= 0:
        return
    for i in range(spec.dirs_per_level):
        name = _DIR_WORDS[i % len(_DIR_WORDS)]
        path = f"{base}/{name}{i}"
        sys.mkdir(task, path)
        built.directories.append(path)
        _fill(kernel, task, path, spec, levels_left - 1, rng, built)


def build_linux_like_tree(kernel: Kernel, task: Task,
                          root: str = "/usr/src/linux",
                          scale: str = "small") -> BuiltTree:
    """A Linux-source-shaped tree at one of three scales.

    ``small`` ≈ 700 files (unit tests), ``medium`` ≈ 2.7k files (most
    benchmarks), ``large`` ≈ 10k files (PCC-pressure experiments).
    """
    specs = {
        "small": TreeSpec(depth=2, dirs_per_level=4, files_per_dir=10),
        "medium": TreeSpec(depth=3, dirs_per_level=5, files_per_dir=12),
        "large": TreeSpec(depth=3, dirs_per_level=8, files_per_dir=16),
    }
    spec = specs[scale]
    sys = kernel.sys
    # Build the parents of ``root`` first.
    parts = [p for p in root.split("/") if p]
    prefix = ""
    for part in parts[:-1]:
        prefix = f"{prefix}/{part}"
        if not kernel.sys.exists(task, prefix):
            sys.mkdir(task, prefix)
    return populate(kernel, task, root, spec)


def build_flat_dir(kernel: Kernel, task: Task, path: str,
                   nfiles: int, prefix: str = "f") -> List[str]:
    """One directory with ``nfiles`` files (readdir/mkstemp benches)."""
    sys = kernel.sys
    sys.mkdir(task, path)
    names = []
    for i in range(nfiles):
        name = f"{path}/{prefix}{i:05d}"
        fd = sys.open(task, name, O_CREAT | O_RDWR)
        sys.close(task, fd)
        names.append(name)
    return names


def build_fanout_tree(kernel: Kernel, task: Task, base: str, depth: int,
                      fanout: int = 10) -> Tuple[str, int]:
    """The Figure 7 subtree shape: fanout^depth files under ``base``.

    ``depth=0`` is a single file named ``base`` (the "single file" bar);
    otherwise ``base`` is a directory of ``fanout`` subdirectories per
    level with ``fanout`` files at the leaves ("depth=4, 10000 files").
    Returns (base, cached descendant count including interior dirs).
    """
    sys = kernel.sys
    if depth == 0:
        fd = sys.open(task, base, O_CREAT | O_RDWR)
        sys.close(task, fd)
        return base, 0
    sys.mkdir(task, base)
    total = 0

    def recurse(path: str, level: int) -> None:
        nonlocal total
        if level == depth:
            for i in range(fanout):
                fd = sys.open(task, f"{path}/file{i}", O_CREAT | O_RDWR)
                sys.close(task, fd)
                total += 1
            return
        for i in range(fanout):
            sub = f"{path}/dir{i}"
            sys.mkdir(task, sub)
            total += 1
            recurse(sub, level + 1)

    recurse(base, 1)
    return base, total
