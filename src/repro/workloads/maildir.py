"""Dovecot-style maildir IMAP workload (Figure 10).

Maildir stores each mailbox as a directory and each message as a file
whose name encodes its flags.  Marking a message (seen/flagged/unflagged)
renames the file; the server then re-reads the directory to sync its view
of the mailbox, and a delivery agent occasionally drops new messages into
``new/`` which the server moves into ``cur/`` (§5.1's motivating
example).

The client model below marks/unmarks random messages across mailboxes;
per-operation IMAP parsing and index-update work is charged as compute so
the directory-cache share of each operation matches a real Dovecot
profile.  Throughput is operations per virtual second.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro import O_CREAT, O_RDWR
from repro.core.kernel import Kernel
from repro.vfs.task import Task

#: Per-operation protocol/index compute (command parse, index write).
OP_FIXED_NS = 600_000.0
#: Per-message processing while syncing a re-read mailbox listing.
PER_MESSAGE_NS = 1_500.0


@dataclass
class MaildirSetup:
    """A provisioned maildir store."""

    root: str
    mailboxes: List[str]
    messages: Dict[str, List[str]]


def provision(kernel: Kernel, task: Task, mailboxes: int,
              messages_per_box: int, root: str = "/mail",
              seed: int = 42) -> MaildirSetup:
    """Create ``mailboxes`` maildirs with ``messages_per_box`` each."""
    sys = kernel.sys
    rng = random.Random(seed)
    sys.mkdir(task, root)
    setup = MaildirSetup(root=root, mailboxes=[], messages={})
    for box in range(mailboxes):
        base = f"{root}/inbox{box}"
        sys.mkdir(task, base)
        for sub in ("cur", "new", "tmp"):
            sys.mkdir(task, f"{base}/{sub}")
        names = []
        for i in range(messages_per_box):
            name = f"{1600000000 + i}.M{rng.randrange(10**6)}P{box}.host:2,"
            fd = sys.open(task, f"{base}/cur/{name}", O_CREAT | O_RDWR)
            sys.close(task, fd)
            names.append(name)
        setup.mailboxes.append(base)
        setup.messages[base] = names
    return setup


def _sync_mailbox(kernel: Kernel, task: Task, curdir: str) -> int:
    """Server-side mailbox sync: re-read the directory, process entries."""
    entries = kernel.sys.listdir(task, curdir)
    kernel.costs.charge_ns("imap_compute", PER_MESSAGE_NS * len(entries))
    return len(entries)


def mark_operation(kernel: Kernel, task: Task, setup: MaildirSetup,
                   rng: random.Random) -> None:
    """One IMAP STORE: flip a random message's Seen flag, then sync."""
    box = setup.mailboxes[rng.randrange(len(setup.mailboxes))]
    names = setup.messages[box]
    idx = rng.randrange(len(names))
    name = names[idx]
    flagged = name.endswith("S")
    new_name = name[:-1] if flagged else name + "S"
    kernel.costs.charge_ns("imap_compute", OP_FIXED_NS)
    kernel.sys.stat(task, f"{box}/cur/{name}")
    kernel.sys.rename(task, f"{box}/cur/{name}", f"{box}/cur/{new_name}")
    names[idx] = new_name
    _sync_mailbox(kernel, task, f"{box}/cur")


def deliver_operation(kernel: Kernel, task: Task, setup: MaildirSetup,
                      rng: random.Random, seq: int) -> None:
    """MDA delivery: drop a message in new/, server moves it to cur/."""
    box = setup.mailboxes[rng.randrange(len(setup.mailboxes))]
    name = f"{1700000000 + seq}.M{rng.randrange(10**6)}D.host:2,"
    kernel.costs.charge_ns("imap_compute", OP_FIXED_NS / 2)
    fd = kernel.sys.open(task, f"{box}/new/{name}", O_CREAT | O_RDWR)
    kernel.sys.close(task, fd)
    kernel.sys.rename(task, f"{box}/new/{name}", f"{box}/cur/{name}")
    setup.messages[box].append(name)
    _sync_mailbox(kernel, task, f"{box}/cur")


def run_benchmark(kernel: Kernel, mailbox_size: int, *,
                  mailboxes: int = 10, operations: int = 200,
                  deliver_every: int = 20, seed: int = 7) -> float:
    """Figure 10 driver: returns throughput in operations per second."""
    task = kernel.spawn_task(uid=0, gid=0)
    setup = provision(kernel, task, mailboxes, mailbox_size)
    rng = random.Random(seed)
    # Warm pass: the server has been running and has the boxes cached.
    for box in setup.mailboxes:
        _sync_mailbox(kernel, task, f"{box}/cur")
    start = kernel.now_ns
    for op in range(operations):
        if deliver_every and op % deliver_every == deliver_every - 1:
            deliver_operation(kernel, task, setup, rng, op)
        else:
            mark_operation(kernel, task, setup, rng)
    elapsed_s = (kernel.now_ns - start) / 1e9
    return operations / elapsed_s
