"""Dovecot-style maildir IMAP workload (Figure 10).

Maildir stores each mailbox as a directory and each message as a file
whose name encodes its flags.  Marking a message (seen/flagged/unflagged)
renames the file; the server then re-reads the directory to sync its view
of the mailbox, and a delivery agent occasionally drops new messages into
``new/`` which the server moves into ``cur/`` (§5.1's motivating
example).

The client model below marks/unmarks random messages across mailboxes;
per-operation IMAP parsing and index-update work is charged as compute so
the directory-cache share of each operation matches a real Dovecot
profile.  Throughput is operations per virtual second.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro import O_CREAT, O_RDWR
from repro.core.kernel import Kernel
from repro.vfs.task import Task

#: Per-operation protocol/index compute (command parse, index write).
OP_FIXED_NS = 600_000.0
#: Per-message processing while syncing a re-read mailbox listing.
PER_MESSAGE_NS = 1_500.0


@dataclass
class MaildirSetup:
    """A provisioned maildir store."""

    root: str
    mailboxes: List[str]
    messages: Dict[str, List[str]]


def provision(kernel: Kernel, task: Task, mailboxes: int,
              messages_per_box: int, root: str = "/mail",
              seed: int = 42) -> MaildirSetup:
    """Create ``mailboxes`` maildirs with ``messages_per_box`` each."""
    sys = kernel.sys
    rng = random.Random(seed)
    sys.mkdir(task, root)
    setup = MaildirSetup(root=root, mailboxes=[], messages={})
    for box in range(mailboxes):
        base = f"{root}/inbox{box}"
        sys.mkdir(task, base)
        for sub in ("cur", "new", "tmp"):
            sys.mkdir(task, f"{base}/{sub}")
        names = []
        for i in range(messages_per_box):
            name = f"{1600000000 + i}.M{rng.randrange(10**6)}P{box}.host:2,"
            fd = sys.open(task, f"{base}/cur/{name}", O_CREAT | O_RDWR)
            sys.close(task, fd)
            names.append(name)
        setup.mailboxes.append(base)
        setup.messages[base] = names
    return setup


def _sync_mailbox(kernel: Kernel, task: Task, curdir: str) -> int:
    """Server-side mailbox sync: re-read the directory, process entries."""
    entries = kernel.sys.listdir(task, curdir)
    kernel.costs.charge_ns("imap_compute", PER_MESSAGE_NS * len(entries))
    return len(entries)


def mark_operation(kernel: Kernel, task: Task, setup: MaildirSetup,
                   rng: random.Random) -> None:
    """One IMAP STORE: flip a random message's Seen flag, then sync."""
    box = setup.mailboxes[rng.randrange(len(setup.mailboxes))]
    names = setup.messages[box]
    idx = rng.randrange(len(names))
    name = names[idx]
    flagged = name.endswith("S")
    new_name = name[:-1] if flagged else name + "S"
    kernel.costs.charge_ns("imap_compute", OP_FIXED_NS)
    kernel.sys.stat(task, f"{box}/cur/{name}")
    kernel.sys.rename(task, f"{box}/cur/{name}", f"{box}/cur/{new_name}")
    names[idx] = new_name
    _sync_mailbox(kernel, task, f"{box}/cur")


def mark_unmark_operation(kernel: Kernel, task: Task, setup: MaildirSetup,
                          rng: random.Random) -> None:
    """A STORE pair: flag a random message, sync, unflag it, sync.

    Same per-operation cache work as two :func:`mark_operation` calls,
    but the filesystem ends exactly where it started — the message is
    back under its original name.  Self-undoing operations are what let
    a recorded tenant request stream replay any number of times on one
    kernel (see :mod:`repro.workloads.server_fleet`).
    """
    box = setup.mailboxes[rng.randrange(len(setup.mailboxes))]
    names = setup.messages[box]
    name = names[rng.randrange(len(names))]
    flipped = name[:-1] if name.endswith("S") else name + "S"
    kernel.costs.charge_ns("imap_compute", OP_FIXED_NS)
    kernel.sys.stat(task, f"{box}/cur/{name}")
    kernel.sys.rename(task, f"{box}/cur/{name}", f"{box}/cur/{flipped}")
    _sync_mailbox(kernel, task, f"{box}/cur")
    kernel.costs.charge_ns("imap_compute", OP_FIXED_NS)
    kernel.sys.rename(task, f"{box}/cur/{flipped}", f"{box}/cur/{name}")
    _sync_mailbox(kernel, task, f"{box}/cur")


def folder_rename_operation(kernel: Kernel, task: Task,
                            setup: MaildirSetup,
                            rng: random.Random) -> None:
    """An IMAP RENAME pair: move a whole mailbox aside, then back.

    Renaming a *directory* is where the coherence strategies diverge
    hardest (§5.1): the eager profile shoots down every cached dentry
    under the mailbox — ``cur``/``new``/``tmp`` plus one per message —
    per-dentry at rename time, while the lazy profile bumps an epoch
    and pays per-entry revalidation only as the following syncs touch
    the subtree again.  The pair restores the original name, so the
    operation is self-undoing like :func:`mark_unmark_operation`.

    Unlike the flag operations, a RENAME does not re-read the mailbox:
    Dovecot rewrites its index and checks ``new/`` for races, so the
    syncs here list the (normally empty) ``new/`` directory.  The cost
    of the operation is therefore dominated by the *coherence* work the
    rename triggers, not by per-message compute — which is exactly what
    makes it the probe for the eager/lazy crossover
    (``bench/exp_tenant_crossover.py``).
    """
    box = setup.mailboxes[rng.randrange(len(setup.mailboxes))]
    aside = f"{box}.tmp-rename"
    kernel.costs.charge_ns("imap_compute", OP_FIXED_NS)
    kernel.sys.rename(task, box, aside)
    _sync_mailbox(kernel, task, f"{aside}/new")
    kernel.costs.charge_ns("imap_compute", OP_FIXED_NS)
    kernel.sys.rename(task, aside, box)
    _sync_mailbox(kernel, task, f"{box}/new")


def deliver_operation(kernel: Kernel, task: Task, setup: MaildirSetup,
                      rng: random.Random, seq: int) -> None:
    """MDA delivery: drop a message in new/, server moves it to cur/."""
    box = setup.mailboxes[rng.randrange(len(setup.mailboxes))]
    name = f"{1700000000 + seq}.M{rng.randrange(10**6)}D.host:2,"
    kernel.costs.charge_ns("imap_compute", OP_FIXED_NS / 2)
    fd = kernel.sys.open(task, f"{box}/new/{name}", O_CREAT | O_RDWR)
    kernel.sys.close(task, fd)
    kernel.sys.rename(task, f"{box}/new/{name}", f"{box}/cur/{name}")
    setup.messages[box].append(name)
    _sync_mailbox(kernel, task, f"{box}/cur")


def run_benchmark(kernel: Kernel, mailbox_size: int, *,
                  mailboxes: int = 10, operations: int = 200,
                  deliver_every: int = 20, seed: int = 7) -> float:
    """Figure 10 driver: returns throughput in operations per second."""
    task = kernel.spawn_task(uid=0, gid=0)
    setup = provision(kernel, task, mailboxes, mailbox_size)
    rng = random.Random(seed)
    # Warm pass: the server has been running and has the boxes cached.
    for box in setup.mailboxes:
        _sync_mailbox(kernel, task, f"{box}/cur")
    start = kernel.now_ns
    for op in range(operations):
        if deliver_every and op % deliver_every == deliver_every - 1:
            deliver_operation(kernel, task, setup, rng, op)
        else:
            mark_operation(kernel, task, setup, rng)
    elapsed_s = (kernel.now_ns - start) / 1e9
    return operations / elapsed_s
