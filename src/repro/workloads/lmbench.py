"""LMBench-style microbenchmarks (extended lat_syscall, §6.1).

These drivers prepare the exact path shapes of Figure 6 and measure
virtual-time latency of ``stat``/``open`` (plus the chmod/rename,
readdir, and mkstemp micro-experiments of Figures 7 and 9).  Because the
clock is deterministic, a single measured call after one warming call is
an exact latency — no averaging needed.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro import O_CREAT, O_RDONLY, O_RDWR
from repro.core.kernel import Kernel
from repro.vfs.task import Task
from repro.workloads.tree import build_fanout_tree, build_flat_dir

#: Figure 6's path patterns (name -> path to stat/open, cwd is "/").
PATH_PATTERNS = [
    ("default", "usr/include/gcc-x86_64-linux-gnu/sys/types.h"),
    ("1-comp", "FFF"),
    ("2-comp", "XXX/FFF"),
    ("4-comp", "XXX/YYY/ZZZ/FFF"),
    ("8-comp", "XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF"),
    ("link-f", "XXX/YYY/ZZZ/LLL"),
    ("link-d", "LLL/YYY/ZZZ/FFF"),
    ("neg-f", "XXX/YYY/ZZZ/NNN"),
    ("neg-d", "NNN/XXX/YYY/FFF"),
    ("1-dotdot", "XXX/../FFF"),
    ("4-dotdot", "XXX/YYY/../../AAA/BBB/../../FFF"),
]

#: Patterns that resolve to a real file (open succeeds).
POSITIVE_PATTERNS = {"default", "1-comp", "2-comp", "4-comp", "8-comp",
                     "link-f", "link-d", "1-dotdot", "4-dotdot"}


def prepare_lookup_tree(kernel: Kernel) -> Task:
    """Build every path Figure 6 exercises; returns a root task at /."""
    task = kernel.spawn_task(uid=0, gid=0)
    sys = kernel.sys

    def mkfile(path: str) -> None:
        fd = sys.open(task, path, O_CREAT | O_RDWR)
        sys.close(task, fd)

    for chain in (["usr", "include", "gcc-x86_64-linux-gnu", "sys"],
                  ["XXX", "YYY", "ZZZ", "AAA", "BBB", "CCC", "DDD"],
                  ["AAA", "BBB"]):
        prefix = ""
        for part in chain:
            prefix = f"{prefix}/{part}"
            if not sys.exists(task, prefix):
                sys.mkdir(task, prefix)
    mkfile("/usr/include/gcc-x86_64-linux-gnu/sys/types.h")
    mkfile("/FFF")
    mkfile("/XXX/FFF")
    mkfile("/XXX/YYY/ZZZ/FFF")
    mkfile("/XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF")
    # link-f: final symlink to a sibling file.
    sys.symlink(task, "FFF", "/XXX/YYY/ZZZ/LLL")
    # link-d: a directory symlink at the first component.
    sys.symlink(task, "/XXX", "/LLL")
    return task


def measure_stat(kernel: Kernel, task: Task, path: str,
                 warm_rounds: int = 2) -> float:
    """Exact warm-cache latency (virtual ns) of one stat."""
    sys = kernel.sys
    for _ in range(warm_rounds):
        _try_stat(sys, task, path)
    start = kernel.now_ns
    _try_stat(sys, task, path)
    return kernel.now_ns - start


def measure_open(kernel: Kernel, task: Task, path: str,
                 warm_rounds: int = 2) -> float:
    """Exact warm-cache latency (virtual ns) of one open (close excluded)."""
    sys = kernel.sys
    fds = []
    for _ in range(warm_rounds):
        fds.append(sys.open(task, path, O_RDONLY))
    start = kernel.now_ns
    fds.append(sys.open(task, path, O_RDONLY))
    elapsed = kernel.now_ns - start
    for fd in fds:
        sys.close(task, fd)
    return elapsed


def _try_stat(sys, task: Task, path: str) -> None:
    from repro import errors
    try:
        sys.stat(task, path)
    except errors.FsError:
        pass


def measure_fstatat(kernel: Kernel, task: Task, dirfd: int,
                    relpath: str, warm_rounds: int = 2) -> float:
    """Exact warm latency (virtual ns) of one fstatat via ``dirfd``."""
    sys = kernel.sys
    for _ in range(warm_rounds):
        sys.fstatat(task, relpath, dirfd=dirfd)
    start = kernel.now_ns
    sys.fstatat(task, relpath, dirfd=dirfd)
    return kernel.now_ns - start


def lookup_breakdown(kernel: Kernel, task: Task,
                     path: str) -> Dict[str, float]:
    """Figure 3: per-phase attribution of one warm stat.

    Returns {init, perm, hash, htlookup, final, ...} in virtual ns.
    """
    _try_stat(kernel.sys, task, path)  # warm
    kernel.costs.reset_attribution()
    _try_stat(kernel.sys, task, path)
    return dict(kernel.costs.by_scope)


# ----------------------------------------------------------------------
# Figure 7: chmod / rename of populated directories
# ----------------------------------------------------------------------

def measure_mutation_latency(kernel: Kernel,
                             depth: int) -> Tuple[float, float, int]:
    """chmod and rename latency on a fanout tree of the given depth.

    Returns (chmod_ns, rename_ns, descendants).  The whole subtree is in
    the dcache (it was just created), which is the paper's worst case.
    """
    task = kernel.spawn_task(uid=0, gid=0)
    base = f"/mutate{depth}"
    _base, descendants = build_fanout_tree(kernel, task, base, depth)
    start = kernel.now_ns
    kernel.sys.chmod(task, base, 0o700)
    chmod_ns = kernel.now_ns - start
    start = kernel.now_ns
    kernel.sys.rename(task, base, base + "_moved")
    rename_ns = kernel.now_ns - start
    return chmod_ns, rename_ns, descendants


# ----------------------------------------------------------------------
# Figure 9: readdir and mkstemp vs directory size
# ----------------------------------------------------------------------

def measure_readdir_latency(kernel: Kernel, nfiles: int,
                            warm_rounds: int = 1) -> float:
    """Warm readdir latency of a directory holding ``nfiles`` files."""
    task = kernel.spawn_task(uid=0, gid=0)
    path = f"/lsdir{nfiles}"
    build_flat_dir(kernel, task, path, nfiles)
    for _ in range(warm_rounds):
        kernel.sys.listdir(task, path)
    start = kernel.now_ns
    kernel.sys.listdir(task, path)
    return kernel.now_ns - start


def measure_mkstemp_latency(kernel: Kernel, nfiles: int,
                            seed: int = 99) -> float:
    """mkstemp latency in a directory of ``nfiles`` pre-listed files."""
    task = kernel.spawn_task(uid=0, gid=0)
    path = f"/tmpdir{nfiles}"
    build_flat_dir(kernel, task, path, nfiles)
    kernel.sys.listdir(task, path)  # completeness candidate (optimized)
    rng = random.Random(seed)
    start = kernel.now_ns
    fd, _name = kernel.sys.mkstemp(task, path, rng=rng)
    elapsed = kernel.now_ns - start
    kernel.sys.close(task, fd)
    return elapsed


# ----------------------------------------------------------------------
# Figure 2: the long-path stat microbenchmark
# ----------------------------------------------------------------------

LONG_PATH = "XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF"

#: Historical context from the paper's Figure 2 (µs); the two rightmost
#: points are re-measured on our substrate.
FIG2_PAPER_HISTORY = [
    ("v2.6.36 (2010)", 1.12),
    ("v3.0 (2011)", 0.89),
    ("v3.14 (2014)", 0.6005),
    ("v4.0 (2015)", 0.62),
    ("v3.14-opt", 0.4438),
]


def measure_long_path_stat(kernel: Kernel) -> float:
    """Warm stat latency of the 8-component Figure 2 path (ns)."""
    task = prepare_lookup_tree(kernel)
    return measure_stat(kernel, task, LONG_PATH)
