"""Deterministic simulation substrate: virtual time, cost accounting, stats.

The paper's headline results are latency measurements of kernel code paths.
A Python reproduction cannot observe those nanoseconds directly, so every
algorithmic primitive (hash a component, probe a bucket, check a
permission, read a disk block, ...) charges virtual nanoseconds to a
:class:`~repro.sim.costs.CostModel`.  The *counts* of primitives are exact
reproductions of the algorithms; the per-primitive charges are calibrated
once against the paper's baseline numbers (see ``costs.CALIBRATED``).
"""

from repro.sim.clock import Clock
from repro.sim.costs import CostModel, CALIBRATED, UNIT
from repro.sim.snapshot import KernelSnapshot, clone_kernel
from repro.sim.stats import Stats

__all__ = ["Clock", "CostModel", "CALIBRATED", "UNIT", "Stats",
           "KernelSnapshot", "clone_kernel"]
