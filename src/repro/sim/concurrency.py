"""Analytic multicore scaling model (Figure 8).

Figure 8's claim is structural: because the lookup read path uses RCU and
(in the optimized kernel) the DLHT/PCC are read without locks, ``stat`` and
``open`` latency stays flat as threads are added, while writers
(``rename``) serialize on ``rename_lock``.

Real Python threads cannot demonstrate this (the GIL serializes
everything), so the reproduction encodes the synchronization structure of
both kernels analytically: a read path that shares no mutable cache lines
scales with only a small coherence-traffic factor, and a write path whose
critical section serializes gains queueing delay linearly with
contenders.  The inputs (single-thread latencies) are *measured* on the
simulated kernels; only the interconnect factors are constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class ScalingParams:
    """Interconnect/contention constants for the analytic model.

    Attributes:
        read_coherence_factor: fractional latency growth per extra thread
            on the read path, from shared-LLC and memory-bandwidth
            pressure.  Empirically small (~0.6%/thread on the paper's
            12-core Xeon: latency stays visually flat).
        writer_lock_ns: critical-section length serialized across writers.
        writer_queue_factor: queueing growth per contending writer.
    """

    read_coherence_factor: float = 0.006
    writer_lock_ns: float = 9_000.0
    writer_queue_factor: float = 0.75


def read_latency_curve(single_thread_ns: float, max_threads: int,
                       params: ScalingParams = ScalingParams()) -> List[float]:
    """Per-thread ``stat``/``open`` latency as thread count grows.

    Lock-free read paths (RCU walk; DLHT/PCC probes) share no mutable
    cache lines, so the only growth is coherence/bandwidth pressure.
    """
    return [
        single_thread_ns * (1.0 + params.read_coherence_factor * (threads - 1))
        for threads in range(1, max_threads + 1)
    ]


def writer_latency_curve(single_thread_ns: float, max_threads: int,
                         params: ScalingParams = ScalingParams()) -> List[float]:
    """Per-thread ``rename`` latency as contending writers grow.

    Writers serialize on ``rename_lock``: each contender adds queueing
    delay proportional to the critical section.
    """
    out = []
    for threads in range(1, max_threads + 1):
        queue = params.writer_lock_ns * params.writer_queue_factor * (threads - 1)
        out.append(single_thread_ns + queue)
    return out
