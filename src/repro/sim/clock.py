"""Virtual nanosecond clock.

All latency in the simulator is virtual time accumulated on a
:class:`Clock`.  The clock is monotonic and deterministic: the same
sequence of operations always produces the same elapsed time, which is what
lets the benchmark harness reproduce the *shape* of the paper's latency
figures without real hardware.
"""

from __future__ import annotations


class Clock:
    """Monotonic virtual clock measured in nanoseconds."""

    __slots__ = ("_now_ns",)

    def __init__(self) -> None:
        self._now_ns = 0

    @property
    def now_ns(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now_ns

    def advance(self, ns: float) -> None:
        """Advance the clock by ``ns`` nanoseconds (must be >= 0)."""
        if ns < 0:
            raise ValueError(f"clock cannot run backwards ({ns} ns)")
        self._now_ns += ns

    def elapsed_since(self, start_ns: float) -> float:
        """Nanoseconds elapsed since ``start_ns`` (a prior ``now_ns``)."""
        return self._now_ns - start_ns

    # -- state capture (snapshot support) --------------------------------

    def capture_state(self) -> float:
        """Opaque state token for :meth:`restore_state`."""
        return self._now_ns

    def restore_state(self, state: float) -> None:
        """Restore a previously captured state verbatim.

        Unlike :meth:`advance` this may move the clock backwards — it
        exists for the snapshot layer, which rewinds a restored kernel
        to its capture point, not for simulation code.
        """
        self._now_ns = state


class Ticker:
    """Virtual-time deadline poller for amortized background work.

    The simulator has no preemption: virtual time only moves when code
    charges costs.  Periodic work (such as the lazy-coherence sweep) is
    therefore *polled* — callers ask :meth:`due` at convenient points
    (e.g. syscall entry) and run one batch when the interval elapsed.
    """

    __slots__ = ("clock", "interval_ns", "_next_ns", "suspended")

    def __init__(self, clock: Clock, interval_ns: float):
        if interval_ns <= 0:
            raise ValueError(f"ticker interval must be > 0 ({interval_ns})")
        self.clock = clock
        self.interval_ns = interval_ns
        self._next_ns = clock.now_ns + interval_ns
        # While suspended, due()/fires_within() report False so polled
        # work is deferred; the deadline itself keeps aging.  Used by
        # the lazy-sweep quantization mode (DcacheConfig
        # lazy_sweep_quantize), which holds sweeps until a replay-pass
        # boundary and runs one full catch-up sweep there.
        self.suspended = False

    def due(self) -> bool:
        """True when at least one interval elapsed since the last fire."""
        if self.suspended:
            return False
        return self.clock._now_ns >= self._next_ns

    def fire(self) -> None:
        """Consume the deadline: schedule the next fire one interval out.

        Re-arms relative to *now* (not the missed deadline) so a long
        quiet period does not cause a burst of catch-up fires.
        """
        self._next_ns = self.clock._now_ns + self.interval_ns

    def fires_within(self, ns: float) -> bool:
        """True if advancing the clock by ``ns`` would reach the deadline.

        Used by the charge-plan applier: a plan that covers a run of
        syscalls may only be applied when none of the covered sweeper
        polls would fire, i.e. when the whole covered advance stays
        strictly short of the deadline.  Conservative by construction:
        every poll inside the covered run happens at a time strictly
        below ``now + ns``.
        """
        if self.suspended:
            return False
        return self.clock._now_ns + ns >= self._next_ns

    # -- state capture (snapshot support) --------------------------------

    def capture_state(self) -> float:
        """Opaque state token for :meth:`restore_state`."""
        return self._next_ns

    def restore_state(self, state: float) -> None:
        """Restore a previously captured deadline verbatim."""
        self._next_ns = state


class Stopwatch:
    """Context manager measuring virtual time spent inside a block."""

    __slots__ = ("_clock", "_start", "elapsed_ns")

    def __init__(self, clock: Clock):
        self._clock = clock
        self._start = 0.0
        self.elapsed_ns = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = self._clock.now_ns
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed_ns = self._clock.elapsed_since(self._start)
