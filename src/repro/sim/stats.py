"""Event counters for dcache behaviour.

The evaluation tables report hit rates and negative-dentry rates per
workload (Tables 1 and 2); benchmarks and tests read them from here.
"""

from __future__ import annotations

from typing import Dict


class Stats:
    """A bag of named monotonically increasing counters.

    Counter names used across the library:

    * ``lookup`` — path lookups requested (one per path-based syscall).
    * ``component_step`` — slowpath components walked.
    * ``dcache_hit`` / ``dcache_miss`` — per-component primary-table
      outcomes on the slowpath.
    * ``negative_hit`` — lookups answered by a negative dentry.
    * ``fastpath_hit`` / ``fastpath_miss`` — DLHT+PCC outcomes (optimized
      kernel only; a fastpath miss falls back to the slowpath).
    * ``pcc_hit`` / ``pcc_miss`` / ``pcc_stale`` — prefix-check cache.
    * ``fs_lookup`` — calls into the low-level file system (real misses).
    * ``disk_read`` — blocks fetched from the simulated device.
    * ``readdir_cached`` / ``readdir_fs`` — readdir served from the
      dcache vs the low-level FS.
    * ``dir_complete_set`` / ``dir_complete_broken`` — completeness flag
      transitions.
    * ``inval_dentry`` — dentries visited by coherence shootdowns.
    """

    __slots__ = ("_counters",)

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def bump(self, name: str, by: int = 1) -> None:
        counters = self._counters
        counters[name] = counters.get(name, 0) + by

    def bump_many(self, deltas) -> None:
        """Bulk-merge counter deltas in one call.

        ``deltas`` is a mapping or an iterable of ``(name, delta)``
        pairs.  Integer addition is associative, so folding a whole
        delta set at once is exact — this is the hot-path form used by
        the charge-plan applier and the resolution memo's replay path
        instead of per-key :meth:`bump` loops.
        """
        counters = self._counters
        get = counters.get
        if isinstance(deltas, dict):
            deltas = deltas.items()
        for name, delta in deltas:
            counters[name] = get(name, 0) + delta

    def get(self, name: str) -> int:
        return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        return dict(self._counters)

    def restore(self, counters: Dict[str, int]) -> None:
        """Replace all counters with a previously taken :meth:`snapshot`.

        Snapshot support: rewinds a restored kernel's statistics to its
        capture point so post-restore deltas are directly comparable to
        a freshly warmed kernel's.
        """
        self._counters = dict(counters)

    def reset(self) -> None:
        self._counters.clear()

    # -- derived rates used by the Tables 1/2 harness -----------------------

    def hit_rate(self) -> float:
        """Fraction of lookups that never called the low-level FS."""
        lookups = self.get("lookup")
        if not lookups:
            return 1.0
        return 1.0 - min(1.0, self.get("fs_lookup") / lookups)

    def negative_rate(self) -> float:
        """Fraction of lookups answered by a negative dentry."""
        lookups = self.get("lookup")
        if not lookups:
            return 0.0
        return self.get("negative_hit") / lookups

    def fastpath_rate(self) -> float:
        """Fraction of lookups completing entirely on the fastpath."""
        lookups = self.get("lookup")
        if not lookups:
            return 0.0
        return self.get("fastpath_hit") / lookups

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items()))
        return f"Stats({inner})"
