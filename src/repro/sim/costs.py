"""Cost model: per-primitive virtual-nanosecond charges.

The algorithms in :mod:`repro.vfs` and :mod:`repro.core` are exact
implementations of the baseline and optimized dcache designs; whenever they
perform a hardware-priced primitive they call :meth:`CostModel.charge`.
The mapping from primitive to nanoseconds is the single calibration point
of the reproduction.

Two presets ship with the library:

* ``CALIBRATED`` — charges tuned so the *baseline* kernel matches the
  paper's §1/§6 reference numbers (a warm ``stat`` costs ~0.3 µs for one
  component and ~1.1 µs for eight; ``readdir`` of a 10 k directory costs
  ~2.9 ms; a non-adjacent disk block costs hundreds of microseconds).
  Everything the *optimized* kernel achieves is then emergent from doing
  fewer/cheaper primitives, exactly as in the paper.
* ``UNIT`` — every primitive costs 1 ns, so tests can assert raw
  operation counts (e.g. "the fastpath does a constant number of hash
  table probes regardless of path depth").

Attribution scopes (:meth:`CostModel.scope`) label charges with the current
phase of a lookup ("init", "perm_check", "hash", ...), which is how the
Figure 3 breakdown and Figure 1 time-fraction experiments are produced.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.sim.clock import Clock

#: Sentinel marking a recorded :meth:`CostModel.charge_ns` event; the
#: other event tuples carry a scope label (or ``None``) in that slot.
_RAW_NS = object()

#: Charges (virtual ns) calibrated against the paper's baseline numbers.
#: Per-byte entries are suffixed ``_per_byte``; everything else is per call.
CALIBRATED: Dict[str, float] = {
    # --- generic syscall machinery -------------------------------------
    "syscall_fixed": 130.0,        # entry/exit, arg copy, audit
    "stat_fill": 60.0,             # copying struct stat out
    "open_install_fd": 1150.0,     # file object alloc + fd table install
    "close_fd": 200.0,
    "read_write_base": 250.0,      # per read()/write() call overhead
    "read_write_base_per_byte": 0.02,
    # --- lookup: shared fixed costs ------------------------------------
    "lookup_init": 60.0,           # nameidata setup, fetching root/cwd
    "lookup_final": 46.0,          # mnt checks, final audit
    # --- baseline component-at-a-time walk ------------------------------
    "component_hash": 5.0,         # hash one component (fixed part)
    "component_hash_per_byte": 1.6,
    "ht_probe": 30.0,              # primary hash table bucket fetch
    "chain_compare": 12.0,         # compare one chain entry (parent+name)
    "perm_check_dac": 30.0,        # inode mode-bit check
    "perm_check_lsm": 18.0,        # LSM hook dispatch (when an LSM is set)
    "read_barrier": 8.0,           # RCU-walk memory barrier per component
    "dentry_lock": 55.0,           # ref-walk per-dentry lock (slow slowpath)
    "seqlock_read": 10.0,
    "symlink_resolve": 90.0,       # reading the link body, restarting walk
    "mountpoint_cross": 45.0,
    # --- optimized fastpath ----------------------------------------------
    "fastpath_init": 30.0,         # lighter setup than a full nameidata
    "sig_hash": 50.0,              # signature hashing: per-component part
    "sig_hash_per_byte": 4.0,      # multilinear hash per path byte
    "sig_hash_prf": 120.0,         # PRF (AES/BLAKE-class) per component
    "sig_hash_prf_per_byte": 6.0,  # §3.3: too slow to win at few comps
    "dlht_probe": 26.0,            # direct-lookup hash table bucket fetch
    "sig_compare": 8.0,            # 240-bit signature compare
    "pcc_probe": 16.0,             # per-cred prefix check cache lookup
    "pcc_insert": 26.0,
    "dlht_insert": 34.0,
    "mount_flag_check": 8.0,       # per-dentry mount pointer check
    "dotdot_extra_lookup": 170.0,  # extra fastpath lookup per ".." (§4.2)
    # --- mutation-side invalidation (the paper's deliberate trade-off) ---
    "inval_per_dentry": 32.0,      # recursive seq bump + DLHT eviction
    "inval_counter_bump": 20.0,    # global invalidation counter
    # --- lazy (epoch-based) invalidation: optimized-lazy profile only ---
    # One atomic increment of the global epoch plus one stamp store on
    # the mutated dentry: two cache lines, no tree walk.  Priced like
    # the eager counter bump plus one dirtied line.
    "epoch_bump": 28.0,
    # Touch-time revalidation, charged once per chain node examined: a
    # parent-pointer load plus an epoch compare (one likely-shared cache
    # line per hop, cheaper than a hashed dcache probe).  The O(1)
    # accept — one predicted-branch integer compare against the global
    # epoch, on a cache line the probe already loaded — is not charged.
    "lazy_validate": 12.0,
    "rename_fixed": 2500.0,        # rename_lock + dentry moves (baseline)
    "chmod_fixed": 300.0,          # setattr dcache work (baseline)
    # --- dcache maintenance ----------------------------------------------
    "dentry_alloc": 90.0,
    "dentry_free": 60.0,
    "negative_dentry_alloc": 70.0,
    "lru_touch": 6.0,
    # --- readdir ----------------------------------------------------------
    "readdir_fixed": 1400.0,       # getdents sequence fixed cost
    "fs_readdir_entry": 280.0,     # low-level FS: parse+translate one entry
    "cached_readdir_entry": 73.0,  # emit one entry from the dcache
    # --- low-level FS / disk ----------------------------------------------
    "fs_lookup_base": 500.0,       # calling into the low-level FS
    "fs_dirblock_scan": 160.0,     # scan one directory block for a name
    "fs_create": 9000.0,           # allocate inode + dir entry (in cache)
    "fs_unlink": 3200.0,
    "fs_setattr": 250.0,
    "fs_xattr": 420.0,             # read/write one extended attribute
    "fs_rename": 1200.0,
    "pagecache_hit": 180.0,        # metadata block already in buffer cache
    "disk_seq_block": 12_000.0,    # sequential 4 KB block transfer
    "disk_seek": 480_000.0,        # non-adjacent access penalty (7200 rpm)
    # --- pseudo file systems ----------------------------------------------
    "pseudo_generate": 350.0,      # synthesize a proc-like entry
}

#: Unit preset: every primitive costs exactly 1 ns (for counting tests).
UNIT: Dict[str, float] = {name: 1.0 for name in CALIBRATED}


class _ScopeGuard:
    """Reusable, allocation-free replacement for a contextmanager scope.

    One guard exists per (CostModel, label); entering pushes the label on
    the model's scope stack and exiting pops it, so nesting — including
    re-entering the same label — behaves exactly like the previous
    generator-based implementation at a fraction of the cost.
    """

    __slots__ = ("_stack", "_label")

    def __init__(self, stack: list, label: str):
        self._stack = stack
        self._label = label

    def __enter__(self) -> None:
        self._stack.append(self._label)

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stack.pop()


class PlanRecording:
    """Side-channel for a charge-plan capture run.

    Mirrors the shape the :class:`CostModel` recorder protocol expects
    (see :mod:`repro.core.resmemo`): ``events`` receives every
    ``charge``/``charge_in``/``charge_ns`` tuple, ``lru`` dcache-LRU
    touches, ``pcc`` PCC probe hits, ``deps`` fastpath probe/negativity
    conclusions, ``misses`` primary-table lookup misses.  A capture
    whose ``lru``/``pcc`` lists are non-empty touched resolution-side
    state and is rejected (charge plans cover only fd-table syscalls);
    ``deps``/``misses`` exist only to satisfy the recorder protocol.

    ``boundary``/``fired`` are stamped by the quantized-sweep wrapper in
    ``workloads/traces.py`` when a recorded replay pass crosses a
    lazy-sweep pass boundary: ``boundary`` is the event index where the
    boundary catch-up sweep's charges begin and ``fired`` whether the
    sweeper's deadline had elapsed there.  Whole-pass/whole-drain plan
    captures split their compiled replay at that index so apply can
    emulate the ticker exactly (see ``_program_plan_pass``).
    """

    __slots__ = ("events", "lru", "pcc", "deps", "misses", "boundary",
                 "fired")

    def __init__(self) -> None:
        self.events: list = []
        self.lru: list = []
        self.pcc: list = []
        self.deps: list = []
        self.misses: list = []
        self.boundary = None
        self.fired = None


class ChargePlan:
    """An immutable captured charge vector for one compiled-trace segment.

    ``fn`` is a :meth:`CostModel.compile_replay_fn` straight-line
    replayer for the segment's exact charge-event stream — applying it
    is bit-identical to re-running the interpreted charges.
    ``total_ns`` is the exact virtual time the plan advances (the
    left-to-right float fold of its event nanoseconds), used for the
    sweeper-deadline guard.  ``gen``/``rates_version`` snapshot the
    validity epoch the plan was captured under.

    ``capture`` retains the raw ``(events, stat_deltas)`` tuple the plan
    was compiled from, so task-generic segment plans can *confirm* a new
    task against it (the task's first encounter runs interpreted and
    recorded; an identical stream admits the task to the shared plan —
    see ``workloads/traces.py``).

    ``fn2``/``q_fired``/``body_ns`` exist only on quantized whole-pass /
    whole-drain plans (``DcacheConfig.lazy_sweep_quantize``): ``fn`` then
    replays the pass *body*, ``fn2`` the boundary catch-up sweep's
    charges (``None`` when the sweep charged nothing), ``q_fired``
    whether the sweeper deadline elapsed at the boundary, and
    ``body_ns`` the body's float-fold total for the boundary-decision
    guard.  Non-quantized plans carry ``q_fired is None`` and
    ``body_ns == total_ns``.
    """

    __slots__ = ("fn", "stat_deltas", "total_ns", "gen", "rates_version",
                 "capture", "fn2", "q_fired", "body_ns")


class PlanCell:
    """Per-segment capture state machine (see ``workloads/traces.py``).

    Lifecycle: ``execs`` warm executions run interpreted, then two
    recorded executions must produce identical event streams and Stats
    deltas before a :class:`ChargePlan` is compiled (the same
    confirm-on-second-identical-run protocol the resolution memo uses).
    ``retries`` counts rejected/mismatched captures; too many marks the
    cell ``dead`` (permanently interpreted).  ``fail_streak`` counts
    consecutive guard failures at apply time; too many invalidates the
    plan for re-capture.  ``armed_now`` is used by whole-pass program
    plans only: the exact clock value the kernel must be at for the plan
    to apply (any interleaving syscall moves the clock off it).

    ``tasks`` (task-generic segment cells, shared across every program
    with the same segment shape) maps ``id(task) -> task`` for tasks
    whose recorded execution matched the plan's capture — only confirmed
    tasks may apply the shared plan; the strong task refs pin the ids
    against reuse.
    """

    __slots__ = ("execs", "pending", "plan", "dead", "retries",
                 "fail_streak", "armed_now", "tasks")

    def __init__(self) -> None:
        self.execs = 0
        self.pending = None
        self.plan = None
        self.dead = False
        self.retries = 0
        self.fail_streak = 0
        self.armed_now = None
        self.tasks: Dict[int, object] = {}

    def reset(self) -> None:
        """Drop any captured state and restart the capture protocol."""
        self.execs = 0
        self.pending = None
        self.plan = None
        self.fail_streak = 0
        self.armed_now = None
        self.tasks = {}


class ChargePlanRegistry:
    """Per-:class:`CostModel` store of captured charge plans.

    The replay engine (:func:`repro.workloads.traces.replay_compiled`)
    owns the capture/apply protocol; this registry owns the state: one
    :class:`PlanCell` list per compiled program, a generation counter
    bumped by out-of-band bulk invalidations (``chmod``-class memo
    flushes, ``drop_caches``, seq wraparound — every live plan dies on
    a bump), and host-side telemetry surfaced by ``repro-speed
    --timing`` (``compiled``/``applied``/``invalidated``/``fallbacks``
    — like the resolution memo's counters these live outside
    :class:`~repro.sim.stats.Stats` so plans never perturb golden
    counters).

    Snapshots drop the registry: like the resolution memo, a clone
    starts empty and re-captures from its own executions, which is
    bit-identical by the plans-on/off differential invariant.
    """

    #: Interpreted executions of a segment before capture starts.
    WARMUP = 1
    #: Rejected/mismatched captures before a cell goes dead.
    MAX_RETRIES = 3
    #: Consecutive apply-time guard failures before re-capture.
    MAX_FAIL_STREAK = 8
    #: Whole-pass plans re-capture after this many consecutive clock
    #: guard failures (interference means unknown state: re-validate).
    PASS_FAIL_STREAK = 2

    __slots__ = ("gen", "compiled", "applied", "invalidated", "fallbacks",
                 "task_confirms", "patched", "_tables", "_pass_tables",
                 "_shape_tables", "_drain_tables")

    def __init__(self) -> None:
        self.gen = 0
        self.compiled = 0
        self.applied = 0
        self.invalidated = 0
        self.fallbacks = 0
        #: Tasks admitted to a shared task-generic plan after their
        #: recorded run matched the plan's capture.
        self.task_confirms = 0
        #: Plans rebuilt in place from a shape-local fresh capture
        #: (:meth:`patch`) instead of dying through invalidate+recapture.
        self.patched = 0
        #: id(program) -> (program, [PlanCell per segment]).  The
        #: strong program ref pins the id against reuse; the identity
        #: check in :meth:`cells` catches deepcopied tables.  Cell
        #: objects are resolved through ``_shape_tables`` so programs
        #: with equal segment shapes share them.
        self._tables: Dict[int, tuple] = {}
        #: (id(program), id(task)) -> (program, task, PlanCell) for
        #: whole-pass program plans; same pinning/identity discipline.
        self._pass_tables: Dict[tuple, tuple] = {}
        #: segment shape -> PlanCell: the task-generic cells.  A shape
        #: (per-row ``(op, compute_ns)``, see ``PlanSegment.shape``)
        #: fully determines a plannable segment's charge stream, so one
        #: captured plan serves every program/tenant with that shape
        #: (after per-task confirmation recorded in ``PlanCell.tasks``).
        self._shape_tables: Dict[tuple, "PlanCell"] = {}
        #: (seed, ((id(task), id(program)), ...)) -> (pins, PlanCell)
        #: for whole-drain interleaved plans; ``pins`` holds strong
        #: (task, program) refs against id reuse.
        self._drain_tables: Dict[tuple, tuple] = {}

    def bump_gen(self) -> None:
        """Invalidate every live plan (out-of-band world change)."""
        self.gen += 1

    def cells(self, program, segments) -> list:
        """The per-segment cell list for ``program`` (created lazily).

        Each entry is the *shared* task-generic cell for that segment's
        shape — two programs whose segments have equal shapes resolve to
        the same :class:`PlanCell` objects, which is what lets N tenants
        replaying the same program shape capture one plan between them.
        Segments without a shape (older duck-typed programs) fall back
        to a private cell.
        """
        key = id(program)
        entry = self._tables.get(key)
        if entry is not None and entry[0] is program:
            return entry[1]
        shape_tables = self._shape_tables
        cells: list = []
        for seg in segments:
            shape = getattr(seg, "shape", None)
            if shape:
                cell = shape_tables.get(shape)
                if cell is None:
                    cell = shape_tables[shape] = PlanCell()
            else:
                cell = PlanCell()
            cells.append(cell)
        self._tables[key] = (program, cells)
        return cells

    def drain_cell(self, streams, seed: int) -> "PlanCell":
        """The whole-drain plan cell for an interleaved stream set.

        Keyed by the scheduler seed and the exact ``(task, program)``
        identity sequence: the drain's charge stream is a deterministic
        function of those plus kernel state, which the armed-clock guard
        covers.
        """
        key = (seed, tuple((id(task), id(prog)) for task, prog in streams))
        entry = self._drain_tables.get(key)
        if entry is not None:
            pins, cell = entry
            if all(pin_t is task and pin_p is prog
                   for (pin_t, pin_p), (task, prog) in zip(pins, streams)):
                return cell
        cell = PlanCell()
        self._drain_tables[key] = (tuple((t, p) for t, p in streams), cell)
        return cell

    def pass_cell(self, program, task) -> "PlanCell":
        """The whole-pass plan cell for ``(program, task)`` (lazy)."""
        key = (id(program), id(task))
        entry = self._pass_tables.get(key)
        if entry is not None and entry[0] is program and entry[1] is task:
            return entry[2]
        cell = PlanCell()
        self._pass_tables[key] = (program, task, cell)
        return cell

    @staticmethod
    def shape_local(events, base) -> bool:
        """True when ``events`` differs from ``base`` only in charge vectors.

        Two clean captures are *shape-local* when they charge the same
        ``(scope, primitive)`` rows in the same order and differ only in
        the per-row numbers — ``times``/``nbytes`` for primitive charges,
        raw nanoseconds for app-compute rows.  That is the signature of a
        mutation moving a charge vector without restructuring the stream
        (a rename changing component byte counts, a compute knob turning)
        — the one mismatch class where rebuilding the plan from the fresh
        capture (:meth:`patch`) is cheaper than a full
        invalidate+recapture cycle and just as sound, because the replay
        function is recompiled from the new stream wholesale.
        """
        if len(events) != len(base):
            return False
        for e, b in zip(events, base):
            if e[0] is not b[0] and e[0] != b[0]:
                return False
            if e[1] != b[1]:
                return False
            # Raw-ns rows carry (sentinel, hint, ns, scope-at-charge):
            # the attribution scope is part of the shape, the ns is not.
            if e[0] is _RAW_NS and e[3] != b[3]:
                return False
        return True

    def patch(self, cell: "PlanCell", fn, total_ns: float, capture,
              rates_version: int, task) -> None:
        """Rebuild a segment cell's plan in place from a fresh capture.

        Delta-patch arm of the task-confirm protocol (see
        ``workloads/traces.py``): a clean, twice-seen, shape-local
        capture replaces the stored plan without tearing the cell down —
        no warmup restart, no ghost-recapture cycle.  Only ``task`` (the
        one whose recorded runs produced the capture) stays admitted;
        every other task must re-confirm against the new capture on its
        next encounter, exactly as if the plan had just compiled.
        """
        plan = ChargePlan()
        plan.fn = fn
        plan.stat_deltas = capture[1]
        plan.total_ns = total_ns
        plan.gen = self.gen
        plan.rates_version = rates_version
        plan.capture = capture
        plan.fn2 = None
        plan.q_fired = None
        plan.body_ns = total_ns
        cell.plan = plan
        cell.pending = None
        cell.fail_streak = 0
        cell.tasks = {id(task): task}
        self.patched += 1

    def telemetry(self) -> Dict[str, int]:
        return {"compiled": self.compiled, "applied": self.applied,
                "invalidated": self.invalidated,
                "fallbacks": self.fallbacks,
                "task_confirms": self.task_confirms,
                "patched": self.patched}

    def __deepcopy__(self, memo) -> "ChargePlanRegistry":
        """Snapshots drop captured plans: a clone starts empty.

        Plans are pure host-side wall-clock state (exactly like
        resolution-memo entries): an empty registry re-captures from
        the restored kernel's own executions with bit-identical virtual
        costs, so dropping is the provably faithful choice.
        """
        new = ChargePlanRegistry()
        memo[id(self)] = new
        return new


class CostModel:
    """Charges virtual time for primitives and attributes it to scopes.

    Args:
        charges: primitive-name -> nanoseconds table; defaults to a copy
            of :data:`CALIBRATED`.  The table is read once at
            construction (per-call and per-byte rates are precomputed);
            mutate it only via :meth:`recalibrate`.
        clock: the clock to advance; a private one is created if omitted.
    """

    __slots__ = ("charges", "clock", "_scope_stack", "by_scope",
                 "by_primitive", "counts", "_rates", "_guards", "recorder",
                 "rates_version", "plans")

    def __init__(self, charges: Optional[Dict[str, float]] = None,
                 clock: Optional[Clock] = None):
        self.charges = dict(CALIBRATED if charges is None else charges)
        self.clock = clock or Clock()
        self._scope_stack: list = []
        self.by_scope: Dict[str, float] = {}
        self.by_primitive: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self._guards: Dict[str, _ScopeGuard] = {}
        self._rates: Dict[str, Tuple[float, float]] = {}
        #: When non-None, every charge appends an event tuple to
        #: ``recorder.events`` (see :mod:`repro.core.resmemo`).
        self.recorder = None
        #: Bumped by every rate rebuild; event sequences compiled by
        #: :meth:`compile_events` are tagged with it so a
        #: :meth:`recalibrate` invalidates them.
        self.rates_version = 0
        #: Captured charge plans for compiled-trace segments (see
        #: :class:`ChargePlanRegistry` and ``workloads/traces.py``).
        self.plans = ChargePlanRegistry()
        self._rebuild_rates()

    def _rebuild_rates(self) -> None:
        """Precompute (per-call, per-byte) pairs for the charge fast path."""
        charges = self.charges
        self._rates = {
            name: (value, charges.get(name + "_per_byte", 0.0))
            for name, value in charges.items()
        }
        self.rates_version += 1

    def recalibrate(self, **changes: float) -> None:
        """Adjust charge rates after construction (tests, sweeps)."""
        self.charges.update(changes)
        self._rebuild_rates()

    # -- charging ---------------------------------------------------------

    def charge(self, primitive: str, times: int = 1, nbytes: int = 0) -> float:
        """Charge ``times`` occurrences of ``primitive`` (+ per-byte part).

        Returns the nanoseconds charged.  Unknown primitives are an error:
        they indicate a typo, not a free operation.
        """
        try:
            per_call, per_byte = self._rates[primitive]
        except KeyError:
            raise KeyError(f"unknown cost primitive: {primitive!r}") from None
        ns = per_call * times
        if nbytes:
            ns += per_byte * nbytes
        # Charge rates are nonnegative, so the clock's monotonicity check
        # is skipped on this fast path (Clock.advance validates for
        # everyone else; charge_ns still goes through it).
        clock = self.clock
        clock._now_ns = clock._now_ns + ns
        by_primitive = self.by_primitive
        counts = self.counts
        try:
            # counts-first: a counts key implies a by_primitive key (the
            # reverse is false — charge_ns seeds by_primitive alone), so
            # a KeyError here means neither dict was touched yet.
            counts[primitive] += times
            by_primitive[primitive] += ns
        except KeyError:
            counts[primitive] = counts.get(primitive, 0) + times
            by_primitive[primitive] = by_primitive.get(primitive, 0.0) + ns
        stack = self._scope_stack
        if stack:
            scope = stack[-1]
            by_scope = self.by_scope
            try:
                by_scope[scope] += ns
            except KeyError:
                by_scope[scope] = ns
        rec = self.recorder
        if rec is not None:
            rec.events.append(
                (stack[-1] if stack else None, primitive, times, nbytes))
        return ns

    def charge_in(self, scope: str, primitive: str, times: int = 1,
                  nbytes: int = 0) -> float:
        """Charge ``primitive`` attributed directly to ``scope``.

        Equivalent to ``with self.scope(scope): self.charge(...)`` for a
        single charge, without the stack push/pop — the hot-loop form.
        """
        try:
            per_call, per_byte = self._rates[primitive]
        except KeyError:
            raise KeyError(f"unknown cost primitive: {primitive!r}") from None
        ns = per_call * times
        if nbytes:
            ns += per_byte * nbytes
        clock = self.clock
        clock._now_ns = clock._now_ns + ns
        by_primitive = self.by_primitive
        counts = self.counts
        try:
            counts[primitive] += times
            by_primitive[primitive] += ns
        except KeyError:
            counts[primitive] = counts.get(primitive, 0) + times
            by_primitive[primitive] = by_primitive.get(primitive, 0.0) + ns
        by_scope = self.by_scope
        try:
            by_scope[scope] += ns
        except KeyError:
            by_scope[scope] = ns
        rec = self.recorder
        if rec is not None:
            rec.events.append((scope, primitive, times, nbytes))
        return ns

    def charge_many(self, primitives) -> None:
        """Charge a fixed sequence of single-count primitives.

        Exactly equivalent to calling :meth:`charge` once per primitive
        (same float additions in the same order, same recorder events,
        same scope attribution) with the per-call dispatch paid once —
        for hot sites that always charge the same short primitive run.
        """
        rates = self._rates
        clock = self.clock
        by_primitive = self.by_primitive
        counts = self.counts
        stack = self._scope_stack
        scope = stack[-1] if stack else None
        by_scope = self.by_scope
        rec = self.recorder
        for primitive in primitives:
            try:
                per_call, _per_byte = rates[primitive]
            except KeyError:
                raise KeyError(
                    f"unknown cost primitive: {primitive!r}") from None
            ns = per_call * 1
            clock._now_ns = clock._now_ns + ns
            try:
                counts[primitive] += 1
                by_primitive[primitive] += ns
            except KeyError:
                counts[primitive] = counts.get(primitive, 0) + 1
                by_primitive[primitive] = by_primitive.get(primitive,
                                                           0.0) + ns
            if scope is not None:
                try:
                    by_scope[scope] += ns
                except KeyError:
                    by_scope[scope] = ns
            if rec is not None:
                rec.events.append((scope, primitive, 1, 0))

    def charge_in_many(self, scope: str, primitives) -> None:
        """:meth:`charge_in` over a fixed primitive sequence, one call.

        Bit-identical to per-primitive ``charge_in(scope, p)`` calls in
        the same order.
        """
        rates = self._rates
        clock = self.clock
        by_primitive = self.by_primitive
        counts = self.counts
        by_scope = self.by_scope
        rec = self.recorder
        for primitive in primitives:
            try:
                per_call, _per_byte = rates[primitive]
            except KeyError:
                raise KeyError(
                    f"unknown cost primitive: {primitive!r}") from None
            ns = per_call * 1
            clock._now_ns = clock._now_ns + ns
            try:
                counts[primitive] += 1
                by_primitive[primitive] += ns
            except KeyError:
                counts[primitive] = counts.get(primitive, 0) + 1
                by_primitive[primitive] = by_primitive.get(primitive,
                                                           0.0) + ns
            try:
                by_scope[scope] += ns
            except KeyError:
                by_scope[scope] = ns
            if rec is not None:
                rec.events.append((scope, primitive, 1, 0))

    def charge_ns(self, scope_hint: str, ns: float) -> None:
        """Charge raw nanoseconds (used for app 'compute' phases)."""
        self.clock.advance(ns)
        self.by_primitive[scope_hint] = self.by_primitive.get(scope_hint, 0.0) + ns
        stack = self._scope_stack
        if stack:
            scope = stack[-1]
            self.by_scope[scope] = self.by_scope.get(scope, 0.0) + ns
        rec = self.recorder
        if rec is not None:
            rec.events.append(
                (_RAW_NS, scope_hint, ns, stack[-1] if stack else None))

    def replay_events(self, events) -> None:
        """Re-apply a recorded event sequence (see :mod:`repro.core.resmemo`).

        Nanoseconds are re-derived from the *current* rate table using the
        exact floating-point operation order of :meth:`charge` /
        :meth:`charge_in`, so replaying is bit-identical to re-running the
        original charges — including after a :meth:`recalibrate`.
        """
        rates = self._rates
        clock = self.clock
        by_primitive = self.by_primitive
        by_scope = self.by_scope
        counts = self.counts
        for scope, primitive, times, nbytes in events:
            if scope is _RAW_NS:
                # (sentinel, scope_hint, ns, scope at charge time)
                ns = times
                clock.advance(ns)
                by_primitive[primitive] = by_primitive.get(primitive, 0.0) + ns
                if nbytes is not None:
                    by_scope[nbytes] = by_scope.get(nbytes, 0.0) + ns
                continue
            per_call, per_byte = rates[primitive]
            ns = per_call * times
            if nbytes:
                ns += per_byte * nbytes
            clock._now_ns = clock._now_ns + ns
            try:
                counts[primitive] += times
                by_primitive[primitive] += ns
            except KeyError:
                counts[primitive] = counts.get(primitive, 0) + times
                by_primitive[primitive] = by_primitive.get(primitive, 0.0) + ns
            if scope is not None:
                try:
                    by_scope[scope] += ns
                except KeyError:
                    by_scope[scope] = ns

    def compile_events(self, events) -> tuple:
        """Pre-derive an event sequence against the current rate table.

        Returns ``(rates_version, rows, count_deltas)``.  Each row is
        ``(scope, primitive, times, ns)`` with ``ns`` the exact float
        :meth:`charge` would compute (``per_call * times`` then
        ``+ per_byte * nbytes``), so :meth:`replay_compiled` can skip
        the rate lookup and multiplications per event while keeping the
        identical floating-point accumulation order.  Raw
        :meth:`charge_ns` events are marked with ``times is None``.
        ``count_deltas`` aggregates the integer ``counts`` updates —
        integer addition is associative, so folding them per primitive
        is exact (the float ``by_primitive``/``by_scope``/clock updates
        are not, and stay per-event).
        """
        rates = self._rates
        rows = []
        count_deltas: Dict[str, int] = {}
        for scope, primitive, times, nbytes in events:
            if scope is _RAW_NS:
                # (sentinel, scope_hint, ns, scope at charge time)
                rows.append((nbytes, primitive, None, times))
                continue
            per_call, per_byte = rates[primitive]
            ns = per_call * times
            if nbytes:
                ns += per_byte * nbytes
            rows.append((scope, primitive, times, ns))
            count_deltas[primitive] = count_deltas.get(primitive, 0) + times
        return (self.rates_version, tuple(rows), tuple(count_deltas.items()))

    def replay_compiled(self, rows, count_deltas) -> None:
        """Re-apply a :meth:`compile_events` sequence (hot replay path).

        Bit-identical to :meth:`replay_events` on the same events: the
        clock and the float attribution dicts receive the same additions
        in the same order (the clock value is carried in a local between
        events — pure hoisting), and the integer counters receive the
        same totals.
        """
        clock = self.clock
        by_primitive = self.by_primitive
        by_scope = self.by_scope
        now = clock._now_ns
        for scope, primitive, times, ns in rows:
            if times is None:
                # Raw charge_ns event: scope holds the scope at charge
                # time, primitive the scope hint.  Route through the
                # clock's monotonicity check like the original did.
                clock._now_ns = now
                clock.advance(ns)
                now = clock._now_ns
                by_primitive[primitive] = by_primitive.get(primitive, 0.0) + ns
                if scope is not None:
                    by_scope[scope] = by_scope.get(scope, 0.0) + ns
                continue
            now = now + ns
            try:
                by_primitive[primitive] += ns
            except KeyError:
                by_primitive[primitive] = by_primitive.get(primitive, 0.0) + ns
            if scope is not None:
                try:
                    by_scope[scope] += ns
                except KeyError:
                    by_scope[scope] = ns
        clock._now_ns = now
        counts = self.counts
        for primitive, times in count_deltas:
            try:
                counts[primitive] += times
            except KeyError:
                counts[primitive] = times

    @staticmethod
    def compile_replay_fn(rows, count_deltas, extra_deltas=()):
        """exec-compile a replay sequence into a straight-line function.

        Returns ``fn(clock, by_primitive, by_scope, counts, extra)``
        applying exactly what :meth:`replay_compiled` would: same
        statements, same order, same floats — but with every row's
        constants baked into generated bytecode (``repr`` of a float
        round-trips exactly), so a hot memo entry replayed thousands of
        times pays no per-row tuple unpacking or loop dispatch.

        ``extra_deltas`` is a second integer-delta section applied to the
        ``extra`` dict argument (the resolution memo passes its stats
        counters there); pass ``()`` and ``None`` when unused.
        """
        src = ["def _replay_fn(clock, bp, bs, counts, extra):",
               " now = clock._now_ns"]
        app = src.append
        for scope, primitive, times, ns in rows:
            r = repr(ns)
            if times is None:
                # Raw charge_ns event: route through the clock's
                # monotonicity check like the original charge did.
                app(" clock._now_ns = now")
                app(f" clock.advance({r})")
                app(" now = clock._now_ns")
                app(f" bp[{primitive!r}] = bp.get({primitive!r}, 0.0) + {r}")
                if scope is not None:
                    app(f" bs[{scope!r}] = bs.get({scope!r}, 0.0) + {r}")
                continue
            app(f" now = now + {r}")
            # 0.0 + ns == ns exactly for the nonnegative charges the
            # model produces, so the miss arm may store the constant.
            app(f" try: bp[{primitive!r}] += {r}")
            app(f" except KeyError: bp[{primitive!r}] = {r}")
            if scope is not None:
                app(f" try: bs[{scope!r}] += {r}")
                app(f" except KeyError: bs[{scope!r}] = {r}")
        app(" clock._now_ns = now")
        for primitive, times in count_deltas:
            app(f" try: counts[{primitive!r}] += {times}")
            app(f" except KeyError: counts[{primitive!r}] = {times}")
        for name, delta in extra_deltas:
            app(f" try: extra[{name!r}] += {delta}")
            app(f" except KeyError: extra[{name!r}] = {delta}")
        namespace: Dict[str, object] = {}
        exec("\n".join(src), namespace)  # noqa: S102 - self-generated code
        return namespace["_replay_fn"]

    # -- attribution --------------------------------------------------------

    def scope(self, label: str) -> _ScopeGuard:
        """Attribute charges inside the ``with`` block to ``label``.

        Scopes do not nest additively: the innermost label wins, matching
        how a profiler attributes exclusive time.
        """
        guard = self._guards.get(label)
        if guard is None:
            guard = _ScopeGuard(self._scope_stack, label)
            self._guards[label] = guard
        return guard

    def reset_attribution(self) -> None:
        """Clear scope/primitive attribution without touching the clock."""
        self.by_scope.clear()
        self.by_primitive.clear()
        self.counts.clear()

    # -- reading ------------------------------------------------------------

    @property
    def now_ns(self) -> int:
        return self.clock.now_ns

    def scope_ns(self, label: str) -> float:
        return self.by_scope.get(label, 0.0)

    def count(self, primitive: str) -> int:
        return self.counts.get(primitive, 0)
