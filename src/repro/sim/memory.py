"""Memory accounting for the directory caches (§6.1 "Space Overhead").

The paper reports the optimized design's space costs: the dentry grows
from 192 to 280 bytes (the 88-byte ``fast_dentry`` of Figure 5), each
credential carries a 64 KB PCC, and the DLHT adds a second, 2^16-bucket
hash table.  This module prices a kernel's cache state with the paper's
structure sizes so benchmarks can report the same overhead numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Structure sizes from the paper (x86-64 Linux 3.14).
BASE_DENTRY_BYTES = 192
FAST_DENTRY_BYTES = 88          # Figure 5's struct fast_dentry
PCC_ENTRY_BYTES = 16            # sPTR dnt + INT seq + LRU
DLHT_BUCKET_BYTES = 8           # one list head pointer per bucket
DLHT_BUCKETS = 1 << 16
PRIMARY_BUCKETS = 262_144       # Linux's default (§6.5)
PRIMARY_BUCKET_BYTES = 8
INODE_BYTES = 592               # struct inode, for context
#: Lazy coherence only: a non-primary (old-path) DLHT registration needs
#: its own chain node — hlist link (16) + stored signature (32 for 240
#: bits, rounded) + dentry back pointer (8).
DLHT_EXTRA_KEY_BYTES = 56
#: Host-side resolution memo (repro.core.resmemo): per-entry key tuple,
#: validity snapshot, touch lists, and LRU links.
RESMEMO_ENTRY_BYTES = 96
#: One recorded charge event: a 4-tuple of small objects.
RESMEMO_EVENT_BYTES = 16


@dataclass(frozen=True)
class MemoryReport:
    """Simulated bytes used by one kernel's directory caches."""

    dentries: int
    dentry_bytes: int
    fast_dentry_bytes: int
    pcc_count: int
    pcc_bytes: int
    dlht_count: int
    dlht_table_bytes: int
    primary_table_bytes: int
    #: Non-primary registrations (lazy multi-key mode); zero for eager.
    dlht_extra_keys: int = 0
    dlht_extra_key_bytes: int = 0
    #: Resolution memo (host-side wall-clock cache, repro.core.resmemo).
    #: Reported for visibility but *excluded* from ``total_bytes``: the
    #: memo is simulator machinery, not part of the paper's §6.1 kernel
    #: cache state — virtual behaviour is identical with it off.
    resmemo_entries: int = 0
    resmemo_bytes: int = 0
    #: Host-side struct-of-arrays dentry store (repro.core.arena): slot
    #: capacity (live + free-list), live handles, and the *measured*
    #: byte footprint off ``array.buffer_info()`` — real simulator
    #: memory, not a paper-model estimate, so also excluded from
    #: ``total_bytes``.
    arena_slots: int = 0
    arena_live: int = 0
    arena_bytes: int = 0

    @property
    def baseline_equivalent_bytes(self) -> int:
        """What the same cache would cost the unmodified kernel."""
        return (self.dentries * BASE_DENTRY_BYTES
                + self.primary_table_bytes)

    @property
    def total_bytes(self) -> int:
        return (self.dentry_bytes + self.fast_dentry_bytes
                + self.pcc_bytes + self.dlht_table_bytes
                + self.dlht_extra_key_bytes + self.primary_table_bytes)

    @property
    def overhead_fraction(self) -> float:
        """Fractional growth over the baseline-equivalent footprint."""
        base = self.baseline_equivalent_bytes
        if base == 0:
            return 0.0
        return self.total_bytes / base - 1.0

    @property
    def bytes_per_dentry(self) -> float:
        if self.dentries == 0:
            return 0.0
        return (self.dentry_bytes + self.fast_dentry_bytes) / self.dentries


def measure_kernel(kernel) -> MemoryReport:
    """Price the current cache state of ``kernel``."""
    dentries = len(kernel.dcache)
    fast_count = 0
    for root in kernel.dcache._roots.values():
        if root.fast is not None:
            fast_count += 1
        for dentry in root.descendants():
            if dentry.fast is not None:
                fast_count += 1
    pccs = kernel.coherence.pccs
    pcc_bytes = sum(pcc.capacity * PCC_ENTRY_BYTES for pcc in pccs)
    dlhts = kernel.coherence.dlhts
    extra_keys = sum(dlht.extra_key_count for dlht in dlhts)
    memo = kernel.memo
    resmemo_entries = len(memo) if memo is not None else 0
    resmemo_bytes = 0
    if memo is not None:
        resmemo_bytes = (resmemo_entries * RESMEMO_ENTRY_BYTES
                         + memo.event_count() * RESMEMO_EVENT_BYTES)
    arena = kernel.dcache.arena
    return MemoryReport(
        dentries=dentries,
        dentry_bytes=dentries * BASE_DENTRY_BYTES,
        fast_dentry_bytes=fast_count * FAST_DENTRY_BYTES,
        pcc_count=len(pccs),
        pcc_bytes=pcc_bytes,
        dlht_count=len(dlhts),
        dlht_table_bytes=len(dlhts) * DLHT_BUCKETS * DLHT_BUCKET_BYTES,
        primary_table_bytes=PRIMARY_BUCKETS * PRIMARY_BUCKET_BYTES,
        dlht_extra_keys=extra_keys,
        dlht_extra_key_bytes=extra_keys * DLHT_EXTRA_KEY_BYTES,
        resmemo_entries=resmemo_entries,
        resmemo_bytes=resmemo_bytes,
        arena_slots=len(arena),
        arena_live=arena.live,
        arena_bytes=arena.footprint_bytes(),
    )
