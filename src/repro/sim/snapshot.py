"""Warm-kernel snapshots: capture a fully warmed kernel, restore per rep.

Benchmark loops want to measure the *hot path* — a warm stat, a rename
over a warm subtree — not the cost of rebuilding and re-warming the
kernel's tree before every repetition.  A :class:`KernelSnapshot`
captures a :class:`~repro.core.kernel.Kernel` (dcache, DLHT, PCC,
coherence registries, virtual clock and stats) together with any extra
objects the benchmark holds (typically the warm :class:`~repro.vfs.task.Task`),
and hands back an independent, fully consistent copy on every
:meth:`~KernelSnapshot.restore` call.  Mutations made through one
restored copy never leak into the next.

Fidelity is the whole point: a restored kernel must charge *bit-identical*
virtual costs to a freshly warmed one (``tests/test_snapshot_fidelity``
pins this for all three profiles).  Two things make that non-trivial on
top of a plain ``copy.deepcopy``:

* **Identity-keyed tables.**  The dcache primary hash (``(id(parent),
  name)`` keys), the LRU, the per-superblock root/inode tables, each
  credential's PCC (``id(dentry)`` keys), the coherence mount registry,
  and each namespace's mount table all key on CPython object identity.
  A deepcopy produces new objects with new ids, so every such table is
  rebuilt here against the copies, using the deepcopy memo (which maps
  ``id(original) -> copy``) for keys whose referent is not recoverable
  from the value alone.
* **Weak references.**  ``copy.deepcopy`` treats ``weakref.ref`` as
  atomic, so a copied kernel's coherence registry would keep pointing at
  the *original* PCCs and DLHTs.  Every weakref site is re-targeted at
  the corresponding copy (and dropped if its referent was never reached
  — exactly the state a dead weakref models).

The capture itself is one clone (detaching the snapshot from the live
kernel), and each restore is another, so a snapshot can be restored any
number of times.

The resolution memo (:mod:`repro.core.resmemo`) needs no fixup here: it
is *dropped* on clone.  ``ResolutionMemo.__deepcopy__`` returns a fresh
empty memo wired to the copied kernel, because memo entries are keyed
and validated by CPython object identity and — unlike the tables above —
are pure host-side wall-clock state: an empty memo re-records from the
restored kernel's own executions with bit-identical virtual costs, so
dropping is both the simplest and the provably faithful choice (pinned
by the snapshot-fidelity cases in ``tests/test_resolution_memo.py``).

Captured charge plans (:class:`repro.sim.costs.ChargePlanRegistry`) are
dropped on clone for the same reason: a plan's guards reference live
objects (fds, inodes, the exact clock float) by identity, and plans are
pure wall-clock state — the restored kernel re-warms and re-captures
its own plans with bit-identical virtual costs (pinned by
``tests/test_charge_plans.py``).
"""

from __future__ import annotations

import copy
import weakref
from collections import OrderedDict
from typing import Any, Tuple


class SnapshotError(RuntimeError):
    """A kernel structure could not be remapped consistently."""


def _remap_id(memo: dict, old_id: int, what: str) -> int:
    """New ``id()`` of the copy of the object whose original id was ``old_id``."""
    obj = memo.get(old_id)
    if obj is None:
        raise SnapshotError(
            f"{what}: id {old_id:#x} has no copied counterpart — the "
            f"referenced object was not reachable from the snapshot roots")
    return id(obj)


def _remap_weakrefs(refs: list, memo: dict) -> list:
    """Re-target a list of weakrefs at the copied objects.

    Refs whose referent is dead, or was never reached by the copy, are
    dropped — in the copied universe nothing else holds them, which is
    precisely the state a dead weakref represents.
    """
    out = []
    for ref in refs:
        obj = ref()
        if obj is None:
            continue
        copied = memo.get(id(obj))
        if copied is not None:
            out.append(weakref.ref(copied))
    return out


def _fixup_dcache(dcache, memo: dict) -> None:
    # Primary hash: (id(parent), name) -> dentry.  Every value knows its
    # current parent and name (d_move keeps them in sync), so the table
    # is rebuilt from the copied values directly.
    dcache._hash = {(id(d.parent), d.name): d for d in dcache._hash.values()}
    # LRU: id(dentry) -> dentry, order-preserving.
    dcache._lru = OrderedDict((id(d), d) for d in dcache._lru.values())
    # Superblock tables key on id(fs); the fs objects are reachable from
    # the mounts, so the memo has their copies.
    dcache._roots = {_remap_id(memo, fs_id, "dcache root fs"): root
                     for fs_id, root in dcache._roots.items()}
    dcache._inode_tables = {
        _remap_id(memo, fs_id, "dcache inode-table fs"): table
        for fs_id, table in dcache._inode_tables.items()}


def _fixup_coherence(coherence, memo: dict) -> None:
    coherence._pcc_refs = _remap_weakrefs(coherence._pcc_refs, memo)
    coherence._dlht_refs = _remap_weakrefs(coherence._dlht_refs, memo)
    # Mount registry: id(mountpoint dentry) -> [mounted roots].
    # Mountpoints are pinned dentries inside the copied tree.
    coherence._mounts_on = {
        _remap_id(memo, dentry_id, "coherence mountpoint"): roots
        for dentry_id, roots in coherence._mounts_on.items()}


def _fixup_pcc(pcc) -> None:
    # PCC entries key on id(dentry) and store the dentry in the value.
    pcc._entries = OrderedDict((id(entry[0]), entry)
                               for entry in pcc._entries.values())


def _fixup_namespace(ns, memo: dict) -> None:
    # Mount table: (parent mount id, id(mountpoint dentry)) -> Mount.
    # Mount ids are plain integers (stable across the copy); only the
    # dentry identity needs remapping.
    ns._mount_at = {
        (mount_id, _remap_id(memo, dentry_id, "namespace mountpoint")): m
        for (mount_id, dentry_id), m in ns._mount_at.items()}


def _fixup_dlht(dlht, memo: dict) -> None:
    # DLHT keys are signature tuples (no identity), but the owner
    # namespace is held weakly and must point at the copied namespace.
    ref = dlht.owner_ns
    if ref is None:
        return
    ns = ref()
    if ns is None:
        dlht.owner_ns = None
        return
    copied = memo.get(id(ns))
    dlht.owner_ns = weakref.ref(copied) if copied is not None else None


def _fixup_sweeper(sweeper, memo: dict) -> None:
    # In-flight sweep batches hold (weakref to cache, pending keys).
    # DLHT keys are signature tuples; PCC keys are id(dentry) ints —
    # remap the ids that survived the copy and keep the rest verbatim
    # (they already miss in the original, and the rebuilt PCC tables
    # make them miss in the copy too, so the charged sweep cost — one
    # ``lazy_validate`` per examined key — is unchanged).
    def remap_soft(old_id):
        obj = memo.get(old_id)
        return id(obj) if obj is not None else old_id

    remapped_dlht = []
    for old_ref, keys in sweeper._dlht_work:
        refs = _remap_weakrefs([old_ref], memo)
        if refs:
            remapped_dlht.append((refs[0], list(keys)))
    sweeper._dlht_work = remapped_dlht
    remapped_pcc = []
    for old_ref, ids in sweeper._pcc_work:
        refs = _remap_weakrefs([old_ref], memo)
        if refs:
            remapped_pcc.append((refs[0], [remap_soft(i) for i in ids]))
    sweeper._pcc_work = remapped_pcc


def _iter_pccs(kernel):
    """Every copied PCC: the coherence registry is the canonical index."""
    seen = set()
    for ref in kernel.coherence._pcc_refs:
        pcc = ref()
        if pcc is not None and id(pcc) not in seen:
            seen.add(id(pcc))
            yield pcc


def clone_kernel(kernel, *extras: Any) -> Tuple[Any, ...]:
    """Deep-copy ``kernel`` (plus ``extras``) into a consistent new universe.

    Returns ``(kernel_copy, *extras_copies)``.  Extras share the copy
    memo, so a :class:`~repro.vfs.task.Task` passed here comes back
    wired to the copied kernel's mounts, dentries, and credentials.
    """
    memo: dict = {}
    copied_kernel = copy.deepcopy(kernel, memo)
    copied_extras = tuple(copy.deepcopy(extra, memo) for extra in extras)

    _fixup_dcache(copied_kernel.dcache, memo)
    _fixup_coherence(copied_kernel.coherence, memo)
    for pcc in _iter_pccs(copied_kernel):
        _fixup_pcc(pcc)
    for ref in copied_kernel.coherence._dlht_refs:
        dlht = ref()
        if dlht is not None:
            _fixup_dlht(dlht, memo)
    # Namespaces: the root one, plus any reachable through copied tasks.
    namespaces = [copied_kernel.root_ns]
    for extra in copied_extras:
        ns = getattr(extra, "ns", None)
        if ns is not None and all(ns is not seen for seen in namespaces):
            namespaces.append(ns)
    for ns in namespaces:
        _fixup_namespace(ns, memo)
    if copied_kernel.sweeper is not None:
        _fixup_sweeper(copied_kernel.sweeper, memo)
    return (copied_kernel,) + copied_extras


class KernelSnapshot:
    """A frozen, restorable image of a warm kernel (plus extras).

    Usage::

        snap = KernelSnapshot(kernel, task)     # capture once
        for _ in range(reps):
            k, t = snap.restore()               # fresh copy per rep
            ...                                 # mutate freely

    The constructor clones the live kernel, so later mutations of the
    original do not leak into the snapshot; each :meth:`restore` clones
    the frozen image, so restored copies are independent of each other.
    """

    __slots__ = ("_frozen",)

    def __init__(self, kernel, *extras: Any):
        self._frozen = clone_kernel(kernel, *extras)
        # Capture-time trim: every restore re-copies the frozen image's
        # arena columns wholesale, so retired trailing slots would be
        # memcpy'd on every restore for nothing.  Compacting the frozen
        # copy (never the live kernel) is always pin-safe — only free
        # slots are trimmed, and a slot is freed strictly after its
        # dentry view materialized the scalars it still needs
        # (:meth:`repro.core.arena.DentryArena.retire`).  Interior
        # handles are untouched, so live dentries are unaffected.
        self._frozen[0].dcache.arena.compact()

    def restore(self) -> Tuple[Any, ...]:
        """A fresh ``(kernel, *extras)`` copy of the captured state."""
        return clone_kernel(self._frozen[0], *self._frozen[1:])

    @property
    def kernel(self):
        """Read-only view of the frozen kernel (do not mutate)."""
        return self._frozen[0]
