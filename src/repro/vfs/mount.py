"""Mounts: vfsmount analogs, mount flags, bind mounts, crossing logic.

A resolution position in the VFS is a ``(mount, dentry)`` pair
(:class:`PathPos`), exactly like Linux's ``struct path`` — the same dentry
can be visible through several mounts (bind mounts, multiply-mounted
pseudo file systems), which is what makes the paper's mount-alias handling
(§4.3) non-trivial.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, NamedTuple, Optional

from repro.fs.base import FileSystem
from repro.vfs.dentry import Dentry

#: Supported mount flags.
MNT_RDONLY = "ro"
MNT_NOSUID = "nosuid"
MNT_NOEXEC = "noexec"

_mount_ids = itertools.count(1)


class Mount:
    """One mounted instance of a file system.

    Attributes:
        fs: the low-level file system (shared between bind mounts).
        root_dentry: dentry of this mount's root directory.  For a bind
            mount this is an interior dentry of the bound superblock.
        parent: enclosing mount, or ``None`` for a namespace root.
        mountpoint: dentry in ``parent`` this mount covers.
        flags: frozenset of MNT_* strings.
    """

    __slots__ = ("id", "fs", "root_dentry", "parent", "mountpoint", "flags")

    def __init__(self, fs: FileSystem, root_dentry: Dentry,
                 parent: Optional["Mount"] = None,
                 mountpoint: Optional[Dentry] = None,
                 flags: FrozenSet[str] = frozenset()):
        self.id = next(_mount_ids)
        self.fs = fs
        self.root_dentry = root_dentry
        self.parent = parent
        self.mountpoint = mountpoint
        self.flags = frozenset(flags)

    @property
    def readonly(self) -> bool:
        return MNT_RDONLY in self.flags

    def __repr__(self) -> str:
        at = self.mountpoint.path_from_root() if self.mountpoint else "/"
        return f"Mount(#{self.id} {self.fs.fstype} at {at!r})"


class PathPos(NamedTuple):
    """A (mount, dentry) resolution position."""

    mount: Mount
    dentry: Dentry

    def same_place(self, other: "PathPos") -> bool:
        return self.mount is other.mount and self.dentry is other.dentry
