"""VFS inodes: the in-memory, FS-independent view of a file.

An :class:`Inode` caches the metadata of one low-level file system object
(``NodeInfo``) and is shared by all hard links to it.  Each superblock
(one mounted :class:`~repro.fs.base.FileSystem` instance) owns an
:class:`InodeTable` so a given ``(fs, ino)`` maps to exactly one live
inode object, which is what makes alias lists and hard-link ``nlink``
accounting coherent.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.fs.base import (DT_DIR, DT_LNK, FileSystem, NodeInfo,
                           mode_filetype)


class Inode:
    """In-memory inode for one (fs, ino) pair."""

    __slots__ = ("fs", "ino", "mode", "uid", "gid", "nlink", "size",
                 "symlink_target", "security", "seq", "mtime_ns",
                 "filetype", "is_dir", "is_symlink")

    def __init__(self, fs: FileSystem, info: NodeInfo):
        self.fs = fs
        self.ino = info.ino
        self.mode = info.mode
        self.uid = info.uid
        self.gid = info.gid
        self.nlink = info.nlink
        self.size = info.size
        self.symlink_target = info.symlink_target
        self.mtime_ns = info.mtime_ns
        #: Opaque LSM label (e.g. an SELinux-like type string).
        self.security: Optional[str] = None
        #: Bumped on any permission-relevant change; read by tests.
        self.seq = 0
        self._refresh_type()

    def _refresh_type(self) -> None:
        # ``mode`` changes only through __init__/apply, so the derived
        # type predicates are cached attributes, not per-access
        # recomputation (is_dir runs several times per walked component).
        self.filetype = mode_filetype(self.mode)
        self.is_dir = self.filetype == DT_DIR
        self.is_symlink = self.filetype == DT_LNK

    @property
    def perm_bits(self) -> int:
        return self.mode & 0o7777

    # -- refresh ----------------------------------------------------------------

    def apply(self, info: NodeInfo) -> None:
        """Refresh cached metadata from the low-level FS."""
        self.mode = info.mode
        self.uid = info.uid
        self.gid = info.gid
        self.nlink = info.nlink
        self.size = info.size
        self.symlink_target = info.symlink_target
        self.mtime_ns = info.mtime_ns
        self.seq += 1
        self._refresh_type()

    def __repr__(self) -> str:
        return (f"Inode({self.fs.fstype}:{self.ino} {self.filetype} "
                f"mode={oct(self.mode)})")


class InodeTable:
    """Identity map from inode number to live :class:`Inode` per FS."""

    def __init__(self, fs: FileSystem):
        self.fs = fs
        self._inodes: Dict[int, Inode] = {}

    def obtain(self, info: NodeInfo) -> Inode:
        """Return the unique inode for ``info.ino``, creating/refreshing it."""
        inode = self._inodes.get(info.ino)
        if inode is None:
            inode = Inode(self.fs, info)
            self._inodes[info.ino] = inode
        else:
            # Keep the cached view coherent with what the FS just returned,
            # without bumping seq (no permission change happened).
            inode.nlink = info.nlink
            inode.size = info.size
            inode.mtime_ns = info.mtime_ns
        return inode

    def get(self, ino: int) -> Optional[Inode]:
        return self._inodes.get(ino)

    def forget(self, ino: int) -> None:
        self._inodes.pop(ino, None)

    def __len__(self) -> int:
        return len(self._inodes)
