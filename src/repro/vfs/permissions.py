"""POSIX discretionary access control (mode-bit) checks.

These implement the default Unix semantics the paper's prefix check
enforces: search (execute) permission on every directory from the
process's root/cwd to the target (§2.1).  LSMs stack on top via
:mod:`repro.vfs.lsm`.
"""

from __future__ import annotations

from repro.vfs.cred import Cred
from repro.vfs.inode import Inode

MAY_EXEC = 1
MAY_WRITE = 2
MAY_READ = 4


def dac_permission(cred: Cred, inode: Inode, mask: int) -> bool:
    """Default mode-bit check, mirroring Linux ``generic_permission``."""
    mode = inode.perm_bits
    if cred.is_root:
        # Root bypasses read/write checks everywhere, and search checks on
        # directories; executing a regular file still needs some x bit.
        if mask & MAY_EXEC and not inode.is_dir:
            return bool(mode & 0o111)
        return True
    if cred.uid == inode.uid:
        shift = 6
    elif cred.in_group(inode.gid):
        shift = 3
    else:
        shift = 0
    granted = (mode >> shift) & 0o7
    want = 0
    if mask & MAY_READ:
        want |= 0o4
    if mask & MAY_WRITE:
        want |= 0o2
    if mask & MAY_EXEC:
        want |= 0o1
    return (granted & want) == want


def may_search(cred: Cred, inode: Inode) -> bool:
    """Search permission on a directory (the prefix-check primitive)."""
    return dac_permission(cred, inode, MAY_EXEC)


def owner_or_root(cred: Cred, inode: Inode) -> bool:
    """chmod/utimes-style ownership requirement."""
    return cred.is_root or cred.uid == inode.uid


def sticky_delete_allowed(cred: Cred, dir_inode: Inode,
                          victim: Inode) -> bool:
    """Sticky-bit (e.g. /tmp) deletion rule."""
    if not dir_inode.perm_bits & 0o1000:
        return True
    return cred.is_root or cred.uid in (victim.uid, dir_inode.uid)
