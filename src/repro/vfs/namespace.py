"""Mount namespaces (§4.3).

Each namespace owns a private mount table: a mapping from
``(parent mount, mountpoint dentry)`` to the mount stacked there.  Cloning
a namespace (``unshare``) copies the mount tree into fresh ``Mount``
objects over the same superblocks, so the same dentries become visible
under possibly different paths — the situation that forces the optimized
kernel to give every namespace its own direct lookup hash table.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro import errors
from repro.vfs.dentry import Dentry
from repro.vfs.mount import Mount, PathPos

_ns_ids = itertools.count(1)


class MountNamespace:
    """A private view of the mount tree."""

    def __init__(self, root_mount: Mount):
        self.id = next(_ns_ids)
        self.root_mount = root_mount
        self._mount_at: Dict[Tuple[int, int], Mount] = {}
        self.mounts: List[Mount] = [root_mount]
        #: Namespace-private direct lookup hash table; installed by the
        #: optimized kernel (None on the baseline kernel).
        self.dlht = None
        #: Set by :meth:`clone`: old mount id -> new Mount.
        self.clone_map = {}

    # -- mount table ----------------------------------------------------------

    @staticmethod
    def _key(parent: Mount, mountpoint: Dentry) -> Tuple[int, int]:
        return (parent.id, id(mountpoint))

    def mount_at(self, parent: Mount, mountpoint: Dentry) -> Optional[Mount]:
        return self._mount_at.get(self._key(parent, mountpoint))

    def add_mount(self, mount: Mount) -> None:
        assert mount.parent is not None and mount.mountpoint is not None
        key = self._key(mount.parent, mount.mountpoint)
        if key in self._mount_at:
            raise errors.EBUSY(message="mountpoint already in use")
        self._mount_at[key] = mount
        mount.mountpoint.is_mountpoint = True
        mount.mountpoint.pin()
        mount.root_dentry.pin()
        self.mounts.append(mount)

    def remove_mount(self, mount: Mount) -> None:
        if mount is self.root_mount:
            raise errors.EBUSY(message="cannot unmount namespace root")
        if any(m.parent is mount for m in self.mounts):
            raise errors.EBUSY(message="mount has children")
        key = self._key(mount.parent, mount.mountpoint)
        if self._mount_at.get(key) is not mount:
            raise errors.EINVAL(message="mount not in this namespace")
        del self._mount_at[key]
        mount.mountpoint.is_mountpoint = any(
            m.mountpoint is mount.mountpoint for m in self._mount_at.values())
        mount.mountpoint.unpin()
        mount.root_dentry.unpin()
        self.mounts.remove(mount)

    # -- traversal helpers -------------------------------------------------------

    def cross_down(self, pos: PathPos) -> PathPos:
        """Follow mounts stacked on ``pos`` downward (entering them)."""
        while True:
            stacked = self.mount_at(pos.mount, pos.dentry)
            if stacked is None:
                return pos
            pos = PathPos(stacked, stacked.root_dentry)

    def parent_pos(self, pos: PathPos, root: PathPos) -> PathPos:
        """The ``..`` of ``pos``, clamped at ``root`` (the task's root)."""
        while True:
            if pos.same_place(root):
                return pos
            if pos.dentry is not pos.mount.root_dentry:
                parent = pos.dentry.parent
                assert parent is not None
                return PathPos(pos.mount, parent)
            if pos.mount.parent is None:
                return pos  # namespace root: .. of / is /
            pos = PathPos(pos.mount.parent, pos.mount.mountpoint)

    # -- cloning ------------------------------------------------------------------

    def clone(self) -> "MountNamespace":
        """Copy the mount tree into a new namespace (``unshare``).

        The returned namespace carries a ``clone_map`` attribute mapping
        old mount ids to the new :class:`Mount` objects, so callers can
        re-anchor a task's root/cwd positions into the new namespace.
        """
        new_root = Mount(self.root_mount.fs, self.root_mount.root_dentry,
                         flags=self.root_mount.flags)
        new_ns = MountNamespace(new_root)
        mapping = {self.root_mount.id: new_root}
        # Parents are always created before children because ``mounts``
        # preserves insertion order.
        for mount in self.mounts:
            if mount is self.root_mount:
                continue
            new_parent = mapping[mount.parent.id]
            copy = Mount(mount.fs, mount.root_dentry, new_parent,
                         mount.mountpoint, mount.flags)
            mapping[mount.id] = copy
            new_ns.add_mount(copy)
        new_ns.clone_map = mapping
        return new_ns

    def __repr__(self) -> str:
        return f"MountNamespace(#{self.id}, {len(self.mounts)} mounts)"
