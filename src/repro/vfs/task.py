"""Tasks: the process analog driving syscalls.

A task carries the state path resolution depends on: credentials, current
working directory, root (chroot), umask, and the mount namespace.  Tasks
are created by :meth:`repro.core.kernel.Kernel.spawn_task` and passed as
the first argument to every syscall.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.vfs.cred import Cred
from repro.vfs.file import FdTable
from repro.vfs.mount import PathPos
from repro.vfs.namespace import MountNamespace

_pids = itertools.count(1)


class Task:
    """One simulated process."""

    __slots__ = ("pid", "cred", "cwd", "root", "umask", "ns", "fds")

    def __init__(self, cred: Cred, root: PathPos, cwd: Optional[PathPos],
                 ns: MountNamespace, umask: int = 0o022):
        self.pid = next(_pids)
        self.cred = cred
        self.root = root
        self.cwd = cwd or root
        self.umask = umask
        self.ns = ns
        self.fds = FdTable()
        self.root.dentry.pin()
        self.cwd.dentry.pin()

    def set_cwd(self, pos: PathPos) -> None:
        pos.dentry.pin()
        self.cwd.dentry.unpin()
        self.cwd = pos

    def set_root(self, pos: PathPos) -> None:
        pos.dentry.pin()
        self.root.dentry.unpin()
        self.root = pos

    def set_cred(self, cred: Cred) -> None:
        self.cred = cred

    def fork(self) -> "Task":
        """Child task sharing cred (COW) and namespace, copying cwd/root."""
        child = Task(self.cred, self.root, self.cwd, self.ns, self.umask)
        return child

    def exit(self) -> None:
        self.fds.close_all()
        self.cwd.dentry.unpin()
        self.root.dentry.unpin()

    def __repr__(self) -> str:
        return f"Task(pid={self.pid} {self.cred!r})"
