"""The baseline directory cache: primary hash table, LRU, eviction.

This is the Linux-style dcache of §2.2: dentries are tracked by (1) the
hierarchical tree (``Dentry.children``), (2) a hash table keyed by the
parent dentry's identity and the child name, and (3) an LRU list used to
shrink the cache.  The invariant that *every cached dentry's parents are
also cached* is maintained by evicting bottom-up (leaves only).

The optimized kernel (``repro.core``) registers :class:`DcacheHooks` so
that evictions and negativity transitions keep the DLHT, completeness
flags, and deep-negative children coherent without this module knowing
about them.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.core.arena import DentryArena
from repro.fs.base import FileSystem
from repro.sim.costs import CostModel
from repro.sim.stats import Stats
from repro.vfs.dentry import Dentry, NEG_ENOENT
from repro.vfs.inode import Inode, InodeTable

#: Fixed charge runs for ``d_lookup`` (one batched call per probe; the
#: primitive order matches the historical per-call sequence exactly).
_HIT_CHARGES = ("ht_probe", "chain_compare", "lru_touch")
_MISS_CHARGES = ("ht_probe", "chain_compare")


class DcacheHooks:
    """Extension points the optimized kernel implements (all no-ops here)."""

    __slots__ = ()

    def on_evict(self, dentry: Dentry) -> None:
        """Called just before ``dentry`` is removed to reclaim space."""

    def on_unhash(self, dentry: Dentry) -> None:
        """Called when a dentry leaves the primary hash table."""

    def on_make_negative(self, dentry: Dentry) -> None:
        """Called when a positive dentry becomes negative."""

    def on_make_positive(self, dentry: Dentry) -> None:
        """Called when a negative/stub dentry gains an inode."""

    def on_move(self, dentry: Dentry, old_parent: Dentry,
                old_name: str) -> None:
        """Called after a rename moved ``dentry`` in the tree."""


class Dcache:
    """Primary dentry cache for one kernel instance.

    Args:
        costs: cost model charged for cache operations.
        stats: event counters.
        capacity: maximum number of cached dentries before LRU shrink.
        hooks: optimized-kernel coherence callbacks.
    """

    __slots__ = ("costs", "stats", "capacity", "hooks", "arena", "_hash",
                 "_lru", "_roots", "_inode_tables", "count", "memo")

    def __init__(self, costs: CostModel, stats: Stats,
                 capacity: int = 1_000_000,
                 hooks: Optional[DcacheHooks] = None,
                 arena: Optional[DentryArena] = None):
        self.costs = costs
        self.stats = stats
        self.capacity = capacity
        self.hooks = hooks or DcacheHooks()
        #: Struct-of-arrays store for every dentry this cache allocates;
        #: hot loops bind its columns and index them by dentry handle.
        self.arena = arena if arena is not None else DentryArena()
        self._hash: Dict[Tuple[int, str], Dentry] = {}
        self._lru: "OrderedDict[int, Dentry]" = OrderedDict()
        self._roots: Dict[int, Dentry] = {}
        self._inode_tables: Dict[int, InodeTable] = {}
        self.count = 0
        #: Resolution memo to invalidate on structural mutations (set by
        #: the kernel).  Mutation points issue *scoped* kills — by
        #: dependent dentry (``kill``) or by instantiated name
        #: (``kill_miss``) — so unrelated memo entries survive; these
        #: hooks are what keep the memo safe on the baseline profile,
        #: which has no invalidation counter.
        self.memo = None

    # -- superblock roots ---------------------------------------------------

    def inode_table(self, fs: FileSystem) -> InodeTable:
        table = self._inode_tables.get(id(fs))
        if table is None:
            table = InodeTable(fs)
            self._inode_tables[id(fs)] = table
            # File systems that recycle inode numbers (simext's
            # ext-style bitmap reuse) must evict the stale VFS inode
            # before the number comes back; one callback per superblock.
            fs.on_ino_reclaim = table.forget
        return table

    def root_dentry(self, fs: FileSystem) -> Dentry:
        """The (pinned) root dentry of ``fs``'s superblock."""
        root = self._roots.get(id(fs))
        if root is None:
            info = fs.getattr(fs.root_ino)
            inode = self.inode_table(fs).obtain(info)
            root = Dentry("", None, inode, arena=self.arena)
            root.pin()
            self._roots[id(fs)] = root
            self.count += 1
        return root

    # -- hash table ------------------------------------------------------------

    @staticmethod
    def _key(parent: Dentry, name: str) -> Tuple[int, str]:
        return (id(parent), name)

    def d_lookup(self, parent: Dentry, name: str) -> Optional[Dentry]:
        """Primary-table lookup: one bucket probe + chain compare.

        Charges are attributed straight to the walk's "htlookup" scope
        (the only scope this is called under) via the charge_in fast
        path.

        The probe goes through ``parent.children`` rather than the flat
        ``_hash`` table: the two are kept in exact bijection for hashed
        dentries (``d_alloc`` refuses duplicates; ``d_drop``/``d_move``/
        ``evict`` maintain both), and the per-parent dict avoids
        allocating a fresh ``(id(parent), name)`` key tuple on the
        hottest path in the simulator.
        """
        costs = self.costs
        dentry = parent.children.get(name)
        if dentry is not None:
            costs.charge_in_many("htlookup", _HIT_CHARGES)
            lru = self._lru
            lru[id(dentry)] = dentry
            lru.move_to_end(id(dentry))
            dentry.in_lru = True
            rec = costs.recorder
            if rec is not None:
                rec.lru.append(dentry)
        else:
            costs.charge_in_many("htlookup", _MISS_CHARGES)
            rec = costs.recorder
            if rec is not None:
                # The walk is about to conclude something from this
                # name's *absence*; instantiating it later must
                # invalidate the recording (ResolutionMemo.kill_miss).
                rec.misses.append((parent, name))
        return dentry

    def d_alloc(self, parent: Dentry, name: str,
                inode: Optional[Inode]) -> Dentry:
        """Allocate and hash a new child dentry (positive or negative)."""
        key = self._key(parent, name)
        if key in self._hash:
            raise RuntimeError(f"dentry {name!r} already cached under "
                               f"{parent.path_from_root()!r}")
        if inode is None:
            self.costs.charge("negative_dentry_alloc")
        else:
            self.costs.charge("dentry_alloc")
        dentry = Dentry(name, parent, inode)
        if inode is None:
            dentry.neg_kind = NEG_ENOENT
        self._hash[key] = dentry
        parent.children[name] = dentry
        self.count += 1
        memo = self.memo
        if memo is not None:
            # Only walks that concluded from this name's absence care.
            memo.kill_miss(parent, name)
        self._touch_lru(dentry)
        # The caller holds a reference to the new dentry (it is about to
        # be returned); the shrink pass must not reclaim it.
        dentry.pin()
        try:
            self._shrink_if_needed()
        finally:
            dentry.unpin()
        return dentry

    def d_alloc_stub(self, parent: Dentry, name: str, ino: int,
                     dtype: str) -> Dentry:
        """Allocate an inodeless dentry from readdir results (§5.1)."""
        dentry = self.d_alloc(parent, name, None)
        dentry.neg_kind = None
        dentry.stub = (ino, dtype)
        return dentry

    def d_alloc_alias(self, parent: Dentry, name: str,
                      target: Dentry) -> Dentry:
        """Allocate a symlink-translation alias child (§4.2).

        ``parent`` is a symlink dentry (or another alias); the alias
        redirects the path ``parent/name`` to ``target``.
        """
        dentry = self.d_alloc(parent, name, None)
        dentry.neg_kind = None
        dentry.alias_target = target
        return dentry

    def d_drop(self, dentry: Dentry) -> None:
        """Unhash and detach a dentry (and its subtree) from the cache."""
        for child in list(dentry.children.values()):
            self.d_drop(child)
        parent = dentry.parent
        if parent is not None:
            self._hash.pop(self._key(parent, dentry.name), None)
            if parent.children.get(dentry.name) is dentry:
                del parent.children[dentry.name]
        self._lru.pop(id(dentry), None)
        dentry.in_lru = False
        dentry.dead = True
        dentry.seq += 1
        self.count -= 1
        memo = self.memo
        if memo is not None:
            memo.kill(dentry)
        self.hooks.on_unhash(dentry)
        dentry.retire()
        self.costs.charge("dentry_free")

    # -- negativity transitions ---------------------------------------------------

    def make_negative(self, dentry: Dentry, kind: str = NEG_ENOENT) -> None:
        """Turn a positive/stub dentry into a negative one in place."""
        dentry.inode = None
        dentry.stub = None
        dentry.neg_kind = kind
        dentry.dir_complete = False
        # No memo invalidation needed: entries depending on this dentry
        # pin its inode by identity, and entries terminating on it match
        # a state signature — both see the transition.
        self.hooks.on_make_negative(dentry)

    def make_positive(self, dentry: Dentry, inode: Inode) -> None:
        """Instantiate an inode on a negative/stub dentry in place."""
        dentry.inode = inode
        dentry.stub = None
        dentry.neg_kind = None
        # Covered by memo inode-identity pins / terminal signatures,
        # exactly as in make_negative above.
        self.hooks.on_make_positive(dentry)

    # -- rename support ----------------------------------------------------------------

    def d_move(self, dentry: Dentry, new_parent: Dentry,
               new_name: str) -> None:
        """Move a dentry to a new (parent, name), rehashing it."""
        old_parent = dentry.parent
        old_name = dentry.name
        assert old_parent is not None, "cannot move a superblock root"
        self._hash.pop(self._key(old_parent, old_name), None)
        if old_parent.children.get(old_name) is dentry:
            del old_parent.children[old_name]
        # Any dentry already cached at the destination is dropped: the
        # rename overwrote it (the caller validated emptiness rules).
        existing = self._hash.get(self._key(new_parent, new_name))
        if existing is not None and existing is not dentry:
            self.d_drop(existing)
        dentry.parent = new_parent
        dentry.name = new_name
        h = dentry.h
        if h >= 0:
            arena = self.arena
            arena.name_id[h] = arena.intern_name(new_name)
            arena.parent[h] = new_parent.h
        self._hash[self._key(new_parent, new_name)] = dentry
        new_parent.children[new_name] = dentry
        memo = self.memo
        if memo is not None:
            # A move does not bump the dentry's seqcount (only the arena
            # name/parent columns change), so entries that resolved
            # through it must be killed explicitly; and the destination
            # name just came into existence for absence-based walks.
            memo.kill(dentry)
            memo.kill_miss(new_parent, new_name)
        self.hooks.on_move(dentry, old_parent, old_name)

    # -- LRU / shrinking ------------------------------------------------------------

    def _touch_lru(self, dentry: Dentry) -> None:
        self.costs.charge("lru_touch")
        self._lru[id(dentry)] = dentry
        self._lru.move_to_end(id(dentry))
        dentry.in_lru = True

    def _evictable(self, dentry: Dentry) -> bool:
        return (dentry.pin_count == 0 and not dentry.children
                and not dentry.is_mountpoint and dentry.parent is not None)

    def _shrink_if_needed(self) -> None:
        if self.count <= self.capacity:
            return
        # Walk from the cold end, evicting leaves until under capacity.
        # Non-evictable entries are re-queued at the hot end so the scan
        # terminates.
        scanned = 0
        max_scan = len(self._lru)
        while self.count > self.capacity and scanned < max_scan:
            scanned += 1
            _key, dentry = self._lru.popitem(last=False)
            dentry.in_lru = False
            if self._evictable(dentry):
                self.evict(dentry)
            else:
                self._lru[id(dentry)] = dentry
                dentry.in_lru = True

    def evict(self, dentry: Dentry) -> None:
        """Evict one leaf dentry to reclaim space."""
        parent = dentry.parent
        assert parent is not None
        self.hooks.on_evict(dentry)
        # Eviction (unlike unlink) breaks the parent's completeness: the
        # cache no longer holds everything the directory contains (§5.1).
        if parent.dir_complete:
            parent.dir_complete = False
            self.stats.bump("dir_complete_broken")
        parent.child_evictions += 1
        self._hash.pop(self._key(parent, dentry.name), None)
        if parent.children.get(dentry.name) is dentry:
            del parent.children[dentry.name]
        self._lru.pop(id(dentry), None)
        dentry.in_lru = False
        dentry.dead = True
        dentry.seq += 1
        self.count -= 1
        memo = self.memo
        if memo is not None:
            memo.kill(dentry)
            # The parent's broken dir_complete flag is invisible to the
            # memo's validity check (no seq/epoch/counter changes), so
            # entries that walked through the parent go too.
            memo.kill(parent)
        self.hooks.on_unhash(dentry)
        dentry.retire()
        self.costs.charge("dentry_free")

    def drop_all(self) -> None:
        """Evict every evictable dentry (cold-cache experiments).

        Pinned dentries (roots, cwds, open files, mountpoints) survive,
        matching ``echo 2 > /proc/sys/vm/drop_caches``.
        """
        # Bottom-up: repeat until a pass evicts nothing.
        while True:
            victims = [d for d in self._lru.values() if self._evictable(d)]
            if not victims:
                return
            for dentry in victims:
                if not dentry.dead and self._evictable(dentry):
                    self.evict(dentry)

    # -- introspection ------------------------------------------------------------------

    def cached_children(self, dentry: Dentry):
        return dentry.children.values()

    def __len__(self) -> int:
        return self.count
