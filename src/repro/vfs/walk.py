"""The slowpath: component-at-a-time path resolution (§2.2).

This is the Linux REF/RCU-walk analog both kernels share: the baseline
kernel resolves *every* lookup here; the optimized kernel falls back to it
on a fastpath miss and uses it to (re)populate the fastpath structures.

Per component the walk (1) checks search permission on the current
directory — the prefix check — then (2) hashes the component and probes
the primary dcache hash table, (3) calls the low-level file system on a
miss, and (4) handles ``..``, symlinks, and mountpoint crossings.  Costs
are charged per primitive under the attribution scopes Figure 3 reports
("init", "perm", "hash", "htlookup", "final", plus "miss").

The optimized kernel observes the walk through the ``fast`` hook object (a
:class:`repro.core.fastpath.FastLookup`); the hooks are documented on
:class:`WalkHooks`.  The baseline kernel passes ``fast=None``.

The resolution memo (:mod:`repro.core.resmemo`) records slowpath
resolutions transparently via ``CostModel.recorder`` — every per-
component charge above already goes through ``charge``/``charge_in``,
and the dcache captures its own LRU touches — so this module needs no
recording hooks.  Baseline-profile memo safety rests on the dcache
structural-mutation flushes, since the baseline never bumps the
invalidation counter.
"""

from __future__ import annotations

from typing import List, Optional

from repro import errors
from repro.sim.costs import CostModel
from repro.sim.stats import Stats
from repro.vfs import path as vfspath
from repro.vfs import permissions as perms
from repro.vfs.dcache import Dcache
from repro.vfs.dentry import NEG_ENOTDIR, Dentry
from repro.vfs.lsm import Lsm, NullLsm
from repro.vfs.mount import PathPos
from repro.vfs.task import Task

#: Maximum symlink traversals per resolution (Linux's MAXSYMLINKS).
MAX_SYMLINKS = 40


class WalkHooks:
    """Observation points the optimized kernel hooks into (all no-ops).

    The ``ctx`` passed around is whatever :meth:`begin` returned; the slow
    walk treats it as opaque.
    """

    __slots__ = ()

    def begin(self, task: Task, start: PathPos, absolute: bool):
        return None

    def step(self, ctx, name: str, child: Dentry, result: PathPos) -> None:
        """A component resolved to ``child`` (post mount-crossing)."""

    def dotdot(self, ctx, result: PathPos) -> None:
        """A ``..`` moved the walk to ``result``."""

    def symlink_begin(self, ctx, link: Dentry, absolute_target: bool) -> None:
        """``link`` is about to be traversed (before target resolution)."""

    def symlink(self, ctx, link: Dentry, target: PathPos) -> None:
        """``link`` was traversed; the walk continues at ``target``."""

    def negative_tail(self, ctx, neg: Dentry, remaining: List[str],
                      kind: str) -> None:
        """The walk failed at ``neg`` with ``remaining`` components left."""

    def finish(self, ctx, final: PathPos) -> None:
        """The walk succeeded at ``final`` (dentry may be a create-intent
        negative)."""

    def abandon(self, ctx) -> None:
        """The walk raised without reaching :meth:`finish` (errors that
        bypass ``negative_tail``: EACCES, ELOOP, ENOTDIR mid-path...).
        Implementations release per-walk bookkeeping; nothing may be
        charged or populated here."""


class _LinkBudget:
    """Shared symlink-traversal counter for one top-level resolution."""

    __slots__ = ("left",)

    def __init__(self) -> None:
        self.left = MAX_SYMLINKS

    def consume(self, path_hint: str) -> None:
        if self.left <= 0:
            raise errors.ELOOP(path_hint)
        self.left -= 1


class SlowWalk:
    """Component-at-a-time resolver over one kernel's caches."""

    __slots__ = ("costs", "stats", "dcache", "config", "lsm", "hooks")

    def __init__(self, costs: CostModel, stats: Stats, dcache: Dcache,
                 config, lsm: Optional[Lsm] = None,
                 hooks: Optional[WalkHooks] = None):
        self.costs = costs
        self.stats = stats
        self.dcache = dcache
        self.config = config
        self.lsm = lsm or NullLsm()
        self.hooks = hooks or WalkHooks()

    # -- public entry -----------------------------------------------------------

    def resolve(self, task: Task, path: str, *, follow_last: bool = True,
                intent_create: bool = False, create_dir: bool = False,
                dirfd_pos: Optional[PathPos] = None,
                count_stats: bool = True,
                charge_setup: bool = True) -> PathPos:
        """Resolve ``path`` to a (mount, dentry) position.

        With ``intent_create`` the final dentry may be negative (ENOENT
        kind) — the caller instantiates it; otherwise a negative final
        raises.  ``create_dir`` additionally allows a trailing slash on
        the created name (mkdir).  ``dirfd_pos`` anchors relative paths
        (\\*at() syscalls).  ``charge_setup=False`` skips the init/final
        fixed charges — used when a failed fastpath attempt already set
        the lookup up (the nameidata is reused on fallback).
        """
        if count_stats:
            self.stats.bump("lookup")
        absolute, comps, must_dir = vfspath.split(path)
        if self.config.lexical_dotdot:
            comps = vfspath.lexical_normalize(comps)
        start = task.root if absolute else (dirfd_pos or task.cwd)
        if charge_setup:
            with self.costs.scope("init"):
                self.costs.charge("lookup_init")
        ctx = self.hooks.begin(task, start, absolute)
        budget = _LinkBudget()
        try:
            pos = self._walk(task, start, comps, path,
                             follow_last=follow_last,
                             intent_create=intent_create,
                             create_dir=create_dir,
                             must_dir=must_dir, budget=budget, ctx=ctx)
        except BaseException:
            self.hooks.abandon(ctx)
            raise
        if charge_setup:
            with self.costs.scope("final"):
                self.costs.charge("lookup_final")
        self.hooks.finish(ctx, pos)
        return pos

    # -- the component loop ------------------------------------------------------

    def _walk(self, task: Task, start: PathPos, comps: List[str],
              path_hint: str, *, follow_last: bool, intent_create: bool,
              must_dir: bool, budget: _LinkBudget, ctx,
              create_dir: bool = False) -> PathPos:
        pos = start
        ns = task.ns
        total = len(comps)
        costs = self.costs
        charge_in = costs.charge_in
        bump = self.stats.bump
        for i, name in enumerate(comps):
            last = i == total - 1
            cur = pos.dentry
            if cur.is_negative:
                raise errors.ENOENT(path_hint, "start directory is gone")
            if not cur.is_dir:
                raise errors.ENOTDIR(path_hint)
            self._check_search(task, cur, path_hint)
            bump("component_step")
            charge_in("hash", "component_hash", nbytes=len(name))
            charge_in("htlookup", "read_barrier")
            charge_in("htlookup", "seqlock_read")
            if name == "..":
                pos = ns.cross_down(ns.parent_pos(pos, task.root))
                self.hooks.dotdot(ctx, pos)
                continue
            child, from_cache = self._lookup_child(pos, cur, name)
            if child is None or child.is_negative:
                if from_cache:
                    self.stats.bump("negative_hit")
                kind_err = self._negative_error(child, path_hint)
                if last and intent_create:
                    if not isinstance(kind_err, errors.ENOENT):
                        raise kind_err
                    if child is None:
                        # Baseline pseudo-fs: nothing may be cached and
                        # nothing can be created there either.
                        raise errors.EPERM(path_hint,
                                           "create on pseudo file system")
                    if must_dir and not create_dir:
                        raise errors.ENOENT(path_hint)
                    result = PathPos(pos.mount, child)
                    self.hooks.step(ctx, name, child, result)
                    return result
                if child is not None:
                    self.hooks.negative_tail(ctx, child, comps[i + 1:],
                                             child.neg_kind)
                raise kind_err
            if child.is_stub:
                self._fill_stub(pos, child)
            if child.is_symlink and (not last or follow_last or must_dir):
                budget.consume(path_hint)
                target = child.inode.symlink_target or ""
                if not target:
                    raise errors.ENOENT(path_hint, "empty symlink target")
                self.costs.charge("symlink_resolve")
                self.stats.bump("symlink_traverse")
                sub_create = intent_create and last
                tabs, tcomps, tmust = vfspath.split(target)
                if self.config.lexical_dotdot:
                    tcomps = vfspath.lexical_normalize(tcomps)
                sub_start = task.root if tabs else pos
                self.hooks.symlink_begin(ctx, child, tabs)
                tpos = self._walk(task, sub_start, tcomps, target,
                                  follow_last=True,
                                  intent_create=sub_create,
                                  must_dir=tmust, budget=budget, ctx=ctx)
                self.hooks.symlink(ctx, child, tpos)
                pos = tpos
                continue
            if (not last and not child.is_dir) or \
                    (last and must_dir and not child.is_dir):
                self._note_enotdir(ctx, child, comps[i + 1:])
                raise errors.ENOTDIR(path_hint)
            result = PathPos(pos.mount, child)
            crossed = ns.cross_down(result)
            if not crossed.same_place(result):
                self.costs.charge("mountpoint_cross")
                self.stats.bump("mount_cross")
            pos = crossed
            self.hooks.step(ctx, name, child, pos)
        final = pos.dentry
        if final.is_negative:
            if final.neg_kind == NEG_ENOTDIR:
                raise errors.ENOTDIR(path_hint)
            if not intent_create:
                raise errors.ENOENT(path_hint)
        elif must_dir and not final.is_dir:
            raise errors.ENOTDIR(path_hint)
        return pos

    # -- helpers ---------------------------------------------------------------------

    def _check_search(self, task: Task, dentry: Dentry,
                      path_hint: str) -> None:
        inode = dentry.inode
        self.costs.charge_in("perm", "perm_check_dac")
        allowed = perms.may_search(task.cred, inode)
        if allowed and not isinstance(self.lsm, NullLsm):
            self.costs.charge_in("perm", "perm_check_lsm")
            allowed = self.lsm.inode_permission(task.cred, inode,
                                                perms.MAY_EXEC)
        if not allowed:
            raise errors.EACCES(path_hint)

    def _lookup_child(self, pos: PathPos, cur: Dentry, name: str):
        """Primary-table lookup, falling to the low-level FS on a miss.

        Returns ``(child, from_cache)``; child is ``None`` only when the
        name does not exist *and* no negative dentry may be cached for it
        (baseline pseudo-fs rule).
        """
        # d_lookup attributes its own charges to "htlookup" (charge_in).
        child = self.dcache.d_lookup(cur, name)
        if child is not None:
            self.stats.bump("dcache_hit")
            if cur.inode.fs.requires_revalidation:
                child = self._revalidate(cur, name, child)
            return child, True
        if cur.dir_complete:
            # §5.1: a complete directory proves absence without an FS call.
            self.stats.bump("dir_complete_elide")
            return self.dcache.d_alloc(cur, name, None), True
        return self._miss(pos, cur, name), False

    def _miss(self, pos: PathPos, cur: Dentry,
              name: str) -> Optional[Dentry]:
        self.stats.bump("dcache_miss")
        self.stats.bump("fs_lookup")
        fs = cur.inode.fs
        with self.costs.scope("miss"):
            info = fs.lookup(cur.inode.ino, name)
        if info is not None:
            inode = self.dcache.inode_table(fs).obtain(info)
            return self.dcache.d_alloc(cur, name, inode)
        cache_negative = (fs.baseline_negative_dentries or
                          self.config.aggressive_negative)
        if cache_negative:
            return self.dcache.d_alloc(cur, name, None)
        return None

    def _revalidate(self, cur: Dentry, name: str,
                    child: Dentry) -> Dentry:
        """Stateless-network-FS semantics (§4.3): ask the server whether
        the cached entry is still the truth, one round trip per cached
        component — "effectively forcing a cache miss and nullifying any
        benefit to the hit path"."""
        fs = cur.inode.fs
        self.stats.bump("revalidate")
        cached_ino = child.inode.ino if child.inode is not None else None
        with self.costs.scope("miss"):
            info = fs.revalidate(cur.inode.ino, name, cached_ino)
        if info is None:
            if not child.is_negative:
                self.dcache.make_negative(child)
            return child
        inode = self.dcache.inode_table(fs).obtain(info)
        if child.inode is not inode:
            self.dcache.make_positive(child, inode)
        else:
            inode.apply(info)
        return child

    def _fill_stub(self, pos: PathPos, child: Dentry) -> None:
        """Link a readdir-created stub dentry with its inode (§5.1)."""
        assert child.stub is not None
        fs = pos.mount.fs
        self.stats.bump("stub_fill")
        with self.costs.scope("miss"):
            info = fs.getattr(child.stub[0])
        inode = self.dcache.inode_table(fs).obtain(info)
        self.dcache.make_positive(child, inode)

    @staticmethod
    def _negative_error(child: Optional[Dentry],
                        path_hint: str) -> "errors.FsError":
        if child is not None and child.neg_kind == NEG_ENOTDIR:
            return errors.ENOTDIR(path_hint)
        return errors.ENOENT(path_hint)

    def _note_enotdir(self, ctx, file_dentry: Dentry,
                      remaining: List[str]) -> None:
        """Hook for deep ENOTDIR negatives under a regular file (§5.2)."""
        self.hooks.negative_tail(ctx, file_dentry, remaining, NEG_ENOTDIR)
