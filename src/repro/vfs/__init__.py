"""The virtual file system layer.

This package is the substrate the paper's contribution plugs into: VFS
inodes and dentries, the baseline Linux-style dcache (hash table keyed by
(parent, name), component-at-a-time prefix checking, negative dentries,
LRU), mounts and mount namespaces, credentials with LSM hooks, open file
descriptions, and the syscall facade.

The optimized structures (DLHT, PCC, signatures, completeness, deep
negatives) live in :mod:`repro.core` and attach to these objects through
the ``fast`` extension points, mirroring how the paper's patch hooks into
``dcache.c``/``namei.c`` without changing low-level file systems.
"""

from repro.vfs.cred import Cred
from repro.vfs.task import Task

__all__ = ["Cred", "Task"]
