"""Open file descriptions and per-task fd tables.

An open :class:`File` pins its dentry (and thereby the whole ancestor
chain against eviction), which is also what gives Unix directory-handle
semantics: operations relative to an open directory keep working after an
upstream permission change (§3.2, "Directory References").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import errors
from repro.vfs.mount import PathPos

#: open(2) flag bits (subset).
O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_ACCMODE = 0o3
O_CREAT = 0o100
O_EXCL = 0o200
O_TRUNC = 0o1000
O_APPEND = 0o2000
O_DIRECTORY = 0o200000
O_NOFOLLOW = 0o400000


class File:
    """One open file description."""

    __slots__ = ("pos", "flags", "offset", "dir_snapshot", "dir_offset",
                 "dir_seeked", "dir_evictions_at_start", "closed")

    def __init__(self, pos: PathPos, flags: int):
        self.pos = pos
        self.flags = flags
        self.offset = 0
        # Directory iteration state (getdents paging).
        self.dir_snapshot: Optional[List[Tuple[str, int, str]]] = None
        self.dir_offset = 0
        #: Set by lseek; a seeked sequence can no longer prove
        #: completeness (§5.1).
        self.dir_seeked = False
        self.dir_evictions_at_start = 0
        self.closed = False
        pos.dentry.pin()
        inode = pos.dentry.inode
        if inode is not None:
            inode.fs.iget(inode.ino)

    @property
    def readable(self) -> bool:
        return (self.flags & O_ACCMODE) in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        return (self.flags & O_ACCMODE) in (O_WRONLY, O_RDWR)

    def release(self) -> None:
        if not self.closed:
            self.closed = True
            self.pos.dentry.unpin()
            inode = self.pos.dentry.inode
            if inode is not None:
                inode.fs.iput(inode.ino)


class FdTable:
    """Per-task file descriptor table."""

    def __init__(self) -> None:
        self._files: Dict[int, File] = {}
        self._next_fd = 3  # 0-2 reserved, as tradition demands

    def install(self, file: File) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self._files[fd] = file
        return fd

    def get(self, fd: int) -> File:
        file = self._files.get(fd)
        if file is None or file.closed:
            raise errors.EBADF(message=f"fd {fd}")
        return file

    def close(self, fd: int) -> None:
        file = self._files.pop(fd, None)
        if file is None:
            raise errors.EBADF(message=f"fd {fd}")
        file.release()

    def close_all(self) -> None:
        for file in self._files.values():
            file.release()
        self._files.clear()

    def open_files(self):
        return list(self._files.values())
