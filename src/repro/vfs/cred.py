"""Credentials: the copy-on-write ``struct cred`` analog (§4.1).

A :class:`Cred` is immutable once committed to a task.  Changing identity
(setuid, SELinux role change) goes through :func:`prepare_creds` (copy)
and :func:`commit_creds`; as in the paper's prototype, committing a copy
whose contents did not change *reuses the old object*, so the per-cred
prefix check cache keeps being shared across children that never actually
changed identity.
"""

from __future__ import annotations

from typing import FrozenSet, Optional


class Cred:
    """Immutable process credentials.

    Attributes:
        uid / gid: effective identity.
        groups: supplementary groups.
        security: opaque LSM label (e.g. an SELinux-like domain).
        pcc: attached prefix-check cache (optimized kernel only); set by
            the kernel when the cred is first used for a lookup.
    """

    __slots__ = ("uid", "gid", "groups", "security", "pcc", "_committed")

    def __init__(self, uid: int, gid: int,
                 groups: Optional[FrozenSet[int]] = None,
                 security: Optional[str] = None):
        self.uid = uid
        self.gid = gid
        self.groups = frozenset(groups or ())
        self.security = security
        self.pcc = None
        self._committed = False

    # -- value semantics ----------------------------------------------------

    def same_identity(self, other: "Cred") -> bool:
        """True when both creds grant exactly the same permissions."""
        return (self.uid == other.uid and self.gid == other.gid
                and self.groups == other.groups
                and self.security == other.security)

    @property
    def is_root(self) -> bool:
        return self.uid == 0

    def in_group(self, gid: int) -> bool:
        return gid == self.gid or gid in self.groups

    def __repr__(self) -> str:
        sec = f" sec={self.security}" if self.security else ""
        return f"Cred(uid={self.uid} gid={self.gid}{sec})"


def prepare_creds(old: Cred) -> Cred:
    """Copy a cred for modification (Linux ``prepare_creds``)."""
    new = Cred(old.uid, old.gid, old.groups, old.security)
    return new


def commit_creds(old: Cred, new: Cred) -> Cred:
    """Commit ``new`` as the task's creds.

    Mirrors the paper's PCC-sharing fix: if the prepared copy ended up
    identical to the old cred, the old (committed, PCC-carrying) object is
    reused so the prefix check cache keeps warming across fork/exec chains
    that never change identity (§4.1).
    """
    if new.same_identity(old):
        return old
    new._committed = True
    return new
