"""Dentries: cached (parent, name) -> inode bindings.

A dentry is *positive* (has an inode), *negative* (caches nonexistence,
with a kind distinguishing ENOENT from ENOTDIR deep negatives, §5.2),
a *stub* (created from readdir results with an inode number but no inode
object yet, §5.1), or an *alias* (a symlink-translation child created by
the optimized kernel, §4.2).

The baseline kernel uses only positive/negative dentries; the other kinds
are reachable only when the corresponding :class:`DcacheConfig` features
are enabled, and are invisible to the slow component walk except where the
paper's design says otherwise.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.fs.base import DT_DIR
from repro.vfs.inode import Inode

#: Negative-dentry kinds.
NEG_ENOENT = "enoent"
NEG_ENOTDIR = "enotdir"


class Dentry:
    """One node of the cached directory tree."""

    __slots__ = (
        "name", "parent", "inode", "neg_kind", "stub", "children",
        "pin_count", "dir_complete", "child_evictions", "seq", "epoch",
        "fast", "alias_target", "is_mountpoint", "in_lru", "dead",
    )

    def __init__(self, name: str, parent: Optional["Dentry"],
                 inode: Optional[Inode]):
        self.name = name
        self.parent = parent
        self.inode = inode
        #: NEG_ENOENT / NEG_ENOTDIR when this dentry is negative.
        self.neg_kind: Optional[str] = None
        #: (ino, dtype) when created from readdir without an inode (§5.1).
        self.stub: Optional[Tuple[int, str]] = None
        self.children: Dict[str, "Dentry"] = {}
        #: References that forbid eviction (open files, cwd, mounts).
        self.pin_count = 0
        #: §5.1 completeness flag: all children of this directory cached.
        self.dir_complete = False
        #: Bumped when a child is evicted to reclaim space (breaks any
        #: in-progress readdir completeness detection).
        self.child_evictions = 0
        #: Version counter read by PCC entries; bumped by coherence events
        #: and by reallocation so stale prefix checks never validate.
        self.seq = 0
        #: Lazy-coherence mutation stamp: the global epoch at which this
        #: dentry was last the root of a (lazy) shootdown.  Always 0 in
        #: the baseline and eager-optimized kernels.
        self.epoch = 0
        #: Optimized-kernel per-dentry state (repro.core.fastdentry).
        self.fast = None
        #: For alias dentries: the real dentry this path translates to.
        self.alias_target: Optional["Dentry"] = None
        self.is_mountpoint = False
        self.in_lru = False
        #: Set when freed; PCC entries referencing it must not validate.
        self.dead = False

    # -- state predicates ------------------------------------------------------

    @property
    def is_negative(self) -> bool:
        """Caches nonexistence (stubs and aliases are *not* negative)."""
        return (self.inode is None and self.stub is None
                and self.alias_target is None)

    @property
    def is_stub(self) -> bool:
        return self.inode is None and self.stub is not None

    @property
    def is_true_negative(self) -> bool:
        return self.is_negative

    @property
    def is_alias(self) -> bool:
        return self.alias_target is not None

    @property
    def is_dir(self) -> bool:
        if self.inode is not None:
            return self.inode.is_dir
        if self.stub is not None:
            return self.stub[1] == DT_DIR
        return False

    @property
    def is_symlink(self) -> bool:
        return self.inode is not None and self.inode.is_symlink

    # -- pinning -----------------------------------------------------------------

    def pin(self) -> None:
        self.pin_count += 1

    def unpin(self) -> None:
        if self.pin_count <= 0:
            raise RuntimeError(f"unbalanced unpin of {self!r}")
        self.pin_count -= 1

    # -- tree helpers ----------------------------------------------------------------

    def path_from_root(self) -> str:
        """Path within this dentry's superblock (for debugging/tests)."""
        parts = []
        node: Optional[Dentry] = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return "/" + "/".join(reversed(parts))

    def ancestors(self):
        """Yield parent, grandparent, ... up to the superblock root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def is_ancestor_of(self, other: "Dentry") -> bool:
        return any(anc is self for anc in other.ancestors())

    def descendants(self):
        """Yield every cached descendant (pre-order), excluding self."""
        stack = list(self.children.values())
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def __repr__(self) -> str:
        if self.is_alias:
            state = f"alias->{self.alias_target.path_from_root()}"
        elif self.is_stub:
            state = f"stub{self.stub}"
        elif self.is_negative:
            state = f"neg:{self.neg_kind}"
        else:
            state = repr(self.inode)
        return f"Dentry({self.path_from_root()!r} {state})"
