"""Dentries: cached (parent, name) -> inode bindings.

A dentry is *positive* (has an inode), *negative* (caches nonexistence,
with a kind distinguishing ENOENT from ENOTDIR deep negatives, §5.2),
a *stub* (created from readdir results with an inode number but no inode
object yet, §5.1), or an *alias* (a symlink-translation child created by
the optimized kernel, §4.2).

The baseline kernel uses only positive/negative dentries; the other kinds
are reachable only when the corresponding :class:`DcacheConfig` features
are enabled, and are invisible to the slow component walk except where the
paper's design says otherwise.

Storage layout
--------------

A :class:`Dentry` is a *view* over one slot of a
:class:`~repro.core.arena.DentryArena`: its hot scalars — sequence
counter, lazy epoch stamp, pin count, child-eviction counter, the
completeness/mountpoint flag bits, interned-name index, and parent
handle — live in the arena's parallel ``array('q')`` columns, indexed by
the view's integer handle ``h``.  Cold state (the inode, the children
dict, negative kind, stub info, fast state) stays on the view.  Cold
paths and tests read the scalars through the properties below; hot loops
bind a column once and index it by handle directly.

When a dentry leaves the cache (``d_drop``/``evict``) the view
*materializes* the scalars into its own fallback slots and retires the
handle (``h`` becomes ``-1``), so late readers — PCC entries, open files
holding an unlinked path — still see frozen, mutable values while the
arena slot is recycled.  ``in_lru`` and ``dead`` are view-local
bookkeeping bits (never needed by bulk array operations).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.arena import (FLAG_DIR_COMPLETE, FLAG_MOUNTPOINT,
                              DentryArena, default_arena)
from repro.fs.base import DT_DIR
from repro.vfs.inode import Inode

#: Negative-dentry kinds.
NEG_ENOENT = "enoent"
NEG_ENOTDIR = "enotdir"


class Dentry:
    """One node of the cached directory tree (arena-slot view)."""

    __slots__ = (
        "arena", "h", "name", "parent", "inode", "neg_kind", "stub",
        "children", "fast", "alias_target", "in_lru", "dead",
        "_seq", "_epoch", "_pin", "_childev", "_flags",
    )

    def __init__(self, name: str, parent: Optional["Dentry"],
                 inode: Optional[Inode],
                 arena: Optional[DentryArena] = None):
        if arena is None:
            arena = parent.arena if parent is not None else default_arena()
        self.arena = arena
        self.h = arena.alloc(name, parent.h if parent is not None else -1)
        self.name = name
        self.parent = parent
        self.inode = inode
        #: NEG_ENOENT / NEG_ENOTDIR when this dentry is negative.
        self.neg_kind: Optional[str] = None
        #: (ino, dtype) when created from readdir without an inode (§5.1).
        self.stub: Optional[Tuple[int, str]] = None
        self.children: Dict[str, "Dentry"] = {}
        #: Optimized-kernel per-dentry state (repro.core.fastdentry).
        self.fast = None
        #: For alias dentries: the real dentry this path translates to.
        self.alias_target: Optional["Dentry"] = None
        self.in_lru = False
        #: Set when freed; PCC entries referencing it must not validate.
        self.dead = False

    # -- arena-backed scalars ------------------------------------------------

    @property
    def seq(self) -> int:
        """Version counter read by PCC entries; bumped by coherence events
        and by reallocation so stale prefix checks never validate."""
        h = self.h
        if h >= 0:
            return self.arena.seq[h]
        return self._seq

    @seq.setter
    def seq(self, value: int) -> None:
        h = self.h
        if h >= 0:
            self.arena.seq[h] = value
        else:
            self._seq = value

    @property
    def epoch(self) -> int:
        """Lazy-coherence mutation stamp: the global epoch at which this
        dentry was last the root of a (lazy) shootdown.  Always 0 in
        the baseline and eager-optimized kernels."""
        h = self.h
        if h >= 0:
            return self.arena.epoch[h]
        return self._epoch

    @epoch.setter
    def epoch(self, value: int) -> None:
        h = self.h
        if h >= 0:
            self.arena.epoch[h] = value
        else:
            self._epoch = value

    @property
    def pin_count(self) -> int:
        """References that forbid eviction (open files, cwd, mounts)."""
        h = self.h
        if h >= 0:
            return self.arena.pin[h]
        return self._pin

    @pin_count.setter
    def pin_count(self, value: int) -> None:
        h = self.h
        if h >= 0:
            self.arena.pin[h] = value
        else:
            self._pin = value

    @property
    def child_evictions(self) -> int:
        """Bumped when a child is evicted to reclaim space (breaks any
        in-progress readdir completeness detection)."""
        h = self.h
        if h >= 0:
            return self.arena.childev[h]
        return self._childev

    @child_evictions.setter
    def child_evictions(self, value: int) -> None:
        h = self.h
        if h >= 0:
            self.arena.childev[h] = value
        else:
            self._childev = value

    @property
    def dir_complete(self) -> bool:
        """§5.1 completeness flag: all children of this directory cached."""
        h = self.h
        flags = self.arena.flags[h] if h >= 0 else self._flags
        return (flags & FLAG_DIR_COMPLETE) != 0

    @dir_complete.setter
    def dir_complete(self, value: bool) -> None:
        h = self.h
        if h >= 0:
            flags = self.arena.flags
            if value:
                flags[h] |= FLAG_DIR_COMPLETE
            else:
                flags[h] &= ~FLAG_DIR_COMPLETE
        else:
            if value:
                self._flags |= FLAG_DIR_COMPLETE
            else:
                self._flags &= ~FLAG_DIR_COMPLETE

    @property
    def is_mountpoint(self) -> bool:
        h = self.h
        flags = self.arena.flags[h] if h >= 0 else self._flags
        return (flags & FLAG_MOUNTPOINT) != 0

    @is_mountpoint.setter
    def is_mountpoint(self, value: bool) -> None:
        h = self.h
        if h >= 0:
            flags = self.arena.flags
            if value:
                flags[h] |= FLAG_MOUNTPOINT
            else:
                flags[h] &= ~FLAG_MOUNTPOINT
        else:
            if value:
                self._flags |= FLAG_MOUNTPOINT
            else:
                self._flags &= ~FLAG_MOUNTPOINT

    def retire(self) -> None:
        """Materialize the scalars and return the arena slot.

        Called by the dcache when this dentry leaves the cache; the view
        keeps answering scalar reads (and accepts writes — e.g. ``unpin``
        from a file closed after unlink) from its fallback slots.
        """
        h = self.h
        if h < 0:
            return
        arena = self.arena
        self._seq = arena.seq[h]
        self._epoch = arena.epoch[h]
        self._pin = arena.pin[h]
        self._childev = arena.childev[h]
        self._flags = arena.flags[h]
        self.h = -1
        arena.retire(h)

    # -- state predicates ------------------------------------------------------

    @property
    def is_negative(self) -> bool:
        """Caches nonexistence (stubs and aliases are *not* negative)."""
        return (self.inode is None and self.stub is None
                and self.alias_target is None)

    @property
    def is_stub(self) -> bool:
        return self.inode is None and self.stub is not None

    @property
    def is_true_negative(self) -> bool:
        return self.is_negative

    @property
    def is_alias(self) -> bool:
        return self.alias_target is not None

    @property
    def is_dir(self) -> bool:
        if self.inode is not None:
            return self.inode.is_dir
        if self.stub is not None:
            return self.stub[1] == DT_DIR
        return False

    @property
    def is_symlink(self) -> bool:
        return self.inode is not None and self.inode.is_symlink

    # -- pinning -----------------------------------------------------------------

    def pin(self) -> None:
        h = self.h
        if h >= 0:
            self.arena.pin[h] += 1
        else:
            self._pin += 1

    def unpin(self) -> None:
        h = self.h
        if h >= 0:
            pin = self.arena.pin[h]
            if pin <= 0:
                raise RuntimeError(f"unbalanced unpin of {self!r}")
            self.arena.pin[h] = pin - 1
        else:
            if self._pin <= 0:
                raise RuntimeError(f"unbalanced unpin of {self!r}")
            self._pin -= 1

    # -- tree helpers ----------------------------------------------------------------

    def path_from_root(self) -> str:
        """Path within this dentry's superblock (for debugging/tests)."""
        parts = []
        node: Optional[Dentry] = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return "/" + "/".join(reversed(parts))

    def ancestors(self):
        """Yield parent, grandparent, ... up to the superblock root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def is_ancestor_of(self, other: "Dentry") -> bool:
        return any(anc is self for anc in other.ancestors())

    def descendants(self):
        """Yield every cached descendant (pre-order), excluding self."""
        stack = list(self.children.values())
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def __repr__(self) -> str:
        if self.is_alias:
            state = f"alias->{self.alias_target.path_from_root()}"
        elif self.is_stub:
            state = f"stub{self.stub}"
        elif self.is_negative:
            state = f"neg:{self.neg_kind}"
        else:
            state = repr(self.inode)
        return f"Dentry({self.path_from_root()!r} {state})"
