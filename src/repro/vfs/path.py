"""Path string handling: splitting, limits, lexical normalization.

Splitting is deliberately simple (POSIX-like): repeated slashes collapse,
``.`` components fold away for free during scanning (both kernels do
this), trailing slashes require the target to be a directory.  ``..`` is
*not* folded here under Linux semantics — it is a semantic operation the
walk performs — but :func:`lexical_normalize` implements Plan 9's lexical
folding for the ``lexical_dotdot`` kernel configuration (§4.2).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro import errors

PATH_MAX = 4096
NAME_MAX = 255

#: Bounded memo caps for the parse caches below.  Real workloads resolve
#: the same path strings over and over (every warm lookup re-parses its
#: path), so memoizing the pure parse removes a per-lookup string scan
#: from the simulator's hot path.  Entries are immutable tuples; hits
#: return fresh lists so callers may mutate their copy freely.
_SPLIT_CACHE_CAP = 8192
_LEXNORM_CACHE_CAP = 4096

_split_cache: Dict[str, Tuple[bool, Tuple[str, ...], bool]] = {}
_lexnorm_cache: Dict[Tuple[str, ...], Tuple[str, ...]] = {}


def _cache_insert(cache: dict, cap: int, key, value) -> None:
    """Insert into a bounded memo, evicting the oldest entry when full."""
    if len(cache) >= cap:
        del cache[next(iter(cache))]
    cache[key] = value


def validate(path: str) -> None:
    """Raise ENAMETOOLONG/EINVAL for malformed paths."""
    if not path:
        raise errors.EINVAL(path, "empty path")
    if "\x00" in path:
        # Kernel behavior: a path is a NUL-terminated string, so an
        # embedded NUL can never reach the VFS; the syscall layer
        # rejects it with EINVAL before any resolution starts.
        raise errors.EINVAL(path, "embedded NUL byte")
    if len(path) > PATH_MAX:
        raise errors.ENAMETOOLONG(path)


def split(path: str) -> Tuple[bool, List[str], bool]:
    """Split ``path`` into (is_absolute, components, must_be_dir).

    ``.`` components and empty components (from ``//``) are dropped;
    ``..`` is kept.  ``must_be_dir`` is True for paths with a trailing
    slash or that end in ``.``/``..``, which constrains the final
    component to resolve to a directory.

    Successful parses are memoized (bounded, oldest-evicted): the parse
    is a pure function of the path string, so warm lookups skip the
    validation scan and the split loop entirely.  Failures are not
    cached — they already take the slow exception path.
    """
    cached = _split_cache.get(path)
    if cached is not None:
        is_absolute, comps, must_be_dir = cached
        return is_absolute, list(comps), must_be_dir
    validate(path)
    is_absolute = path.startswith("/")
    raw = path.split("/")
    components: List[str] = []
    for part in raw:
        if part in ("", "."):
            continue
        if len(part) > NAME_MAX:
            raise errors.ENAMETOOLONG(path)
        components.append(part)
    must_be_dir = path.endswith(("/", "/.", "/..")) or path in (".", "..")
    if components and components[-1] == "..":
        must_be_dir = True
    _cache_insert(_split_cache, _SPLIT_CACHE_CAP, path,
                  (is_absolute, tuple(components), must_be_dir))
    return is_absolute, components, must_be_dir


def lexical_normalize(components: List[str]) -> List[str]:
    """Fold ``..`` lexically (Plan 9 semantics, §4.2).

    ``a/b/../c`` becomes ``a/c`` without consulting the file system.
    Leading ``..`` components (above the start) are preserved; the walk
    clamps them at the root.  Results are memoized like :func:`split`.
    """
    key = tuple(components)
    cached = _lexnorm_cache.get(key)
    if cached is not None:
        return list(cached)
    out: List[str] = []
    for part in components:
        if part == ".." and out and out[-1] != "..":
            out.pop()
        else:
            out.append(part)
    _cache_insert(_lexnorm_cache, _LEXNORM_CACHE_CAP, key, tuple(out))
    return out


def join(base: str, *parts: str) -> str:
    """Join path fragments with single slashes."""
    pieces = [base.rstrip("/")] + [p.strip("/") for p in parts if p]
    joined = "/".join(piece for piece in pieces if piece != "")
    if base.startswith("/") and not joined.startswith("/"):
        joined = "/" + joined
    return joined or "/"
