"""Path string handling: splitting, limits, lexical normalization.

Splitting is deliberately simple (POSIX-like): repeated slashes collapse,
``.`` components fold away for free during scanning (both kernels do
this), trailing slashes require the target to be a directory.  ``..`` is
*not* folded here under Linux semantics — it is a semantic operation the
walk performs — but :func:`lexical_normalize` implements Plan 9's lexical
folding for the ``lexical_dotdot`` kernel configuration (§4.2).
"""

from __future__ import annotations

from typing import List, Tuple

from repro import errors

PATH_MAX = 4096
NAME_MAX = 255


def validate(path: str) -> None:
    """Raise ENAMETOOLONG/EINVAL for malformed paths."""
    if not path:
        raise errors.EINVAL(path, "empty path")
    if len(path) > PATH_MAX:
        raise errors.ENAMETOOLONG(path)


def split(path: str) -> Tuple[bool, List[str], bool]:
    """Split ``path`` into (is_absolute, components, must_be_dir).

    ``.`` components and empty components (from ``//``) are dropped;
    ``..`` is kept.  ``must_be_dir`` is True for paths with a trailing
    slash or that end in ``.``/``..``, which constrains the final
    component to resolve to a directory.
    """
    validate(path)
    is_absolute = path.startswith("/")
    raw = path.split("/")
    components: List[str] = []
    for part in raw:
        if part in ("", "."):
            continue
        if len(part) > NAME_MAX:
            raise errors.ENAMETOOLONG(path)
        components.append(part)
    must_be_dir = path.endswith(("/", "/.", "/..")) or path in (".", "..")
    if components and components[-1] == "..":
        must_be_dir = True
    return is_absolute, components, must_be_dir


def lexical_normalize(components: List[str]) -> List[str]:
    """Fold ``..`` lexically (Plan 9 semantics, §4.2).

    ``a/b/../c`` becomes ``a/c`` without consulting the file system.
    Leading ``..`` components (above the start) are preserved; the walk
    clamps them at the root.
    """
    out: List[str] = []
    for part in components:
        if part == ".." and out and out[-1] != "..":
            out.pop()
        else:
            out.append(part)
    return out


def join(base: str, *parts: str) -> str:
    """Join path fragments with single slashes."""
    pieces = [base.rstrip("/")] + [p.strip("/") for p in parts if p]
    joined = "/".join(piece for piece in pieces if piece != "")
    if base.startswith("/") and not joined.startswith("/"):
        joined = "/" + joined
    return joined or "/"
