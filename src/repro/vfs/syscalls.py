"""The syscall facade: the kernel's public, POSIX-flavoured API.

Every path-based call goes through the kernel's pluggable resolver (the
baseline slow walk, or the optimized fastpath engine), then performs the
operation-specific permission checks and — for mutations — the coherence
work the paper's design requires (§3.2): recursive shootdowns before
directory renames and permission changes, negative dentries after
removals, invalidation-counter bumps guarding repopulation.

All operations take the calling :class:`~repro.vfs.task.Task` first and
raise :class:`~repro.errors.FsError` subclasses on failure, so baseline
and optimized kernels can be driven with identical scripts and compared
result-for-result (the equivalence oracle of the test suite).
"""

from __future__ import annotations

import random
from functools import partial
from typing import List, NamedTuple, Optional, Tuple

from repro import errors
from repro.vfs import path as vfspath
from repro.vfs import permissions as perms
from repro.vfs.dentry import Dentry
from repro.vfs.file import (O_ACCMODE, O_APPEND, O_CREAT, O_DIRECTORY,
                            O_EXCL, O_NOFOLLOW, O_RDONLY, O_RDWR, O_TRUNC,
                            O_WRONLY, File)
from repro.vfs.lsm import NullLsm
from repro.vfs.mount import Mount, PathPos
from repro.vfs.task import Task

_TEMP_CHARS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


class StatResult(NamedTuple):
    """What ``stat(2)`` reports.

    A NamedTuple rather than a frozen dataclass: construction is one
    C-level call instead of nine ``object.__setattr__`` round-trips,
    and stat/fstat results are built on the simulator's hottest paths.
    Field access, equality, hashing, and repr are unchanged.
    """

    ino: int
    mode: int
    uid: int
    gid: int
    nlink: int
    size: int
    filetype: str
    fstype: str
    #: Virtual-time mtime; excluded from cross-kernel comparisons (the
    #: two kernels' virtual clocks legitimately differ).
    mtime_ns: int = 0


# -- batched dispatch -----------------------------------------------------
#
# The fast entries below are hand-specialized clones of the fd-based
# syscall bodies with every per-call prologue load — task, fd table,
# cost-model charge entry, sweeper, readdir engine — pinned in the
# closure at batch-creation time.  They MUST stay semantically identical
# to the facade methods they mirror (same charges in the same order,
# same error types and messages); tests/test_compiled_replay.py drives
# the same op streams through both surfaces and asserts bit-identical
# virtual costs, Stats, and outcomes.  Only fd ops are specialized:
# path-based ops are dominated by resolution, where a pinned prologue
# buys nothing.

def _fast_close(sys_: "Syscalls", task: Task):
    charge, sweeper = sys_._charge, sys_._sweeper
    files = task.fds._files

    def close(fd: int) -> None:
        charge("syscall_fixed")
        if sweeper is not None:
            sweeper.poll()
        charge("close_fd")
        file = files.pop(fd, None)
        if file is None:
            raise errors.EBADF(message=f"fd {fd}")
        file.release()

    return close


def _fast_lseek(sys_: "Syscalls", task: Task):
    charge, sweeper = sys_._charge, sys_._sweeper
    files = task.fds._files
    readdir_engine = sys_.kernel.readdir_engine

    def lseek(fd: int, offset: int) -> int:
        charge("syscall_fixed")
        if sweeper is not None:
            sweeper.poll()
        file = files.get(fd)
        if file is None or file.closed:
            raise errors.EBADF(message=f"fd {fd}")
        # Open files are positive, so dir-ness is the inode's cached
        # flag (Dentry.is_dir's stub arm can't apply) — skip the
        # property dispatch on this, the most replayed trace opcode.
        inode = file.pos.dentry.inode
        if inode is not None and inode.is_dir:
            readdir_engine.seek(file, offset)
        file.offset = offset
        return offset

    return lseek


def _fast_fstat(sys_: "Syscalls", task: Task):
    charge, sweeper = sys_._charge, sys_._sweeper
    files = task.fds._files

    def fstat(fd: int) -> StatResult:
        charge("syscall_fixed")
        if sweeper is not None:
            sweeper.poll()
        file = files.get(fd)
        if file is None or file.closed:
            raise errors.EBADF(message=f"fd {fd}")
        inode = file.pos.dentry.inode
        if inode is None:
            raise errors.ENOENT(message="file removed during stat")
        charge("stat_fill")
        return StatResult(inode.ino, inode.mode, inode.uid, inode.gid,
                          inode.nlink, inode.size, inode.filetype,
                          inode.fs.fstype, inode.mtime_ns)

    return fstat


def _fast_read(sys_: "Syscalls", task: Task):
    charge, sweeper = sys_._charge, sys_._sweeper
    files = task.fds._files

    def read(fd: int, length: int) -> bytes:
        charge("syscall_fixed")
        if sweeper is not None:
            sweeper.poll()
        file = files.get(fd)
        if file is None or file.closed:
            raise errors.EBADF(message=f"fd {fd}")
        if file.flags & O_ACCMODE not in (O_RDONLY, O_RDWR):
            raise errors.EBADF(message=f"fd {fd} not readable")
        inode = file.pos.dentry.inode
        if inode.is_dir:
            raise errors.EISDIR(message="read on a directory fd")
        data = inode.fs.read(inode.ino, file.offset, length)
        file.offset += len(data)
        return data

    return read


def _fast_write(sys_: "Syscalls", task: Task):
    charge, sweeper = sys_._charge, sys_._sweeper
    files = task.fds._files
    sync_inode = sys_._sync_inode

    def write(fd: int, data: bytes) -> int:
        charge("syscall_fixed")
        if sweeper is not None:
            sweeper.poll()
        file = files.get(fd)
        if file is None or file.closed:
            raise errors.EBADF(message=f"fd {fd}")
        if file.flags & O_ACCMODE not in (O_WRONLY, O_RDWR):
            raise errors.EBADF(message=f"fd {fd} not writable")
        inode = file.pos.dentry.inode
        if file.flags & O_APPEND:
            file.offset = inode.size
        written = inode.fs.write(inode.ino, file.offset, data)
        file.offset += written
        sync_inode(inode)
        return written

    return write


#: op name -> specialized fast-entry builder.
_FAST_ENTRIES = {
    "close": _fast_close,
    "lseek": _fast_lseek,
    "fstat": _fast_fstat,
    "read": _fast_read,
    "write": _fast_write,
}


class SyscallBatch:
    """Pinned-task dispatch table: prebound per-op syscall entries.

    Obtained from :meth:`Syscalls.batch`.  A batch resolves the per-call
    *Python-level* prologue once — the bound-method fetch, the task
    argument, and (for the hot fd ops) the fd-table/cost-model/sweeper
    loads — and hands out per-op fast entries (``batch.stat(path)``
    instead of ``kernel.sys.stat(task, path)``), so hot loops that drive
    millions of syscalls (the compiled trace replayer, the speed-suite
    repetition loops) pay the dispatch setup per batch instead of per
    event.  fd-based ops get hand-specialized closures (see
    ``_FAST_ENTRIES``); every other op is a C-level ``partial`` over the
    facade method.

    Cost-attribution rule: batching changes **zero virtual charges**.
    Every entry still runs the full syscall — ``syscall_fixed``, sweeper
    polls, permission checks — so virtual clocks, counts, and Stats are
    bit-identical to unbatched calls (``tests/test_compiled_replay``
    pins this).  Only host wall-clock moves.

    A batch pins per-task state (the fd table) at creation: create one
    batch per (kernel, task) hot loop and drop it with the task.
    Entries are cached on first attribute access; a batch is also a
    (stateless) context manager so callers can scope its lifetime.
    """

    def __init__(self, syscalls: "Syscalls", task: Task):
        self._syscalls = syscalls
        self._task = task

    def __enter__(self) -> "SyscallBatch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def __getattr__(self, op: str):
        if op.startswith("_"):
            raise AttributeError(op)
        builder = _FAST_ENTRIES.get(op)
        if builder is not None:
            entry = builder(self._syscalls, self._task)
        else:
            entry = partial(getattr(self._syscalls, op), self._task)
        # Cache on the instance: subsequent lookups bypass __getattr__.
        self.__dict__[op] = entry
        return entry

    @property
    def task(self) -> Task:
        return self._task


class Syscalls:
    """POSIX-flavoured entry points bound to one kernel."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.costs = kernel.costs
        self.stats = kernel.stats
        self.dcache = kernel.dcache
        self.config = kernel.config
        self.lsm = kernel.lsm
        # Prologue state pinned once per kernel: the charge fast path and
        # the sweeper reference never change after construction, so
        # _enter need not chase kernel attributes per call.
        self._charge = self.costs.charge
        self._sweeper = kernel.sweeper
        # Resolution memo (None when DcacheConfig.resolution_memo is
        # off): whole-path resolutions are served by charge replay when
        # the memo's O(1) validity check passes.
        self._memo = kernel.memo

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------

    def _enter(self) -> None:
        self._charge("syscall_fixed")
        sweeper = self._sweeper
        if sweeper is not None:
            # Lazy coherence: amortized sweep batches piggyback on
            # syscall entry (virtual time has no preemption).
            sweeper.poll()

    def batch(self, task: Task) -> SyscallBatch:
        """Prebound per-op entries with ``task`` pinned (hot-loop form).

        See :class:`SyscallBatch` for the cost-attribution contract:
        virtual charges are identical to unbatched calls.
        """
        return SyscallBatch(self, task)

    def _resolve(self, task: Task, path: str, *, follow_last: bool = True,
                 intent_create: bool = False, create_dir: bool = False,
                 dirfd_pos: Optional[PathPos] = None) -> PathPos:
        memo = self._memo
        if memo is not None and dirfd_pos is None:
            # dirfd-relative starts bypass the memo: the fd's position
            # is not part of the key and fds are too transient to pin.
            return memo.resolve(task, path, follow_last, intent_create,
                                create_dir)
        return self.kernel.resolver.resolve(
            task, path, follow_last=follow_last,
            intent_create=intent_create, create_dir=create_dir,
            dirfd_pos=dirfd_pos)

    def _flush_memo(self) -> None:
        """Bulk-invalidate the resolution memo.

        Called by the few mutating entry points whose resolution-visible
        effect can bypass both the invalidation counter (the eager
        profile elides the bump when no fast-side state was hit and no
        walk is active; the baseline profile has no counter at all) and
        the dcache structural-mutation hooks (chmod of a regular file
        mutates no dentry).  Over-flushing costs wall-clock only.
        """
        memo = self._memo
        if memo is not None:
            memo.flush()
        # The same out-of-band mutations invalidate captured charge
        # plans: their guards cannot see mode/label/mount-table state.
        self.costs.plans.bump_gen()

    def _dirfd_pos(self, task: Task, dirfd: Optional[int]) -> Optional[PathPos]:
        if dirfd is None:
            return None
        return task.fds.get(dirfd).pos

    def _check_perm(self, task: Task, dentry: Dentry, mask: int,
                    path_hint: str = "") -> None:
        inode = dentry.inode
        self.costs.charge("perm_check_dac")
        allowed = perms.dac_permission(task.cred, inode, mask)
        if allowed and not isinstance(self.lsm, NullLsm):
            self.costs.charge("perm_check_lsm")
            allowed = self.lsm.inode_permission(task.cred, inode, mask)
        if not allowed:
            raise errors.EACCES(path_hint)

    def _check_writable_mount(self, pos: PathPos, path_hint: str) -> None:
        if pos.mount.readonly:
            raise errors.EROFS(path_hint)

    def _parent_pos(self, pos: PathPos, path_hint: str) -> PathPos:
        parent = pos.dentry.parent
        if parent is None or pos.dentry is pos.mount.root_dentry:
            raise errors.EBUSY(path_hint, "operation on a mount root")
        return PathPos(pos.mount, parent)

    def _check_dir_write(self, task: Task, parent: PathPos,
                         path_hint: str) -> None:
        self._check_writable_mount(parent, path_hint)
        self._check_perm(task, parent.dentry,
                         perms.MAY_WRITE | perms.MAY_EXEC, path_hint)

    def _check_sticky(self, task: Task, parent: PathPos, victim: Dentry,
                      path_hint: str) -> None:
        if victim.inode is None:
            return
        if not perms.sticky_delete_allowed(task.cred, parent.dentry.inode,
                                           victim.inode):
            raise errors.EPERM(path_hint, "sticky directory")

    # -- coherence helpers (no-ops on the baseline kernel) -------------------

    @property
    def _fast(self):
        return self.kernel.fast

    def _shoot_subtree(self, dentry: Dentry) -> None:
        if self._fast is not None:
            self.kernel.coherence.shootdown_subtree(dentry)

    def _shoot_single(self, dentry: Dentry) -> None:
        if self._fast is not None:
            self.kernel.coherence.shootdown_single(dentry)

    def _bump_counter(self) -> None:
        if self._fast is not None:
            self.kernel.coherence.bump_counter()

    def _negative_after_removal(self, parent: Dentry, name: str) -> None:
        from repro.core.negative import negative_after_removal
        negative_after_removal(self.dcache, parent, name)

    @staticmethod
    def _sync_inode(inode) -> None:
        """Refresh size/nlink mirrors from the FS after a mutation.

        Free of charge: in a real kernel the VFS inode *is* the file
        system's in-memory inode, so these fields are already current.
        """
        try:
            info = inode.fs.peek(inode.ino)
        except errors.FsError:
            # The FS reclaimed the inode (final unlink, no open
            # handles); the in-memory mirror just goes to zero links.
            inode.nlink = 0
            return
        inode.nlink = info.nlink
        inode.size = info.size
        inode.mtime_ns = info.mtime_ns

    # ------------------------------------------------------------------
    # metadata reads
    # ------------------------------------------------------------------

    def _stat_of(self, pos: PathPos) -> StatResult:
        inode = pos.dentry.inode
        if inode is None:
            # The dentry went negative between resolution and use (a
            # concurrent unlink): the call linearizes after the removal.
            raise errors.ENOENT(message="file removed during stat")
        self.costs.charge("stat_fill")
        return StatResult(ino=inode.ino, mode=inode.mode, uid=inode.uid,
                          gid=inode.gid, nlink=inode.nlink, size=inode.size,
                          filetype=inode.filetype, fstype=inode.fs.fstype,
                          mtime_ns=inode.mtime_ns)

    def stat(self, task: Task, path: str) -> StatResult:
        """stat(2): resolve (following symlinks) and report metadata."""
        self._enter()
        pos = self._resolve(task, path, follow_last=True)
        return self._stat_of(pos)

    def lstat(self, task: Task, path: str) -> StatResult:
        """lstat(2): like stat but does not follow a final symlink."""
        self._enter()
        pos = self._resolve(task, path, follow_last=False)
        return self._stat_of(pos)

    def fstatat(self, task: Task, path: str, dirfd: Optional[int] = None,
                follow: bool = True) -> StatResult:
        """fstatat(2): stat relative to an open directory."""
        self._enter()
        pos = self._resolve(task, path, follow_last=follow,
                            dirfd_pos=self._dirfd_pos(task, dirfd))
        return self._stat_of(pos)

    def fstat(self, task: Task, fd: int) -> StatResult:
        self._enter()
        return self._stat_of(task.fds.get(fd).pos)

    def access(self, task: Task, path: str, mask: int) -> None:
        """access(2): raise EACCES unless ``mask`` permissions hold."""
        self._enter()
        pos = self._resolve(task, path, follow_last=True)
        if mask:
            self._check_perm(task, pos.dentry, mask, path)

    def exists(self, task: Task, path: str) -> bool:
        """Convenience: does the path resolve?"""
        try:
            self.stat(task, path)
            return True
        except (errors.ENOENT, errors.ENOTDIR):
            return False

    def readlink(self, task: Task, path: str) -> str:
        self._enter()
        pos = self._resolve(task, path, follow_last=False)
        inode = pos.dentry.inode
        if not inode.is_symlink:
            raise errors.EINVAL(path, "not a symlink")
        return inode.symlink_target or ""

    # ------------------------------------------------------------------
    # open / read / write / close
    # ------------------------------------------------------------------

    def open(self, task: Task, path: str, flags: int = O_RDONLY,
             mode: int = 0o644, dirfd: Optional[int] = None) -> int:
        """open(2)/openat(2): returns a file descriptor."""
        self._enter()
        dirfd_pos = self._dirfd_pos(task, dirfd)
        if flags & O_CREAT:
            pos = self._resolve(task, path, follow_last=True,
                                intent_create=True, dirfd_pos=dirfd_pos)
        else:
            pos = self._resolve(task, path,
                                follow_last=not flags & O_NOFOLLOW,
                                dirfd_pos=dirfd_pos)
        dentry = pos.dentry
        created = False
        if flags & O_CREAT and dentry.is_negative:
            parent = self._parent_pos(pos, path)
            self._check_dir_write(task, parent, path)
            fs = parent.dentry.inode.fs
            info = fs.create(parent.dentry.inode.ino, dentry.name,
                             mode & ~task.umask, task.cred.uid,
                             task.cred.gid)
            inode = self.dcache.inode_table(fs).obtain(info)
            self.dcache.make_positive(dentry, inode)
            self._sync_inode(parent.dentry.inode)
            created = True
        elif flags & O_CREAT and flags & O_EXCL:
            raise errors.EEXIST(path)
        if dentry.is_symlink and flags & O_NOFOLLOW:
            raise errors.ELOOP(path, "O_NOFOLLOW on a symlink")
        if flags & O_DIRECTORY and not dentry.is_dir:
            raise errors.ENOTDIR(path)
        accmode = flags & O_ACCMODE
        wants_write = accmode in (O_WRONLY, O_RDWR)
        if dentry.is_dir and wants_write:
            raise errors.EISDIR(path)
        if not created:
            if accmode in (O_RDONLY, O_RDWR):
                self._check_perm(task, dentry, perms.MAY_READ, path)
            if wants_write:
                self._check_perm(task, dentry, perms.MAY_WRITE, path)
        if wants_write:
            self._check_writable_mount(pos, path)
        if flags & O_TRUNC and wants_write and not dentry.is_dir:
            info = dentry.inode.fs.setattr(dentry.inode.ino, size=0)
            dentry.inode.size = info.size
            dentry.inode.mtime_ns = info.mtime_ns
        file = File(pos, flags)
        self.costs.charge("open_install_fd")
        return task.fds.install(file)

    def openat(self, task: Task, dirfd: int, path: str,
               flags: int = O_RDONLY, mode: int = 0o644) -> int:
        return self.open(task, path, flags, mode, dirfd=dirfd)

    def close(self, task: Task, fd: int) -> None:
        self._enter()
        self.costs.charge("close_fd")
        task.fds.close(fd)

    def read(self, task: Task, fd: int, length: int) -> bytes:
        self._enter()
        file = task.fds.get(fd)
        if not file.readable:
            raise errors.EBADF(message=f"fd {fd} not readable")
        inode = file.pos.dentry.inode
        if inode.is_dir:
            raise errors.EISDIR(message="read on a directory fd")
        data = inode.fs.read(inode.ino, file.offset, length)
        file.offset += len(data)
        return data

    def write(self, task: Task, fd: int, data: bytes) -> int:
        self._enter()
        file = task.fds.get(fd)
        if not file.writable:
            raise errors.EBADF(message=f"fd {fd} not writable")
        inode = file.pos.dentry.inode
        if file.flags & O_APPEND:
            file.offset = inode.size
        written = inode.fs.write(inode.ino, file.offset, data)
        file.offset += written
        self._sync_inode(inode)
        return written

    def lseek(self, task: Task, fd: int, offset: int) -> int:
        self._enter()
        file = task.fds.get(fd)
        if file.pos.dentry.is_dir:
            self.kernel.readdir_engine.seek(file, offset)
        file.offset = offset
        return offset

    def ftruncate(self, task: Task, fd: int, size: int) -> None:
        self._enter()
        file = task.fds.get(fd)
        if not file.writable:
            raise errors.EBADF(message=f"fd {fd} not writable")
        inode = file.pos.dentry.inode
        info = inode.fs.setattr(inode.ino, size=size)
        inode.size = info.size
        inode.mtime_ns = info.mtime_ns

    def truncate(self, task: Task, path: str, size: int) -> None:
        self._enter()
        pos = self._resolve(task, path, follow_last=True)
        dentry = pos.dentry
        if dentry.is_dir:
            raise errors.EISDIR(path)
        self._check_perm(task, dentry, perms.MAY_WRITE, path)
        self._check_writable_mount(pos, path)
        info = dentry.inode.fs.setattr(dentry.inode.ino, size=size)
        dentry.inode.size = info.size
        dentry.inode.mtime_ns = info.mtime_ns

    # ------------------------------------------------------------------
    # directory listing
    # ------------------------------------------------------------------

    def getdents(self, task: Task, fd: int,
                 count: int = 1024) -> List[Tuple[str, int, str]]:
        """getdents(2): next ``count`` entries; empty list at the end."""
        self._enter()
        file = task.fds.get(fd)
        dentry = file.pos.dentry
        if not dentry.is_dir:
            raise errors.ENOTDIR(message="getdents on a non-directory")
        return self.kernel.readdir_engine.getdents(file, count)

    def readdir(self, task: Task, fd: int) -> List[Tuple[str, int, str]]:
        """Read a whole directory through repeated getdents calls."""
        entries: List[Tuple[str, int, str]] = []
        while True:
            chunk = self.getdents(task, fd)
            if not chunk:
                return entries
            entries.extend(chunk)

    def listdir(self, task: Task, path: str) -> List[Tuple[str, int, str]]:
        """Convenience: open + readdir + close."""
        fd = self.open(task, path, O_RDONLY | O_DIRECTORY)
        try:
            return self.readdir(task, fd)
        finally:
            self.close(task, fd)

    # ------------------------------------------------------------------
    # namespace mutations
    # ------------------------------------------------------------------

    def mkdir(self, task: Task, path: str, mode: int = 0o755,
              dirfd: Optional[int] = None) -> None:
        self._enter()
        pos = self._resolve(task, path, follow_last=False,
                            intent_create=True, create_dir=True,
                            dirfd_pos=self._dirfd_pos(task, dirfd))
        dentry = pos.dentry
        if not dentry.is_negative:
            raise errors.EEXIST(path)
        parent = self._parent_pos(pos, path)
        self._check_dir_write(task, parent, path)
        fs = parent.dentry.inode.fs
        info = fs.mkdir(parent.dentry.inode.ino, dentry.name,
                        mode & ~task.umask, task.cred.uid, task.cred.gid)
        inode = self.dcache.inode_table(fs).obtain(info)
        self.dcache.make_positive(dentry, inode)
        self._sync_inode(parent.dentry.inode)
        self.kernel.readdir_engine.mark_new_directory(dentry)

    def rmdir(self, task: Task, path: str) -> None:
        self._enter()
        pos = self._resolve(task, path, follow_last=False)
        dentry = pos.dentry
        if not dentry.is_dir:
            raise errors.ENOTDIR(path)
        if dentry.is_mountpoint or dentry is pos.mount.root_dentry:
            raise errors.EBUSY(path)
        parent = self._parent_pos(pos, path)
        self._check_dir_write(task, parent, path)
        self._check_sticky(task, parent, dentry, path)
        fs = parent.dentry.inode.fs
        self._shoot_subtree(dentry)
        fs.rmdir(parent.dentry.inode.ino, dentry.name)
        self._sync_inode(parent.dentry.inode)
        if dentry.pin_count > 0:
            self.dcache.d_drop(dentry)
            if self.config.aggressive_negative:
                self._negative_after_removal(parent.dentry, dentry.name)
        else:
            self.dcache.make_negative(dentry)

    def unlink(self, task: Task, path: str) -> None:
        self._enter()
        pos = self._resolve(task, path, follow_last=False)
        dentry = pos.dentry
        if dentry.is_dir:
            raise errors.EISDIR(path)
        if dentry.is_mountpoint or dentry is pos.mount.root_dentry:
            raise errors.EBUSY(path)
        parent = self._parent_pos(pos, path)
        self._check_dir_write(task, parent, path)
        self._check_sticky(task, parent, dentry, path)
        fs = parent.dentry.inode.fs
        fs.unlink(parent.dentry.inode.ino, dentry.name)
        self._sync_inode(dentry.inode)
        self._sync_inode(parent.dentry.inode)
        self._bump_counter()
        if dentry.pin_count > 0:
            # The dentry stays with its open handles; under aggressive
            # negative caching a fresh negative takes over the path (§5.2).
            self.dcache.d_drop(dentry)
            if self.config.aggressive_negative:
                self._negative_after_removal(parent.dentry, dentry.name)
        else:
            self.dcache.make_negative(dentry)

    def rename(self, task: Task, old: str, new: str) -> None:
        self._enter()
        self.costs.charge("rename_fixed")
        oldpos = self._resolve(task, old, follow_last=False)
        moving = oldpos.dentry
        if moving.is_mountpoint or moving is oldpos.mount.root_dentry:
            raise errors.EBUSY(old)
        old_parent = self._parent_pos(oldpos, old)
        # Hold a reference across the destination resolution: its
        # intent-create allocation may shrink the LRU, and an evicted
        # source dentry must not be moved into the tree.
        moving.pin()
        try:
            newpos = self._resolve(task, new, follow_last=False,
                                   intent_create=True,
                                   create_dir=moving.is_dir)
        finally:
            moving.unpin()
        victim = newpos.dentry
        if oldpos.mount is not newpos.mount:
            raise errors.EXDEV(new)
        if victim is moving:
            return
        new_parent = self._parent_pos(newpos, new)
        if moving.is_dir and (moving is new_parent.dentry
                              or moving.is_ancestor_of(new_parent.dentry)):
            raise errors.EINVAL(new, "rename into own subtree")
        if not victim.is_negative:
            if victim.is_mountpoint:
                raise errors.EBUSY(new)
            if moving.is_dir and not victim.is_dir:
                raise errors.ENOTDIR(new)
            if not moving.is_dir and victim.is_dir:
                raise errors.EISDIR(new)
        self._check_dir_write(task, old_parent, old)
        self._check_dir_write(task, new_parent, new)
        self._check_sticky(task, old_parent, moving, old)
        self._check_sticky(task, new_parent, victim, new)
        fs = oldpos.mount.fs
        old_name = moving.name
        # rename_lock plus per-dentry locks on the old and new parents
        # (§3.2's locking discipline).
        self.costs.charge("dentry_lock", times=2)
        # §3.2: invalidate before the mutation; the counter bump blocks
        # concurrent repopulation, the seq bumps kill stale PCC entries.
        self._shoot_subtree(moving)
        if not victim.is_negative:
            self._shoot_subtree(victim)
        fs.rename(old_parent.dentry.inode.ino, old_name,
                  new_parent.dentry.inode.ino, victim.name)
        self.dcache.d_move(moving, new_parent.dentry, victim.name)
        self._sync_inode(old_parent.dentry.inode)
        self._sync_inode(new_parent.dentry.inode)
        if self.config.aggressive_negative:
            self._negative_after_removal(old_parent.dentry, old_name)

    def link(self, task: Task, existing: str, newpath: str) -> None:
        self._enter()
        oldpos = self._resolve(task, existing, follow_last=False)
        source = oldpos.dentry
        if source.is_dir:
            raise errors.EPERM(existing, "hard link to a directory")
        newpos = self._resolve(task, newpath, follow_last=False,
                               intent_create=True)
        dentry = newpos.dentry
        if not dentry.is_negative:
            raise errors.EEXIST(newpath)
        if oldpos.mount.fs is not newpos.mount.fs:
            raise errors.EXDEV(newpath)
        parent = self._parent_pos(newpos, newpath)
        self._check_dir_write(task, parent, newpath)
        fs = parent.dentry.inode.fs
        info = fs.link(parent.dentry.inode.ino, dentry.name,
                       source.inode.ino)
        inode = self.dcache.inode_table(fs).obtain(info)
        inode.nlink = info.nlink
        self.dcache.make_positive(dentry, inode)
        self._sync_inode(parent.dentry.inode)

    def symlink(self, task: Task, target: str, linkpath: str) -> None:
        self._enter()
        pos = self._resolve(task, linkpath, follow_last=False,
                            intent_create=True)
        dentry = pos.dentry
        if not dentry.is_negative:
            raise errors.EEXIST(linkpath)
        parent = self._parent_pos(pos, linkpath)
        self._check_dir_write(task, parent, linkpath)
        fs = parent.dentry.inode.fs
        info = fs.symlink(parent.dentry.inode.ino, dentry.name, target,
                          task.cred.uid, task.cred.gid)
        inode = self.dcache.inode_table(fs).obtain(info)
        self.dcache.make_positive(dentry, inode)
        self._sync_inode(parent.dentry.inode)

    # ------------------------------------------------------------------
    # attribute changes
    # ------------------------------------------------------------------

    def chmod(self, task: Task, path: str, mode: int) -> None:
        self._enter()
        self.costs.charge("chmod_fixed")
        pos = self._resolve(task, path, follow_last=True)
        dentry = pos.dentry
        inode = dentry.inode
        if not perms.owner_or_root(task.cred, inode):
            raise errors.EPERM(path)
        self._check_writable_mount(pos, path)
        # §3.2: a directory's permission change invalidates every cached
        # descendant's prefix checks before the change lands.
        if inode.is_dir:
            self._shoot_subtree(dentry)
        info = inode.fs.setattr(inode.ino, mode=mode)
        inode.apply(info)
        # Mode bits gate permission checks inside memoized resolutions,
        # and neither a non-directory chmod nor an elided shootdown
        # reaches any other flush hook.
        self._flush_memo()

    def chown(self, task: Task, path: str, uid: Optional[int] = None,
              gid: Optional[int] = None) -> None:
        self._enter()
        self.costs.charge("chmod_fixed")
        pos = self._resolve(task, path, follow_last=True)
        dentry = pos.dentry
        inode = dentry.inode
        if not task.cred.is_root:
            raise errors.EPERM(path, "chown requires root")
        self._check_writable_mount(pos, path)
        if inode.is_dir:
            self._shoot_subtree(dentry)
        info = inode.fs.setattr(inode.ino, uid=uid, gid=gid)
        inode.apply(info)
        self._flush_memo()

    def relabel(self, task: Task, path: str, label: Optional[str]) -> None:
        """Set the LSM security label on an inode (e.g. SELinux type).

        Directory relabels shoot down cached prefix checks exactly like a
        chmod — the paper's LSM-compatibility requirement (§4.1).  The
        label is persisted as the ``security.label`` xattr where the file
        system supports xattrs.
        """
        self._enter()
        if not task.cred.is_root:
            raise errors.EPERM(path, "relabel requires root")
        pos = self._resolve(task, path, follow_last=True)
        self._apply_label(pos, label, path)
        try:
            if label is None:
                pos.dentry.inode.fs.removexattr(pos.dentry.inode.ino,
                                                "security.label")
            else:
                pos.dentry.inode.fs.setxattr(pos.dentry.inode.ino,
                                             "security.label",
                                             label.encode())
        except (errors.ENOTSUP, errors.ENOENT):
            pass  # label still applies in memory (pseudo file systems)

    def _apply_label(self, pos: PathPos, label: Optional[str],
                     path_hint: str) -> None:
        inode = pos.dentry.inode
        if inode.is_dir:
            self._shoot_subtree(pos.dentry)
        else:
            self._shoot_single(pos.dentry)
        inode.security = label
        inode.seq += 1
        # Single chokepoint for every label-changing path (relabel,
        # setxattr of security.label): labels feed LSM decisions inside
        # memoized resolutions.
        self._flush_memo()

    def utimes(self, task: Task, path: str, mtime_ns: int) -> None:
        """utimes(2)-style explicit mtime update (owner or root)."""
        self._enter()
        pos = self._resolve(task, path, follow_last=True)
        inode = pos.dentry.inode
        if not perms.owner_or_root(task.cred, inode):
            raise errors.EPERM(path)
        self._check_writable_mount(pos, path)
        info = inode.fs.setattr(inode.ino, mtime_ns=mtime_ns)
        inode.mtime_ns = info.mtime_ns

    def statfs(self, task: Task, path: str):
        """statfs(2): aggregate usage of the file system at ``path``."""
        self._enter()
        pos = self._resolve(task, path, follow_last=True)
        return pos.mount.fs.statfs()

    # ------------------------------------------------------------------
    # extended attributes
    # ------------------------------------------------------------------

    def setxattr(self, task: Task, path: str, name: str,
                 value: bytes) -> None:
        """setxattr(2).  ``security.*`` requires root and carries the
        same coherence obligations as a relabel; ``user.*`` requires
        write permission on the file."""
        self._enter()
        pos = self._resolve(task, path, follow_last=True)
        inode = pos.dentry.inode
        self._check_writable_mount(pos, path)
        if name.startswith("security."):
            if not task.cred.is_root:
                raise errors.EPERM(path, "security.* xattrs require root")
        elif name.startswith("user."):
            self._check_perm(task, pos.dentry, perms.MAY_WRITE, path)
        else:
            raise errors.ENOTSUP(path, f"unsupported namespace {name!r}")
        inode.fs.setxattr(inode.ino, name, value)
        if name == "security.label":
            self._apply_label(pos, value.decode(), path)

    def getxattr(self, task: Task, path: str, name: str) -> bytes:
        self._enter()
        pos = self._resolve(task, path, follow_last=True)
        inode = pos.dentry.inode
        if name.startswith("user."):
            self._check_perm(task, pos.dentry, perms.MAY_READ, path)
        return inode.fs.getxattr(inode.ino, name)

    def listxattr(self, task: Task, path: str) -> List[str]:
        self._enter()
        pos = self._resolve(task, path, follow_last=True)
        inode = pos.dentry.inode
        return inode.fs.listxattr(inode.ino)

    def removexattr(self, task: Task, path: str, name: str) -> None:
        self._enter()
        pos = self._resolve(task, path, follow_last=True)
        inode = pos.dentry.inode
        self._check_writable_mount(pos, path)
        if name.startswith("security."):
            if not task.cred.is_root:
                raise errors.EPERM(path, "security.* xattrs require root")
        elif name.startswith("user."):
            self._check_perm(task, pos.dentry, perms.MAY_WRITE, path)
        else:
            raise errors.ENOTSUP(path, f"unsupported namespace {name!r}")
        inode.fs.removexattr(inode.ino, name)
        if name == "security.label":
            self._apply_label(pos, None, path)

    # ------------------------------------------------------------------
    # process state
    # ------------------------------------------------------------------

    def chdir(self, task: Task, path: str) -> None:
        self._enter()
        pos = self._resolve(task, path, follow_last=True)
        if not pos.dentry.is_dir:
            raise errors.ENOTDIR(path)
        self._check_perm(task, pos.dentry, perms.MAY_EXEC, path)
        task.set_cwd(pos)

    def fchdir(self, task: Task, fd: int) -> None:
        self._enter()
        pos = task.fds.get(fd).pos
        if not pos.dentry.is_dir:
            raise errors.ENOTDIR(message="fchdir on a non-directory")
        self._check_perm(task, pos.dentry, perms.MAY_EXEC)
        task.set_cwd(pos)

    def chroot(self, task: Task, path: str) -> None:
        self._enter()
        if not task.cred.is_root:
            raise errors.EPERM(path, "chroot requires root")
        pos = self._resolve(task, path, follow_last=True)
        if not pos.dentry.is_dir:
            raise errors.ENOTDIR(path)
        task.set_root(pos)

    def getcwd(self, task: Task) -> str:
        self._enter()
        names: List[str] = []
        cur = task.cwd
        for _ in range(vfspath.PATH_MAX):
            if cur.same_place(task.root):
                break
            if cur.dentry is cur.mount.root_dentry:
                if cur.mount.parent is None:
                    break
                cur = PathPos(cur.mount.parent, cur.mount.mountpoint)
                continue
            if cur.dentry.parent is None:
                break
            names.append(cur.dentry.name)
            cur = PathPos(cur.mount, cur.dentry.parent)
        return "/" + "/".join(reversed(names))

    # ------------------------------------------------------------------
    # mounts
    # ------------------------------------------------------------------

    def mount_fs(self, task: Task, fs, path: str,
                 flags: frozenset = frozenset()) -> Mount:
        """mount(2): stack ``fs`` over the directory at ``path``."""
        self._enter()
        if not task.cred.is_root:
            raise errors.EPERM(path, "mount requires root")
        pos = self._resolve(task, path, follow_last=True)
        if not pos.dentry.is_dir:
            raise errors.ENOTDIR(path)
        self._shoot_subtree(pos.dentry)
        root_dentry = self.dcache.root_dentry(fs)
        mount = Mount(fs, root_dentry, parent=pos.mount,
                      mountpoint=pos.dentry, flags=flags)
        task.ns.add_mount(mount)
        self.kernel.coherence.register_mount(pos.dentry, root_dentry)
        # Mount table edits redirect memoized resolutions that cross the
        # mountpoint; no dcache hook or counter bump is guaranteed here.
        self._flush_memo()
        return mount

    def bind_mount(self, task: Task, src: str, dst: str,
                   flags: frozenset = frozenset()) -> Mount:
        """mount --bind: make the tree at ``src`` visible at ``dst``."""
        self._enter()
        if not task.cred.is_root:
            raise errors.EPERM(dst, "mount requires root")
        srcpos = self._resolve(task, src, follow_last=True)
        dstpos = self._resolve(task, dst, follow_last=True)
        if not srcpos.dentry.is_dir or not dstpos.dentry.is_dir:
            raise errors.ENOTDIR(dst)
        self._shoot_subtree(dstpos.dentry)
        mount = Mount(srcpos.mount.fs, srcpos.dentry, parent=dstpos.mount,
                      mountpoint=dstpos.dentry, flags=flags)
        task.ns.add_mount(mount)
        self.kernel.coherence.register_mount(dstpos.dentry, srcpos.dentry)
        self._flush_memo()
        return mount

    def umount(self, task: Task, path: str) -> None:
        self._enter()
        if not task.cred.is_root:
            raise errors.EPERM(path, "umount requires root")
        pos = self._resolve(task, path, follow_last=True)
        mount = pos.mount
        if pos.dentry is not mount.root_dentry or mount.parent is None:
            raise errors.EINVAL(path, "not a mount root")
        self._shoot_subtree(mount.root_dentry)
        if mount.mountpoint is not None:
            self._shoot_single(mount.mountpoint)
        task.ns.remove_mount(mount)
        if mount.mountpoint is not None:
            self.kernel.coherence.unregister_mount(mount.mountpoint,
                                                   mount.root_dentry)
        self._flush_memo()

    def unshare_mountns(self, task: Task) -> None:
        """unshare(CLONE_NEWNS): give the task a private mount namespace."""
        self._enter()
        if not task.cred.is_root:
            raise errors.EPERM(message="unshare requires root")
        new_ns = self.kernel.new_namespace_for(task)
        remap = new_ns.clone_map

        def _remap(pos: PathPos) -> PathPos:
            mount = remap.get(pos.mount.id)
            if mount is None:
                mount = new_ns.root_mount
            return PathPos(mount, pos.dentry)

        new_root = _remap(task.root)
        new_cwd = _remap(task.cwd)
        task.ns = new_ns
        task.set_root(new_root)
        task.set_cwd(new_cwd)

    # ------------------------------------------------------------------
    # mkstemp
    # ------------------------------------------------------------------

    def mkstemp(self, task: Task, dir_path: str, prefix: str = "tmp",
                rng: Optional[random.Random] = None) -> Tuple[int, str]:
        """Securely create a uniquely named temporary file (§5.1).

        Repeatedly generates random names and attempts O_CREAT|O_EXCL —
        the pattern whose compulsory misses directory completeness
        elides.  Returns (fd, name).
        """
        self._enter()
        rng = rng or random.Random(0xF11E)
        for _attempt in range(100):
            name = prefix + "".join(rng.choice(_TEMP_CHARS)
                                    for _ in range(6))
            candidate = vfspath.join(dir_path, name)
            try:
                fd = self.open(task, candidate,
                               O_CREAT | O_EXCL | O_RDWR, 0o600)
            except errors.EEXIST:
                continue
            return fd, name
        raise errors.EEXIST(dir_path, "mkstemp exhausted attempts")
